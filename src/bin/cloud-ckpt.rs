//! `cloud-ckpt` — command-line front end for the SC'13 checkpoint-restart
//! reproduction.
//!
//! ```text
//! cloud-ckpt plan     --te 441 --ckpt-cost 1 --mnof 2 [--mtbf 179]
//! cloud-ckpt generate --jobs 2000 --seed 7 --out trace.csv [--flips]
//! cloud-ckpt replay   --trace trace.csv --policy formula3 [...]
//! cloud-ckpt replay   --jobs 2000 --seed 7 --policy young  (generate inline)
//! cloud-ckpt sweep    --spec grid.toml [--threads 8] [--out results]
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency); every subcommand
//! prints `--help`-style usage on bad input.

use cloud_ckpt::policy::daly::daly_interval_count;
use cloud_ckpt::policy::optimal::{expected_wall_clock, optimal_interval_count};
use cloud_ckpt::policy::young::{young_interval, young_interval_count};
use cloud_ckpt::scenario::{run_sweep, write_outputs, SweepOptions, SweepSpec};
use cloud_ckpt::sim::metrics::{mean_wpr, with_structure, wpr_ecdf};
use cloud_ckpt::sim::policy::{Estimates, EstimatorKind, PolicyConfig};
use cloud_ckpt::sim::runner::{run_trace, RunOptions};
use cloud_ckpt::trace::export;
use cloud_ckpt::trace::gen::{generate, JobStructure, Trace};
use cloud_ckpt::trace::spec::WorkloadSpec;
use cloud_ckpt::trace::stats::{failure_prone_jobs, trace_histories};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
cloud-ckpt — optimal cloud checkpointing (Di et al., SC'13) toolkit

USAGE:
  cloud-ckpt plan --te <s> --ckpt-cost <s> --mnof <n> [--mtbf <s>] [--restart-cost <s>]
      Compute checkpoint plans for one task under Formula (3), Young and Daly.

  cloud-ckpt generate --jobs <n> [--seed <u64>] [--flips] --out <file.csv>
      Generate a Google-like synthetic trace and write it as CSV.

  cloud-ckpt replay (--trace <file.csv> | --jobs <n> [--seed <u64>]) \\
                    [--policy formula3|young|daly|none] [--adaptive] \\
                    [--estimator oracle|priority|global] [--limit <s>] [--threads <n>]
      Replay a trace under a policy and print WPR statistics.

  cloud-ckpt sweep --spec <file.toml> [--threads <n>] [--out <dir>]
      Expand a declarative sweep spec into a scenario grid, evaluate every
      cell in parallel, and write per-cell CSV + JSON summaries.

  cloud-ckpt help
      Show this message.
";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        // Boolean flags take no value.
        if matches!(key, "flips" | "adaptive") {
            map.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("flag --{key} needs a value"));
        };
        map.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn need<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str) -> Result<T, String> {
    flags
        .get(key)
        .ok_or(format!("missing required flag --{key}"))?
        .parse()
        .map_err(|_| format!("flag --{key}: cannot parse {:?}", flags[key]))
}

fn opt<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag --{key}: cannot parse {v:?}")),
    }
}

fn cmd_plan(flags: HashMap<String, String>) -> Result<(), String> {
    let te: f64 = need(&flags, "te")?;
    let c: f64 = need(&flags, "ckpt-cost")?;
    let mnof: f64 = need(&flags, "mnof")?;
    let r: f64 = opt(&flags, "restart-cost", 0.0)?;

    let x = optimal_interval_count(te, c, mnof).map_err(|e| e.to_string())?;
    let e_tw = expected_wall_clock(te, c, r, mnof, x.rounded()).map_err(|e| e.to_string())?;
    println!("Formula (3) [paper]:");
    println!(
        "  x* = {:.3} -> {} intervals of {:.2} s ({} checkpoints)",
        x.continuous(),
        x.rounded(),
        x.interval_length(te),
        x.checkpoint_count()
    );
    println!("  E(Tw) = {e_tw:.2} s (vs {te} s productive)");

    if let Some(mtbf_s) = flags.get("mtbf") {
        let mtbf: f64 = mtbf_s.parse().map_err(|_| "bad --mtbf".to_string())?;
        let tc = young_interval(c, mtbf).map_err(|e| e.to_string())?;
        let xy = young_interval_count(te, c, mtbf).map_err(|e| e.to_string())?;
        let xd = daly_interval_count(te, c, mtbf).map_err(|e| e.to_string())?;
        println!("Young:   Tc = {tc:.2} s -> {xy} intervals");
        println!("Daly:    {xd} intervals");
        let e_young = expected_wall_clock(te, c, r, mnof, xy).map_err(|e| e.to_string())?;
        println!("  E(Tw) under Young's count (true E(Y) = {mnof}): {e_young:.2} s");
    }
    Ok(())
}

fn cmd_generate(flags: HashMap<String, String>) -> Result<(), String> {
    let jobs: usize = need(&flags, "jobs")?;
    let seed: u64 = opt(&flags, "seed", 20130217)?;
    let out: String = need(&flags, "out")?;
    let mut spec = WorkloadSpec::google_like(jobs);
    if flags.contains_key("flips") {
        spec = spec.with_priority_flips();
    }
    let trace = generate(&spec, seed);
    export::write_csv(&trace, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} jobs / {} tasks (seed {seed}) to {out}",
        trace.jobs.len(),
        trace.task_count()
    );
    Ok(())
}

fn load_trace(flags: &HashMap<String, String>) -> Result<Trace, String> {
    if let Some(path) = flags.get("trace") {
        export::read_csv(path).map_err(|e| e.to_string())
    } else {
        let jobs: usize = need(flags, "jobs")?;
        let seed: u64 = opt(flags, "seed", 20130217)?;
        Ok(generate(&WorkloadSpec::google_like(jobs), seed))
    }
}

fn cmd_replay(flags: HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(&flags)?;
    let limit: f64 = opt(&flags, "limit", f64::INFINITY)?;
    let estimator = match flags.get("estimator").map(String::as_str) {
        None | Some("priority") => EstimatorKind::PerPriority { limit },
        Some("oracle") => EstimatorKind::Oracle,
        Some("global") => EstimatorKind::Global { limit },
        Some(other) => return Err(format!("unknown estimator {other:?}")),
    };
    let base = match flags.get("policy").map(String::as_str) {
        None | Some("formula3") => PolicyConfig::formula3(),
        Some("young") => PolicyConfig::young(),
        Some("daly") => PolicyConfig::daly(),
        Some("none") => PolicyConfig::none(),
        Some(other) => return Err(format!("unknown policy {other:?}")),
    };
    let cfg = base
        .with_estimator(estimator)
        .with_adaptivity(flags.contains_key("adaptive"));
    let threads: usize = opt(&flags, "threads", 0)?;

    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let sample = failure_prone_jobs(&records, 0.5);
    let recs: Vec<_> = run_trace(&trace, &estimates, &cfg, RunOptions { threads })
        .into_iter()
        .filter(|r| sample.contains(&r.job_id))
        .collect();
    if recs.is_empty() {
        return Err("no failure-prone sample jobs in this trace".into());
    }
    let e = wpr_ecdf(&recs).expect("non-empty");
    println!(
        "policy {} | estimator {:?} | {} sample jobs of {}",
        cfg.kind.label(),
        cfg.estimator,
        recs.len(),
        trace.jobs.len()
    );
    println!("  avg WPR        {:.4}", mean_wpr(&recs));
    println!(
        "  ST / BoT WPR   {:.4} / {:.4}",
        mean_wpr(&with_structure(&recs, JobStructure::Sequential)),
        mean_wpr(&with_structure(&recs, JobStructure::BagOfTasks))
    );
    println!("  P(WPR < 0.88)  {:.3}", e.cdf(0.88));
    println!("  P(WPR > 0.95)  {:.3}", 1.0 - e.cdf(0.95));
    println!("  min / med      {:.4} / {:.4}", e.min(), e.quantile(0.5));
    Ok(())
}

fn cmd_sweep(flags: HashMap<String, String>) -> Result<(), String> {
    let spec_path: String = need(&flags, "spec")?;
    let out_dir: String = opt(&flags, "out", "results".to_string())?;
    let text = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("cannot read spec {spec_path:?}: {e}"))?;
    let sweep = SweepSpec::from_str(&text).map_err(|e| e.to_string())?;
    let threads: usize = opt(&flags, "threads", sweep.threads)?;

    let n = sweep.grid_size();
    let axes: Vec<String> = sweep
        .axes
        .iter()
        .map(|a| format!("{}({})", a.param, a.values.len()))
        .collect();
    println!(
        "sweep {:?}: {} cells over {} [engine {}, seed {}]",
        sweep.name,
        n,
        if axes.is_empty() {
            "no axes".to_string()
        } else {
            axes.join(" x ")
        },
        sweep.base.engine.label(),
        sweep.base.seed,
    );

    let start = std::time::Instant::now();
    let result = run_sweep(&sweep, SweepOptions { threads }).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();

    // Persist before printing the report: the exports must land even if
    // stdout goes away mid-print (e.g. piped through `head`).
    let (csv, json) = write_outputs(&sweep, &result, &out_dir).map_err(|e| e.to_string())?;

    // Compact per-cell report: axis assignments plus the first metric.
    let shown = result.cells.len().min(48);
    for cell in result.cells.iter().take(shown) {
        let params: Vec<String> = cell
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        if let Some((name, s)) = cell.metrics.first() {
            println!(
                "  [{:>3}] {:<52} {} mean {:.4} p50 {:.4} p99 {:.4} (n={})",
                cell.index,
                params.join(" "),
                name,
                s.mean,
                s.p50,
                s.p99,
                s.count
            );
        }
    }
    if result.cells.len() > shown {
        println!("  ... and {} more cells", result.cells.len() - shown);
    }

    println!(
        "{} cells in {:.2}s ({:.1} cells/s, {} threads requested)",
        n,
        elapsed.as_secs_f64(),
        n as f64 / elapsed.as_secs_f64().max(1e-9),
        threads,
    );
    println!("wrote {} and {}", csv.display(), json.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd {
        "plan" => parse_flags(&args[1..]).and_then(cmd_plan),
        "generate" => parse_flags(&args[1..]).and_then(cmd_generate),
        "replay" => parse_flags(&args[1..]).and_then(cmd_replay),
        "sweep" => parse_flags(&args[1..]).and_then(cmd_sweep),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
