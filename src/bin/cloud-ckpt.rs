//! `cloud-ckpt` — command-line front end for the SC'13 checkpoint-restart
//! reproduction.
//!
//! ```text
//! cloud-ckpt plan     --te 441 --ckpt-cost 1 --mnof 2 [--mtbf 179]
//! cloud-ckpt generate --jobs 2000 --seed 7 --out trace.csv [--flips]
//! cloud-ckpt replay   --trace trace.csv --policy formula3 [--format json]
//! cloud-ckpt replay   --jobs 2000 --seed 7 --policy young  (generate inline)
//! cloud-ckpt sweep    --spec grid.toml [--threads 8] [--out results]
//! cloud-ckpt exp      list | run <id...> | all   (the experiment registry)
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency); every subcommand
//! declares the exact flags it accepts, so typos, duplicates, and unknown
//! flags are hard errors instead of inert map entries.

use cloud_ckpt::bench::registry;
use cloud_ckpt::faults::{self, FaultPlan, FaultState};
use cloud_ckpt::obs::{Phase, Telemetry};
use cloud_ckpt::policy::daly::daly_interval_count;
use cloud_ckpt::policy::optimal::{expected_wall_clock, optimal_interval_count};
use cloud_ckpt::policy::young::{young_interval, young_interval_count};
use cloud_ckpt::report::{row, write_telemetry, ExpOutput, Format, Frame, RunContext, Scale, Sink};
use cloud_ckpt::scenario::{
    ckpt, run_sweep_guarded, write_outputs, CheckpointConfig, FaultPolicy, SweepOptions, SweepSpec,
};
use cloud_ckpt::sim::metrics::{mean_wpr, with_structure, wpr_ecdf};
use cloud_ckpt::sim::policy::{Estimates, EstimatorKind, PolicyConfig};
use cloud_ckpt::sim::runner::{run_trace, RunOptions};
use cloud_ckpt::trace::export;
use cloud_ckpt::trace::gen::{generate, JobStructure, Trace};
use cloud_ckpt::trace::spec::WorkloadSpec;
use cloud_ckpt::trace::stats::{failure_prone_jobs, trace_histories};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
cloud-ckpt — optimal cloud checkpointing (Di et al., SC'13) toolkit

USAGE:
  cloud-ckpt plan --te <s> --ckpt-cost <s> --mnof <n> [--mtbf <s>] [--restart-cost <s>]
      Compute checkpoint plans for one task under Formula (3), Young and Daly.

  cloud-ckpt generate --jobs <n> [--seed <u64>] [--flips] --out <file.csv>
      Generate a Google-like synthetic trace and write it as CSV.

  cloud-ckpt replay (--trace <file.csv> | --jobs <n> [--seed <u64>]) \\
                    [--policy formula3|young|daly|none] [--adaptive] \\
                    [--estimator oracle|priority|global] [--limit <s>] [--threads <n>] \\
                    [--format table|csv|json]
      Replay a trace under a policy and report WPR statistics through the
      shared frame writer.

  cloud-ckpt sweep --spec <file.toml> [--threads <n>] [--shards <n>] [--out <dir>] \\
                   [--checkpoint-dir <dir>] [--resume] \\
                   [--telemetry <dir>] [--progress] \\
                   [--inject <plan>] [--strict]
      Expand a declarative sweep spec into a scenario grid, evaluate every
      cell in parallel, and write per-cell CSV + JSON summaries.
      --checkpoint-dir persists each cell to an append-only store as it
      completes; --resume reopens that store, skips persisted cells, and
      evaluates only the missing ones — outputs are byte-identical to an
      uninterrupted run at any thread count.
      --telemetry writes a deterministic counter frame plus wall-clock
      phase timings to <dir>; --progress streams ~2 Hz heartbeats to
      stderr. Neither changes any simulation output byte.
      --shards partitions every cluster-engine replay into <n> host-group
      shards that advance in parallel through conservative time windows.
      Results depend on the shard count (it is replay identity), never on
      the thread count; --shards 1 is the exact legacy single-engine path.
      --inject arms a deterministic fault plan (or set CKPT_FAULT_PLAN;
      the flag wins), e.g. \"panic@cell=7; io_error@write=3:times=2\".
      Failing cells retry with backoff, then quarantine with NaN metrics
      and a `status` column while the rest of the grid completes; a run
      health summary goes to stderr. --strict restores fail-fast (first
      failure aborts, no retries).

  cloud-ckpt exp list [--format table|csv|json]
      List every registered experiment (id, paper figure/table, claim).

  cloud-ckpt exp run <id...> [--scale quick|day|month|stress] [--seed <u64>] \\
                     [--format table|csv|json] [--out <dir>] [--threads <n>] \\
                     [--shards <n>] [--deny-empty] [--telemetry <dir>] [--progress]
      Run one or more registered experiments; frames go to stdout in the
      chosen format and, with --out, to one file per frame. --telemetry,
      --progress and --shards work as in `sweep` (one batch-wide telemetry
      bundle; --shards applies to every cluster-engine replay).

  cloud-ckpt exp all [same flags as exp run]
      Run the whole registry in paper order.

  cloud-ckpt help
      Show this message.
";

/// The exact flags one subcommand accepts.
struct FlagSpec {
    /// Flags that take a value (`--key value`).
    value: &'static [&'static str],
    /// Boolean flags (`--key`).
    boolean: &'static [&'static str],
}

const PLAN_FLAGS: FlagSpec = FlagSpec {
    value: &["te", "ckpt-cost", "mnof", "mtbf", "restart-cost"],
    boolean: &[],
};
const GENERATE_FLAGS: FlagSpec = FlagSpec {
    value: &["jobs", "seed", "out"],
    boolean: &["flips"],
};
const REPLAY_FLAGS: FlagSpec = FlagSpec {
    value: &[
        "trace",
        "jobs",
        "seed",
        "policy",
        "estimator",
        "limit",
        "threads",
        "format",
    ],
    boolean: &["adaptive"],
};
const SWEEP_FLAGS: FlagSpec = FlagSpec {
    value: &[
        "spec",
        "threads",
        "shards",
        "out",
        "telemetry",
        "checkpoint-dir",
        "inject",
    ],
    boolean: &["progress", "resume", "strict"],
};
const EXP_LIST_FLAGS: FlagSpec = FlagSpec {
    value: &["format"],
    boolean: &[],
};
const EXP_RUN_FLAGS: FlagSpec = FlagSpec {
    value: &[
        "scale",
        "seed",
        "format",
        "out",
        "threads",
        "shards",
        "telemetry",
    ],
    boolean: &["deny-empty", "progress"],
};

/// Parse `--flag [value]` arguments against a subcommand's flag spec.
/// Duplicate flags are errors; unknown flags are collected and reported
/// together, naming the accepted set.
fn parse_flags(args: &[String], spec: &FlagSpec) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut unknown: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        let is_bool = spec.boolean.contains(&key);
        let is_value = spec.value.contains(&key);
        if !is_bool && !is_value {
            unknown.push(format!("--{key}"));
            // Skip a trailing value so every unknown flag is reported.
            if args.get(i + 1).is_some_and(|v| !v.starts_with("--")) {
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if map.contains_key(key) {
            return Err(format!("duplicate flag --{key}"));
        }
        if is_bool {
            map.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            // A following `--flag` token is a forgotten value, not a
            // value: swallowing it would silently drop the next flag.
            let value = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => return Err(format!("flag --{key} needs a value")),
            };
            map.insert(key.to_string(), value);
            i += 2;
        }
    }
    if !unknown.is_empty() {
        let accepted: Vec<String> = spec
            .value
            .iter()
            .chain(spec.boolean.iter())
            .map(|f| format!("--{f}"))
            .collect();
        return Err(format!(
            "unknown flag{} {} (accepted: {})",
            if unknown.len() > 1 { "s" } else { "" },
            unknown.join(", "),
            accepted.join(", ")
        ));
    }
    Ok(map)
}

fn need<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str) -> Result<T, String> {
    flags
        .get(key)
        .ok_or(format!("missing required flag --{key}"))?
        .parse()
        .map_err(|_| format!("flag --{key}: cannot parse {:?}", flags[key]))
}

fn opt<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("flag --{key}: cannot parse {v:?}")),
    }
}

fn format_flag(flags: &HashMap<String, String>) -> Result<Format, String> {
    match flags.get("format") {
        None => Ok(Format::Table),
        Some(f) => Format::parse(f).map_err(|e| format!("flag --format: {e}")),
    }
}

fn cmd_plan(flags: HashMap<String, String>) -> Result<(), String> {
    let te: f64 = need(&flags, "te")?;
    let c: f64 = need(&flags, "ckpt-cost")?;
    let mnof: f64 = need(&flags, "mnof")?;
    let r: f64 = opt(&flags, "restart-cost", 0.0)?;

    let x = optimal_interval_count(te, c, mnof).map_err(|e| e.to_string())?;
    let e_tw = expected_wall_clock(te, c, r, mnof, x.rounded()).map_err(|e| e.to_string())?;
    println!("Formula (3) [paper]:");
    println!(
        "  x* = {:.3} -> {} intervals of {:.2} s ({} checkpoints)",
        x.continuous(),
        x.rounded(),
        x.interval_length(te),
        x.checkpoint_count()
    );
    println!("  E(Tw) = {e_tw:.2} s (vs {te} s productive)");

    if let Some(mtbf_s) = flags.get("mtbf") {
        let mtbf: f64 = mtbf_s.parse().map_err(|_| "bad --mtbf".to_string())?;
        let tc = young_interval(c, mtbf).map_err(|e| e.to_string())?;
        let xy = young_interval_count(te, c, mtbf).map_err(|e| e.to_string())?;
        let xd = daly_interval_count(te, c, mtbf).map_err(|e| e.to_string())?;
        println!("Young:   Tc = {tc:.2} s -> {xy} intervals");
        println!("Daly:    {xd} intervals");
        let e_young = expected_wall_clock(te, c, r, mnof, xy).map_err(|e| e.to_string())?;
        println!("  E(Tw) under Young's count (true E(Y) = {mnof}): {e_young:.2} s");
    }
    Ok(())
}

fn cmd_generate(flags: HashMap<String, String>) -> Result<(), String> {
    let jobs: usize = need(&flags, "jobs")?;
    let seed: u64 = opt(&flags, "seed", cloud_ckpt::report::DEFAULT_SEED)?;
    let out: String = need(&flags, "out")?;
    let mut spec = WorkloadSpec::google_like(jobs);
    if flags.contains_key("flips") {
        spec = spec.with_priority_flips();
    }
    let trace = generate(&spec, seed).map_err(|e| e.to_string())?;
    export::write_csv(&trace, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} jobs / {} tasks (seed {seed}) to {out}",
        trace.jobs.len(),
        trace.task_count()
    );
    Ok(())
}

fn load_trace(flags: &HashMap<String, String>) -> Result<Trace, String> {
    if let Some(path) = flags.get("trace") {
        export::read_csv(path).map_err(|e| e.to_string())
    } else {
        let jobs: usize = need(flags, "jobs")?;
        let seed: u64 = opt(flags, "seed", cloud_ckpt::report::DEFAULT_SEED)?;
        generate(&WorkloadSpec::google_like(jobs), seed).map_err(|e| e.to_string())
    }
}

fn cmd_replay(flags: HashMap<String, String>) -> Result<(), String> {
    let trace = load_trace(&flags)?;
    let limit: f64 = opt(&flags, "limit", f64::INFINITY)?;
    let format = format_flag(&flags)?;
    let estimator = match flags.get("estimator").map(String::as_str) {
        None | Some("priority") => EstimatorKind::PerPriority { limit },
        Some("oracle") => EstimatorKind::Oracle,
        Some("global") => EstimatorKind::Global { limit },
        Some(other) => return Err(format!("unknown estimator {other:?}")),
    };
    let base = match flags.get("policy").map(String::as_str) {
        None | Some("formula3") => PolicyConfig::formula3(),
        Some("young") => PolicyConfig::young(),
        Some("daly") => PolicyConfig::daly(),
        Some("none") => PolicyConfig::none(),
        Some(other) => return Err(format!("unknown policy {other:?}")),
    };
    let cfg = base
        .with_estimator(estimator)
        .with_adaptivity(flags.contains_key("adaptive"));
    let threads: usize = opt(&flags, "threads", 0)?;

    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let sample = failure_prone_jobs(&records, 0.5);
    let recs: Vec<_> = run_trace(&trace, &estimates, &cfg, RunOptions { threads })
        .into_iter()
        .filter(|r| sample.contains(&r.job_id))
        .collect();
    let Some(e) = wpr_ecdf(&recs) else {
        return Err("no failure-prone sample jobs in this trace".into());
    };

    // One summary frame, rendered by the shared writer: the replay report
    // is machine-readable in every format, like any registered experiment.
    let mut frame = Frame::new(
        "replay_summary",
        vec![
            "policy",
            "estimator",
            "sample_jobs",
            "total_jobs",
            "avg WPR",
            "st_wpr",
            "bot_wpr",
            "p_wpr_below_088",
            "p_wpr_above_095",
            "min_wpr",
            "med_wpr",
        ],
    )
    .with_title(format!(
        "replay: policy {} | estimator {:?}",
        cfg.kind.label(),
        cfg.estimator
    ));
    frame.push_row(row![
        cfg.kind.label(),
        format!("{:?}", cfg.estimator),
        recs.len(),
        trace.jobs.len(),
        mean_wpr(&recs),
        mean_wpr(&with_structure(&recs, JobStructure::Sequential)),
        mean_wpr(&with_structure(&recs, JobStructure::BagOfTasks)),
        e.cdf(0.88),
        1.0 - e.cdf(0.95),
        e.min(),
        e.quantile(0.5),
    ]);
    let mut out = ExpOutput::new();
    out.push(frame);
    Sink::new(format).emit(&out).map_err(|e| e.to_string())?;
    Ok(())
}

/// Build the optional telemetry bundle from `--telemetry` / `--progress`.
/// Returns the bundle (if either flag is present) and the export
/// directory (if `--telemetry` carried one). `None` means every engine
/// runs its uninstrumented code path.
fn telemetry_flags(
    flags: &HashMap<String, String>,
) -> (Option<std::sync::Arc<Telemetry>>, Option<String>) {
    let dir = flags.get("telemetry").cloned();
    let progress = flags.contains_key("progress");
    if dir.is_none() && !progress {
        return (None, None);
    }
    let telemetry = if progress {
        Telemetry::new().with_progress()
    } else {
        Telemetry::new()
    };
    (Some(std::sync::Arc::new(telemetry)), dir)
}

/// Flush a telemetry bundle: final heartbeat, then the counter frame and
/// phase timings to `dir` (when `--telemetry` gave one).
fn finish_telemetry(telemetry: &Telemetry, dir: Option<&str>) -> Result<(), String> {
    if let Some(progress) = &telemetry.progress {
        progress.finish();
    }
    if let Some(dir) = dir {
        let paths = write_telemetry(telemetry, dir)
            .map_err(|e| format!("cannot write telemetry to {dir:?}: {e}"))?;
        for p in paths {
            eprintln!("telemetry: wrote {}", p.display());
        }
    }
    Ok(())
}

/// Build the optional [`CheckpointConfig`] from `--checkpoint-dir` /
/// `--resume` and the `CKPT_CRASH_AFTER_CELLS` fault-injection knob
/// (test-only: aborts the sweep with exit code
/// [`cloud_ckpt::scenario::CRASH_EXIT_CODE`] after n persisted cells).
fn checkpoint_flags(flags: &HashMap<String, String>) -> Result<Option<CheckpointConfig>, String> {
    let dir = flags.get("checkpoint-dir");
    let resume = flags.contains_key("resume");
    let crash_after = match std::env::var("CKPT_CRASH_AFTER_CELLS") {
        Ok(v) => Some(
            v.parse::<u64>()
                .map_err(|_| format!("CKPT_CRASH_AFTER_CELLS: expected a cell count, got {v:?}"))?,
        ),
        Err(_) => None,
    };
    let Some(dir) = dir else {
        if resume {
            return Err("--resume needs --checkpoint-dir (nowhere to resume from)".into());
        }
        if crash_after.is_some() {
            return Err(
                "CKPT_CRASH_AFTER_CELLS is set but --checkpoint-dir is not; \
                 the crash hook only makes sense for a checkpointed sweep"
                    .into(),
            );
        }
        return Ok(None);
    };
    Ok(Some(CheckpointConfig {
        dir: dir.into(),
        resume,
        crash_after_cells: crash_after,
    }))
}

/// Build the [`FaultPolicy`] from `--inject` / `--strict` and the
/// `CKPT_FAULT_PLAN` environment knob. The flag wins over the
/// environment; with neither, the policy carries an empty plan (nothing
/// injected) and cells still quarantine on genuine failures unless
/// `--strict` asks for the historical fail-fast discipline.
fn fault_flags(flags: &HashMap<String, String>) -> Result<FaultPolicy, String> {
    let plan_text = match flags.get("inject") {
        Some(text) => Some(text.clone()),
        None => std::env::var("CKPT_FAULT_PLAN").ok(),
    };
    let plan = match plan_text {
        Some(text) => FaultPlan::parse(&text).map_err(|e| format!("flag --inject: {e}"))?,
        None => FaultPlan::default(),
    };
    Ok(FaultPolicy {
        faults: std::sync::Arc::new(FaultState::new(plan)),
        strict: flags.contains_key("strict"),
    })
}

/// Parse a `--shards` value: a positive shard count (the per-shard
/// host-count upper bound is checked at execution time, where the final
/// fleet size is known).
fn parse_shards_flag(s: &str) -> Result<usize, String> {
    let shards: usize = s
        .parse()
        .map_err(|_| format!("flag --shards: cannot parse {s:?} as a shard count"))?;
    if shards == 0 {
        return Err("flag --shards: must be >= 1".to_string());
    }
    Ok(shards)
}

fn cmd_sweep(flags: HashMap<String, String>) -> Result<(), String> {
    let spec_path: String = need(&flags, "spec")?;
    let out_dir: String = opt(&flags, "out", "results".to_string())?;
    let checkpoint = checkpoint_flags(&flags)?;
    let policy = fault_flags(&flags)?;
    if policy.faults.crash_after_cells().is_some() && checkpoint.is_none() {
        return Err(
            "the fault plan has a crash@cells directive but --checkpoint-dir is not set; \
             the crash hook only makes sense for a checkpointed sweep"
                .into(),
        );
    }
    let (telemetry, telemetry_dir) = telemetry_flags(&flags);
    let parse_spec = || -> Result<SweepSpec, String> {
        let text = std::fs::read_to_string(&spec_path)
            .map_err(|e| format!("cannot read spec {spec_path:?}: {e}"))?;
        SweepSpec::from_str(&text).map_err(|e| e.to_string())
    };
    let mut sweep = match &telemetry {
        Some(t) => t.timers.time(Phase::Parse, parse_spec)?,
        None => parse_spec()?,
    };
    let threads: usize = opt(&flags, "threads", sweep.threads)?;
    if let Some(s) = flags.get("shards") {
        sweep.base.shards = parse_shards_flag(s)?;
    }

    let n = sweep.grid_size();
    let axes: Vec<String> = sweep
        .axes
        .iter()
        .map(|a| format!("{}({})", a.param, a.values.len()))
        .collect();
    println!(
        "sweep {:?}: {} cells over {} [engine {}, seed {}]",
        sweep.name,
        n,
        if axes.is_empty() {
            "no axes".to_string()
        } else {
            axes.join(" x ")
        },
        sweep.base.engine.label(),
        sweep.base.seed,
    );

    let start = std::time::Instant::now();
    let (result, report) = run_sweep_guarded(
        &sweep,
        SweepOptions { threads },
        telemetry.as_deref(),
        checkpoint.as_ref(),
        &policy,
    )
    .map_err(|e| e.to_string())?;
    if let Some(report) = &report {
        let mut lines = Vec::new();
        ckpt::report_lines(report, &mut lines);
        for line in lines {
            eprintln!("checkpoint: {line}");
        }
        println!(
            "checkpoint: {} ({} loaded, {} evaluated)",
            report.store_path.display(),
            report.loaded,
            report.evaluated,
        );
    }
    let elapsed = start.elapsed();
    // Degraded-run reporting goes to stderr, never stdout: a clean run's
    // stdout must stay byte-identical whether or not a plan was armed.
    if result.health.degraded() || !policy.faults.is_empty() {
        eprintln!("health: {}", result.health.summary());
    }

    // Persist before printing the report: the exports must land even if
    // stdout goes away mid-print (e.g. piped through `head`). Injected
    // export faults and transient write errors retry with backoff like
    // any other store I/O.
    let write = || -> Result<_, String> {
        let mut retry = 0u32;
        loop {
            let injected = policy.faults.export_fault();
            let transient = match injected {
                Some(kind) => {
                    if !faults::is_transient_kind(kind) {
                        return Err(format!(
                            "writing outputs: injected io error ({})",
                            faults::io_kind_name(kind)
                        ));
                    }
                    Some(faults::io_kind_name(kind).to_string())
                }
                None => match write_outputs(&sweep, &result, &out_dir) {
                    Ok(paths) => return Ok(paths),
                    Err(e) if faults::is_transient_kind(e.kind()) && !policy.strict => {
                        Some(e.to_string())
                    }
                    Err(e) => return Err(e.to_string()),
                },
            };
            let detail = transient.expect("non-transient outcomes returned above");
            if policy.strict || retry >= faults::MAX_ATTEMPTS - 1 {
                return Err(format!("writing outputs: io error ({detail})"));
            }
            eprintln!(
                "sweep: transient io failure writing outputs ({detail}); retry {}/{}",
                retry + 1,
                faults::MAX_ATTEMPTS - 1
            );
            if let Some(t) = &telemetry {
                t.counters.add(cloud_ckpt::obs::Counter::IoRetries, 1);
            }
            policy.faults.sleep_backoff(retry);
            retry += 1;
        }
    };
    let (csv, json) = match &telemetry {
        Some(t) => t.timers.time(Phase::Export, write)?,
        None => write()?,
    };
    if let Some(t) = &telemetry {
        finish_telemetry(t, telemetry_dir.as_deref())?;
    }

    // Compact per-cell report: axis assignments plus the first metric.
    let shown = result.cells.len().min(48);
    for cell in result.cells.iter().take(shown) {
        let params: Vec<String> = cell
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        if let Some((name, s)) = cell.metrics.first() {
            println!(
                "  [{:>3}] {:<52} {} mean {:.4} p50 {:.4} p99 {:.4} (n={})",
                cell.index,
                params.join(" "),
                name,
                s.mean,
                s.p50,
                s.p99,
                s.count
            );
        }
    }
    if result.cells.len() > shown {
        println!("  ... and {} more cells", result.cells.len() - shown);
    }

    println!(
        "{} cells in {:.2}s ({:.1} cells/s, {} threads requested)",
        n,
        elapsed.as_secs_f64(),
        n as f64 / elapsed.as_secs_f64().max(1e-9),
        threads,
    );
    println!("wrote {} and {}", csv.display(), json.display());
    Ok(())
}

/// Run one or more registered experiments under flags shared by
/// `exp run` and `exp all`.
fn run_experiments(ids: &[String], flags: &HashMap<String, String>) -> Result<(), String> {
    // Resolve every id up front so one typo fails before hours of work.
    let mut exps = Vec::new();
    let mut unknown = Vec::new();
    for id in ids {
        match registry::find(id) {
            Some(e) => exps.push(e),
            None => unknown.push(id.as_str()),
        }
    }
    if !unknown.is_empty() {
        return Err(format!(
            "unknown experiment id(s): {} (see `cloud-ckpt exp list`)",
            unknown.join(", ")
        ));
    }

    let format = format_flag(flags)?;
    let deny_empty = flags.contains_key("deny-empty");
    let threads: usize = opt(flags, "threads", 0)?;
    let shards = match flags.get("shards") {
        Some(s) => Some(parse_shards_flag(s)?),
        None => None,
    };
    // One bundle for the whole batch: counters and phase timers aggregate
    // across experiments, and the heartbeat line spans the run.
    let (telemetry, telemetry_dir) = telemetry_flags(flags);
    // Files keep full precision: table stdout pairs with CSV files (the
    // legacy binary behavior); csv/json stdout pairs with same-format files.
    let mut sink = Sink::new(format);
    if format == Format::Table {
        sink = sink.with_file_format(Format::Csv);
    }
    if let Some(dir) = flags.get("out") {
        sink = sink.with_dir(dir);
    }

    // JSON stdout must stay one parseable document even for `exp all`:
    // frames accumulate (tagged with their experiment id) and are emitted
    // once at the end. A failing experiment doesn't abort the batch —
    // later experiments still run and completed frames still land;
    // failures are collected and reported together (non-zero exit).
    let mut combined = ExpOutput::new();
    let mut failures: Vec<String> = Vec::new();
    for exp in &exps {
        // Environment first (hard errors on bad CKPT_SCALE / CKPT_SEED),
        // then explicit flags override.
        let mut ctx = RunContext::from_env(exp.default_scale())?.with_threads(threads);
        if let Some(s) = flags.get("scale") {
            ctx.scale = Scale::parse(s).map_err(|e| format!("flag --scale: {e}"))?;
        }
        if let Some(s) = flags.get("seed") {
            ctx.seed = s
                .parse()
                .map_err(|_| format!("flag --seed: cannot parse {s:?}"))?;
        }
        ctx.sink = sink.clone();
        if let Some(t) = &telemetry {
            ctx = ctx.with_telemetry(t.clone());
        }
        if let Some(s) = shards {
            ctx = ctx.with_shards(s);
        }

        if exps.len() > 1 && format == Format::Table {
            println!("\n### {} ({})", exp.id(), exp.paper_ref());
        }
        let output = match exp.run(&ctx) {
            Ok(output) => output,
            Err(e) => {
                eprintln!("error: {}: {e}", exp.id());
                failures.push(format!("{}: {e}", exp.id()));
                continue;
            }
        };
        if deny_empty {
            let empty = if output.frames.is_empty() {
                Some("produced no frames".to_string())
            } else {
                output
                    .frames
                    .iter()
                    .find(|f| f.is_empty())
                    .map(|f| format!("frame {:?} is empty", f.name))
            };
            if let Some(why) = empty {
                eprintln!("error: {}: {why}", exp.id());
                failures.push(format!("{}: {why}", exp.id()));
                continue;
            }
        }
        if format == Format::Json {
            for mut frame in output.frames {
                frame.metadata.push(("experiment".into(), exp.id().into()));
                combined.push(frame);
            }
            for note in output.notes {
                combined.note(if exps.len() > 1 {
                    format!("{}: {note}", exp.id())
                } else {
                    note
                });
            }
        } else {
            let paths = ctx.sink.emit(&output).map_err(|e| e.to_string())?;
            if format == Format::Table {
                for p in paths {
                    println!("wrote {}", p.display());
                }
            }
        }
    }
    if format == Format::Json {
        sink.emit(&combined).map_err(|e| e.to_string())?;
    }
    if let Some(t) = &telemetry {
        finish_telemetry(t, telemetry_dir.as_deref())?;
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} of {} experiment(s) failed: {}",
            failures.len(),
            exps.len(),
            failures.join("; ")
        ));
    }
    Ok(())
}

fn cmd_exp(args: &[String]) -> Result<(), String> {
    let Some(sub) = args.first().map(String::as_str) else {
        return Err("exp needs a subcommand: list | run <id...> | all".into());
    };
    match sub {
        "list" => {
            let flags = parse_flags(&args[1..], &EXP_LIST_FLAGS)?;
            let format = format_flag(&flags)?;
            let mut out = ExpOutput::new();
            out.push(registry::catalog());
            Sink::new(format).emit(&out).map_err(|e| e.to_string())?;
            Ok(())
        }
        "run" => {
            let mut ids = Vec::new();
            let mut rest = 1;
            while rest < args.len() && !args[rest].starts_with("--") {
                ids.push(args[rest].clone());
                rest += 1;
            }
            if ids.is_empty() {
                return Err(
                    "exp run needs at least one experiment id (see `cloud-ckpt exp list`)".into(),
                );
            }
            let flags = parse_flags(&args[rest..], &EXP_RUN_FLAGS)?;
            run_experiments(&ids, &flags)
        }
        "all" => {
            let flags = parse_flags(&args[1..], &EXP_RUN_FLAGS)?;
            let ids: Vec<String> = registry::ids().iter().map(|s| s.to_string()).collect();
            run_experiments(&ids, &flags)
        }
        other => Err(format!(
            "unknown exp subcommand {other:?} (accepted: list, run, all)"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd {
        "plan" => parse_flags(&args[1..], &PLAN_FLAGS).and_then(cmd_plan),
        "generate" => parse_flags(&args[1..], &GENERATE_FLAGS).and_then(cmd_generate),
        "replay" => parse_flags(&args[1..], &REPLAY_FLAGS).and_then(cmd_replay),
        "sweep" => parse_flags(&args[1..], &SWEEP_FLAGS).and_then(cmd_sweep),
        "exp" => cmd_exp(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_flags_accepts_declared_flags() {
        let flags = parse_flags(
            &args(&["--jobs", "10", "--flips", "--out", "t.csv"]),
            &GENERATE_FLAGS,
        )
        .unwrap();
        assert_eq!(flags["jobs"], "10");
        assert_eq!(flags["flips"], "true");
        assert_eq!(flags["out"], "t.csv");
    }

    #[test]
    fn parse_flags_rejects_duplicates() {
        let err =
            parse_flags(&args(&["--jobs", "10", "--jobs", "20"]), &GENERATE_FLAGS).unwrap_err();
        assert!(err.contains("duplicate flag --jobs"), "{err}");
        let err = parse_flags(&args(&["--flips", "--flips"]), &GENERATE_FLAGS).unwrap_err();
        assert!(err.contains("duplicate flag --flips"), "{err}");
    }

    #[test]
    fn parse_flags_reports_all_unknown_flags() {
        // Two typos at once: both must be reported, with the accepted set.
        let err = parse_flags(
            &args(&["--sed", "7", "--polcy", "young", "--jobs", "10"]),
            &REPLAY_FLAGS,
        )
        .unwrap_err();
        assert!(err.contains("--sed"), "{err}");
        assert!(err.contains("--polcy"), "{err}");
        assert!(err.contains("--policy"), "{err}");
        assert!(err.starts_with("unknown flags"), "{err}");
    }

    #[test]
    fn parse_flags_rejects_missing_value_and_positional() {
        let err = parse_flags(&args(&["--jobs"]), &GENERATE_FLAGS).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
        let err = parse_flags(&args(&["oops"]), &GENERATE_FLAGS).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
    }

    #[test]
    fn value_flag_does_not_swallow_a_following_flag() {
        // `--out --deny-empty` is a forgotten value, not a directory
        // named "--deny-empty" with the guard silently dropped.
        let err = parse_flags(&args(&["--out", "--deny-empty"]), &EXP_RUN_FLAGS).unwrap_err();
        assert!(err.contains("--out needs a value"), "{err}");
        // Negative numbers are still fine as values.
        let flags = parse_flags(&args(&["--limit", "-1"]), &REPLAY_FLAGS).unwrap();
        assert_eq!(flags["limit"], "-1");
    }

    #[test]
    fn unknown_boolean_like_flag_is_reported_alone() {
        let err = parse_flags(&args(&["--adaptve"]), &REPLAY_FLAGS).unwrap_err();
        assert!(err.starts_with("unknown flag --adaptve"), "{err}");
    }

    #[test]
    fn telemetry_flags_parse_on_sweep_and_exp() {
        for spec in [&SWEEP_FLAGS, &EXP_RUN_FLAGS] {
            let flags =
                parse_flags(&args(&["--telemetry", "tel_dir", "--progress"]), spec).unwrap();
            assert_eq!(flags["telemetry"], "tel_dir");
            assert_eq!(flags["progress"], "true");
            // --telemetry takes a directory; forgetting it is an error,
            // not a silently-swallowed next flag.
            let err = parse_flags(&args(&["--telemetry", "--progress"]), spec).unwrap_err();
            assert!(err.contains("--telemetry needs a value"), "{err}");
            let err = parse_flags(&args(&["--progress", "--progress"]), spec).unwrap_err();
            assert!(err.contains("duplicate flag --progress"), "{err}");
        }
        // Other subcommands don't grow the flags implicitly.
        let err = parse_flags(&args(&["--progress"]), &REPLAY_FLAGS).unwrap_err();
        assert!(err.contains("unknown flag --progress"), "{err}");
    }

    #[test]
    fn shards_flag_parses_on_sweep_and_exp() {
        for spec in [&SWEEP_FLAGS, &EXP_RUN_FLAGS] {
            let flags = parse_flags(&args(&["--shards", "4"]), spec).unwrap();
            assert_eq!(flags["shards"], "4");
        }
        assert_eq!(parse_shards_flag("4").unwrap(), 4);
        assert_eq!(parse_shards_flag("1").unwrap(), 1);
        let err = parse_shards_flag("0").unwrap_err();
        assert!(err.contains("must be >= 1"), "{err}");
        let err = parse_shards_flag("four").unwrap_err();
        assert!(err.contains("cannot parse"), "{err}");
        // Subcommands with no cluster replays don't accept the flag.
        let err = parse_flags(&args(&["--shards", "4"]), &REPLAY_FLAGS).unwrap_err();
        assert!(err.contains("unknown flag --shards"), "{err}");
    }

    #[test]
    fn checkpoint_flags_require_a_directory() {
        // --resume alone has nowhere to resume from.
        let flags = parse_flags(&args(&["--resume"]), &SWEEP_FLAGS).unwrap();
        let err = checkpoint_flags(&flags).unwrap_err();
        assert!(err.contains("--checkpoint-dir"), "{err}");

        let flags =
            parse_flags(&args(&["--checkpoint-dir", "ck", "--resume"]), &SWEEP_FLAGS).unwrap();
        let cfg = checkpoint_flags(&flags).unwrap().expect("config built");
        assert_eq!(cfg.dir, std::path::PathBuf::from("ck"));
        assert!(cfg.resume);

        // No flags, no config (and no store is ever touched).
        assert!(checkpoint_flags(&HashMap::new()).unwrap().is_none());
    }

    #[test]
    fn telemetry_flags_build_the_right_bundle() {
        let (none, dir) = telemetry_flags(&HashMap::new());
        assert!(none.is_none() && dir.is_none());

        let mut flags = HashMap::new();
        flags.insert("telemetry".to_string(), "tdir".to_string());
        let (t, dir) = telemetry_flags(&flags);
        let t = t.expect("bundle built");
        assert!(t.progress.is_none(), "--progress off means no heartbeats");
        assert_eq!(dir.as_deref(), Some("tdir"));

        // --progress alone still instruments (heartbeats without export).
        let mut flags = HashMap::new();
        flags.insert("progress".to_string(), "true".to_string());
        let (t, dir) = telemetry_flags(&flags);
        assert!(t.expect("bundle built").progress.is_some());
        assert!(dir.is_none());
    }
}
