//! # cloud-ckpt — facade crate for the SC'13 checkpoint-restart reproduction
//!
//! Reproduction of *"Optimization of Cloud Task Processing with
//! Checkpoint-Restart Mechanism"* (Di, Robert, Vivien, Kondo, Wang, Cappello —
//! SC'13). This crate re-exports the four sub-crates so applications can
//! depend on a single entry point:
//!
//! * [`stats`] — distributions, MLE fitting, ECDF machinery.
//! * [`policy`] — Theorem 1 optimal checkpointing, Young/Daly baselines,
//!   adaptive Algorithm 1, storage-device tradeoff.
//! * [`trace`] — Google-trace-like synthetic workload generator.
//! * [`sim`] — discrete-event cloud simulator (hosts, VMs, scheduler,
//!   checkpoint storage, failures) and the experiment runner.
//! * [`scenario`] — declarative scenario specs and the parallel
//!   parameter-sweep engine (`cloud-ckpt sweep`).
//! * [`report`] — shared output frames, run context, and the
//!   deterministic CSV/JSON/table writer.
//! * [`obs`] — zero-overhead telemetry: deterministic counters, phase
//!   timers, and progress heartbeats (`--telemetry` / `--progress`).
//! * [`store`] — the append-only, crash-safe checkpoint store behind
//!   `sweep --checkpoint-dir` / `--resume` (the paper's own mechanism,
//!   applied to the sweep executor itself).
//! * [`faults`] — deterministic fault injection (`sweep --inject`) and
//!   the retry/backoff policy the executor quarantines failing cells
//!   under.
//! * [`bench`](mod@bench) — the typed experiment registry behind
//!   `cloud-ckpt exp list|run|all` (every paper figure/table as a
//!   library [`bench::Experiment`]).
//!
//! ## Quickstart
//!
//! ```
//! use cloud_ckpt::policy::optimal::optimal_interval_count;
//!
//! // The paper's worked example: Te = 18 s, C = 2 s, E(Y) = 2 failures
//! // expected => x* = sqrt(18·2 / (2·2)) = 3 checkpointing intervals.
//! let x = optimal_interval_count(18.0, 2.0, 2.0).unwrap();
//! assert_eq!(x.rounded(), 3);
//! ```

pub use ckpt_bench as bench;
pub use ckpt_faults as faults;
pub use ckpt_obs as obs;
pub use ckpt_policy as policy;
pub use ckpt_report as report;
pub use ckpt_scenario as scenario;
pub use ckpt_sim as sim;
pub use ckpt_stats as stats;
pub use ckpt_store as store;
pub use ckpt_trace as trace;
