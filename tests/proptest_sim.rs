//! Property-based tests of the execution model: the wall-clock accounting
//! identity, WPR bounds, kill-plan replay exactness, and the benefit of
//! checkpointing under heavy failure plans — over randomized tasks.

use cloud_ckpt::policy::schedule::EquidistantSchedule;
use cloud_ckpt::sim::controller::{Controller, FixedSchedule};
use cloud_ckpt::sim::task_sim::{simulate_task_with_plan, TaskSimSpec};
use cloud_ckpt::stats::rng::Xoshiro256StarStar;
use cloud_ckpt::trace::spec::FailurePlan;
use proptest::prelude::*;

/// Strategy: a sorted kill plan inside (0, te) with ≥ 1 s gaps.
fn kill_plan(te: f64, max_kills: usize) -> impl Strategy<Value = FailurePlan> {
    proptest::collection::vec(0.001..0.999f64, 0..max_kills).prop_map(move |fracs| {
        let mut pos: Vec<f64> = fracs.into_iter().map(|f| f * te).collect();
        pos.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pos.dedup_by(|a, b| *a - *b < 1.0);
        // dedup_by keeps the FIRST of a run when the closure mutates in
        // reverse order; enforce the ≥1 s gap explicitly to be safe.
        let mut cleaned: Vec<f64> = Vec::new();
        for p in pos {
            if cleaned.last().map(|&q| p - q >= 1.0).unwrap_or(true) && p < te {
                cleaned.push(p);
            }
        }
        FailurePlan { positions: cleaned }
    })
}

fn fixed_ctl(te: f64, x: u32) -> Controller {
    Controller::Fixed(FixedSchedule::new(
        &EquidistantSchedule::new(te, x).unwrap(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// wall = productive + checkpoint_time + rollback_loss + restart_time,
    /// exactly, for every plan and schedule.
    #[test]
    fn accounting_identity(
        te in 50.0..3_000.0f64,
        x in 1u32..40,
        c in 0.0..4.0f64,
        r in 0.0..4.0f64,
        seed in 0u64..1000,
    ) {
        let spec = TaskSimSpec { te, ckpt_cost: c, restart_cost: r };
        let plan = {
            let model = cloud_ckpt::trace::spec::FailureModel::for_priority(2);
            let mut rng = Xoshiro256StarStar::new(seed);
            model.sample_plan(te, &mut rng)
        };
        let mut ctl = fixed_ctl(te, x);
        let mut rng = Xoshiro256StarStar::new(seed);
        let out = simulate_task_with_plan(&spec, plan, None, &mut ctl, &mut rng);
        let parts = out.productive + out.checkpoint_time + out.rollback_loss + out.restart_time;
        prop_assert!((out.wall - parts).abs() < 1e-6, "wall {} vs parts {}", out.wall, parts);
        prop_assert!(out.wpr() > 0.0 && out.wpr() <= 1.0);
        prop_assert_eq!(out.productive, te);
    }

    /// Every planned kill strikes exactly once (kills live in busy time
    /// inside (0, te), and total busy time always exceeds te).
    #[test]
    fn kill_plan_replayed_exactly(
        te in 50.0..2_000.0f64,
        x in 1u32..30,
        plan in (100.0..2_000.0f64).prop_flat_map(|te| kill_plan(te, 10).prop_map(move |p| (te, p))),
    ) {
        let (plan_te, plan) = plan;
        let te = te.max(plan_te); // ensure kills fit within this task
        let expected = plan.positions.len() as u32;
        let spec = TaskSimSpec { te, ckpt_cost: 0.5, restart_cost: 0.5 };
        let mut ctl = fixed_ctl(te, x);
        let mut rng = Xoshiro256StarStar::new(1);
        let out = simulate_task_with_plan(&spec, plan, None, &mut ctl, &mut rng);
        prop_assert_eq!(out.failures, expected);
        prop_assert_eq!(out.aborted_checkpoints <= out.failures, true);
    }

    /// Rollback loss per failure is bounded by one segment plus the
    /// checkpoint write time (with durable checkpoints in place).
    #[test]
    fn rollback_bounded_by_segment(
        te in 100.0..2_000.0f64,
        x in 2u32..40,
        seed in 0u64..500,
    ) {
        let spec = TaskSimSpec { te, ckpt_cost: 0.3, restart_cost: 0.2 };
        let model = cloud_ckpt::trace::spec::FailureModel::for_priority(10);
        let mut ctl = fixed_ctl(te, x);
        let mut rng = Xoshiro256StarStar::new(seed);
        let plan = model.sample_plan(te, &mut rng);
        let failures = plan.count();
        let mut rng2 = Xoshiro256StarStar::new(seed);
        let out = simulate_task_with_plan(&spec, plan, None, &mut ctl, &mut rng2);
        let seg = te / x as f64;
        let bound = failures as f64 * (seg + spec.ckpt_cost) + 1e-6;
        prop_assert!(out.rollback_loss <= bound, "loss {} > bound {bound}", out.rollback_loss);
    }

    /// More checkpoints can only reduce the total rollback loss (weakly)
    /// for the same kill plan when checkpoints are free.
    #[test]
    fn free_checkpoints_weakly_reduce_rollback(
        te in 100.0..2_000.0f64,
        seed in 0u64..500,
    ) {
        let model = cloud_ckpt::trace::spec::FailureModel::for_priority(10);
        let run = |x: u32| {
            let spec = TaskSimSpec { te, ckpt_cost: 0.0, restart_cost: 0.0 };
            let mut ctl = fixed_ctl(te, x);
            let mut rng = Xoshiro256StarStar::new(seed);
            simulate_task(&spec, model, &mut ctl, &mut rng)
        };
        fn simulate_task(
            spec: &TaskSimSpec,
            model: cloud_ckpt::trace::spec::FailureModel,
            ctl: &mut Controller,
            rng: &mut Xoshiro256StarStar,
        ) -> cloud_ckpt::sim::task_sim::TaskOutcome {
            let plan = model.sample_plan(spec.te, rng);
            let mut rng2 = Xoshiro256StarStar::new(7);
            simulate_task_with_plan(spec, plan, None, ctl, &mut rng2)
        }
        let sparse = run(2);
        let dense = run(16);
        // With C = 0 the fine schedule can only lose less work per kill.
        prop_assert!(dense.rollback_loss <= sparse.rollback_loss + 1e-6,
            "dense {} vs sparse {}", dense.rollback_loss, sparse.rollback_loss);
    }

    /// Same stream ⇒ identical outcome (full determinism of the executor).
    #[test]
    fn executor_deterministic(
        te in 50.0..1_000.0f64,
        x in 1u32..20,
        seed in 0u64..300,
    ) {
        let spec = TaskSimSpec { te, ckpt_cost: 0.4, restart_cost: 0.7 };
        let model = cloud_ckpt::trace::spec::FailureModel::for_priority(1);
        let run = || {
            let mut ctl = fixed_ctl(te, x);
            let mut rng = Xoshiro256StarStar::new(seed);
            let plan = model.sample_plan(te, &mut rng);
            simulate_task_with_plan(&spec, plan, None, &mut ctl, &mut rng)
        };
        prop_assert_eq!(run(), run());
    }
}
