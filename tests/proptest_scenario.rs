//! Property-based tests of the scenario/sweep subsystem: grid expansion
//! arithmetic, thread-count invariance of the executor's exported bytes,
//! and agreement between the sweep engine and a direct `run_trace` call
//! over the same trace (the "subsumes the one-off binaries" guarantee).

use cloud_ckpt::scenario::parse::Value;
use cloud_ckpt::scenario::{
    csv_string, json_string, run_sweep, Axis, ScenarioSpec, SweepOptions, SweepSpec,
};
use cloud_ckpt::sim::metrics::{mean_wpr, with_structure};
use cloud_ckpt::sim::policy::{Estimates, PolicyConfig};
use cloud_ckpt::sim::runner::{run_trace, RunOptions};
use cloud_ckpt::trace::gen::{generate, JobStructure};
use cloud_ckpt::trace::spec::WorkloadSpec;
use cloud_ckpt::trace::stats::{failure_prone_jobs, trace_histories};
use proptest::prelude::*;

/// Numeric scenario keys safe to use as synthetic axes.
const NUMERIC_PARAMS: [&str; 6] = [
    "ckpt_cost_scale",
    "seed",
    "mem_mb",
    "n_checkpoints",
    "degree",
    "reps",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid expansion size equals the product of the axis lengths, for any
    /// axis count and any per-axis value counts.
    #[test]
    fn grid_size_is_product_of_axis_lengths(
        lens in proptest::collection::vec(1usize..5, 1..4),
        offset in 0usize..6,
    ) {
        let axes: Vec<Axis> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| Axis {
                param: NUMERIC_PARAMS[(i + offset) % NUMERIC_PARAMS.len()].to_string(),
                values: (1..=len).map(|v| Value::Num(v as f64)).collect(),
            })
            .collect();
        let expected: usize = lens.iter().product();
        let sweep = SweepSpec {
            name: "prop".into(),
            base: ScenarioSpec::new("prop"),
            axes,
            threads: 0,
        };
        prop_assert_eq!(sweep.grid_size(), expected);
        prop_assert_eq!(sweep.cells().unwrap().len(), expected);
        // Row-major order: consecutive cells differ in the last axis.
        if expected > 1 && *lens.last().unwrap() > 1 {
            let p0 = sweep.cell_params(0);
            let p1 = sweep.cell_params(1);
            prop_assert_eq!(&p0[..p0.len() - 1], &p1[..p1.len() - 1]);
            prop_assert_ne!(&p0[p0.len() - 1], &p1[p1.len() - 1]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The executor's exported bytes are identical for 1 vs 8 worker
    /// threads at any fixed seed — per-cell RNG streams are derived from
    /// `(seed, cell_index)`, never shared.
    #[test]
    fn sweep_outputs_thread_invariant(seed in 0u64..10_000, jobs in 40usize..120) {
        let text = format!(
            r#"
            [sweep]
            name = "prop_threads"
            engine = "fast"
            seed = {seed}
            jobs = {jobs}

            [axes]
            policy = ["formula3", "none"]
            ckpt_cost_scale = [0.5, 2.0]
            "#,
        );
        let sweep = SweepSpec::from_str(&text).unwrap();
        let a = run_sweep(&sweep, SweepOptions { threads: 1 }).map_err(|e| e.to_string()).unwrap();
        let b = run_sweep(&sweep, SweepOptions { threads: 8 }).map_err(|e| e.to_string()).unwrap();
        prop_assert_eq!(csv_string(&sweep, &a), csv_string(&sweep, &b));
        prop_assert_eq!(json_string(&sweep, &a), json_string(&sweep, &b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Contention cells are also thread-invariant (they are the only
    /// engine drawing fresh randomness during the sweep).
    #[test]
    fn contention_thread_invariant(seed in 0u64..10_000) {
        let text = format!(
            r#"
            [sweep]
            name = "prop_contention"
            engine = "contention"
            seed = {seed}
            mem_mb = 160
            reps = 10

            [axes]
            device = ["ramdisk", "nfs", "dmnfs"]
            degree = [1, 4]
            "#,
        );
        let sweep = SweepSpec::from_str(&text).unwrap();
        let a = run_sweep(&sweep, SweepOptions { threads: 1 }).map_err(|e| e.to_string()).unwrap();
        let b = run_sweep(&sweep, SweepOptions { threads: 6 }).map_err(|e| e.to_string()).unwrap();
        prop_assert_eq!(a.cells, b.cells);
    }
}

/// The engine must reproduce a hand-rolled `run_trace` experiment exactly:
/// same trace, same estimator, same failure-prone sample, same mean WPR —
/// the Figure 10 "matching numbers" guarantee.
#[test]
fn sweep_matches_direct_run_trace() {
    let jobs = 300;
    let seed = 20130217;

    // Direct computation, the way the old one-off binaries did it.
    let trace = generate(&WorkloadSpec::google_like(jobs), seed).expect("valid workload spec");
    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let sample = failure_prone_jobs(&records, 0.5);
    let direct: Vec<_> = run_trace(
        &trace,
        &estimates,
        &PolicyConfig::young(),
        RunOptions { threads: 0 },
    )
    .into_iter()
    .filter(|r| sample.contains(&r.job_id))
    .collect();
    let direct_st = with_structure(&direct, JobStructure::Sequential);

    // The same experiment as a one-cell sweep with a structure filter.
    let text = format!(
        r#"
        [sweep]
        name = "match"
        engine = "fast"
        seed = {seed}
        jobs = {jobs}

        [scenario]
        policy = "young"
        structure = "ST"
        "#,
    );
    let sweep = SweepSpec::from_str(&text).unwrap();
    let result = run_sweep(&sweep, SweepOptions::default()).unwrap();
    let wpr = result.cells[0]
        .metrics
        .iter()
        .find(|(n, _)| *n == "wpr")
        .unwrap()
        .1;

    assert_eq!(wpr.count, direct_st.len());
    assert!(
        (wpr.mean - mean_wpr(&direct_st)).abs() < 1e-12,
        "sweep {} vs direct {}",
        wpr.mean,
        mean_wpr(&direct_st)
    );
}
