//! Property-based tests of the policy layer: Theorem 1's optimality, the
//! rounding rule, Theorem 2's invariant, and Formula (1)'s accounting, over
//! randomized parameter ranges.

use cloud_ckpt::policy::adaptive::theorem2_check;
use cloud_ckpt::policy::optimal::{
    brute_force_optimal, expected_wall_clock, optimal_interval_count,
};
use cloud_ckpt::policy::schedule::{wall_clock_formula1, EquidistantSchedule};
use cloud_ckpt::policy::storage::{choose_storage, expected_total_cost, DeviceCosts};
use cloud_ckpt::policy::young::{corollary1_interval, young_interval};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The cost-compared rounding of x* is the exact integer optimizer of
    /// Formula (4) — for any (Te, C, E(Y)) in realistic cloud ranges.
    #[test]
    fn rounding_is_exact_integer_optimum(
        te in 10.0..20_000.0f64,
        c in 0.05..10.0f64,
        e_y in 0.01..30.0f64,
    ) {
        let x = optimal_interval_count(te, c, e_y).unwrap().rounded();
        let brute = brute_force_optimal(te, c, e_y, 2_000).unwrap();
        // Guard: only compare when the brute-force scan covers the optimum.
        prop_assume!(brute < 2_000);
        prop_assert_eq!(x, brute);
    }

    /// The optimum never loses to its integer neighbours.
    #[test]
    fn optimum_beats_neighbours(
        te in 10.0..20_000.0f64,
        c in 0.05..10.0f64,
        e_y in 0.01..30.0f64,
    ) {
        let x = optimal_interval_count(te, c, e_y).unwrap().rounded();
        let w = expected_wall_clock(te, c, 0.0, e_y, x).unwrap();
        if x > 1 {
            prop_assert!(w <= expected_wall_clock(te, c, 0.0, e_y, x - 1).unwrap() + 1e-9);
        }
        prop_assert!(w <= expected_wall_clock(te, c, 0.0, e_y, x + 1).unwrap() + 1e-9);
    }

    /// Theorem 2: with unchanged MNOF, the re-solved count at the next
    /// checkpoint is exactly the previous count minus one.
    #[test]
    fn theorem2_decrement(
        te in 100.0..50_000.0f64,
        c in 0.1..5.0f64,
        mnof in 0.5..40.0f64,
        k in 0u32..6,
    ) {
        let (xk, xk1) = theorem2_check(te, c, mnof, k).unwrap();
        // Only meaningful while at least one checkpoint remains.
        prop_assume!(xk > 1.5);
        prop_assert!((xk1 - (xk - 1.0)).abs() < 1e-6, "xk={xk}, xk1={xk1}");
    }

    /// Corollary 1 holds exactly for all parameters.
    #[test]
    fn corollary1_exact(
        te in 10.0..100_000.0f64,
        c in 0.01..20.0f64,
        mtbf in 1.0..100_000.0f64,
    ) {
        let a = corollary1_interval(te, c, mtbf).unwrap();
        let b = young_interval(c, mtbf).unwrap();
        prop_assert!((a - b).abs() / b < 1e-9);
    }

    /// Formula (1): wall-clock ≥ Te + C(x−1), with equality iff no failures;
    /// each failure adds at most one segment plus R.
    #[test]
    fn formula1_bounds(
        te in 10.0..5_000.0f64,
        x in 1u32..50,
        c in 0.0..5.0f64,
        r in 0.0..5.0f64,
        fail_fracs in proptest::collection::vec(0.0..1.0f64, 0..8),
    ) {
        let s = EquidistantSchedule::new(te, x).unwrap();
        let fails: Vec<f64> = fail_fracs.iter().map(|f| f * te).collect();
        let tw = wall_clock_formula1(&s, c, r, &fails).unwrap();
        let base = te + c * (x - 1) as f64;
        prop_assert!(tw >= base - 1e-9);
        let worst = base + fails.len() as f64 * (s.segment_len() + r);
        prop_assert!(tw <= worst + 1e-9);
    }

    /// Λ(t) is the largest checkpoint position not exceeding t.
    #[test]
    fn lambda_is_floor(
        te in 10.0..5_000.0f64,
        x in 1u32..60,
        frac in 0.0..1.0f64,
    ) {
        let s = EquidistantSchedule::new(te, x).unwrap();
        let t = frac * te;
        let lambda = s.lambda(t);
        prop_assert!(lambda <= t + 1e-9);
        // lambda is either 0 or an actual checkpoint position.
        if lambda > 0.0 {
            let k = (lambda / s.segment_len()).round();
            prop_assert!((lambda - k * s.segment_len()).abs() < 1e-6);
            prop_assert!(k >= 1.0 && k <= (x - 1) as f64);
        }
        // No checkpoint position lies in (lambda, t].
        let next = lambda + s.segment_len();
        prop_assert!(next > t - 1e-9 || (next - te).abs() < 1e-9 || next >= te);
    }

    /// The storage decision is consistent with the two expected costs.
    #[test]
    fn storage_choice_consistent(
        te in 10.0..10_000.0f64,
        e_y in 0.01..40.0f64,
        cl in 0.05..3.0f64,
        rl in 0.1..10.0f64,
        cs in 0.05..3.0f64,
        rs in 0.1..10.0f64,
    ) {
        let local = DeviceCosts::new(cl, rl).unwrap();
        let shared = DeviceCosts::new(cs, rs).unwrap();
        let (pick, a, b) = choose_storage(te, e_y, local, shared).unwrap();
        prop_assert!((a - expected_total_cost(te, e_y, local).unwrap()).abs() < 1e-9);
        prop_assert!((b - expected_total_cost(te, e_y, shared).unwrap()).abs() < 1e-9);
        match pick {
            cloud_ckpt::policy::storage::StoragePick::Local => prop_assert!(a <= b),
            cloud_ckpt::policy::storage::StoragePick::Shared => prop_assert!(b <= a),
        }
    }

    /// Young's and Theorem-1 interval counts are monotone in their inputs
    /// in the expected directions.
    #[test]
    fn monotonicity(
        te in 50.0..5_000.0f64,
        c in 0.1..5.0f64,
        e_y in 0.1..20.0f64,
    ) {
        let base = optimal_interval_count(te, c, e_y).unwrap().continuous();
        let more_failures = optimal_interval_count(te, c, e_y * 2.0).unwrap().continuous();
        let pricier = optimal_interval_count(te, c * 2.0, e_y).unwrap().continuous();
        prop_assert!(more_failures >= base);
        prop_assert!(pricier <= base);
    }
}
