//! Property-based tests of the fast-path rewrite: cached-plan (arena)
//! replays must be byte-identical to fresh-sampling replays across every
//! failure model and flip traces, and the chunked `parallel_indexed`
//! substrate must match the sequential path on adversarial sizes.

use cloud_ckpt::sim::policy::{Estimates, PolicyConfig};
use cloud_ckpt::sim::runner::{
    parallel_indexed, parallel_indexed_scratch, run_trace, run_trace_with_plans, RunOptions,
};
use cloud_ckpt::trace::failure::FailureModelSpec;
use cloud_ckpt::trace::gen::generate;
use cloud_ckpt::trace::plan::FailurePlanArena;
use cloud_ckpt::trace::spec::WorkloadSpec;
use cloud_ckpt::trace::stats::trace_histories;
use proptest::prelude::*;

/// The whole model family, at non-default parameters where they exist.
fn failure_model(idx: usize) -> FailureModelSpec {
    match idx % 5 {
        0 => FailureModelSpec::Exponential,
        1 => FailureModelSpec::Weibull {
            shape: 0.7,
            scale: 1.0,
        },
        2 => FailureModelSpec::LogNormal {
            sigma: 1.0,
            scale: 1.0,
        },
        3 => FailureModelSpec::Pareto {
            shape: 1.5,
            scale: 1.0,
        },
        _ => FailureModelSpec::TraceReplay { scale: 1.0 },
    }
}

fn policy(idx: usize) -> PolicyConfig {
    match idx % 4 {
        0 => PolicyConfig::formula3(),
        1 => PolicyConfig::young(),
        2 => PolicyConfig::none(),
        _ => PolicyConfig::formula3().with_adaptivity(true),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached-plan replay == fresh-sampling replay, byte for byte, for
    /// every failure model × flip/no-flip trace × policy × thread count.
    /// (This is the contract that makes the sweep executor's cross-cell
    /// plan arena an optimization rather than an approximation.)
    #[test]
    fn arena_replay_is_byte_identical_to_fresh_sampling(
        seed in 0u64..1_000,
        model_idx in 0usize..5,
        policy_idx in 0usize..4,
        flip_bit in 0usize..2,
        threads in 1usize..5,
    ) {
        let flips = flip_bit == 1;
        let mut spec = WorkloadSpec::google_like(60)
            .with_failure_model(failure_model(model_idx));
        if flips {
            spec = spec.with_priority_flips();
        }
        let trace = generate(&spec, seed).expect("valid workload spec");
        let records = trace_histories(&trace);
        let est = Estimates::from_records(&records);
        let cfg = policy(policy_idx);
        let fresh = run_trace(&trace, &est, &cfg, RunOptions { threads: 1 });
        let arena = FailurePlanArena::build(&trace);
        prop_assert_eq!(arena.captures_streams(), flips);
        let cached = run_trace_with_plans(&trace, &est, &cfg, RunOptions { threads }, &arena);
        prop_assert_eq!(fresh, cached);
    }

    /// Chunked claiming with direct in-place writes returns exactly the
    /// sequential result on adversarial sizes: n = 0, n < threads,
    /// n ≫ threads, and everything between.
    #[test]
    fn parallel_indexed_matches_sequential_on_adversarial_sizes(
        n_class in 0usize..4,
        n_jitter in 0usize..4,
        threads in 1usize..9,
        salt in 0u64..1_000_000,
    ) {
        // Adversarial sizes: empty, fewer items than workers, around the
        // chunk boundary, and ≫ threads.
        let n = match n_class {
            0 => 0,
            1 => n_jitter,          // 0..4: n < threads for most draws
            2 => 63 + n_jitter,     // straddles the 64-item chunk cap
            _ => 997 + n_jitter,    // n ≫ threads
        };
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
        let seq: Vec<u64> = (0..n).map(f).collect();
        let par = parallel_indexed(n, threads, f);
        prop_assert_eq!(&seq, &par);
        // The scratch variant must agree too, with scratch history
        // invisible in the output (each worker's scratch accumulates).
        let scr = parallel_indexed_scratch(
            n,
            threads,
            Vec::<usize>::new,
            |scratch, i| {
                scratch.push(i);
                f(i)
            },
        );
        prop_assert_eq!(&seq, &scr);
    }
}
