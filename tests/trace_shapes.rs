//! Integration tests of the synthetic trace's statistical shapes against
//! the paper's characterization (Figures 4, 5, 8; Table 7). These are the
//! calibration guarantees DESIGN.md promises.

use cloud_ckpt::stats::ecdf::Ecdf;
use cloud_ckpt::stats::fit::{fit_all, rank_by_ks, Family, PAPER_FAMILIES};
use cloud_ckpt::trace::gen::{generate, JobStructure};
use cloud_ckpt::trace::spec::WorkloadSpec;
use cloud_ckpt::trace::stats::{
    estimator_from_records, interval_samples_by_priority, pooled_intervals, trace_histories,
};

fn records(n: usize, seed: u64) -> Vec<cloud_ckpt::trace::stats::TaskRecord> {
    let trace = generate(&WorkloadSpec::google_like(n), seed).expect("valid workload spec");
    trace_histories(&trace)
}

#[test]
fn table7_mnof_stable_mtbf_inflates() {
    let recs = records(5000, 101);
    let est = estimator_from_records(&recs);
    let short = est.estimate_pooled(1000.0).unwrap();
    let full = est.estimate_pooled(f64::INFINITY).unwrap();
    // MNOF: the paper sees 1.06 → 1.21 for p2 (≈ 1.1×); ours must stay
    // within a similar band.
    let mnof_ratio = full.mnof / short.mnof;
    assert!(
        mnof_ratio > 0.8 && mnof_ratio < 1.5,
        "MNOF ratio {mnof_ratio}"
    );
    // MTBF: the paper sees 179 → 4199 (≈ 23×); ours must inflate by ≥ 5×.
    let mtbf_ratio = full.mtbf / short.mtbf;
    assert!(mtbf_ratio > 5.0, "MTBF ratio {mtbf_ratio}");
}

#[test]
fn table7_priority10_is_failure_heavy() {
    let recs = records(5000, 102);
    let est = estimator_from_records(&recs);
    let p10 = est.estimate(10, 1000.0).expect("p10 short tasks exist");
    // Paper: MNOF ≈ 11.9, MTBF ≈ 37 s for priority-10 tasks ≤ 1000 s.
    assert!(p10.mnof > 5.0, "p10 MNOF = {}", p10.mnof);
    assert!(p10.mtbf < 100.0, "p10 MTBF = {}", p10.mtbf);
}

#[test]
fn figure4_priority_interval_ordering() {
    let recs = records(5000, 103);
    let by_p = interval_samples_by_priority(&recs);
    let median = |p: u8| -> Option<f64> {
        by_p.get(&p)
            .filter(|v| v.len() >= 50)
            .and_then(|v| Ecdf::new(v).ok())
            .map(|e| e.quantile(0.5))
    };
    // Low priorities fail more often than high (1 vs 9), and priority 10 is
    // the shortest-interval tier of all.
    let (m2, m9, m10) = (median(2), median(9), median(10));
    if let (Some(m2), Some(m9)) = (m2, m9) {
        assert!(m2 < m9, "p2 median {m2} should be below p9 {m9}");
    }
    if let (Some(m10), Some(m2)) = (m10, m2) {
        assert!(m10 < m2, "p10 median {m10} should be the smallest");
    }
}

#[test]
fn figure5_interval_mass_and_pareto_fit() {
    let recs = records(5000, 104);
    let pooled = pooled_intervals(&recs);
    let below = pooled.iter().filter(|&&x| x <= 1000.0).count() as f64 / pooled.len() as f64;
    // Paper: "over 63 %" below 1000 s.
    assert!(below > 0.63, "short-interval mass {below}");

    // Figure 5(a): Pareto ranks first among the paper's five families.
    let ranked = rank_by_ks(fit_all(&PAPER_FAMILIES, &pooled));
    assert_eq!(ranked[0].family, Family::Pareto, "ranking: {ranked:?}");

    // Figure 5(b): exponential ranks first on the ≤ 1000 s body.
    let short: Vec<f64> = pooled.into_iter().filter(|&x| x <= 1000.0).collect();
    let ranked_short = rank_by_ks(fit_all(&PAPER_FAMILIES, &short));
    assert!(
        matches!(
            ranked_short[0].family,
            Family::Exponential | Family::Geometric
        ),
        "short-body best fit: {ranked_short:?}"
    );
}

#[test]
fn figure8_most_jobs_short_with_small_memory() {
    let trace = generate(&WorkloadSpec::google_like(4000), 105).expect("valid workload spec");
    let lens: Vec<f64> = trace.jobs.iter().map(|j| j.total_work()).collect();
    let mems: Vec<f64> = trace.jobs.iter().map(|j| j.max_mem()).collect();
    let el = Ecdf::new(&lens).unwrap();
    let em = Ecdf::new(&mems).unwrap();
    // Most jobs are short: the majority complete within 2 h of work.
    assert!(el.cdf(7200.0) > 0.6, "P(len <= 2h) = {}", el.cdf(7200.0));
    // Most jobs have small memory: the majority below 400 MB.
    assert!(em.cdf(400.0) > 0.6, "P(mem <= 400MB) = {}", em.cdf(400.0));
    // But both distributions have real tails (the long-service component).
    assert!(el.max() > 20_000.0);
}

#[test]
fn structure_mix_and_task_counts() {
    let trace = generate(&WorkloadSpec::google_like(4000), 106).expect("valid workload spec");
    let bot = trace.jobs_with_structure(JobStructure::BagOfTasks).count();
    let st = trace.jobs_with_structure(JobStructure::Sequential).count();
    assert_eq!(bot + st, trace.jobs.len());
    let frac = bot as f64 / trace.jobs.len() as f64;
    assert!((frac - 0.4).abs() < 0.05, "BoT fraction {frac}");
    // BoT jobs carry more tasks on average (parallel fan-out).
    let avg_tasks = |s: JobStructure| {
        let js: Vec<_> = trace.jobs_with_structure(s).collect();
        js.iter().map(|j| j.tasks.len()).sum::<usize>() as f64 / js.len() as f64
    };
    assert!(avg_tasks(JobStructure::BagOfTasks) > avg_tasks(JobStructure::Sequential));
}

#[test]
fn histories_are_pure_functions_of_trace() {
    let trace = generate(&WorkloadSpec::google_like(500), 107).expect("valid workload spec");
    let a = trace_histories(&trace);
    let b = trace_histories(&trace);
    assert_eq!(a, b);
    // And different seeds give different histories.
    let trace2 = generate(&WorkloadSpec::google_like(500), 108).expect("valid workload spec");
    let c = trace_histories(&trace2);
    assert_ne!(
        a.iter()
            .map(|r| r.history.failure_count)
            .collect::<Vec<_>>(),
        c.iter()
            .map(|r| r.history.failure_count)
            .collect::<Vec<_>>()
    );
}
