//! Property-based tests of the statistics substrate: distribution laws,
//! ECDF/quantile duality, fitting recovery, and processor-sharing
//! conservation, over randomized parameters.

use cloud_ckpt::sim::storage::{OpId, PsResource};
use cloud_ckpt::sim::time::SimTime;
use cloud_ckpt::stats::dist::{ContinuousDist, Exponential, LogNormal, Normal, Pareto, Weibull};
use cloud_ckpt::stats::ecdf::Ecdf;
use cloud_ckpt::stats::fit::{fit_exponential, fit_normal, fit_pareto};
use cloud_ckpt::stats::rng::{Rng64, SplitMix64, Xoshiro256StarStar};
use cloud_ckpt::stats::summary::OnlineStats;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// CDFs are monotone and bounded for every family and parameterization.
    #[test]
    fn cdfs_monotone_bounded(
        rate in 0.0001..10.0f64,
        shape in 0.2..5.0f64,
        scale in 0.1..1_000.0f64,
        xs in proptest::collection::vec(-100.0..100_000.0f64, 2..20),
    ) {
        let exp = Exponential::new(rate).unwrap();
        let par = Pareto::new(scale, shape).unwrap();
        let wei = Weibull::new(shape, scale).unwrap();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in sorted.windows(2) {
            for cdf in [exp.cdf(w[0]) - exp.cdf(w[1]),
                        par.cdf(w[0]) - par.cdf(w[1]),
                        wei.cdf(w[0]) - wei.cdf(w[1])] {
                prop_assert!(cdf <= 1e-12);
            }
        }
        for &x in &sorted {
            for c in [exp.cdf(x), par.cdf(x), wei.cdf(x)] {
                prop_assert!((0.0..=1.0).contains(&c));
            }
        }
    }

    /// quantile(cdf(x)) round-trips within tolerance for continuous families.
    #[test]
    fn quantile_cdf_duality(
        mu in -100.0..100.0f64,
        sigma in 0.1..50.0f64,
        p in 0.01..0.99f64,
    ) {
        let n = Normal::new(mu, sigma).unwrap();
        let x = n.quantile(p);
        prop_assert!((n.cdf(x) - p).abs() < 1e-6);
        let ln = LogNormal::new(mu.clamp(-5.0, 5.0), sigma.min(3.0)).unwrap();
        let y = ln.quantile(p);
        prop_assert!((ln.cdf(y) - p).abs() < 1e-6);
    }

    /// ECDF quantile/cdf form a Galois connection on every sample set.
    #[test]
    fn ecdf_galois(
        samples in proptest::collection::vec(-1e6..1e6f64, 1..200),
        q in 0.01..1.0f64,
    ) {
        let e = Ecdf::new(&samples).unwrap();
        let x = e.quantile(q);
        prop_assert!(e.cdf(x) >= q - 1e-12);
        // x is achieved: some sample equals it.
        prop_assert!(samples.contains(&x));
    }

    /// Exponential fitting recovers the rate within sampling error.
    #[test]
    fn exponential_fit_recovery(rate in 0.001..10.0f64, seed in 0u64..1000) {
        let d = Exponential::new(rate).unwrap();
        let mut rng = Xoshiro256StarStar::new(seed);
        let xs = d.sample_n(&mut rng, 4000);
        let fitted = fit_exponential(&xs).unwrap();
        prop_assert!((fitted.rate() - rate).abs() / rate < 0.15,
            "rate {rate} fitted {}", fitted.rate());
    }

    /// Pareto fitting recovers shape within sampling error.
    #[test]
    fn pareto_fit_recovery(shape in 0.5..4.0f64, seed in 0u64..1000) {
        let d = Pareto::new(10.0, shape).unwrap();
        let mut rng = Xoshiro256StarStar::new(seed);
        let xs = d.sample_n(&mut rng, 4000);
        let fitted = fit_pareto(&xs).unwrap();
        prop_assert!((fitted.shape() - shape).abs() / shape < 0.15);
        prop_assert!(fitted.scale() >= 10.0);
    }

    /// Normal fitting recovers both parameters.
    #[test]
    fn normal_fit_recovery(mu in -50.0..50.0f64, sigma in 0.5..20.0f64, seed in 0u64..1000) {
        let d = Normal::new(mu, sigma).unwrap();
        let mut rng = Xoshiro256StarStar::new(seed);
        let xs = d.sample_n(&mut rng, 4000);
        let fitted = fit_normal(&xs).unwrap();
        prop_assert!((fitted.mu() - mu).abs() < 5.0 * sigma / 63.0);
        prop_assert!((fitted.sigma() - sigma).abs() / sigma < 0.15);
    }

    /// Welford merge is order-independent (parallel reduction safety).
    #[test]
    fn online_stats_merge_associative(
        xs in proptest::collection::vec(-1e3..1e3f64, 2..60),
        at in 1usize..59,
    ) {
        let split = at.min(xs.len() - 1);
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.add(x); }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..split] { left.add(x); }
        for &x in &xs[split..] { right.add(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!(left.min() == whole.min() && left.max() == whole.max());
    }

    /// Processor sharing conserves work: total service delivered equals
    /// total demand, regardless of arrival pattern.
    #[test]
    fn ps_server_conserves_work(
        demands in proptest::collection::vec(0.1..10.0f64, 1..12),
        stagger in 0.0..5.0f64,
    ) {
        let mut ps = PsResource::new(1.0);
        let mut now = SimTime::ZERO;
        for (i, &d) in demands.iter().enumerate() {
            let t = SimTime::from_secs_f64(i as f64 * stagger);
            now = now.max(t);
            ps.add(t.max(now), OpId(i as u64), d);
        }
        // Drain, recording the last completion.
        let mut last = now;
        while let Some((op, when)) = ps.next_completion(last) {
            ps.remove(when, op);
            last = when;
        }
        // The server is busy from first arrival to last completion with at
        // least one op whenever demand remains, so the makespan is at least
        // total_demand (rate 1) and at most total_demand + total stagger.
        let total: f64 = demands.iter().sum();
        let span = last.as_secs_f64();
        prop_assert!(span >= total - 1e-6, "span {span} < total {total}");
        let max_span = total + stagger * demands.len() as f64 + 1e-6;
        prop_assert!(span <= max_span, "span {span} > bound {max_span}");
    }

    /// RNG streams: distinct ids give distinct outputs; same id reproduces.
    #[test]
    fn rng_streams_distinct(seed in 0u64..10_000, id1 in 0u64..1000, id2 in 0u64..1000) {
        prop_assume!(id1 != id2);
        let mut a = Xoshiro256StarStar::stream(seed, id1);
        let mut b = Xoshiro256StarStar::stream(seed, id2);
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        prop_assert_ne!(va, vb);
        let mut a2 = Xoshiro256StarStar::stream(seed, id1);
        let va2: Vec<u64> = (0..4).map(|_| a2.next_u64()).collect();
        let va_again: Vec<u64> = {
            let mut a3 = Xoshiro256StarStar::stream(seed, id1);
            (0..4).map(|_| a3.next_u64()).collect()
        };
        prop_assert_eq!(va2, va_again);
    }

    /// SplitMix64::mix is a bijection-ish scrambler: no fixed trivial
    /// collisions on consecutive inputs.
    #[test]
    fn splitmix_mix_scrambles(x in 0u64..u64::MAX - 1) {
        prop_assert_ne!(SplitMix64::mix(x), SplitMix64::mix(x + 1));
    }
}
