//! Every concrete number the paper states, asserted against the library.
//! These are the ground-truth anchors of the reproduction: if any of these
//! fail, the implementation has diverged from the paper's math.

use cloud_ckpt::policy::daly::daly_interval;
use cloud_ckpt::policy::optimal::{expected_wall_clock, optimal_interval_count, scale_mnof};
use cloud_ckpt::policy::schedule::{wall_clock_formula1, EquidistantSchedule};
use cloud_ckpt::policy::storage::{choose_storage, DeviceCosts, StoragePick};
use cloud_ckpt::policy::young::{corollary1_interval, young_interval};
use cloud_ckpt::sim::blcr::{BlcrModel, Device, Migration};

#[test]
fn theorem1_worked_example() {
    // §4.1: Te=18 s, C=2 s, Poisson λ=2 ⇒ x* = sqrt(18·2/(2·2)) = 3,
    // "the optimal solution is to take a checkpoint every 18/3 = 6 seconds".
    let x = optimal_interval_count(18.0, 2.0, 2.0).unwrap();
    assert_eq!(x.rounded(), 3);
    assert!((x.continuous() - 3.0).abs() < 1e-12);
    assert!((x.interval_length(18.0) - 6.0).abs() < 1e-12);
}

#[test]
fn young_formula_trace_example() {
    // §4.1: C=2 s, λ=0.00423445 ⇒ Tc = sqrt(2·2/0.00423445) ≈ 30.7 s.
    let tc = young_interval(2.0, 1.0 / 0.00423445).unwrap();
    assert!((tc - 30.7).abs() < 0.1, "tc = {tc}");
}

#[test]
fn corollary1_equivalence() {
    // Corollary 1: with E(Y) = Te/Tf the Theorem-1 interval equals Young's
    // for every task length (the derivation's cancellation is exact).
    for te in [50.0, 441.0, 10_000.0] {
        let a = corollary1_interval(te, 2.0, 236.16).unwrap();
        let b = young_interval(2.0, 236.16).unwrap();
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn precopy_example_checkpoint_count() {
    // §4.2.2: "if a task length, checkpointing cost and expected number of
    // failures are 441 seconds, 1 second, and 2 respectively, then the
    // number of optimal checkpoints is sqrt(441·2/(2·1)) − 1 = 20".
    let x = optimal_interval_count(441.0, 1.0, 2.0).unwrap();
    assert_eq!(x.checkpoint_count(), 20);
}

#[test]
fn storage_tradeoff_worked_example() {
    // §4.2.2: Te=200 s, 160 MB, E(Y)=2: local 0.632/3.22 ⇒ X≈17.79, total
    // 28.29 s; shared 1.67/1.45 ⇒ X≈10.94, total 37.78 s ⇒ local wins.
    let local = DeviceCosts::new(0.632, 3.22).unwrap();
    let shared = DeviceCosts::new(1.67, 1.45).unwrap();
    let (pick, cl, cs) = choose_storage(200.0, 2.0, local, shared).unwrap();
    assert_eq!(pick, StoragePick::Local);
    assert!((cl - 28.29).abs() < 0.01, "local = {cl}");
    assert!((cs - 37.78).abs() < 0.01, "shared = {cs}");

    let xl = optimal_interval_count(200.0, 0.632, 2.0)
        .unwrap()
        .continuous();
    let xs = optimal_interval_count(200.0, 1.67, 2.0)
        .unwrap()
        .continuous();
    assert!((xl - 17.79).abs() < 0.01);
    assert!((xs - 10.94).abs() < 0.01);
}

#[test]
fn formula4_expected_wall_clock_components() {
    // Formula (4): E(Tw) = Te + C(x−1) + R·E(Y) + Te·E(Y)/(2x).
    let w = expected_wall_clock(18.0, 2.0, 1.0, 2.0, 3).unwrap();
    assert!((w - (18.0 + 4.0 + 2.0 + 6.0)).abs() < 1e-12);
}

#[test]
fn formula1_wall_clock_accounting() {
    // Formula (1) on a concrete history.
    let s = EquidistantSchedule::new(18.0, 3).unwrap();
    assert_eq!(s.positions(), vec![6.0, 12.0]);
    let tw = wall_clock_formula1(&s, 2.0, 1.0, &[8.0, 17.0]).unwrap();
    // 18 + 2·2 + (2 + 1) + (5 + 1) = 31.
    assert!((tw - 31.0).abs() < 1e-12);
}

#[test]
fn theorem2_mnof_scaling() {
    // E_k(Y) = Tr(k)/Tr(0) · E_0(Y) — the proportionality in Theorem 2's
    // proof.
    assert!((scale_mnof(2.0, 441.0, 220.5).unwrap() - 1.0).abs() < 1e-12);
}

#[test]
fn figure7_cost_endpoints() {
    // "the checkpointing cost is [0.016, 0.99] seconds when using local
    // ramdisk, while it ranges in [0.25, 2.52] seconds when adopting NFS"
    // for memory in [10, 240] MB.
    let blcr = BlcrModel;
    assert!((blcr.checkpoint_cost(Device::Ramdisk, 10.0) - 0.016).abs() < 1e-9);
    assert!((blcr.checkpoint_cost(Device::Ramdisk, 240.0) - 0.99).abs() < 1e-9);
    assert!((blcr.checkpoint_cost(Device::CentralNfs, 10.0) - 0.25).abs() < 1e-9);
    assert!((blcr.checkpoint_cost(Device::CentralNfs, 240.0) - 2.52).abs() < 1e-9);
}

#[test]
fn table4_operation_times() {
    // "Each checkpointing operation (over shared-disk) takes 0.33-6.83
    // seconds when the memory size of a task is 10-240MB".
    let blcr = BlcrModel;
    assert!((blcr.shared_op_time(10.3) - 0.33).abs() < 1e-9);
    assert!((blcr.shared_op_time(240.0) - 6.83).abs() < 1e-9);
}

#[test]
fn table5_restart_costs() {
    let blcr = BlcrModel;
    assert!((blcr.restart_cost(Migration::TypeA, 160.0) - 3.22).abs() < 1e-9);
    assert!((blcr.restart_cost(Migration::TypeB, 160.0) - 1.45).abs() < 1e-9);
    assert!((blcr.restart_cost(Migration::TypeA, 10.0) - 0.71).abs() < 1e-9);
    assert!((blcr.restart_cost(Migration::TypeB, 240.0) - 2.4).abs() < 1e-9);
}

#[test]
fn daly_baseline_sane() {
    // Daly's interval with negligible checkpoint cost approaches Young's.
    let d = daly_interval(0.001, 10_000.0).unwrap();
    let y = young_interval(0.001, 10_000.0).unwrap();
    assert!((d - y).abs() / y < 0.01);
}
