//! Property-based tests of the pluggable failure-process layer: sampled
//! inter-failure means must converge to each model's closed-form MTBF over
//! randomized shapes and scales, and the renewal task plans must stay
//! well-formed and deterministic.

use cloud_ckpt::stats::rng::Xoshiro256StarStar;
use cloud_ckpt::trace::failure::{sample_task_plan, FailureKind, FailureModelSpec, FailureProcess};
use cloud_ckpt::trace::spec::FailureModel;
use proptest::prelude::*;

fn sampled_mean(spec: FailureModelSpec, target: f64, seed: u64, n: usize) -> f64 {
    let p = spec.process(target);
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| p.sample_interval(&mut rng)).sum::<f64>() / n as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Weibull renewal samples converge to the closed-form MTBF for any
    /// shape in the practically relevant range (infant mortality through
    /// mild wear-out) and any positive mean.
    #[test]
    fn weibull_sample_mean_matches_closed_form_mtbf(
        shape in 0.5..3.0f64,
        mean in 10.0..100_000.0f64,
        seed in 0..u32::MAX as u64,
    ) {
        let spec = FailureModelSpec::Weibull { shape, scale: 1.0 };
        let p = spec.process(mean);
        prop_assert!((p.mtbf() - mean).abs() / mean < 1e-9);
        let m = sampled_mean(spec, mean, seed, 60_000);
        // Shape 0.5 has CV = sqrt(Γ(5)/Γ(3)² − 1) ≈ 2.24; 60k samples put
        // the standard error of the mean below 1 %.
        prop_assert!((m - mean).abs() / mean < 0.08,
            "shape {shape}: sampled {m} vs closed-form {mean}");
    }

    /// Pareto renewal samples converge to the closed-form MTBF whenever the
    /// tail index keeps the variance finite (shape > 2); heavier tails have
    /// well-defined means but pathological sample-mean convergence, which
    /// is exactly the phenomenon the hazard experiments exploit.
    #[test]
    fn pareto_sample_mean_matches_closed_form_mtbf(
        shape in 2.2..6.0f64,
        mean in 10.0..100_000.0f64,
        seed in 0..u32::MAX as u64,
    ) {
        let spec = FailureModelSpec::Pareto { shape, scale: 1.0 };
        let p = spec.process(mean);
        prop_assert!((p.mtbf() - mean).abs() / mean < 1e-9);
        let m = sampled_mean(spec, mean, seed, 60_000);
        prop_assert!((m - mean).abs() / mean < 0.10,
            "shape {shape}: sampled {m} vs closed-form {mean}");
    }

    /// The scale knob multiplies both the closed-form MTBF and the sampled
    /// mean, for every family that takes one.
    #[test]
    fn failure_scale_shifts_the_process_mean(
        scale in 0.25..8.0f64,
        seed in 0..u32::MAX as u64,
    ) {
        for kind in [FailureKind::Weibull, FailureKind::LogNormal,
                     FailureKind::Pareto, FailureKind::TraceReplay] {
            let spec = kind.build(None, scale).unwrap();
            let p = spec.process(100.0);
            prop_assert!((p.mtbf() - 100.0 * scale).abs() / (100.0 * scale) < 1e-9,
                "{}: mtbf {}", p.label(), p.mtbf());
            let m = sampled_mean(spec, 100.0, seed, 30_000);
            prop_assert!((m - 100.0 * scale).abs() / (100.0 * scale) < 0.25,
                "{}: sampled {m} vs {}", p.label(), 100.0 * scale);
        }
    }

    /// Renewal task plans are sorted, in-range, ≥ 1 s apart, deterministic
    /// in the seed, and carry a mean count within a constant factor of the
    /// per-priority MNOF calibration.
    #[test]
    fn hazard_task_plans_are_well_formed(
        priority in 1u8..13,
        te in 200.0..20_000.0f64,
        seed in 0..u32::MAX as u64,
    ) {
        for spec in [
            FailureModelSpec::Weibull { shape: 0.7, scale: 1.0 },
            FailureModelSpec::Pareto { shape: 1.5, scale: 1.0 },
        ] {
            let mut a = Xoshiro256StarStar::new(seed);
            let mut b = Xoshiro256StarStar::new(seed);
            let plan = sample_task_plan(spec, priority, te, &mut a);
            let again = sample_task_plan(spec, priority, te, &mut b);
            prop_assert_eq!(&plan, &again);
            let mut prev = 0.0;
            for &p in &plan.positions {
                prop_assert!(p > prev && p < te);
                prop_assert!(prev == 0.0 || p - prev >= 1.0);
                prev = p;
            }
            // Counts stay in the calibration's ballpark (renewal edge
            // effects allow a constant-factor drift, never an order of
            // magnitude).
            let mnof = FailureModel::for_priority(priority).mean_failures(te);
            prop_assert!((plan.count() as f64) < 12.0 * mnof + 20.0,
                "priority {}: count {} vs mnof {}", priority, plan.count(), mnof);
        }
    }
}
