//! Determinism guards for the stress tier: the two stress specs
//! (`specs/stress_fleet.toml`, `specs/stress_long_tasks.toml`) must render
//! byte-identical frames for the same seed regardless of thread count, and
//! the `stress` scale must resolve everywhere a scale can be named.
//!
//! CI-sized: the specs run under a `quick`-scale context (the cell count
//! is what matters — each spec's full grid executes — not the job count);
//! the full-size runs are `--scale stress` / direct `cloud-ckpt sweep`.

use ckpt_report::{RunContext, Scale};
use ckpt_scenario::{run_sweep_ctx, to_frame, SweepSpec};

fn spec_frames(path: &str, threads: usize) -> (String, String) {
    let text = std::fs::read_to_string(path).expect("spec file readable");
    let sweep = SweepSpec::from_str(&text).expect("spec parses");
    let ctx = RunContext::new(Scale::Quick).with_threads(threads);
    let result = run_sweep_ctx(&sweep, &ctx).expect("sweep runs");
    let frame = to_frame(&sweep, &result);
    (frame.to_csv(), frame.to_json())
}

#[test]
fn stress_fleet_frames_are_thread_invariant() {
    let (csv1, json1) = spec_frames("specs/stress_fleet.toml", 1);
    let (csv4, json4) = spec_frames("specs/stress_fleet.toml", 4);
    assert_eq!(csv1, csv4, "stress_fleet CSV must not depend on threads");
    assert_eq!(json1, json4, "stress_fleet JSON must not depend on threads");
    // The cluster engine's cells carry the deterministic DES event count.
    assert!(csv1.lines().any(|l| l.contains(",events,")), "{csv1}");
}

#[test]
fn stress_long_tasks_frames_are_thread_invariant() {
    let (csv1, json1) = spec_frames("specs/stress_long_tasks.toml", 1);
    let (csv4, json4) = spec_frames("specs/stress_long_tasks.toml", 4);
    assert_eq!(csv1, csv4);
    assert_eq!(json1, json4);
    // Long-task cells really are long-task cells: mean wall is far beyond
    // the calibrated default workload's minutes-long tasks.
    let wall_row = csv1
        .lines()
        .find(|l| l.contains(",wall_s,"))
        .expect("wall_s metric present");
    let mean: f64 = wall_row.split(',').nth(4).unwrap().parse().unwrap();
    assert!(
        mean > 10_000.0,
        "long-task mean wall {mean} suspiciously low"
    );
}

#[test]
fn stress_scale_resolves_like_the_other_tiers() {
    assert_eq!(Scale::parse("stress").unwrap(), Scale::Stress);
    assert!(Scale::Stress.jobs() > Scale::Month.jobs());
    let err = Scale::parse("giga").unwrap_err();
    assert!(err.contains("stress"), "error names the stress tier: {err}");
    // The registered stress experiment exists and defaults CI-sized.
    let exp = cloud_ckpt::bench::registry::find("ext_stress_fleet").expect("registered");
    assert_eq!(exp.default_scale(), Scale::Quick);
}
