//! Determinism guards for the stress tier: the two stress specs
//! (`specs/stress_fleet.toml`, `specs/stress_long_tasks.toml`) must render
//! byte-identical frames for the same seed regardless of thread count, and
//! the `stress` scale must resolve everywhere a scale can be named.
//!
//! CI-sized: the specs run under a `quick`-scale context (the cell count
//! is what matters — each spec's full grid executes — not the job count);
//! the full-size runs are `--scale stress` / direct `cloud-ckpt sweep`.

use ckpt_report::{RunContext, Scale};
use ckpt_scenario::spec::MetricsChoice;
use ckpt_scenario::{run_sweep_ctx, to_frame, SampleFilter, SweepSpec};

fn spec_frames(path: &str, threads: usize) -> (String, String) {
    sharded_spec_frames(path, threads, 1)
}

/// Render a spec's frames with the cluster replays partitioned into
/// `shards` host-group shards (1 = the legacy unsharded path).
fn sharded_spec_frames(path: &str, threads: usize, shards: usize) -> (String, String) {
    let text = std::fs::read_to_string(path).expect("spec file readable");
    let sweep = SweepSpec::from_str(&text).expect("spec parses");
    let mut ctx = RunContext::new(Scale::Quick).with_threads(threads);
    if shards > 1 {
        ctx = ctx.with_shards(shards);
    }
    let result = run_sweep_ctx(&sweep, &ctx).expect("sweep runs");
    let frame = to_frame(&sweep, &result);
    (frame.to_csv(), frame.to_json())
}

/// Sharded replays are part of the replay identity, not an execution
/// detail: a fixed shard count must render byte-identical frames at any
/// thread count, and a different shard count must render different ones.
fn assert_sharded_frames_thread_invariant(path: &str) {
    let (csv1, json1) = sharded_spec_frames(path, 1, 4);
    for threads in [4, 8] {
        let (csv_t, json_t) = sharded_spec_frames(path, threads, 4);
        assert_eq!(
            csv1, csv_t,
            "{path} sharded CSV differs at {threads} threads"
        );
        assert_eq!(
            json1, json_t,
            "{path} sharded JSON differs at {threads} threads"
        );
    }
    // Shard-local scheduling really changed the simulation (otherwise the
    // axis would be dead weight in the run key).
    let (unsharded_csv, _) = spec_frames(path, 1);
    assert_ne!(
        csv1, unsharded_csv,
        "{path}: 4-shard frames unexpectedly identical to unsharded"
    );
}

/// Load a spec and force the pass-through aggregation settings streaming
/// mode requires (`sample = "all"`, no record filters), returning
/// otherwise-identical full and streaming variants of the same sweep.
fn streaming_pair(path: &str) -> (SweepSpec, SweepSpec) {
    let text = std::fs::read_to_string(path).expect("spec file readable");
    let mut sweep = SweepSpec::from_str(&text).expect("spec parses");
    sweep.base.sample = SampleFilter::All;
    sweep.base.structure = None;
    sweep.base.priority = None;
    sweep.base.max_task_length = None;
    let mut full = sweep.clone();
    full.base.metrics = MetricsChoice::Full;
    sweep.base.metrics = MetricsChoice::Streaming;
    (full, sweep)
}

/// Differential guard: streaming cells must agree with full-record cells
/// exactly on count/min/max, to float-association noise on the mean, and
/// within the sketch's documented relative error bound on p50/p99 — and
/// the streaming frames must be byte-identical across thread counts.
fn assert_streaming_matches_full(path: &str) {
    let (full, streaming) = streaming_pair(path);
    let ctx = RunContext::new(Scale::Quick).with_threads(1);
    let a = run_sweep_ctx(&full, &ctx).expect("full sweep runs");
    let b = run_sweep_ctx(&streaming, &ctx).expect("streaming sweep runs");
    let bound = cloud_ckpt::stats::QuantileSketch::new().relative_error_bound();
    assert_eq!(a.cells.len(), b.cells.len());
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.metrics.len(), cb.metrics.len(), "{path}");
        for ((name_a, ma), (name_b, mb)) in ca.metrics.iter().zip(&cb.metrics) {
            assert_eq!(name_a, name_b, "{path}");
            assert_eq!(ma.count, mb.count, "{path}:{name_a}");
            assert_eq!(ma.min.to_bits(), mb.min.to_bits(), "{path}:{name_a}");
            assert_eq!(ma.max.to_bits(), mb.max.to_bits(), "{path}:{name_a}");
            let mean_tol = 1e-12 * ma.mean.abs().max(1.0);
            assert!(
                (ma.mean - mb.mean).abs() <= mean_tol,
                "{path}:{name_a} mean {} vs {}",
                ma.mean,
                mb.mean
            );
            for (exact, sketched) in [(ma.p50, mb.p50), (ma.p99, mb.p99)] {
                assert!(
                    (sketched - exact).abs() <= bound * exact.abs() + 1e-9,
                    "{path}:{name_a} sketched {sketched} vs exact {exact}"
                );
            }
        }
    }
    // Byte-identity of the rendered streaming frames at 1/4/8 threads.
    let frame1 = {
        let f = to_frame(&streaming, &b);
        (f.to_csv(), f.to_json())
    };
    for threads in [4, 8] {
        let ctx_t = RunContext::new(Scale::Quick).with_threads(threads);
        let bt = run_sweep_ctx(&streaming, &ctx_t).expect("streaming sweep runs");
        let ft = to_frame(&streaming, &bt);
        assert_eq!(
            frame1.0,
            ft.to_csv(),
            "{path} CSV differs at {threads} threads"
        );
        assert_eq!(
            frame1.1,
            ft.to_json(),
            "{path} JSON differs at {threads} threads"
        );
    }
}

#[test]
fn stress_fleet_frames_are_thread_invariant() {
    let (csv1, json1) = spec_frames("specs/stress_fleet.toml", 1);
    let (csv4, json4) = spec_frames("specs/stress_fleet.toml", 4);
    assert_eq!(csv1, csv4, "stress_fleet CSV must not depend on threads");
    assert_eq!(json1, json4, "stress_fleet JSON must not depend on threads");
    // The cluster engine's cells carry the deterministic DES event count.
    assert!(csv1.lines().any(|l| l.contains(",events,")), "{csv1}");
}

#[test]
fn stress_long_tasks_frames_are_thread_invariant() {
    let (csv1, json1) = spec_frames("specs/stress_long_tasks.toml", 1);
    let (csv4, json4) = spec_frames("specs/stress_long_tasks.toml", 4);
    assert_eq!(csv1, csv4);
    assert_eq!(json1, json4);
    // Long-task cells really are long-task cells: mean wall is far beyond
    // the calibrated default workload's minutes-long tasks.
    let wall_row = csv1
        .lines()
        .find(|l| l.contains(",wall_s,"))
        .expect("wall_s metric present");
    let mean: f64 = wall_row.split(',').nth(4).unwrap().parse().unwrap();
    assert!(
        mean > 10_000.0,
        "long-task mean wall {mean} suspiciously low"
    );
}

#[test]
fn stress_fleet_sharded_frames_are_thread_invariant() {
    assert_sharded_frames_thread_invariant("specs/stress_fleet.toml");
}

#[test]
fn stress_long_tasks_sharded_frames_are_thread_invariant() {
    assert_sharded_frames_thread_invariant("specs/stress_long_tasks.toml");
}

#[test]
fn streaming_differential_acceptance_grid() {
    // The acceptance grid (fast engine, 24 cells), with its
    // failure-prone filter lifted to the pass-through settings streaming
    // requires.
    assert_streaming_matches_full("specs/policy_x_ckpt_cost.toml");
}

#[test]
fn streaming_differential_stress_fleet() {
    // Cluster engine: the DES job records fold through the same sketch.
    assert_streaming_matches_full("specs/stress_fleet.toml");
}

#[test]
fn streaming_differential_stress_long_tasks() {
    assert_streaming_matches_full("specs/stress_long_tasks.toml");
}

#[test]
fn stress_scale_resolves_like_the_other_tiers() {
    assert_eq!(Scale::parse("stress").unwrap(), Scale::Stress);
    assert!(Scale::Stress.jobs() > Scale::Month.jobs());
    let err = Scale::parse("giga").unwrap_err();
    assert!(err.contains("stress"), "error names the stress tier: {err}");
    // The registered stress experiment exists and defaults CI-sized.
    let exp = cloud_ckpt::bench::registry::find("ext_stress_fleet").expect("registered");
    assert_eq!(exp.default_scale(), Scale::Quick);
}
