//! Integration tests of the `cloud-ckpt` CLI binary: plan, generate,
//! replay, and error handling, driven through the real executable.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cloud-ckpt"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cloud_ckpt_cli_{}_{name}.csv", std::process::id()))
}

#[test]
fn plan_reports_paper_example() {
    let out = cli()
        .args(["plan", "--te", "441", "--ckpt-cost", "1", "--mnof", "2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("21 intervals"), "{text}");
    assert!(text.contains("20 checkpoints"), "{text}");
}

#[test]
fn plan_with_mtbf_adds_baselines() {
    let out = cli()
        .args([
            "plan",
            "--te",
            "441",
            "--ckpt-cost",
            "1",
            "--mnof",
            "2",
            "--mtbf",
            "179",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Young:"), "{text}");
    assert!(text.contains("Daly:"), "{text}");
}

#[test]
fn generate_then_replay_roundtrip() {
    let path = tmp("roundtrip");
    let gen = cli()
        .args(["generate", "--jobs", "200", "--seed", "9", "--out"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let replay = cli()
        .args(["replay", "--policy", "young", "--trace"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        replay.status.success(),
        "{}",
        String::from_utf8_lossy(&replay.stderr)
    );
    let text = String::from_utf8_lossy(&replay.stdout);
    assert!(text.contains("avg WPR"), "{text}");
    assert!(text.contains("Young"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_inline_generation() {
    let out = cli()
        .args([
            "replay", "--jobs", "150", "--seed", "3", "--policy", "formula3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Formula(3)"));
}

#[test]
fn bad_inputs_fail_with_usage() {
    for args in [
        vec!["frobnicate"],
        vec!["plan", "--te", "441"], // missing flags
        vec!["plan", "--te", "nan?", "--ckpt-cost", "1", "--mnof", "2"],
        vec!["replay", "--policy", "quantum"],
        vec!["generate", "--jobs", "10"], // missing --out
    ] {
        let out = cli().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "args {args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("USAGE") || err.contains("error"), "{err}");
    }
}

#[test]
fn no_args_prints_usage() {
    let out = cli().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = cli().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("cloud-ckpt"));
}

#[test]
fn sweep_runs_grid_and_is_thread_invariant() {
    let spec_path = tmp("sweep_spec");
    std::fs::write(
        &spec_path,
        r#"
        [sweep]
        name = "cli_grid"
        engine = "fast"
        seed = 5
        jobs = 120

        [axes]
        policy = ["formula3", "young", "daly", "none"]
        ckpt_cost_scale = { from = 0.25, to = 8.0, steps = 6, log = true }
        "#,
    )
    .unwrap();

    let dir1 = std::env::temp_dir().join(format!("cloud_ckpt_sweep1_{}", std::process::id()));
    let dir8 = std::env::temp_dir().join(format!("cloud_ckpt_sweep8_{}", std::process::id()));
    for (threads, dir) in [("1", &dir1), ("8", &dir8)] {
        let out = cli()
            .args(["sweep", "--threads", threads, "--spec"])
            .arg(&spec_path)
            .arg("--out")
            .arg(dir)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("24 cells"), "{text}");
    }
    for file in ["cli_grid_cells.csv", "cli_grid_summary.json"] {
        let a = std::fs::read(dir1.join(file)).expect("output written");
        let b = std::fs::read(dir8.join(file)).expect("output written");
        assert_eq!(a, b, "{file} must be byte-identical across thread counts");
    }
    let csv = std::fs::read_to_string(dir1.join("cli_grid_cells.csv")).unwrap();
    assert!(csv.starts_with("cell,policy,ckpt_cost_scale,metric,"));
    // 24 cells x 7 replay metrics + header.
    assert_eq!(csv.lines().count(), 1 + 24 * 7, "{csv}");

    std::fs::remove_file(&spec_path).ok();
    std::fs::remove_dir_all(&dir1).ok();
    std::fs::remove_dir_all(&dir8).ok();
}

#[test]
fn sweep_rejects_missing_or_bad_specs() {
    let out = cli()
        .args(["sweep", "--spec", "/nonexistent/spec.toml"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read spec"));

    let bad = tmp("bad_spec");
    std::fs::write(&bad, "[axes]\npolicy = [\"zebra\"]\n").unwrap();
    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&bad)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("zebra"));
    std::fs::remove_file(&bad).ok();
}
