//! Integration tests of the `cloud-ckpt` CLI binary: plan, generate,
//! replay, sweep, the experiment registry (`exp list|run|all`), and error
//! handling, driven through the real executable.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cloud-ckpt"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("cloud_ckpt_cli_{}_{name}.csv", std::process::id()))
}

#[test]
fn plan_reports_paper_example() {
    let out = cli()
        .args(["plan", "--te", "441", "--ckpt-cost", "1", "--mnof", "2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("21 intervals"), "{text}");
    assert!(text.contains("20 checkpoints"), "{text}");
}

#[test]
fn plan_with_mtbf_adds_baselines() {
    let out = cli()
        .args([
            "plan",
            "--te",
            "441",
            "--ckpt-cost",
            "1",
            "--mnof",
            "2",
            "--mtbf",
            "179",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Young:"), "{text}");
    assert!(text.contains("Daly:"), "{text}");
}

#[test]
fn generate_then_replay_roundtrip() {
    let path = tmp("roundtrip");
    let gen = cli()
        .args(["generate", "--jobs", "200", "--seed", "9", "--out"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        gen.status.success(),
        "{}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let replay = cli()
        .args(["replay", "--policy", "young", "--trace"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(
        replay.status.success(),
        "{}",
        String::from_utf8_lossy(&replay.stderr)
    );
    let text = String::from_utf8_lossy(&replay.stdout);
    assert!(text.contains("avg WPR"), "{text}");
    assert!(text.contains("Young"), "{text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn replay_inline_generation() {
    let out = cli()
        .args([
            "replay", "--jobs", "150", "--seed", "3", "--policy", "formula3",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Formula(3)"));
}

#[test]
fn bad_inputs_fail_with_usage() {
    for args in [
        vec!["frobnicate"],
        vec!["plan", "--te", "441"], // missing flags
        vec!["plan", "--te", "nan?", "--ckpt-cost", "1", "--mnof", "2"],
        vec!["replay", "--policy", "quantum"],
        vec!["generate", "--jobs", "10"], // missing --out
    ] {
        let out = cli().args(&args).output().expect("binary runs");
        assert!(!out.status.success(), "args {args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("USAGE") || err.contains("error"), "{err}");
    }
}

#[test]
fn no_args_prints_usage() {
    let out = cli().output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = cli().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("cloud-ckpt"));
}

#[test]
fn sweep_runs_grid_and_is_thread_invariant() {
    let spec_path = tmp("sweep_spec");
    std::fs::write(
        &spec_path,
        r#"
        [sweep]
        name = "cli_grid"
        engine = "fast"
        seed = 5
        jobs = 120

        [axes]
        policy = ["formula3", "young", "daly", "none"]
        ckpt_cost_scale = { from = 0.25, to = 8.0, steps = 6, log = true }
        "#,
    )
    .unwrap();

    let dir1 = std::env::temp_dir().join(format!("cloud_ckpt_sweep1_{}", std::process::id()));
    let dir8 = std::env::temp_dir().join(format!("cloud_ckpt_sweep8_{}", std::process::id()));
    for (threads, dir) in [("1", &dir1), ("8", &dir8)] {
        let out = cli()
            .args(["sweep", "--threads", threads, "--spec"])
            .arg(&spec_path)
            .arg("--out")
            .arg(dir)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("24 cells"), "{text}");
    }
    for file in ["cli_grid_cells.csv", "cli_grid_summary.json"] {
        let a = std::fs::read(dir1.join(file)).expect("output written");
        let b = std::fs::read(dir8.join(file)).expect("output written");
        assert_eq!(a, b, "{file} must be byte-identical across thread counts");
    }
    let csv = std::fs::read_to_string(dir1.join("cli_grid_cells.csv")).unwrap();
    assert!(csv.starts_with("cell,policy,ckpt_cost_scale,metric,"));
    // 24 cells x 7 replay metrics + header.
    assert_eq!(csv.lines().count(), 1 + 24 * 7, "{csv}");

    std::fs::remove_file(&spec_path).ok();
    std::fs::remove_dir_all(&dir1).ok();
    std::fs::remove_dir_all(&dir8).ok();
}

#[test]
fn exp_list_enumerates_every_registered_id_uniquely() {
    // The registry itself must be duplicate-free...
    let ids = cloud_ckpt::bench::registry::ids();
    let set: std::collections::HashSet<_> = ids.iter().collect();
    assert_eq!(set.len(), ids.len(), "duplicate experiment ids: {ids:?}");
    assert_eq!(ids.len(), 26, "{ids:?}");
    // ...and `exp list` must present all of it.
    let out = cli().args(["exp", "list"]).output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for id in &ids {
        assert!(text.contains(id), "exp list missing {id}:\n{text}");
    }
}

#[test]
fn registry_round_trip_has_paper_refs() {
    for exp in cloud_ckpt::bench::registry::all() {
        assert!(
            !exp.paper_ref().is_empty(),
            "{} has an empty paper_ref",
            exp.id()
        );
        assert!(!exp.claim().is_empty(), "{} has an empty claim", exp.id());
        assert_eq!(
            cloud_ckpt::bench::registry::find(exp.id()).map(|e| e.id()),
            Some(exp.id()),
            "find() does not round-trip {}",
            exp.id()
        );
    }
}

/// Parse the columns and data rows out of a frame's `.json` file without
/// a JSON dependency: the shared writer's layout is line-oriented.
fn frame_json_shape(json: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let columns_line = json
        .lines()
        .find(|l| l.trim_start().starts_with("\"columns\":"))
        .expect("columns line");
    let inner = columns_line
        .trim()
        .trim_start_matches("\"columns\": [")
        .trim_end_matches("],");
    let columns: Vec<String> = inner
        .split(", ")
        .map(|c| c.trim_matches('"').to_string())
        .collect();
    let rows: Vec<Vec<String>> = json
        .lines()
        .filter(|l| l.trim_start().starts_with('['))
        .map(|l| {
            l.trim()
                .trim_start_matches('[')
                .trim_end_matches(',')
                .trim_end_matches(']')
                .split(", ")
                .map(|v| v.trim_matches('"').to_string())
                .collect()
        })
        .collect();
    (columns, rows)
}

#[test]
fn exp_run_emits_identical_frames_as_csv_and_json() {
    let dir_csv = std::env::temp_dir().join(format!("cloud_ckpt_exp_csv_{}", std::process::id()));
    let dir_json = std::env::temp_dir().join(format!("cloud_ckpt_exp_json_{}", std::process::id()));
    for (format, dir) in [("csv", &dir_csv), ("json", &dir_json)] {
        let out = cli()
            .args([
                "exp",
                "run",
                "table2_simultaneous",
                "--scale",
                "quick",
                "--format",
                format,
                "--out",
            ])
            .arg(dir)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // The same frames, one file each, in both formats.
    let csv = std::fs::read_to_string(dir_csv.join("table2_simultaneous.csv")).unwrap();
    let json = std::fs::read_to_string(dir_json.join("table2_simultaneous.json")).unwrap();
    let csv_lines: Vec<&str> = csv.lines().collect();
    let csv_header: Vec<&str> = csv_lines[0].split(',').collect();
    let (json_columns, json_rows) = frame_json_shape(&json);
    assert_eq!(csv_header, json_columns, "column mismatch");
    assert_eq!(csv_lines.len() - 1, json_rows.len(), "row-count mismatch");
    // Cell-by-cell equality (CSV text == JSON value, quotes stripped).
    for (csv_row, json_row) in csv_lines[1..].iter().zip(&json_rows) {
        let csv_cells: Vec<&str> = csv_row.split(',').collect();
        assert_eq!(&csv_cells, json_row, "row values differ");
    }
    // The sweep cells frame rides along in both formats too.
    assert!(dir_csv.join("table2_simultaneous_cells.csv").exists());
    assert!(dir_json.join("table2_simultaneous_cells.json").exists());
    std::fs::remove_dir_all(&dir_csv).ok();
    std::fs::remove_dir_all(&dir_json).ok();
}

#[test]
fn exp_run_multiple_ids_emits_one_json_document() {
    let out = cli()
        .args([
            "exp",
            "run",
            "table4_op_cost",
            "table5_restart_cost",
            "--format",
            "json",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // One top-level document containing both experiments' frames, each
    // tagged with its source experiment.
    assert_eq!(text.matches("\"frames\": [").count(), 1, "{text}");
    assert!(text.trim_start().starts_with('{'), "{text}");
    assert!(
        text.contains("\"experiment\": \"table4_op_cost\""),
        "{text}"
    );
    assert!(
        text.contains("\"experiment\": \"table5_restart_cost\""),
        "{text}"
    );
    assert_eq!(text.matches('{').count(), text.matches('}').count());
}

#[test]
fn exp_run_table_format_persists_csv_files() {
    let dir = std::env::temp_dir().join(format!("cloud_ckpt_exp_tbl_{}", std::process::id()));
    let out = cli()
        .args(["exp", "run", "table4_op_cost", "--out"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Table stdout pairs with full-precision CSV files (never rounded
    // .txt), matching the legacy binaries.
    let csv = std::fs::read_to_string(dir.join("table4_op_cost.csv")).expect("csv written");
    assert!(csv.starts_with("memory_mb,paper_op_time_s,model_op_time_s"));
    assert!(!dir.join("table4_op_cost.txt").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exp_run_rejects_unknown_ids_and_bad_scale() {
    let out = cli()
        .args(["exp", "run", "fig99_nope"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("fig99_nope"), "{err}");
    assert!(err.contains("exp list"), "{err}");

    let out = cli()
        .args(["exp", "run", "table4_op_cost", "--scale", "huge"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("quick, day, month"), "{err}");
}

#[test]
fn bad_ckpt_scale_env_is_a_hard_error() {
    let out = cli()
        .args(["exp", "run", "table4_op_cost"])
        .env("CKPT_SCALE", "enormous")
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "unknown CKPT_SCALE must fail hard");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("CKPT_SCALE"), "{err}");
    assert!(err.contains("quick, day, month"), "{err}");

    let out = cli()
        .args(["exp", "run", "table4_op_cost"])
        .env("CKPT_SEED", "not-a-seed")
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "bad CKPT_SEED must fail hard");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("CKPT_SEED"),
        "stderr should name CKPT_SEED"
    );
}

#[test]
fn replay_supports_json_format_via_shared_writer() {
    let out = cli()
        .args([
            "replay", "--jobs", "150", "--seed", "3", "--policy", "formula3", "--format", "json",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"frames\""), "{text}");
    assert!(text.contains("\"name\": \"replay_summary\""), "{text}");
    assert!(text.contains("\"avg WPR\""), "{text}");
}

#[test]
fn duplicate_and_unknown_flags_are_rejected() {
    let out = cli()
        .args(["replay", "--jobs", "10", "--jobs", "20"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("duplicate flag --jobs"));

    let out = cli()
        .args(["replay", "--jbos", "10", "--polcy", "young"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--jbos"), "{err}");
    assert!(err.contains("--polcy"), "{err}");
}

#[test]
fn sweep_rejects_missing_or_bad_specs() {
    let out = cli()
        .args(["sweep", "--spec", "/nonexistent/spec.toml"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read spec"));

    let bad = tmp("bad_spec");
    std::fs::write(&bad, "[axes]\npolicy = [\"zebra\"]\n").unwrap();
    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&bad)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("zebra"));
    std::fs::remove_file(&bad).ok();
}
