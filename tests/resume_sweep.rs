//! Kill-and-resume integration tests: the `sweep --checkpoint-dir` /
//! `--resume` path driven through the real binary, with the
//! `CKPT_CRASH_AFTER_CELLS` fault-injection hook standing in for a
//! preemption.
//!
//! The headline assertion is the tentpole contract: a sweep killed after
//! k persisted cells and resumed produces CSV/JSON **byte-identical** to
//! an uninterrupted run, for k at the start, middle, and end of the grid,
//! at both 1 and 4 threads.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Exit code of the injected crash (ckpt_scenario::CRASH_EXIT_CODE).
const CRASH_CODE: i32 = 86;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cloud-ckpt"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ckpt_resume_{}_{name}", std::process::id()))
}

/// The acceptance grid (specs/policy_x_ckpt_cost.toml) at a debug-profile
/// job count: same 4 x 6 = 24-cell shape, same seed, same axes.
const GRID: &str = r#"
[sweep]
name = "policy_x_ckpt_cost"
engine = "fast"
seed = 20130217
jobs = 120

[scenario]
sample = "failure-prone"

[axes]
policy = ["formula3", "young", "daly", "none"]
ckpt_cost_scale = { from = 0.25, to = 8.0, steps = 6, log = true }
"#;

/// The acceptance-grid shape in streaming-metrics mode (`sample = "all"`
/// as streaming requires): exercises the sketch-backed p50/p99 through
/// the checkpoint store on kill-and-resume.
const GRID_STREAMING: &str = r#"
[sweep]
name = "policy_x_ckpt_cost"
engine = "fast"
seed = 20130217
jobs = 120

[scenario]
sample = "all"
metrics = "streaming"

[axes]
policy = ["formula3", "young", "daly", "none"]
ckpt_cost_scale = { from = 0.25, to = 8.0, steps = 6, log = true }
"#;

/// A small grid for the failure-path tests.
const SMALL: &str = r#"
[sweep]
name = "small"
engine = "fast"
seed = 9
jobs = 60

[axes]
policy = ["formula3", "none"]
ckpt_cost_scale = { from = 0.5, to = 2.0, steps = 2 }
"#;

fn write_spec(name: &str, body: &str) -> PathBuf {
    let path = tmp(name).with_extension("toml");
    std::fs::write(&path, body).unwrap();
    path
}

fn read_outputs(dir: &Path, sweep_name: &str) -> (Vec<u8>, Vec<u8>) {
    let csv = std::fs::read(dir.join(format!("{sweep_name}_cells.csv"))).expect("cells csv");
    let json = std::fs::read(dir.join(format!("{sweep_name}_summary.json"))).expect("summary json");
    (csv, json)
}

fn counter_value(telemetry_dir: &Path, counter: &str) -> u64 {
    let csv = std::fs::read_to_string(telemetry_dir.join("telemetry_counters.csv"))
        .expect("telemetry counters");
    csv.lines()
        .find_map(|l| l.strip_prefix(&format!("{counter},")))
        .unwrap_or_else(|| panic!("counter {counter} missing:\n{csv}"))
        .parse()
        .expect("counter value")
}

#[test]
fn killed_sweeps_resume_to_byte_identical_outputs() {
    let spec = write_spec("grid_spec", GRID);

    // The reference: one uninterrupted run (outputs are thread-invariant,
    // so one clean run serves every thread count below).
    let clean_dir = tmp("grid_clean");
    let out = cli()
        .args(["sweep", "--threads", "2", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&clean_dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (clean_csv, clean_json) = read_outputs(&clean_dir, "policy_x_ckpt_cost");

    // Kill after k cells at one thread count, resume at the other: first
    // cell, mid-grid, and all-but-one, in both thread directions.
    for (k, crash_threads, resume_threads) in [
        (1u64, "4", "1"),
        (1, "1", "4"),
        (12, "4", "1"),
        (12, "1", "4"),
        (23, "4", "1"),
        (23, "1", "4"),
    ] {
        let case = format!("k{k}_t{resume_threads}");
        let ckpt_dir = tmp(&format!("grid_ckpt_{case}"));
        let out_dir = tmp(&format!("grid_out_{case}"));
        let tel_dir = tmp(&format!("grid_tel_{case}"));

        let crash = cli()
            .args(["sweep", "--threads", crash_threads, "--spec"])
            .arg(&spec)
            .arg("--out")
            .arg(&out_dir)
            .arg("--checkpoint-dir")
            .arg(&ckpt_dir)
            .env("CKPT_CRASH_AFTER_CELLS", k.to_string())
            .output()
            .expect("binary runs");
        assert_eq!(
            crash.status.code(),
            Some(CRASH_CODE),
            "case {case}: crash hook should abort with the injected code\n{}",
            String::from_utf8_lossy(&crash.stderr)
        );
        assert!(
            String::from_utf8_lossy(&crash.stderr).contains("crash hook"),
            "case {case}: stderr should name the hook"
        );
        // The killed run must not have exported results.
        assert!(
            !out_dir.join("policy_x_ckpt_cost_cells.csv").exists(),
            "case {case}: a killed sweep must not write outputs"
        );

        let resume = cli()
            .args(["sweep", "--threads", resume_threads, "--spec"])
            .arg(&spec)
            .arg("--out")
            .arg(&out_dir)
            .arg("--checkpoint-dir")
            .arg(&ckpt_dir)
            .arg("--resume")
            .arg("--telemetry")
            .arg(&tel_dir)
            .output()
            .expect("binary runs");
        assert!(
            resume.status.success(),
            "case {case}: {}",
            String::from_utf8_lossy(&resume.stderr)
        );
        let text = String::from_utf8_lossy(&resume.stdout);
        assert!(
            text.contains(&format!("({k} loaded, {} evaluated)", 24 - k)),
            "case {case}: resume accounting wrong\n{text}"
        );

        let (csv, json) = read_outputs(&out_dir, "policy_x_ckpt_cost");
        assert_eq!(
            csv, clean_csv,
            "case {case}: resumed CSV must be byte-identical to the clean run"
        );
        assert_eq!(
            json, clean_json,
            "case {case}: resumed JSON must be byte-identical to the clean run"
        );

        // Resume efficacy is observable: skipped + evaluated == grid.
        assert_eq!(counter_value(&tel_dir, "cells_skipped"), k, "case {case}");
        assert_eq!(
            counter_value(&tel_dir, "cells_evaluated"),
            24 - k,
            "case {case}"
        );
        assert_eq!(
            counter_value(&tel_dir, "cells_resumed"),
            24 - k,
            "case {case}"
        );
        assert_eq!(
            counter_value(&tel_dir, "ckpt_records_written"),
            24 - k,
            "case {case}"
        );

        for d in [&ckpt_dir, &out_dir, &tel_dir] {
            std::fs::remove_dir_all(d).ok();
        }
    }
    std::fs::remove_file(&spec).ok();
    std::fs::remove_dir_all(&clean_dir).ok();
}

#[test]
fn killed_streaming_sweeps_resume_to_byte_identical_outputs() {
    let spec = write_spec("stream_grid_spec", GRID_STREAMING);

    // Uninterrupted streaming reference run. The sketch-backed p50/p99
    // must be populated in the export (non-empty, no nulls for wpr).
    let clean_dir = tmp("stream_grid_clean");
    let out = cli()
        .args(["sweep", "--threads", "2", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&clean_dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (clean_csv, clean_json) = read_outputs(&clean_dir, "policy_x_ckpt_cost");
    let csv_text = String::from_utf8_lossy(&clean_csv);
    let wpr_row = csv_text
        .lines()
        .find(|l| l.contains(",wpr,"))
        .expect("wpr metric row present");
    for col in wpr_row.split(',').skip(4) {
        assert!(
            col.parse::<f64>().map(|v| !v.is_nan()).unwrap_or(false),
            "streaming export must carry populated statistics: {wpr_row}"
        );
    }

    // Kill mid-grid and at the tail, resuming across thread counts: the
    // sketch-derived summaries must round-trip the store byte-exactly.
    for (k, crash_threads, resume_threads) in [(12u64, "4", "1"), (23, "1", "4")] {
        let case = format!("stream_k{k}_t{resume_threads}");
        let ckpt_dir = tmp(&format!("stream_ckpt_{case}"));
        let out_dir = tmp(&format!("stream_out_{case}"));

        let crash = cli()
            .args(["sweep", "--threads", crash_threads, "--spec"])
            .arg(&spec)
            .arg("--out")
            .arg(&out_dir)
            .arg("--checkpoint-dir")
            .arg(&ckpt_dir)
            .env("CKPT_CRASH_AFTER_CELLS", k.to_string())
            .output()
            .expect("binary runs");
        assert_eq!(
            crash.status.code(),
            Some(CRASH_CODE),
            "case {case}: {}",
            String::from_utf8_lossy(&crash.stderr)
        );

        let resume = cli()
            .args(["sweep", "--threads", resume_threads, "--spec"])
            .arg(&spec)
            .arg("--out")
            .arg(&out_dir)
            .arg("--checkpoint-dir")
            .arg(&ckpt_dir)
            .arg("--resume")
            .output()
            .expect("binary runs");
        assert!(
            resume.status.success(),
            "case {case}: {}",
            String::from_utf8_lossy(&resume.stderr)
        );

        let (csv, json) = read_outputs(&out_dir, "policy_x_ckpt_cost");
        assert_eq!(
            csv, clean_csv,
            "case {case}: resumed streaming CSV must be byte-identical"
        );
        assert_eq!(
            json, clean_json,
            "case {case}: resumed streaming JSON must be byte-identical"
        );

        for d in [&ckpt_dir, &out_dir] {
            std::fs::remove_dir_all(d).ok();
        }
    }
    std::fs::remove_file(&spec).ok();
    std::fs::remove_dir_all(&clean_dir).ok();
}

#[test]
fn resuming_a_completed_sweep_reexports_identical_bytes() {
    let spec = write_spec("done_spec", SMALL);
    let ckpt_dir = tmp("done_ckpt");
    let out_a = tmp("done_out_a");
    let out_b = tmp("done_out_b");

    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_a)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Every cell loads from the store; nothing is evaluated.
    let tel_dir = tmp("done_tel");
    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_b)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .arg("--resume")
        .arg("--telemetry")
        .arg(&tel_dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(counter_value(&tel_dir, "cells_skipped"), 4);
    assert_eq!(counter_value(&tel_dir, "cells_evaluated"), 0);

    assert_eq!(read_outputs(&out_a, "small"), read_outputs(&out_b, "small"));
    for d in [&ckpt_dir, &out_a, &out_b, &tel_dir] {
        std::fs::remove_dir_all(d).ok();
    }
    std::fs::remove_file(&spec).ok();
}

#[test]
fn resume_with_a_changed_spec_is_rejected_naming_the_digest() {
    let spec = write_spec("mismatch_spec", SMALL);
    let ckpt_dir = tmp("mismatch_ckpt");
    let out_dir = tmp("mismatch_out");

    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_dir)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    // Same sweep name, different seed: the store must be refused, not
    // silently merged.
    let changed = write_spec("mismatch_spec2", &SMALL.replace("seed = 9", "seed = 10"));
    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&changed)
        .arg("--out")
        .arg(&out_dir)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .arg("--resume")
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "changed spec must not resume");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("spec digest"), "{err}");
    assert!(err.contains("--resume"), "{err}");

    for d in [&ckpt_dir, &out_dir] {
        std::fs::remove_dir_all(d).ok();
    }
    std::fs::remove_file(&spec).ok();
    std::fs::remove_file(&changed).ok();
}

#[test]
fn torn_store_tail_is_recovered_on_resume() {
    let spec = write_spec("torn_spec", SMALL);
    let ckpt_dir = tmp("torn_ckpt");
    let out_a = tmp("torn_out_a");
    let out_b = tmp("torn_out_b");

    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_a)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    // Simulate a crash mid-append: garbage half-frame at the tail.
    let store_path = ckpt_dir.join("small.sweepckpt");
    let mut bytes = std::fs::read(&store_path).expect("store exists");
    bytes.extend_from_slice(&[0x2a; 9]);
    std::fs::write(&store_path, &bytes).unwrap();

    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_b)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .arg("--resume")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("recovered") && err.contains("9 corrupt tail bytes"),
        "{err}"
    );
    assert_eq!(read_outputs(&out_a, "small"), read_outputs(&out_b, "small"));

    for d in [&ckpt_dir, &out_a, &out_b] {
        std::fs::remove_dir_all(d).ok();
    }
    std::fs::remove_file(&spec).ok();
}

/// Drop the wall-clock throughput line — the only nondeterministic line
/// a sweep prints to stdout.
fn strip_wallclock(stdout: &[u8]) -> String {
    String::from_utf8_lossy(stdout)
        .lines()
        .filter(|l| !l.contains(" cells/s, "))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn injected_panic_quarantines_one_cell_and_resume_reproduces_the_clean_run() {
    let spec = write_spec("quarantine_spec", SMALL);
    let clean_dir = tmp("quarantine_clean");
    let out = cli()
        .args(["sweep", "--threads", "2", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&clean_dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let (clean_csv, clean_json) = read_outputs(&clean_dir, "small");

    // The faulted run: a sticky panic on cell 2. The sweep must complete
    // (exit 0) with the other three cells healthy.
    let ckpt_dir = tmp("quarantine_ckpt");
    let out_dir = tmp("quarantine_out");
    let tel_dir = tmp("quarantine_tel");
    let faulted = cli()
        .args(["sweep", "--threads", "2", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_dir)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .arg("--telemetry")
        .arg(&tel_dir)
        .args(["--inject", "panic@cell=2"])
        .output()
        .expect("binary runs");
    assert!(
        faulted.status.success(),
        "a quarantined cell must not fail the run\n{}",
        String::from_utf8_lossy(&faulted.stderr)
    );
    let err = String::from_utf8_lossy(&faulted.stderr);
    assert!(err.contains("cell 2 quarantined"), "{err}");
    assert!(
        err.contains(
            "health: 3 cells ok, 1 quarantined, 3 cell retries, 0 io retries, 4 faults injected"
        ),
        "{err}"
    );

    // Exactly one Failed status row; healthy rows carry the ok marker.
    let (csv, _) = read_outputs(&out_dir, "small");
    let csv_text = String::from_utf8_lossy(&csv);
    assert!(csv_text.lines().next().unwrap().ends_with(",status"));
    let failed: Vec<&str> = csv_text.lines().filter(|l| l.contains("failed")).collect();
    assert_eq!(failed.len(), 1, "{csv_text}");
    assert!(failed[0].starts_with("2,"), "{}", failed[0]);
    assert!(
        failed[0].contains("failed: panicked: injected fault: panic at cell 2"),
        "{}",
        failed[0]
    );

    // Degraded-run counters, and the quarantined cell is not persisted.
    assert_eq!(counter_value(&tel_dir, "cells_failed"), 1);
    assert_eq!(counter_value(&tel_dir, "cells_retried"), 3);
    assert_eq!(counter_value(&tel_dir, "cells_evaluated"), 3);
    assert_eq!(counter_value(&tel_dir, "ckpt_records_written"), 3);
    assert_eq!(counter_value(&tel_dir, "faults_injected"), 4);

    // Resume with the fault removed: only cell 2 is re-evaluated, and the
    // outputs are byte-identical to the clean run.
    let resume = cli()
        .args(["sweep", "--threads", "1", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_dir)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .arg("--resume")
        .output()
        .expect("binary runs");
    assert!(
        resume.status.success(),
        "{}",
        String::from_utf8_lossy(&resume.stderr)
    );
    assert!(
        String::from_utf8_lossy(&resume.stdout).contains("(3 loaded, 1 evaluated)"),
        "quarantined cells must be re-evaluated on resume"
    );
    assert_eq!(read_outputs(&out_dir, "small"), (clean_csv, clean_json));

    for d in [&clean_dir, &ckpt_dir, &out_dir, &tel_dir] {
        std::fs::remove_dir_all(d).ok();
    }
    std::fs::remove_file(&spec).ok();
}

#[test]
fn eventually_transient_faults_leave_stdout_and_outputs_byte_identical() {
    let spec = write_spec("transient_spec", SMALL);
    let out_dir = tmp("transient_out");

    let clean = cli()
        .args(["sweep", "--threads", "2", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_dir)
        .output()
        .expect("binary runs");
    assert!(clean.status.success());
    let clean_outputs = read_outputs(&out_dir, "small");
    let clean_stdout = strip_wallclock(&clean.stdout);

    // Same run with a transient cell fault and a transient export fault:
    // retries happen (stderr), results and stdout don't move.
    let faulted = cli()
        .args(["sweep", "--threads", "2", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_dir)
        .args([
            "--inject",
            "budget@cell=1:times=2; io_error@export=1:times=1",
        ])
        .output()
        .expect("binary runs");
    assert!(
        faulted.status.success(),
        "{}",
        String::from_utf8_lossy(&faulted.stderr)
    );
    let err = String::from_utf8_lossy(&faulted.stderr);
    assert!(err.contains("cell 1 failed"), "{err}");
    assert!(err.contains("writing outputs"), "{err}");
    assert!(err.contains("health: 4 cells ok, 0 quarantined"), "{err}");
    assert_eq!(read_outputs(&out_dir, "small"), clean_outputs);
    assert_eq!(
        strip_wallclock(&faulted.stdout),
        clean_stdout,
        "retry noise must never reach stdout"
    );

    // The env knob arms the same machinery; the flag wins when both are
    // present (an empty flag plan disarms the env plan).
    let via_env = cli()
        .args(["sweep", "--threads", "2", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_dir)
        .env("CKPT_FAULT_PLAN", "budget@cell=0:times=1")
        .output()
        .expect("binary runs");
    assert!(via_env.status.success());
    assert!(
        String::from_utf8_lossy(&via_env.stderr).contains("cell 0 failed"),
        "CKPT_FAULT_PLAN must arm the plan"
    );
    assert_eq!(read_outputs(&out_dir, "small"), clean_outputs);

    std::fs::remove_dir_all(&out_dir).ok();
    std::fs::remove_file(&spec).ok();
}

#[test]
fn torn_write_injection_kills_the_run_and_resume_recovers_the_tail() {
    let spec = write_spec("tornfault_spec", SMALL);
    let clean_dir = tmp("tornfault_clean");
    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&clean_dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let clean_outputs = read_outputs(&clean_dir, "small");

    // The second persisted record is torn mid-append and the process dies
    // with the crash exit code, like a kill -9 during write().
    let ckpt_dir = tmp("tornfault_ckpt");
    let out_dir = tmp("tornfault_out");
    let torn = cli()
        .args(["sweep", "--threads", "1", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_dir)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .args(["--inject", "torn_write@record=2"])
        .output()
        .expect("binary runs");
    assert_eq!(
        torn.status.code(),
        Some(CRASH_CODE),
        "{}",
        String::from_utf8_lossy(&torn.stderr)
    );
    assert!(
        String::from_utf8_lossy(&torn.stderr).contains("torn write"),
        "{}",
        String::from_utf8_lossy(&torn.stderr)
    );

    // Resume without the fault: the torn tail is truncated away (named on
    // stderr) and the finished outputs are byte-identical to clean.
    let resume = cli()
        .args(["sweep", "--threads", "4", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(&out_dir)
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .arg("--resume")
        .output()
        .expect("binary runs");
    assert!(
        resume.status.success(),
        "{}",
        String::from_utf8_lossy(&resume.stderr)
    );
    let err = String::from_utf8_lossy(&resume.stderr);
    assert!(
        err.contains("recovered") && err.contains("corrupt tail"),
        "the torn-tail warning belongs on stderr: {err}"
    );
    assert_eq!(read_outputs(&out_dir, "small"), clean_outputs);

    for d in [&clean_dir, &ckpt_dir, &out_dir] {
        std::fs::remove_dir_all(d).ok();
    }
    std::fs::remove_file(&spec).ok();
}

#[test]
fn strict_mode_and_bad_plans_are_named_errors() {
    let spec = write_spec("strictfault_spec", SMALL);

    // --strict restores fail-fast: the run dies on the first failure
    // instead of quarantining.
    let strict = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(tmp("strictfault_out"))
        .args(["--inject", "panic@cell=1", "--strict"])
        .output()
        .expect("binary runs");
    assert!(!strict.status.success());
    let err = String::from_utf8_lossy(&strict.stderr);
    assert!(err.contains("cell 1") && err.contains("panic"), "{err}");

    // A malformed plan is rejected up front, naming the directive.
    let bad = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .args(["--inject", "meteor@cell=1"])
        .output()
        .expect("binary runs");
    assert!(!bad.status.success());
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("--inject"),
        "plan errors must name the flag"
    );

    // A crash directive without a checkpoint store is as meaningless as
    // the env knob without one.
    let orphan = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .args(["--inject", "crash@cells=2"])
        .output()
        .expect("binary runs");
    assert!(!orphan.status.success());
    assert!(
        String::from_utf8_lossy(&orphan.stderr).contains("--checkpoint-dir"),
        "{}",
        String::from_utf8_lossy(&orphan.stderr)
    );

    // With a store, crash@cells behaves exactly like the env knob.
    let ckpt_dir = tmp("strictfault_ckpt");
    let crash = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .arg("--out")
        .arg(tmp("strictfault_out"))
        .arg("--checkpoint-dir")
        .arg(&ckpt_dir)
        .args(["--inject", "crash@cells=2"])
        .output()
        .expect("binary runs");
    assert_eq!(
        crash.status.code(),
        Some(CRASH_CODE),
        "{}",
        String::from_utf8_lossy(&crash.stderr)
    );
    assert!(
        String::from_utf8_lossy(&crash.stderr).contains("aborting after 2 persisted cells"),
        "{}",
        String::from_utf8_lossy(&crash.stderr)
    );

    std::fs::remove_dir_all(tmp("strictfault_out")).ok();
    std::fs::remove_dir_all(&ckpt_dir).ok();
    std::fs::remove_file(&spec).ok();
}

#[test]
fn resume_without_checkpoint_dir_is_a_named_error() {
    let spec = write_spec("orphan_spec", SMALL);
    let out = cli()
        .args(["sweep", "--resume", "--spec"])
        .arg(&spec)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--checkpoint-dir"),
        "error must name the missing flag"
    );

    // The crash knob without a store to crash into is equally a mistake.
    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .env("CKPT_CRASH_AFTER_CELLS", "3")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("CKPT_CRASH_AFTER_CELLS"),
        "error must name the env knob"
    );

    let out = cli()
        .args(["sweep", "--spec"])
        .arg(&spec)
        .arg("--checkpoint-dir")
        .arg(tmp("orphan_ckpt"))
        .env("CKPT_CRASH_AFTER_CELLS", "three")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("expected a cell count"),
        "bad knob values must be named"
    );

    std::fs::remove_file(&spec).ok();
    std::fs::remove_dir_all(tmp("orphan_ckpt")).ok();
}
