//! End-to-end integration: generate a workload, extract history, build
//! estimators, replay under every policy, and assert the paper's headline
//! orderings — across crate boundaries, the way a downstream user would
//! drive the library.

use cloud_ckpt::sim::metrics::{mean_wpr, with_structure, wpr_by_priority};
use cloud_ckpt::sim::policy::{Estimates, EstimatorKind, PolicyConfig};
use cloud_ckpt::sim::runner::{run_trace, RunOptions};
use cloud_ckpt::trace::gen::{generate, JobStructure};
use cloud_ckpt::trace::spec::WorkloadSpec;
use cloud_ckpt::trace::stats::{failure_prone_jobs, trace_histories};
use std::collections::HashSet;

struct World {
    trace: cloud_ckpt::trace::gen::Trace,
    estimates: Estimates,
    sample: HashSet<u64>,
}

fn world(n: usize, seed: u64) -> World {
    let trace = generate(&WorkloadSpec::google_like(n), seed).expect("valid workload spec");
    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let sample = failure_prone_jobs(&records, 0.5);
    World {
        trace,
        estimates,
        sample,
    }
}

fn sample_records(w: &World, cfg: &PolicyConfig) -> Vec<cloud_ckpt::sim::JobRecord> {
    run_trace(&w.trace, &w.estimates, cfg, RunOptions::default())
        .into_iter()
        .filter(|r| w.sample.contains(&r.job_id))
        .collect()
}

#[test]
fn headline_policy_ordering() {
    // Formula (3) > Young > no-checkpointing on failure-prone jobs —
    // the paper's Figure 9 plus the obvious sanity bound.
    let w = world(1500, 42);
    let f3 = mean_wpr(&sample_records(&w, &PolicyConfig::formula3()));
    let yg = mean_wpr(&sample_records(&w, &PolicyConfig::young()));
    let none = mean_wpr(&sample_records(&w, &PolicyConfig::none()));
    assert!(f3 > yg, "Formula(3) {f3} must beat Young {yg}");
    assert!(yg > none, "Young {yg} must beat no checkpointing {none}");
    // The paper's magnitude: a 1-10 percentage-point gap.
    assert!(f3 - yg > 0.005, "gap too small: {f3} vs {yg}");
    assert!(f3 - yg < 0.15, "gap implausibly large: {f3} vs {yg}");
}

#[test]
fn oracle_estimation_near_ties_the_formulas() {
    // Table 6: with precise per-task prediction the two formulas nearly
    // coincide.
    let w = world(1500, 43);
    let f3 = mean_wpr(&sample_records(
        &w,
        &PolicyConfig::formula3().with_estimator(EstimatorKind::Oracle),
    ));
    let yg = mean_wpr(&sample_records(
        &w,
        &PolicyConfig::young().with_estimator(EstimatorKind::Oracle),
    ));
    assert!(
        (f3 - yg).abs() < 0.02,
        "oracle runs should nearly tie: {f3} vs {yg}"
    );
}

#[test]
fn both_structures_improve() {
    let w = world(1500, 44);
    let f3 = sample_records(&w, &PolicyConfig::formula3());
    let yg = sample_records(&w, &PolicyConfig::young());
    for structure in [JobStructure::Sequential, JobStructure::BagOfTasks] {
        let a = mean_wpr(&with_structure(&f3, structure));
        let b = mean_wpr(&with_structure(&yg, structure));
        assert!(a > b, "{}: {a} vs {b}", structure.label());
    }
}

#[test]
fn per_priority_gains_mostly_positive() {
    // Figure 10: Formula (3) ahead for (almost) all priorities.
    let w = world(3000, 45);
    let f3 = wpr_by_priority(&sample_records(&w, &PolicyConfig::formula3()));
    let yg = wpr_by_priority(&sample_records(&w, &PolicyConfig::young()));
    let mut ahead = 0;
    let mut total = 0;
    for p in 1..=12u8 {
        if let (Some(a), Some(b)) = (f3.get(&p), yg.get(&p)) {
            if a.count() >= 20 {
                total += 1;
                if a.mean() > b.mean() {
                    ahead += 1;
                }
            }
        }
    }
    assert!(total >= 6, "need enough priorities with data, got {total}");
    assert!(
        ahead * 10 >= total * 9,
        "Formula (3) ahead for {ahead}/{total} priorities"
    );
}

#[test]
fn determinism_across_threads_and_runs() {
    let w = world(400, 46);
    let cfg = PolicyConfig::formula3();
    let a = run_trace(&w.trace, &w.estimates, &cfg, RunOptions { threads: 1 });
    let b = run_trace(&w.trace, &w.estimates, &cfg, RunOptions { threads: 3 });
    let c = run_trace(&w.trace, &w.estimates, &cfg, RunOptions { threads: 0 });
    assert_eq!(a, b);
    assert_eq!(a, c);
}

#[test]
fn wprs_always_valid() {
    let w = world(600, 47);
    for cfg in [
        PolicyConfig::formula3(),
        PolicyConfig::young(),
        PolicyConfig::daly(),
        PolicyConfig::none(),
        PolicyConfig::formula3().with_adaptivity(true),
    ] {
        for r in run_trace(&w.trace, &w.estimates, &cfg, RunOptions::default()) {
            let wpr = r.wpr();
            assert!(
                wpr > 0.0 && wpr <= 1.0,
                "invalid WPR {wpr} under {:?}",
                cfg.kind
            );
            assert!(r.total_wall >= r.total_work - 1e-9);
        }
    }
}

#[test]
fn dynamic_beats_static_under_flips() {
    // Figure 14's ordering.
    let trace = generate(&WorkloadSpec::google_like(1200).with_priority_flips(), 48)
        .expect("valid workload spec");
    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let sample = failure_prone_jobs(&records, 0.5);
    let keep = |v: Vec<cloud_ckpt::sim::JobRecord>| -> Vec<_> {
        v.into_iter()
            .filter(|r| sample.contains(&r.job_id))
            .collect()
    };
    let dynamic = keep(run_trace(
        &trace,
        &estimates,
        &PolicyConfig::formula3().with_adaptivity(true),
        RunOptions::default(),
    ));
    let fixed = keep(run_trace(
        &trace,
        &estimates,
        &PolicyConfig::formula3(),
        RunOptions::default(),
    ));
    let m_dyn = mean_wpr(&dynamic);
    let m_sta = mean_wpr(&fixed);
    assert!(m_dyn > m_sta, "dynamic {m_dyn} must beat static {m_sta}");
    // The static algorithm's low tail is fatter (the paper's 0.5-vs-0.8
    // worst-case contrast).
    let low_dyn = dynamic.iter().filter(|r| r.wpr() < 0.8).count() as f64 / dynamic.len() as f64;
    let low_sta = fixed.iter().filter(|r| r.wpr() < 0.8).count() as f64 / fixed.len() as f64;
    assert!(
        low_sta > low_dyn,
        "static low-tail {low_sta} vs dynamic {low_dyn}"
    );
}

#[test]
fn common_random_numbers_make_comparisons_paired() {
    // The same job under two policies experiences the same kill count —
    // the property that makes Figure 13's per-job comparison meaningful.
    let w = world(300, 49);
    let f3 = sample_records(&w, &PolicyConfig::formula3());
    let yg = sample_records(&w, &PolicyConfig::young());
    let by_id: std::collections::HashMap<u64, &cloud_ckpt::sim::JobRecord> =
        yg.iter().map(|r| (r.job_id, r)).collect();
    for a in &f3 {
        let b = by_id[&a.job_id];
        assert_eq!(
            a.failures, b.failures,
            "job {} kill counts differ",
            a.job_id
        );
        assert_eq!(a.total_work, b.total_work);
    }
}
