//! Property-based tests of the fault-injection layer: any plan whose
//! faults are *eventually transient* (every directive stops firing before
//! the retry budget runs out) must be invisible in the deterministic
//! outputs — CSV and JSON byte-identical to a clean run at 1, 4, and 8
//! threads, with no quarantined cells — because retries re-run the exact
//! same deterministic cell evaluation.

use cloud_ckpt::faults::{FaultPlan, FaultState, TestClock};
use cloud_ckpt::scenario::{
    csv_string, json_string, run_sweep, run_sweep_guarded, CheckpointConfig, FaultPolicy,
    SweepOptions, SweepSpec,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const SMALL: &str = r#"
    [sweep]
    name = "prop_faults"
    engine = "fast"
    seed = 9
    jobs = 60

    [axes]
    policy = ["formula3", "none"]
    ckpt_cost_scale = { from = 0.5, to = 2.0, steps = 2 }
"#;

const TRANSIENT_KINDS: [&str; 3] = ["interrupted", "would_block", "timed_out"];

static CASE: AtomicUsize = AtomicUsize::new(0);

/// Decode the generated integers into `--inject` syntax, so the proptest
/// also exercises the parser on every case.
///
/// Per cell (codes 0..7): 0 = no fault, otherwise panic/budget with
/// `times` in 1..=3 — always below the retry budget of `MAX_ATTEMPTS`.
/// At most one `io_error` directive per op (codes decode ordinal, kind,
/// and times): two directives on the same injection point would fire
/// back to back and could exceed one retry chain's budget even though
/// each is individually transient.
fn plan_text(cell_codes: &[u32], write_code: u32, open_code: u32) -> String {
    let mut directives = Vec::new();
    for (cell, code) in cell_codes.iter().enumerate() {
        if *code > 0 {
            let c = code - 1; // 0..6
            let kind = if c % 2 == 0 { "panic" } else { "budget" };
            let times = c / 2 + 1; // 1..=3
            directives.push(format!("{kind}@cell={cell}:times={times}"));
        }
    }
    if write_code > 0 {
        let c = write_code - 1; // 0..45
        let at = c % 5 + 1; // write ordinal 1..=5
        let kind = TRANSIENT_KINDS[(c / 5 % 3) as usize];
        let times = c / 15 + 1; // 1..=3
        directives.push(format!("io_error@write={at}:kind={kind}:times={times}"));
    }
    if open_code > 0 {
        let c = open_code - 1; // 0..9
        let kind = TRANSIENT_KINDS[(c % 3) as usize];
        let times = c / 3 + 1; // 1..=3
        directives.push(format!("io_error@open=1:kind={kind}:times={times}"));
    }
    directives.join("; ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn eventually_transient_plans_are_invisible_in_exported_bytes(
        cell_codes in proptest::collection::vec(0u32..7, 4..5),
        write_code in 0u32..46,
        open_code in 0u32..10,
    ) {
        let sweep = SweepSpec::from_str(SMALL).unwrap();
        let clean = run_sweep(&sweep, SweepOptions { threads: 2 }).unwrap();
        let clean_csv = csv_string(&sweep, &clean);
        let clean_json = json_string(&sweep, &clean);

        let text = plan_text(&cell_codes, write_code, open_code);
        let plan = FaultPlan::parse(&text).unwrap();
        prop_assert!(plan.eventually_transient(), "generator bug: {text}");

        let case = CASE.fetch_add(1, Ordering::Relaxed);
        for threads in [1usize, 4, 8] {
            // Fresh armed state per run: fired counts are consumed.
            let policy = FaultPolicy {
                faults: Arc::new(FaultState::with_clock(
                    plan.clone(),
                    Box::new(TestClock::default()),
                )),
                strict: false,
            };
            // A store gives the write/open faults something to fire on;
            // results are checkpoint-invariant regardless.
            let dir = std::env::temp_dir().join(format!(
                "ckpt_prop_faults_{}_{case}_{threads}",
                std::process::id()
            ));
            let config = CheckpointConfig {
                dir: dir.clone(),
                resume: false,
                crash_after_cells: None,
            };
            let (result, _) = run_sweep_guarded(
                &sweep,
                SweepOptions { threads },
                None,
                Some(&config),
                &policy,
            )
            .unwrap();
            std::fs::remove_dir_all(&dir).ok();
            prop_assert!(
                !result.health.degraded(),
                "plan {text:?} at {threads} threads: {}",
                result.health.summary()
            );
            prop_assert_eq!(&csv_string(&sweep, &result), &clean_csv);
            prop_assert_eq!(&json_string(&sweep, &result), &clean_json);
        }
    }
}
