//! Telemetry acceptance guards.
//!
//! * With telemetry **off** (the default), sweep exports are pinned to
//!   FNV-1a digests captured from the uninstrumented build — any byte
//!   drift in simulation output caused by the observability layer fails
//!   here.
//! * With telemetry **on**, cell results are identical to the plain run,
//!   and the deterministic counter frame is byte-identical across thread
//!   counts on both stress specs (the cluster DES and the fast replay
//!   paths both count simulation facts, never scheduling facts).

use ckpt_obs::{Counter, Observer, Telemetry};
use ckpt_report::{counters_frame, RunContext, Scale};
use ckpt_scenario::{
    csv_string, json_string, run_sweep, run_sweep_telemetry, SweepOptions, SweepSpec,
};

/// FNV-1a 64 over the rendered bytes — the same digest the golden DES
/// tests pin, applied to exported files.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn load(path: &str) -> SweepSpec {
    let text = std::fs::read_to_string(path).expect("spec file readable");
    SweepSpec::from_str(&text).expect("spec parses")
}

/// The acceptance sweep's exports, pinned byte-for-byte: these digests
/// were recorded from the build *before* the telemetry layer existed, so
/// they prove `NoObs` instrumentation compiles to the identical replay.
#[test]
fn acceptance_sweep_exports_match_pre_telemetry_digests() {
    let sweep = load("specs/policy_x_ckpt_cost.toml");
    let result = run_sweep(&sweep, SweepOptions { threads: 4 }).expect("sweep runs");
    let csv = csv_string(&sweep, &result);
    let json = json_string(&sweep, &result);
    assert_eq!(
        fnv1a(csv.as_bytes()),
        0x70380b28ce7488fe,
        "policy_x_ckpt_cost_cells.csv drifted from the pre-telemetry build"
    );
    assert_eq!(
        fnv1a(json.as_bytes()),
        0x86190083f702b315,
        "policy_x_ckpt_cost_summary.json drifted from the pre-telemetry build"
    );
}

/// Attaching telemetry must not change a single cell: same metrics, same
/// params, same order.
#[test]
fn telemetry_does_not_change_sweep_results() {
    let sweep = load("specs/policy_x_ckpt_cost.toml");
    let plain = run_sweep(&sweep, SweepOptions { threads: 2 }).expect("plain sweep");
    let telemetry = Telemetry::new();
    let observed = run_sweep_telemetry(&sweep, SweepOptions { threads: 2 }, Some(&telemetry))
        .expect("observed sweep");
    assert_eq!(plain.cells, observed.cells);
    // And the observed run actually counted.
    let counters = telemetry.counters.snapshot();
    assert_eq!(
        counters.get(Counter::CellsEvaluated),
        plain.cells.len() as u64
    );
    assert!(counters.get(Counter::TasksReplayed) > 0);
    counters
        .verify_invariants(true)
        .expect("counter identities");
}

/// Counter frame for one stress spec at quick scale under `threads`.
fn stress_counters_csv(path: &str, threads: usize) -> String {
    let sweep = load(path);
    let ctx = RunContext::new(Scale::Quick).with_threads(threads);
    let telemetry = Telemetry::new();
    let result = run_sweep_telemetry(
        &sweep.contextualized(&ctx),
        SweepOptions { threads },
        Some(&telemetry),
    )
    .expect("sweep runs");
    assert!(!result.cells.is_empty());
    let counters = telemetry.counters.snapshot();
    // Every stress cell runs to completion, so the DES event accounting
    // identity and the arena identity both hold on the totals.
    counters
        .verify_invariants(true)
        .expect("counter identities");
    counters_frame(&counters).to_csv()
}

#[test]
fn stress_fleet_counter_frame_is_thread_invariant() {
    let a = stress_counters_csv("specs/stress_fleet.toml", 1);
    let b = stress_counters_csv("specs/stress_fleet.toml", 4);
    assert_eq!(a, b, "stress_fleet counters must not depend on threads");
    // The cluster DES really ran: heap events were popped.
    assert!(a.lines().any(|l| l.starts_with("events_popped,")), "{a}");
    let popped: u64 = a
        .lines()
        .find_map(|l| l.strip_prefix("events_popped,"))
        .unwrap()
        .parse()
        .unwrap();
    assert!(popped > 0, "cluster cells produced no DES events");
}

#[test]
fn stress_long_tasks_counter_frame_is_thread_invariant() {
    let a = stress_counters_csv("specs/stress_long_tasks.toml", 1);
    let b = stress_counters_csv("specs/stress_long_tasks.toml", 4);
    assert_eq!(
        a, b,
        "stress_long_tasks counters must not depend on threads"
    );
}
