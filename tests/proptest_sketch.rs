//! Property-based tests of the mergeable quantile sketch behind
//! `metrics = "streaming"`: the merge-monoid laws that make per-worker
//! folds thread-count-invariant, the documented rank-error bound against
//! exact nearest-rank quantiles on heavy-tailed samples, and byte-level
//! round-trips through both the sketch codec and the sweep cell codec.

use cloud_ckpt::scenario::ckpt::{decode_cell, encode_cell};
use cloud_ckpt::scenario::{CellResult, MetricSummary};
use cloud_ckpt::sim::metrics::StreamDist;
use cloud_ckpt::stats::rng::{Rng64, Xoshiro256StarStar};
use cloud_ckpt::stats::QuantileSketch;
use proptest::prelude::*;

/// Inverse-transform samples from the paper's heavy-tailed family —
/// exponential, Weibull, Pareto — plus a signed variant that exercises
/// the sketch's negative store and zero bucket.
fn sample(dist: usize, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Xoshiro256StarStar::stream(seed, dist as u64);
    (0..n)
        .map(|_| {
            let u = rng.next_f64_open();
            match dist % 4 {
                0 => -u.ln() * 3.5,                   // exponential, scale 3.5
                1 => 2.0 * (-u.ln()).powf(1.0 / 0.7), // Weibull, shape 0.7
                2 => 1.5 * u.powf(-1.0 / 1.5),        // Pareto, shape 1.5
                _ => {
                    // Signed + exact zeros: exponential magnitudes with a
                    // random sign, one value in eight forced to 0.
                    let v = -u.ln() * 2.0;
                    match rng.next_range(8) {
                        0 => 0.0,
                        r if r < 4 => -v,
                        _ => v,
                    }
                }
            }
        })
        .collect()
}

/// Exact nearest-rank quantile (the same rule `MetricSummary` uses).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    sorted[idx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Merge is a commutative monoid with the empty sketch as identity:
    /// the exact algebraic contract that makes folding per-worker
    /// sketches at join points order- and thread-count-invariant.
    #[test]
    fn merge_is_commutative_associative_with_identity(
        seed in 0u64..1_000,
        dist in 0usize..4,
        na in 0usize..200,
        nb in 0usize..200,
        nc in 0usize..200,
    ) {
        let a = QuantileSketch::from_values(&sample(dist, na, seed));
        let b = QuantileSketch::from_values(&sample(dist, nb, seed ^ 0x9E37));
        let c = QuantileSketch::from_values(&sample(dist, nc, seed ^ 0x79B9));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        let mut a_e = a.clone();
        a_e.merge(&QuantileSketch::new());
        prop_assert_eq!(&a_e, &a);
        let mut e_a = QuantileSketch::new();
        e_a.merge(&a);
        prop_assert_eq!(&e_a, &a);
    }

    /// Sketch-of-concatenation == merge-of-sketches, byte for byte — so
    /// any blocking of a stream (the fast path's fold blocks, the cluster
    /// fold, a future distributed fold) yields the identical sketch.
    #[test]
    fn sketch_of_concat_equals_merge_of_sketches(
        seed in 0u64..1_000,
        dist in 0usize..4,
        split in 0usize..400,
        n in 0usize..400,
    ) {
        let values = sample(dist, n, seed);
        let cut = split.min(values.len());
        let whole = QuantileSketch::from_values(&values);
        let mut parts = QuantileSketch::from_values(&values[..cut]);
        parts.merge(&QuantileSketch::from_values(&values[cut..]));
        prop_assert_eq!(&whole, &parts);
        prop_assert_eq!(whole.to_bytes(), parts.to_bytes());
    }

    /// Every quantile of every heavy-tailed sample lands within the
    /// documented relative error bound of the exact nearest-rank value
    /// (rank is exact; only the reported value is quantized).
    #[test]
    fn quantiles_within_documented_rank_error_bound(
        seed in 0u64..1_000,
        dist in 0usize..3,
        n in 1usize..500,
    ) {
        let values = sample(dist, n, seed);
        let sketch = QuantileSketch::from_values(&values);
        let bound = sketch.relative_error_bound();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let got = sketch.quantile(q);
            prop_assert!(
                (got - exact).abs() <= bound * exact.abs() + 1e-11,
                "q={} got={} exact={} bound={}", q, got, exact, bound
            );
        }
    }

    /// The sketch codec round-trips exactly: `from_bytes(to_bytes(s))`
    /// reproduces the sketch (and its serialization) byte for byte.
    #[test]
    fn bytes_round_trip_is_exact(
        seed in 0u64..1_000,
        dist in 0usize..4,
        n in 0usize..400,
    ) {
        let sketch = QuantileSketch::from_values(&sample(dist, n, seed));
        let bytes = sketch.to_bytes();
        let back = QuantileSketch::from_bytes(&bytes).expect("valid codec bytes");
        prop_assert_eq!(&back, &sketch);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Sketch-backed streaming summaries survive the sweep cell codec —
    /// the exact path a checkpointed streaming sweep takes through
    /// ckpt-store on kill-and-resume.
    #[test]
    fn sketch_summaries_round_trip_through_cell_codec(
        seed in 0u64..1_000,
        dist in 0usize..3,
        n in 1usize..300,
        index in 0usize..64,
    ) {
        let mut stream = StreamDist::new();
        for v in sample(dist, n, seed) {
            stream.add(v);
        }
        let cell = CellResult {
            index,
            params: vec![("policy".into(), "formula3".into())],
            metrics: vec![
                ("wpr", MetricSummary::from_stream(&stream)),
                ("queue_wait_s", MetricSummary::from_stream(&stream)),
            ],
            status: ckpt_scenario::CellStatus::Ok,
        };
        let decoded = decode_cell(index, &encode_cell(&cell)).expect("payload decodes");
        prop_assert_eq!(&decoded, &cell);
        // Bit-exact percentiles, not just PartialEq (NaN-free here).
        prop_assert_eq!(
            decoded.metrics[0].1.p50.to_bits(),
            cell.metrics[0].1.p50.to_bits()
        );
        prop_assert_eq!(
            decoded.metrics[0].1.p99.to_bits(),
            cell.metrics[0].1.p99.to_bits()
        );
    }
}
