//! Replay a synthetic Google-like workload under four checkpointing
//! policies — the paper's Formula (3), Young's formula, Daly's higher-order
//! formula, and no checkpointing — and compare workload-processing ratios.
//!
//! Every policy replays *identical* kill events (common random numbers),
//! exactly like the paper's `kill -9` trace replay, so per-job differences
//! are attributable to the policy alone.
//!
//! Run with: `cargo run --release --example trace_replay`

use cloud_ckpt::sim::metrics::{mean_wpr, with_structure, wpr_ecdf};
use cloud_ckpt::sim::policy::{Estimates, PolicyConfig};
use cloud_ckpt::sim::runner::{run_trace, RunOptions};
use cloud_ckpt::trace::gen::{generate, JobStructure};
use cloud_ckpt::trace::spec::WorkloadSpec;
use cloud_ckpt::trace::stats::{failure_prone_jobs, trace_histories};

fn main() {
    // A ~2.5k-job slice of the paper's one-day scale.
    let spec = WorkloadSpec::google_like(2500);
    let trace = generate(&spec, 2013).expect("valid workload spec");
    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let sample = failure_prone_jobs(&records, 0.5);
    println!(
        "generated {} jobs / {} tasks; {} failure-prone sample jobs",
        trace.jobs.len(),
        trace.task_count(),
        sample.len()
    );

    let policies = [
        ("Formula(3)", PolicyConfig::formula3()),
        ("Young", PolicyConfig::young()),
        ("Daly", PolicyConfig::daly()),
        ("None", PolicyConfig::none()),
    ];
    println!(
        "\n{:<12} {:>9} {:>9} {:>9} {:>12} {:>12}",
        "policy", "avg WPR", "ST WPR", "BoT WPR", "P(WPR<0.88)", "P(WPR>0.95)"
    );
    for (name, cfg) in policies {
        let recs: Vec<_> = run_trace(&trace, &estimates, &cfg, RunOptions::default())
            .into_iter()
            .filter(|r| sample.contains(&r.job_id))
            .collect();
        let e = wpr_ecdf(&recs).expect("sample non-empty");
        println!(
            "{:<12} {:>9.4} {:>9.4} {:>9.4} {:>12.3} {:>12.3}",
            name,
            mean_wpr(&recs),
            mean_wpr(&with_structure(&recs, JobStructure::Sequential)),
            mean_wpr(&with_structure(&recs, JobStructure::BagOfTasks)),
            e.cdf(0.88),
            1.0 - e.cdf(0.95),
        );
    }
    println!("\npaper reference: Formula (3) ≈ 0.95 average WPR vs Young ≈ 0.915.");
}
