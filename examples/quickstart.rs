//! Quickstart: the paper's core results in a dozen lines each.
//!
//! Run with: `cargo run --release --example quickstart`

use cloud_ckpt::policy::adaptive::AdaptiveCheckpointer;
use cloud_ckpt::policy::optimal::{expected_wall_clock, optimal_interval_count};
use cloud_ckpt::policy::schedule::{wall_clock_formula1, EquidistantSchedule};
use cloud_ckpt::policy::young::{young_interval, young_interval_count};

fn main() {
    // ----------------------------------------------------------------
    // Theorem 1 (Formula 3): the paper's worked example.
    // A task of Te = 18 s, checkpoint cost C = 2 s, Poisson failures with
    // λ = 2 ⇒ E(Y) = 2 expected failures.
    // ----------------------------------------------------------------
    let x = optimal_interval_count(18.0, 2.0, 2.0).expect("valid inputs");
    println!(
        "Theorem 1: x* = {:.2} -> {} intervals of {:.1} s each ({} checkpoints)",
        x.continuous(),
        x.rounded(),
        x.interval_length(18.0),
        x.checkpoint_count()
    );
    assert_eq!(x.rounded(), 3);

    // Expected wall-clock at the optimum (Formula (4)), with restart R = 0:
    let e_opt = expected_wall_clock(18.0, 2.0, 0.0, 2.0, 3).unwrap();
    let e_none = expected_wall_clock(18.0, 2.0, 0.0, 2.0, 1).unwrap();
    println!("          E(Tw) at x*=3: {e_opt:.1} s vs x=1 (no checkpoints): {e_none:.1} s");

    // ----------------------------------------------------------------
    // Corollary 1 / Young's formula: the paper's Google-trace example.
    // C = 2 s, exponential short-interval fit λ = 0.00423445.
    // ----------------------------------------------------------------
    let tc = young_interval(2.0, 1.0 / 0.00423445).unwrap();
    println!("Young:     optimal interval sqrt(2·C/λ) = {tc:.1} s (paper: ≈ 30.7 s)");
    let xy = young_interval_count(441.0, 2.0, 1.0 / 0.00423445).unwrap();
    println!("          a 441 s task gets {xy} intervals under Young");

    // ----------------------------------------------------------------
    // Formula (1): exact wall-clock for a concrete failure history.
    // ----------------------------------------------------------------
    let schedule = EquidistantSchedule::new(18.0, 3).unwrap();
    let tw = wall_clock_formula1(&schedule, 2.0, 1.0, &[8.0]).unwrap();
    println!("Formula 1: Te=18, checkpoints at {:?}, one failure at progress 8 s,\n          R=1 -> wall-clock {tw:.1} s (rollback to 6, losing 2 s)",
        schedule.positions());

    // ----------------------------------------------------------------
    // Algorithm 1 / Theorem 2: the adaptive controller. While MNOF is
    // unchanged the spacing is kept (X decrements); when the task's
    // priority (and so its MNOF) changes, the controller re-solves.
    // ----------------------------------------------------------------
    let mut ctl = AdaptiveCheckpointer::new(441.0, 1.0, 2.0).unwrap();
    println!("Algorithm 1: initial segment {:.1} s", ctl.segment());
    ctl.on_checkpoint_complete(ctl.segment());
    println!(
        "          after 1 checkpoint, segment still {:.1} s (Theorem 2 fast path)",
        ctl.segment()
    );
    ctl.update_mnof(8.0); // priority dropped: 4× the failures expected
    println!(
        "          after MNOF 2 -> 8, segment re-solved to {:.1} s ({} re-solves)",
        ctl.segment(),
        ctl.resolve_count()
    );
}
