//! The Figure 14 scenario as a runnable demo: every job's priority flips
//! mid-execution, and the adaptive Algorithm 1 (which re-solves the
//! checkpoint schedule when MNOF changes — justified by Theorem 2) is
//! compared against the static schedule computed at task start.
//!
//! Run with: `cargo run --release --example adaptive_priority`

use cloud_ckpt::sim::metrics::{mean_wpr, paired_wall_clock, wpr_ecdf};
use cloud_ckpt::sim::policy::{Estimates, PolicyConfig};
use cloud_ckpt::sim::runner::{run_trace, RunOptions};
use cloud_ckpt::trace::gen::generate;
use cloud_ckpt::trace::spec::WorkloadSpec;
use cloud_ckpt::trace::stats::{failure_prone_jobs, trace_histories};

fn main() {
    let spec = WorkloadSpec::google_like(2500).with_priority_flips();
    let trace = generate(&spec, 1402).expect("valid workload spec");
    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let sample = failure_prone_jobs(&records, 0.5);

    let dynamic_cfg = PolicyConfig::formula3().with_adaptivity(true);
    let static_cfg = PolicyConfig::formula3();

    let keep = |recs: Vec<cloud_ckpt::sim::JobRecord>| -> Vec<_> {
        recs.into_iter()
            .filter(|r| sample.contains(&r.job_id))
            .collect()
    };
    let dynamic = keep(run_trace(
        &trace,
        &estimates,
        &dynamic_cfg,
        RunOptions::default(),
    ));
    let fixed = keep(run_trace(
        &trace,
        &estimates,
        &static_cfg,
        RunOptions::default(),
    ));

    let e_dyn = wpr_ecdf(&dynamic).expect("non-empty");
    let e_sta = wpr_ecdf(&fixed).expect("non-empty");
    println!(
        "every job flips priority at 50 % of its work ({} sample jobs)\n",
        dynamic.len()
    );
    println!(
        "{:<22} {:>9} {:>9} {:>11}",
        "algorithm", "avg WPR", "p5 WPR", "P(WPR<0.8)"
    );
    println!(
        "{:<22} {:>9.4} {:>9.4} {:>11.3}",
        "dynamic (Algorithm 1)",
        mean_wpr(&dynamic),
        e_dyn.quantile(0.05),
        e_dyn.cdf(0.8)
    );
    println!(
        "{:<22} {:>9.4} {:>9.4} {:>11.3}",
        "static",
        mean_wpr(&fixed),
        e_sta.quantile(0.05),
        e_sta.cdf(0.8)
    );

    let pairs = paired_wall_clock(&dynamic, &fixed);
    let similar = pairs
        .iter()
        .filter(|(_, r, _)| (*r - 1.0).abs() <= 0.02)
        .count();
    let faster = pairs.iter().filter(|(_, r, _)| *r < 0.98).count();
    println!(
        "\nwall-clock: {:.0} % of jobs within ±2 % of each other; {:.0} % meaningfully faster under dynamic",
        100.0 * similar as f64 / pairs.len() as f64,
        100.0 * faster as f64 / pairs.len() as f64,
    );
    println!("(paper: 67 % similar; dynamic's worst WPR ≈ 0.8 vs static ≈ 0.5)");
}
