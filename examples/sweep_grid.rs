//! End-to-end sweep example: a policy × checkpoint-cost grid evaluated by
//! the scenario engine, with the aggregated table printed and the exports
//! rendered in-memory.
//!
//! ```text
//! cargo run --release --example sweep_grid
//! ```

use cloud_ckpt::scenario::{csv_string, run_sweep, SweepOptions, SweepSpec};

const SPEC: &str = r#"
    [sweep]
    name = "sweep_grid_example"
    engine = "fast"
    seed = 20130217
    jobs = 600

    [scenario]
    sample = "failure-prone"

    [axes]
    policy = ["formula3", "young", "daly", "none"]
    ckpt_cost_scale = { from = 0.5, to = 8.0, steps = 5, log = true }
"#;

fn main() {
    let sweep = SweepSpec::from_str(SPEC).expect("spec parses");
    println!(
        "expanding {} x {} = {} cells...",
        sweep.axes[0].values.len(),
        sweep.axes[1].values.len(),
        sweep.grid_size()
    );
    let start = std::time::Instant::now();
    let result = run_sweep(&sweep, SweepOptions::default()).expect("sweep runs");
    let elapsed = start.elapsed();

    // Pivot: one row per policy, one column per cost scale, mean WPR cells.
    let scales: Vec<String> = sweep.axes[1]
        .values
        .iter()
        .map(|v| format!("C x {}", v.render()))
        .collect();
    println!(
        "\nmean WPR on the failure-prone sample ({} jobs base trace):",
        sweep.base.jobs
    );
    println!("{:<12} {}", "policy", scales.join("   "));
    for (row, policy) in sweep.axes[0].values.iter().enumerate() {
        let mut cells = Vec::new();
        for col in 0..sweep.axes[1].values.len() {
            let index = row * sweep.axes[1].values.len() + col;
            let wpr = result.cells[index]
                .metrics
                .iter()
                .find(|(n, _)| *n == "wpr")
                .expect("fast engine emits wpr")
                .1;
            cells.push(format!("{:.4}", wpr.mean));
        }
        println!("{:<12} {}", policy.render(), cells.join("    "));
    }

    // The paper's qualitative claims, checked on the sweep output: the
    // optimal policy degrades gracefully as checkpoints get pricier, and
    // beats no-checkpointing everywhere on the failure-prone sample.
    let wpr_mean = |index: usize| {
        result.cells[index]
            .metrics
            .iter()
            .find(|(n, _)| *n == "wpr")
            .unwrap()
            .1
            .mean
    };
    let n_scales = sweep.axes[1].values.len();
    for col in 0..n_scales {
        let f3 = wpr_mean(col);
        let none = wpr_mean(3 * n_scales + col);
        assert!(
            f3 > none,
            "Formula (3) should beat NoCheckpoint at every cost scale"
        );
    }

    println!(
        "\n{} cells in {:.2} s ({:.1} cells/s)",
        result.cells.len(),
        elapsed.as_secs_f64(),
        result.cells.len() as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    println!("\nCSV preview (first 6 lines):");
    for line in csv_string(&sweep, &result).lines().take(6) {
        println!("  {line}");
    }
}
