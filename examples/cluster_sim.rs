//! Full-cluster simulation demo: the paper's 32-host × 7-VM testbed with
//! memory-constrained greedy scheduling, restart migration, and
//! processor-sharing checkpoint storage — comparing central NFS against
//! the paper's DM-NFS under real workload-driven contention.
//!
//! Run with: `cargo run --release --example cluster_sim`

use cloud_ckpt::sim::cluster::{ClusterConfig, ClusterSim};
use cloud_ckpt::sim::metrics::mean_wpr;
use cloud_ckpt::sim::policy::{Estimates, PolicyConfig, StorageChoice};
use cloud_ckpt::sim::Device;
use cloud_ckpt::stats::Summary;
use cloud_ckpt::trace::gen::generate;
use cloud_ckpt::trace::spec::WorkloadSpec;
use cloud_ckpt::trace::stats::trace_histories;

fn main() {
    // A cluster-sized slice: enough load to create contention without
    // saturating the 224 VM slots.
    let mut spec = WorkloadSpec::google_like(600);
    spec.mean_interarrival_s = 25.0;
    spec.long_task_fraction = 0.0;
    let trace = generate(&spec, 31415).expect("valid workload spec");
    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let cfg = ClusterConfig::default();
    println!(
        "cluster: {} hosts x {} VMs, storage rate {:.1}; {} jobs / {} tasks\n",
        cfg.n_hosts,
        cfg.vms_per_host,
        cfg.storage_rate,
        trace.jobs.len(),
        trace.task_count()
    );

    println!(
        "{:<22} {:>9} {:>14} {:>14} {:>10} {:>12}",
        "storage", "avg WPR", "mean ckpt(s)", "p95 ckpt(s)", "max conc", "makespan(h)"
    );
    for (label, storage) in [
        ("auto (§4.2.2)", StorageChoice::Auto),
        ("central NFS", StorageChoice::Force(Device::CentralNfs)),
        ("DM-NFS", StorageChoice::Force(Device::DmNfs)),
        ("local ramdisk", StorageChoice::Force(Device::Ramdisk)),
    ] {
        let policy = PolicyConfig::formula3().with_storage(storage);
        let result = ClusterSim::new(cfg, &trace, &estimates, policy).run();
        let jobs: Vec<_> = result.jobs.iter().map(|j| j.base.clone()).collect();
        let dur = Summary::from_slice(&result.checkpoint_durations);
        let (mean_d, p95_d) = dur.map(|s| (s.mean, s.p95)).unwrap_or((f64::NAN, f64::NAN));
        println!(
            "{:<22} {:>9.4} {:>14.3} {:>14.3} {:>10} {:>12.2}",
            label,
            mean_wpr(&jobs),
            mean_d,
            p95_d,
            result.max_concurrent_checkpoints,
            result.makespan.as_secs_f64() / 3600.0
        );
    }
    println!(
        "\nthe central NFS server serializes concurrent checkpoints (the paper's Table 2\n\
         bottleneck); DM-NFS spreads them across per-host servers (Table 3), keeping\n\
         costs near the uncontended level."
    );
}
