//! Runtime estimation loop: what a production deployment of Algorithm 1
//! looks like. An [`OnlineTracker`] watches completed tasks' failure
//! histories; when the decayed MNOF drifts away from the controller's
//! belief, Algorithm 1's re-solve trigger fires and running tasks'
//! checkpoint schedules are re-optimized for their remaining work.
//!
//! Run with: `cargo run --release --example online_estimation`

use cloud_ckpt::policy::adaptive::AdaptiveCheckpointer;
use cloud_ckpt::policy::online::OnlineTracker;
use cloud_ckpt::stats::rng::Xoshiro256StarStar;
use cloud_ckpt::trace::spec::FailureModel;

fn main() {
    let mut tracker = OnlineTracker::new(12, 0.9).expect("valid config");
    let mut rng = Xoshiro256StarStar::new(7);

    // A long-running task currently executing under priority-9 statistics.
    let te = 4_000.0;
    let c = 1.0;
    let initial_mnof = FailureModel::for_priority(9).mean_failures(te);
    let mut ctl = AdaptiveCheckpointer::new(te, c, initial_mnof).expect("valid task");
    let mut belief = initial_mnof;
    println!(
        "task: Te = {te} s, C = {c} s; initial MNOF belief {:.2} -> segment {:.0} s",
        belief,
        ctl.segment()
    );

    // Phase 1: completed peer tasks report priority-9-like histories.
    println!("\n-- phase 1: cluster behaves like priority 9 --");
    let p9 = FailureModel::for_priority(9);
    for i in 0..30 {
        let plan = p9.sample_plan(600.0, &mut rng);
        tracker
            .observe(9, plan.count(), &plan.intervals())
            .expect("valid priority");
        if i % 10 == 9 {
            let s = tracker.stats(9).expect("has data");
            println!(
                "after {:>2} completions: tracked MNOF {:.2}, MTBF {:.0} s, trigger: {}",
                i + 1,
                s.mnof,
                s.mtbf,
                tracker.mnof_changed(9, belief, 0.5)
            );
        }
    }

    // Progress the task a little.
    ctl.on_checkpoint_complete(ctl.segment());
    ctl.on_checkpoint_complete(ctl.progress() + ctl.segment());

    // Phase 2: the cluster regime shifts — peers now fail like priority 10
    // (Google's monitoring tier: MNOF ≈ 12). The tracker notices.
    println!("\n-- phase 2: regime shifts to priority-10-like failure rates --");
    let p10 = FailureModel::for_priority(10);
    for i in 0..30 {
        let plan = p10.sample_plan(600.0, &mut rng);
        // Reports still arrive under the task's group (priority 9): the
        // *statistics* of the group changed, which is exactly the paper's
        // "MNOF changed" condition.
        tracker
            .observe(9, plan.count(), &plan.intervals())
            .expect("valid priority");
        if tracker.mnof_changed(9, belief, 0.5) {
            let s = tracker.stats(9).expect("has data");
            let old_segment = ctl.segment();
            belief = s.mnof * te / 600.0; // scale group MNOF to this task's length regime
            ctl.update_mnof(belief);
            println!(
                "completion {:>2}: tracked MNOF {:.2} drifted from belief -> re-solve: segment {:.0} s -> {:.0} s ({} re-solves)",
                i + 1,
                s.mnof,
                old_segment,
                ctl.segment(),
                ctl.resolve_count()
            );
            break;
        }
    }

    println!(
        "\nTheorem 2 in action: the schedule was only re-solved when the MNOF belief\n\
         actually changed; every checkpoint before that reused the standing spacing."
    );
}
