//! §4.2.2 — deciding between local-ramdisk and shared-disk checkpointing.
//!
//! Reproduces the paper's worked example (Te = 200 s, 160 MB, E(Y) = 2 →
//! local ramdisk wins) and then sweeps the failure expectation to find the
//! crossover where cheap restarts (shared disk, migration type B) start to
//! pay for their costlier checkpoints.
//!
//! Run with: `cargo run --release --example storage_tradeoff`

use cloud_ckpt::policy::storage::{choose_storage, expected_total_cost, DeviceCosts};
use cloud_ckpt::sim::blcr::{BlcrModel, Device};

fn main() {
    let blcr = BlcrModel;

    // The paper's measured costs for a 160 MB task.
    let local = DeviceCosts::new(
        blcr.checkpoint_cost(Device::Ramdisk, 160.0),
        blcr.restart_cost_for_device(Device::Ramdisk, 160.0),
    )
    .unwrap();
    let shared = DeviceCosts::new(
        blcr.checkpoint_cost(Device::DmNfs, 160.0),
        blcr.restart_cost_for_device(Device::DmNfs, 160.0),
    )
    .unwrap();
    println!(
        "cost model @160 MB: local C={:.3} R={:.2} | shared C={:.3} R={:.2}",
        local.checkpoint_cost, local.restart_cost, shared.checkpoint_cost, shared.restart_cost
    );

    // Paper's example with its own measured numbers:
    let paper_local = DeviceCosts::new(0.632, 3.22).unwrap();
    let paper_shared = DeviceCosts::new(1.67, 1.45).unwrap();
    let (pick, cl, cs) = choose_storage(200.0, 2.0, paper_local, paper_shared).unwrap();
    println!(
        "paper example (Te=200, E(Y)=2): local {cl:.2} s vs shared {cs:.2} s -> {}",
        pick.label()
    );

    // Sweep E(Y): where does the decision flip?
    println!("\nE(Y) sweep at Te = 200 s (paper-measured costs):");
    println!(
        "{:>6} {:>12} {:>12} {:>10}",
        "E(Y)", "local(s)", "shared(s)", "pick"
    );
    let mut crossover = None;
    for i in 1..=60 {
        let e_y = i as f64 * 0.5;
        let l = expected_total_cost(200.0, e_y, paper_local).unwrap();
        let s = expected_total_cost(200.0, e_y, paper_shared).unwrap();
        let (pick, ..) = choose_storage(200.0, e_y, paper_local, paper_shared).unwrap();
        if i % 6 == 0 {
            println!("{e_y:>6.1} {l:>12.2} {s:>12.2} {:>10}", pick.label());
        }
        if crossover.is_none() && l > s {
            crossover = Some(e_y);
        }
    }
    match crossover {
        Some(e) => println!(
            "\ncrossover at E(Y) ≈ {e:.1}: beyond this, migration-type-B restarts ({:.2} s each\n\
             vs {:.2} s) outweigh the cheaper local checkpoints",
            paper_shared.restart_cost, paper_local.restart_cost
        ),
        None => println!("\nno crossover in range — local wins throughout"),
    }
}
