//! Pluggable failure processes — the layer that stresses the paper's
//! *distribution-free* claim.
//!
//! Theorem 1's optimal interval count `x* = sqrt(Te·E(Y)/(2C))` needs only
//! the expected **number** of failures (MNOF), not any distributional
//! assumption about the inter-failure times. Young's and Daly's formulas,
//! by contrast, consume an MTBF and implicitly assume the memoryless
//! (exponential) failure law that makes "mean time between failures" a
//! sufficient statistic. Real failure records are not memoryless: HPC
//! failure logs are Weibull with shape < 1 (infant mortality, e.g. the
//! records surveyed in arXiv:2311.17545), and the paper's own Figure 5
//! fits a Pareto tail. This module makes the inter-failure law a swappable
//! component so every engine can run the same workload under exponential,
//! Weibull, log-normal, Pareto, or trace-replayed hazards — and the
//! experiments can quantify how much Young/Daly degrade where Theorem 1
//! does not.
//!
//! ## Design
//!
//! * [`FailureProcess`] — the trait: sample one inter-failure time, plus
//!   the closed-form MTBF and expected failure count (MNOF) over a window.
//! * [`ExponentialProcess`], [`WeibullProcess`], [`LogNormalProcess`],
//!   [`ParetoProcess`], [`TraceReplayProcess`] — renewal implementations on
//!   top of the [`ckpt_stats::dist`] samplers, all parameterized by their
//!   **mean** so a model swap preserves the failure *intensity* and changes
//!   only the interval *law*.
//! * [`FailureModelSpec`] — the serializable configuration value threaded
//!   through [`crate::spec::WorkloadSpec`], [`crate::gen::Trace`], the
//!   cluster engine's host failures, and the scenario `failure_model` axis.
//!
//! ## Bit-compatibility contract
//!
//! [`FailureModelSpec::Exponential`] is the default and takes the exact
//! legacy code paths: task kill plans come from the paper-calibrated
//! per-priority replay model ([`crate::spec::FailureModel`], the repo's
//! memoryless-baseline construction) and host inter-failure times are
//! drawn as `-ln(U)·MTBF` — the same draws, in the same RNG stream order,
//! as before this layer existed. Every golden digest and experiment output
//! is byte-identical under the default. Non-default models keep the
//! per-priority MNOF calibration (mean inter-failure time is set to
//! `scale · Te / MNOF(priority, Te)`) so the distribution-free input of
//! Theorem 1 is held fixed while the hazard shape — the input Young/Daly
//! are sensitive to — varies.

use crate::spec::{FailureModel, FailurePlan};
use ckpt_stats::dist::{ContinuousDist, LogNormal, Pareto, Weibull};
use ckpt_stats::rng::Rng64;
use ckpt_stats::solve::ln_gamma;
use std::sync::OnceLock;

/// A stationary failure (renewal) process: inter-failure times are i.i.d.
/// draws, and the closed forms expose the two statistics the paper's
/// policies consume — MTBF (Young/Daly's input) and MNOF over a window
/// (Theorem 1's input, via the elementary renewal theorem).
pub trait FailureProcess {
    /// Draw one inter-failure time (seconds).
    fn sample_interval<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64;

    /// Mean inter-failure time (seconds) — the closed-form MTBF.
    fn mtbf(&self) -> f64;

    /// Expected number of failures over a `window` of busy time — the
    /// closed-form MNOF, `window / MTBF` by the elementary renewal theorem
    /// (exact for the exponential process, asymptotic for the rest).
    fn mnof(&self, window: f64) -> f64 {
        window / self.mtbf()
    }

    /// Short label for reports.
    fn label(&self) -> &'static str;
}

/// Memoryless renewal process with the given mean.
///
/// The sampler is `-ln(U)·mean` — deliberately *not* the
/// [`ckpt_stats::dist::Exponential`] quantile form `-ln(1−U)·mean` — so it
/// reproduces, draw for draw, the host-failure stream the cluster engine
/// has always generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialProcess {
    mean: f64,
}

impl ExponentialProcess {
    /// From the mean inter-failure time (must be positive and finite).
    pub fn new(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential process mean must be positive, got {mean}"
        );
        Self { mean }
    }
}

impl FailureProcess for ExponentialProcess {
    fn sample_interval<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        -rng.next_f64_open().ln() * self.mean
    }
    fn mtbf(&self) -> f64 {
        self.mean
    }
    fn label(&self) -> &'static str {
        "exponential"
    }
}

/// Weibull renewal process. Shape < 1 is the HPC-standard infant-mortality
/// regime: many short gaps, a stretched-exponential tail — the regime
/// where the sample MTBF overstates the typical gap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeibullProcess {
    dist: Weibull,
}

impl WeibullProcess {
    /// From the shape `k > 0` and the target mean: the scale is
    /// `mean / Γ(1 + 1/k)` so the process MTBF equals `mean`.
    pub fn from_mean(shape: f64, mean: f64) -> Result<Self, String> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(format!("weibull process mean must be positive, got {mean}"));
        }
        let scale = mean / ln_gamma(1.0 + 1.0 / shape).exp();
        let dist = Weibull::new(shape, scale).map_err(|e| e.to_string())?;
        Ok(Self { dist })
    }

    /// The underlying distribution (closed forms live there).
    pub fn dist(&self) -> &Weibull {
        &self.dist
    }
}

impl FailureProcess for WeibullProcess {
    fn sample_interval<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.dist.sample(rng)
    }
    fn mtbf(&self) -> f64 {
        self.dist.mean()
    }
    fn label(&self) -> &'static str {
        "weibull"
    }
}

/// Log-normal renewal process: multiplicative gap spread with log-space
/// sigma `σ`; the location is set so the mean equals the target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalProcess {
    dist: LogNormal,
}

impl LogNormalProcess {
    /// From the log-space `sigma > 0` and the target mean: the location is
    /// `ln(mean) − σ²/2` so `E[X] = mean`.
    pub fn from_mean(sigma: f64, mean: f64) -> Result<Self, String> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(format!(
                "lognormal process mean must be positive, got {mean}"
            ));
        }
        let mu = mean.ln() - 0.5 * sigma * sigma;
        let dist = LogNormal::new(mu, sigma).map_err(|e| e.to_string())?;
        Ok(Self { dist })
    }

    /// The underlying distribution.
    pub fn dist(&self) -> &LogNormal {
        &self.dist
    }
}

impl FailureProcess for LogNormalProcess {
    fn sample_interval<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.dist.sample(rng)
    }
    fn mtbf(&self) -> f64 {
        self.dist.mean()
    }
    fn label(&self) -> &'static str {
        "lognormal"
    }
}

/// Pareto renewal process — the paper's Figure 5 heavy tail. The shape
/// must exceed 1 so the mean (and hence the MNOF calibration) is finite;
/// shapes in (1, 2) still have infinite variance, which is exactly what
/// wrecks an MTBF-driven policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoProcess {
    dist: Pareto,
}

impl ParetoProcess {
    /// From the tail index `shape > 1` and the target mean: the scale
    /// (minimum gap) is `mean·(shape − 1)/shape`.
    pub fn from_mean(shape: f64, mean: f64) -> Result<Self, String> {
        if !(shape.is_finite() && shape > 1.0) {
            return Err(format!(
                "pareto process needs shape > 1 for a finite mean, got {shape}"
            ));
        }
        if !(mean.is_finite() && mean > 0.0) {
            return Err(format!("pareto process mean must be positive, got {mean}"));
        }
        let scale = mean * (shape - 1.0) / shape;
        let dist = Pareto::new(scale, shape).map_err(|e| e.to_string())?;
        Ok(Self { dist })
    }

    /// The underlying distribution.
    pub fn dist(&self) -> &Pareto {
        &self.dist
    }
}

impl FailureProcess for ParetoProcess {
    fn sample_interval<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.dist.sample(rng)
    }
    fn mtbf(&self) -> f64 {
        self.dist.mean()
    }
    fn label(&self) -> &'static str {
        "pareto"
    }
}

/// Normalized (mean-1) inter-failure gaps shaped like public HPC failure
/// records (LANL-style logs, the family surveyed by arXiv:2311.17545):
/// a large mass of short gaps, a shoulder, and a few huge quiet stretches.
/// The empirical mean is normalized to exactly 1 at first use so a
/// [`TraceReplayProcess`] scaled by `mean` has MTBF = `mean`.
const TRACE_GAPS_RAW: &[f64] = &[
    0.04, 0.05, 0.07, 0.08, 0.10, 0.12, 0.14, 0.17, 0.20, 0.24, 0.28, 0.33, 0.39, 0.46, 0.55, 0.65,
    0.78, 0.95, 1.15, 1.40, 1.75, 2.20, 2.90, 4.10, 6.50, 11.0, 19.0,
];

fn trace_gaps() -> &'static [f64] {
    static NORMALIZED: OnceLock<Vec<f64>> = OnceLock::new();
    NORMALIZED.get_or_init(|| {
        let mean = TRACE_GAPS_RAW.iter().sum::<f64>() / TRACE_GAPS_RAW.len() as f64;
        TRACE_GAPS_RAW.iter().map(|&g| g / mean).collect()
    })
}

/// Empirical renewal process: inter-failure times are resampled uniformly
/// (i.i.d. bootstrap) from a recorded gap table, scaled to the target
/// mean. The built-in table is the normalized HPC-log shape above; this is
/// the "replay a real failure record" escape hatch of the model family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceReplayProcess {
    mean: f64,
}

impl TraceReplayProcess {
    /// From the target mean inter-failure time.
    pub fn new(mean: f64) -> Result<Self, String> {
        if !(mean.is_finite() && mean > 0.0) {
            return Err(format!(
                "trace-replay process mean must be positive, got {mean}"
            ));
        }
        Ok(Self { mean })
    }
}

impl FailureProcess for TraceReplayProcess {
    fn sample_interval<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        let gaps = trace_gaps();
        let idx = rng.next_range(gaps.len() as u64) as usize;
        gaps[idx] * self.mean
    }
    fn mtbf(&self) -> f64 {
        self.mean
    }
    fn label(&self) -> &'static str {
        "trace"
    }
}

/// Enum dispatch over the concrete processes (the trait's generic sampler
/// keeps it from being a trait object; engines hold one of these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HazardProcess {
    /// Memoryless baseline.
    Exponential(ExponentialProcess),
    /// HPC infant-mortality / wear-out family.
    Weibull(WeibullProcess),
    /// Multiplicative gap spread.
    LogNormal(LogNormalProcess),
    /// Heavy tail (paper Figure 5).
    Pareto(ParetoProcess),
    /// Empirical record replay.
    TraceReplay(TraceReplayProcess),
}

impl FailureProcess for HazardProcess {
    fn sample_interval<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            HazardProcess::Exponential(p) => p.sample_interval(rng),
            HazardProcess::Weibull(p) => p.sample_interval(rng),
            HazardProcess::LogNormal(p) => p.sample_interval(rng),
            HazardProcess::Pareto(p) => p.sample_interval(rng),
            HazardProcess::TraceReplay(p) => p.sample_interval(rng),
        }
    }
    fn mtbf(&self) -> f64 {
        match self {
            HazardProcess::Exponential(p) => p.mtbf(),
            HazardProcess::Weibull(p) => p.mtbf(),
            HazardProcess::LogNormal(p) => p.mtbf(),
            HazardProcess::Pareto(p) => p.mtbf(),
            HazardProcess::TraceReplay(p) => p.mtbf(),
        }
    }
    fn label(&self) -> &'static str {
        match self {
            HazardProcess::Exponential(p) => p.label(),
            HazardProcess::Weibull(p) => p.label(),
            HazardProcess::LogNormal(p) => p.label(),
            HazardProcess::Pareto(p) => p.label(),
            HazardProcess::TraceReplay(p) => p.label(),
        }
    }
}

/// The failure-model family names, without parameters — what a spec's
/// `failure_model = "..."` key selects before `failure_shape` /
/// `failure_scale` refine it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailureKind {
    /// The memoryless baseline (the default, bit-identical legacy path).
    #[default]
    Exponential,
    /// Weibull hazard (default shape 0.7: infant mortality).
    Weibull,
    /// Log-normal hazard (default log-space sigma 1.0).
    LogNormal,
    /// Pareto hazard (default tail index 1.5: heavy tail, finite mean).
    Pareto,
    /// Empirical HPC-record replay.
    TraceReplay,
}

impl FailureKind {
    /// Parse a spec value.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "exponential" => Ok(FailureKind::Exponential),
            "weibull" => Ok(FailureKind::Weibull),
            "lognormal" => Ok(FailureKind::LogNormal),
            "pareto" => Ok(FailureKind::Pareto),
            "trace" => Ok(FailureKind::TraceReplay),
            other => Err(format!(
                "unknown failure model {other:?} \
                 (expected exponential|weibull|lognormal|pareto|trace)"
            )),
        }
    }

    /// Spec label (inverse of [`FailureKind::from_name`]).
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Exponential => "exponential",
            FailureKind::Weibull => "weibull",
            FailureKind::LogNormal => "lognormal",
            FailureKind::Pareto => "pareto",
            FailureKind::TraceReplay => "trace",
        }
    }

    /// The default shape parameter for kinds that take one.
    pub fn default_shape(&self) -> Option<f64> {
        match self {
            FailureKind::Exponential | FailureKind::TraceReplay => None,
            FailureKind::Weibull => Some(0.7),
            FailureKind::LogNormal => Some(1.0),
            FailureKind::Pareto => Some(1.5),
        }
    }

    /// Build a validated [`FailureModelSpec`], rejecting bad or
    /// inapplicable parameters with messages naming the offending spec
    /// field (`failure_shape` / `failure_scale`).
    pub fn build(&self, shape: Option<f64>, scale: f64) -> Result<FailureModelSpec, String> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(format!(
                "key \"failure_scale\": must be positive and finite, got {scale}"
            ));
        }
        if let Some(s) = shape {
            if !(s.is_finite() && s > 0.0) {
                return Err(format!(
                    "key \"failure_shape\": must be positive and finite, got {s}"
                ));
            }
        }
        match self {
            FailureKind::Exponential => {
                if shape.is_some() {
                    return Err("key \"failure_shape\" has no effect with the exponential \
                         failure model; set failure_model first"
                        .to_string());
                }
                if scale != 1.0 {
                    return Err(format!(
                        "key \"failure_scale\": the exponential failure model is the \
                         bit-identical legacy path and takes no scale, got {scale} \
                         (set failure_model first)"
                    ));
                }
                Ok(FailureModelSpec::Exponential)
            }
            FailureKind::Weibull => Ok(FailureModelSpec::Weibull {
                shape: shape.unwrap_or(0.7),
                scale,
            }),
            FailureKind::LogNormal => Ok(FailureModelSpec::LogNormal {
                sigma: shape.unwrap_or(1.0),
                scale,
            }),
            FailureKind::Pareto => {
                let s = shape.unwrap_or(1.5);
                if s <= 1.0 {
                    return Err(format!(
                        "key \"failure_shape\": the pareto failure model needs shape > 1 \
                         (finite mean), got {s}"
                    ));
                }
                Ok(FailureModelSpec::Pareto { shape: s, scale })
            }
            FailureKind::TraceReplay => {
                if shape.is_some() {
                    return Err("key \"failure_shape\" has no effect with the trace \
                         failure model (it replays recorded gaps)"
                        .to_string());
                }
                Ok(FailureModelSpec::TraceReplay { scale })
            }
        }
    }
}

/// A fully parameterized failure model: the value carried by
/// [`crate::spec::WorkloadSpec`], [`crate::gen::Trace`], and the cluster
/// configuration. `scale` multiplies the mean inter-failure time (> 1 ⇒
/// fewer failures than the MNOF calibration).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FailureModelSpec {
    /// The memoryless baseline — the exact legacy code path (default).
    #[default]
    Exponential,
    /// Weibull hazard with the given shape.
    Weibull {
        /// Weibull shape `k` (< 1 = infant mortality).
        shape: f64,
        /// Mean-interval multiplier.
        scale: f64,
    },
    /// Log-normal hazard with the given log-space sigma.
    LogNormal {
        /// Log-space standard deviation σ.
        sigma: f64,
        /// Mean-interval multiplier.
        scale: f64,
    },
    /// Pareto hazard with the given tail index (> 1).
    Pareto {
        /// Tail index α (smaller = heavier tail; must exceed 1).
        shape: f64,
        /// Mean-interval multiplier.
        scale: f64,
    },
    /// Empirical HPC-record replay.
    TraceReplay {
        /// Mean-interval multiplier.
        scale: f64,
    },
}

impl FailureModelSpec {
    /// The family this model belongs to.
    pub fn kind(&self) -> FailureKind {
        match self {
            FailureModelSpec::Exponential => FailureKind::Exponential,
            FailureModelSpec::Weibull { .. } => FailureKind::Weibull,
            FailureModelSpec::LogNormal { .. } => FailureKind::LogNormal,
            FailureModelSpec::Pareto { .. } => FailureKind::Pareto,
            FailureModelSpec::TraceReplay { .. } => FailureKind::TraceReplay,
        }
    }

    /// Whether this is the bit-identical legacy default.
    pub fn is_default(&self) -> bool {
        matches!(self, FailureModelSpec::Exponential)
    }

    /// Spec label of the family.
    pub fn label(&self) -> &'static str {
        self.kind().label()
    }

    /// The mean-interval multiplier (1.0 for the default model).
    pub fn scale(&self) -> f64 {
        match self {
            FailureModelSpec::Exponential => 1.0,
            FailureModelSpec::Weibull { scale, .. }
            | FailureModelSpec::LogNormal { scale, .. }
            | FailureModelSpec::Pareto { scale, .. }
            | FailureModelSpec::TraceReplay { scale } => *scale,
        }
    }

    /// Compact `kind[:shape[:scale]]` rendering for trace-file metadata.
    pub fn render_compact(&self) -> String {
        match self {
            FailureModelSpec::Exponential => "exponential".to_string(),
            FailureModelSpec::Weibull { shape, scale } => format!("weibull:{shape}:{scale}"),
            FailureModelSpec::LogNormal { sigma, scale } => format!("lognormal:{sigma}:{scale}"),
            FailureModelSpec::Pareto { shape, scale } => format!("pareto:{shape}:{scale}"),
            FailureModelSpec::TraceReplay { scale } => format!("trace::{scale}"),
        }
    }

    /// Parse the [`FailureModelSpec::render_compact`] form.
    pub fn parse_compact(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let kind = FailureKind::from_name(parts.next().unwrap_or(""))?;
        let shape = match parts.next() {
            None | Some("") => None,
            Some(v) => Some(
                v.parse::<f64>()
                    .map_err(|_| format!("bad failure-model shape {v:?}"))?,
            ),
        };
        let scale = match parts.next() {
            None | Some("") => 1.0,
            Some(v) => v
                .parse::<f64>()
                .map_err(|_| format!("bad failure-model scale {v:?}"))?,
        };
        if parts.next().is_some() {
            return Err(format!("bad failure-model spec {s:?}"));
        }
        kind.build(shape, scale)
    }

    /// The renewal process for this model. Callers pass the *unscaled*
    /// base mean (the MNOF-derived `te/MNOF` for task plans, the
    /// configured MTBF for host failures); the model's `scale` multiplier
    /// is applied here, exactly once.
    pub fn process(&self, mean: f64) -> HazardProcess {
        let mean = mean * self.scale();
        match self {
            FailureModelSpec::Exponential => {
                HazardProcess::Exponential(ExponentialProcess::new(mean))
            }
            FailureModelSpec::Weibull { shape, .. } => HazardProcess::Weibull(
                WeibullProcess::from_mean(*shape, mean).expect("validated parameters"),
            ),
            FailureModelSpec::LogNormal { sigma, .. } => HazardProcess::LogNormal(
                LogNormalProcess::from_mean(*sigma, mean).expect("validated parameters"),
            ),
            FailureModelSpec::Pareto { shape, .. } => HazardProcess::Pareto(
                ParetoProcess::from_mean(*shape, mean).expect("validated parameters"),
            ),
            FailureModelSpec::TraceReplay { .. } => {
                HazardProcess::TraceReplay(TraceReplayProcess::new(mean).expect("positive mean"))
            }
        }
    }
}

/// Draw the kill plan of one task under a failure model.
///
/// * Under the default [`FailureModelSpec::Exponential`] this is exactly
///   the legacy calibrated sampler
///   ([`FailureModel::sample_plan`]) — same draws, same
///   stream order, byte-identical plans.
/// * Under any other model, kills are the renewal points of the chosen
///   process over the task's busy-time window `(0, te)`, with the mean
///   inter-failure time set to `scale · te / MNOF(priority, te)` — the
///   per-priority MNOF calibration carries over via the elementary renewal
///   theorem (approximately: strongly skewed laws over-count in windows
///   comparable to the mean gap; the estimators always ingest the
///   *realized* histories, so policies stay calibrated to the actual
///   process). Sub-second gaps are coalesced exactly like the legacy
///   sampler (event logs have second granularity).
pub fn sample_task_plan<R: Rng64 + ?Sized>(
    model: FailureModelSpec,
    priority: u8,
    te: f64,
    rng: &mut R,
) -> FailurePlan {
    let mut positions = Vec::new();
    sample_task_plan_into(model, priority, te, rng, &mut positions);
    FailurePlan { positions }
}

/// [`sample_task_plan`] appended to a caller-provided position buffer —
/// the allocation-free form the replay hot loop and the failure-plan
/// arena use. Draws are identical, value for value and stream-state for
/// stream-state, to the allocating form.
pub fn sample_task_plan_into<R: Rng64 + ?Sized>(
    model: FailureModelSpec,
    priority: u8,
    te: f64,
    rng: &mut R,
    out: &mut Vec<f64>,
) {
    let calibrated = FailureModel::for_priority(priority);
    if model.is_default() {
        calibrated.sample_plan_into(te, rng, out);
        return;
    }
    let mnof = calibrated.mean_failures(te);
    if !mnof.is_finite() || mnof <= 0.0 || te <= 0.0 {
        return;
    }
    let process = model.process(te / mnof);
    let mut at = 0.0f64;
    let mut prev = 0.0f64;
    loop {
        at += process.sample_interval(rng).max(0.0);
        if at >= te {
            break;
        }
        // Coalesce sub-second gaps, as in the legacy sampler.
        if at - prev >= 1.0 {
            out.push(at);
            prev = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_stats::rng::Xoshiro256StarStar;

    fn sample_mean(p: &HazardProcess, seed: u64, n: usize) -> f64 {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n).map(|_| p.sample_interval(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn all_processes_hit_their_closed_form_mtbf() {
        let target = 500.0;
        for (spec, tol) in [
            (FailureModelSpec::Exponential, 0.02),
            (
                FailureModelSpec::Weibull {
                    shape: 0.7,
                    scale: 1.0,
                },
                0.03,
            ),
            (
                FailureModelSpec::LogNormal {
                    sigma: 1.0,
                    scale: 1.0,
                },
                0.03,
            ),
            // Pareto 2.5 still has finite variance; heavier tails need far
            // larger samples and are covered by the root proptest.
            (
                FailureModelSpec::Pareto {
                    shape: 2.5,
                    scale: 1.0,
                },
                0.05,
            ),
            (FailureModelSpec::TraceReplay { scale: 1.0 }, 0.03),
        ] {
            let p = spec.process(target);
            assert!(
                (p.mtbf() - target).abs() / target < 1e-9,
                "{}: constructed MTBF {} != {target}",
                p.label(),
                p.mtbf()
            );
            let m = sample_mean(&p, 42, 200_000);
            assert!(
                (m - target).abs() / target < tol,
                "{}: sampled mean {m} vs closed-form {target}",
                p.label()
            );
            assert!((p.mnof(1000.0) - 1000.0 / p.mtbf()).abs() < 1e-12);
        }
    }

    #[test]
    fn scale_multiplies_the_mean() {
        let spec = FailureModelSpec::Weibull {
            shape: 0.7,
            scale: 4.0,
        };
        let p = spec.process(100.0);
        assert!((p.mtbf() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_process_matches_legacy_host_draw() {
        // The cluster engine's historical draw: -ln(U)·mtbf on the same
        // stream. Bit-identical is the contract, not just distributional.
        let p = ExponentialProcess::new(3_600.0);
        let mut a = Xoshiro256StarStar::new(7);
        let mut b = Xoshiro256StarStar::new(7);
        for _ in 0..100 {
            let legacy = -b.next_f64_open().ln() * 3_600.0;
            assert_eq!(p.sample_interval(&mut a).to_bits(), legacy.to_bits());
        }
    }

    #[test]
    fn default_task_plan_is_the_legacy_calibrated_plan() {
        for priority in [1u8, 2, 10, 12] {
            for seed in 0..20u64 {
                let mut a = Xoshiro256StarStar::new(seed);
                let mut b = Xoshiro256StarStar::new(seed);
                let legacy = FailureModel::for_priority(priority).sample_plan(700.0, &mut a);
                let routed =
                    sample_task_plan(FailureModelSpec::Exponential, priority, 700.0, &mut b);
                assert_eq!(legacy, routed, "priority {priority} seed {seed}");
                // And the RNG streams advanced identically.
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn hazard_plans_preserve_the_mnof_calibration() {
        // Renewal plans with mean = te/MNOF must keep the average failure
        // count near the calibrated MNOF. The renewal theorem is
        // asymptotic: strongly skewed laws (many tiny gaps, a few huge
        // ones) over-count in a window comparable to the mean gap, so the
        // band widens for the pareto/trace family — the estimators see
        // the realized histories, so the policies stay calibrated to
        // whatever the process actually does.
        let te = 2_000.0;
        let priority = 2u8;
        let expect = FailureModel::for_priority(priority).mean_failures(te);
        for (spec, hi) in [
            (
                FailureModelSpec::Weibull {
                    shape: 0.7,
                    scale: 1.0,
                },
                1.5,
            ),
            (
                FailureModelSpec::LogNormal {
                    sigma: 1.0,
                    scale: 1.0,
                },
                1.8,
            ),
            (
                FailureModelSpec::Pareto {
                    shape: 1.5,
                    scale: 1.0,
                },
                2.5,
            ),
            (FailureModelSpec::TraceReplay { scale: 1.0 }, 2.5),
        ] {
            let mut rng = Xoshiro256StarStar::new(11);
            let n = 30_000;
            let mean = (0..n)
                .map(|_| sample_task_plan(spec, priority, te, &mut rng).count() as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                mean > 0.5 * expect && mean < hi * expect,
                "{}: mean count {mean} vs calibrated {expect}",
                spec.label()
            );
        }
    }

    #[test]
    fn hazard_plan_positions_sorted_spaced_and_in_range() {
        let spec = FailureModelSpec::Pareto {
            shape: 1.5,
            scale: 1.0,
        };
        let mut rng = Xoshiro256StarStar::new(3);
        for _ in 0..500 {
            let plan = sample_task_plan(spec, 10, 900.0, &mut rng);
            let mut prev = 0.0;
            for &p in &plan.positions {
                assert!(p > prev && p < 900.0, "position {p} out of order/range");
                assert!(p - prev >= 1.0 || prev == 0.0, "sub-second gap survived");
                prev = p;
            }
        }
    }

    #[test]
    fn kind_parsing_and_defaults() {
        assert_eq!(
            FailureKind::from_name("weibull").unwrap(),
            FailureKind::Weibull
        );
        assert!(FailureKind::from_name("gamma").is_err());
        for kind in [
            FailureKind::Exponential,
            FailureKind::Weibull,
            FailureKind::LogNormal,
            FailureKind::Pareto,
            FailureKind::TraceReplay,
        ] {
            assert_eq!(FailureKind::from_name(kind.label()).unwrap(), kind);
            let spec = kind.build(None, 1.0).unwrap();
            assert_eq!(spec.kind(), kind);
        }
    }

    #[test]
    fn build_rejects_bad_parameters_with_named_fields() {
        let shape_err = FailureKind::Weibull.build(Some(-1.0), 1.0).unwrap_err();
        assert!(shape_err.contains("failure_shape"), "{shape_err}");
        let nan_err = FailureKind::Weibull.build(Some(f64::NAN), 1.0).unwrap_err();
        assert!(nan_err.contains("failure_shape"), "{nan_err}");
        let scale_err = FailureKind::Pareto.build(None, 0.0).unwrap_err();
        assert!(scale_err.contains("failure_scale"), "{scale_err}");
        let pareto_err = FailureKind::Pareto.build(Some(0.9), 1.0).unwrap_err();
        assert!(pareto_err.contains("shape > 1"), "{pareto_err}");
        assert!(FailureKind::Exponential.build(Some(2.0), 1.0).is_err());
        assert!(FailureKind::Exponential.build(None, 2.0).is_err());
        assert!(FailureKind::TraceReplay.build(Some(2.0), 1.0).is_err());
    }

    #[test]
    fn compact_roundtrip() {
        for spec in [
            FailureModelSpec::Exponential,
            FailureModelSpec::Weibull {
                shape: 0.7,
                scale: 2.0,
            },
            FailureModelSpec::LogNormal {
                sigma: 1.25,
                scale: 1.0,
            },
            FailureModelSpec::Pareto {
                shape: 1.5,
                scale: 0.5,
            },
            FailureModelSpec::TraceReplay { scale: 3.0 },
        ] {
            let s = spec.render_compact();
            assert_eq!(FailureModelSpec::parse_compact(&s).unwrap(), spec, "{s}");
        }
        assert!(FailureModelSpec::parse_compact("weibull:0").is_err());
        assert!(FailureModelSpec::parse_compact("zebra").is_err());
    }

    #[test]
    fn trace_gap_table_is_mean_one() {
        let gaps = trace_gaps();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 1.0).abs() < 1e-12);
        assert!(gaps.iter().all(|&g| g > 0.0));
        // Heavy-tailed: the largest normalized gap dwarfs the mean.
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        assert!(max > 8.0, "max normalized gap {max}");
    }
}
