//! # ckpt-trace — Google-trace-like synthetic cloud workload generator
//!
//! The paper's evaluation replays a one-month Google production trace
//! (10k+ hosts, millions of tasks). That trace only enters the experiments
//! through a handful of per-task quantities:
//!
//! 1. job arrival times and structure — sequential-task (ST) vs
//!    bag-of-tasks (BoT) jobs (paper §5.1),
//! 2. task productive lengths and memory sizes (paper Figure 8),
//! 3. task priorities 1–12, and
//! 4. per-priority failure-interval behaviour: short bodies with Pareto
//!    tails, priority-dependent (paper Figures 4–5, Table 7).
//!
//! This crate synthesizes workloads with exactly those marginals, seeded and
//! fully deterministic:
//!
//! * [`spec`] — the calibrated per-priority failure models and the workload
//!   shape knobs ([`spec::WorkloadSpec`]).
//! * [`gen`] — the trace generator: [`gen::generate`] produces a
//!   [`gen::Trace`] of jobs and tasks.
//! * [`stats`] — "historical" failure statistics: renewal-process histories
//!   per task, MNOF/MTBF tables by priority × length limit (Table 7),
//!   uninterrupted-interval samples (Figures 4–5).
//!
//! The **key phenomenon** the calibration preserves (because the paper's
//! headline result depends on it): failure intervals are heavy-tailed, so
//! the MTBF estimated over all tasks is inflated by rare huge intervals
//! while the mean *number* of failures per task (MNOF) stays stable —
//! making Young's MTBF-driven formula checkpoint too rarely and the paper's
//! MNOF-driven Formula (3) well-calibrated.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod failure;
pub mod gen;
pub mod plan;
pub mod spec;
pub mod stats;

pub use failure::{FailureKind, FailureModelSpec, FailureProcess, HazardProcess};
pub use gen::{generate, JobSpec, JobStructure, TaskSpec, Trace, WorkloadError};
pub use plan::FailurePlanArena;
pub use spec::{FailureModel, WorkloadSpec, NUM_PRIORITIES};
pub use stats::{history_for_task, trace_histories, trace_histories_from_plans};
