//! Workload calibration: per-priority failure models and the distribution
//! knobs for job structure, lengths and memory sizes.
//!
//! ## The failure model
//!
//! The paper replays recorded Google kill/evict events ("any running task
//! would be killed by `kill -9` from time to time based on the events
//! recorded in the trace"). We reproduce that replay semantics: each task
//! gets a **pre-planned set of failure events** — a count drawn from a
//! priority-dependent zero-inflated Poisson, and positions spread over the
//! task's execution with heavy-tailed spacings. Both policies then replay
//! the *same* kills (common random numbers), exactly like the paper's
//! experiments.
//!
//! This construction reproduces the three Table 7 / Figure 4–5 shapes the
//! headline result depends on:
//!
//! * **MNOF is roughly length-independent per priority** (paper: 1.06 →
//!   1.27 for priority 2 from the ≤1000 s class to the unlimited class) —
//!   failure counts are a per-task property, not a per-second rate, which
//!   is why the paper's MNOF-driven Formula (3) predicts well.
//! * **MTBF inflates dramatically with the length limit** (179 s → 4199 s)
//!   — intervals scale with task length, so the unlimited class is
//!   dominated by long service tasks' huge uninterrupted intervals. This is
//!   what breaks Young's MTBF-driven formula.
//! * **Priority ordering of uninterrupted intervals** (Figure 4): higher
//!   priorities fail less (longer intervals), with priority 10 the Google
//!   monitoring-tier exception (MNOF ≈ 11.9: constant failures).

use ckpt_stats::dist::{DiscreteDist, Poisson};
use ckpt_stats::rng::Rng64;

/// Google traces use 12 priority levels (1 = lowest in the paper's
/// numbering).
pub const NUM_PRIORITIES: usize = 12;

/// A task's pre-planned failure events: sorted busy-time offsets in
/// `(0, te)` at which the task is killed (busy time = time the task is
/// actually executing or checkpointing).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FailurePlan {
    /// Sorted kill positions (seconds of busy time from task start).
    pub positions: Vec<f64>,
}

impl FailurePlan {
    /// Number of failures in the plan.
    pub fn count(&self) -> u32 {
        self.positions.len() as u32
    }

    /// The uninterrupted work intervals this plan induces (gaps between
    /// consecutive kills; the final censored run to completion is not an
    /// inter-failure interval and is excluded, as in MTBF estimation from
    /// event logs).
    pub fn intervals(&self) -> Vec<f64> {
        intervals_of(&self.positions)
    }
}

/// The uninterrupted work intervals induced by a sorted kill-position
/// slice — [`FailurePlan::intervals`] for plans stored flat (the
/// failure-plan arena keeps positions in one shared buffer).
pub fn intervals_of(positions: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(positions.len());
    let mut prev = 0.0;
    for &p in positions {
        out.push(p - prev);
        prev = p;
    }
    out
}

/// Per-priority failure model: how many kills a task suffers and where.
#[derive(Debug, Clone, Copy)]
pub struct FailureModel {
    priority: u8,
    /// Probability a task sees no failures at all.
    zero_prob: f64,
    /// Mean of the Poisson burst size given at least one failure
    /// (count = 1 + Poisson(burst_mean)).
    burst_mean: f64,
    /// Spacing skew: inter-failure spacing weights are `U^(-skew)`; larger
    /// values give heavier-tailed intra-task intervals.
    spacing_skew: f64,
}

impl FailureModel {
    /// The calibrated model for `priority` (1..=12). Panics outside that
    /// range.
    pub fn for_priority(priority: u8) -> Self {
        assert!(
            (1..=NUM_PRIORITIES as u8).contains(&priority),
            "priority must be in 1..=12, got {priority}"
        );
        // (zero_prob, burst_mean) per priority; MNOF = (1−q)·(1+μ).
        // Low priorities are preempted often; the trend weakens upward;
        // priority 10 is Google's failure-heavy monitoring tier (paper
        // Table 7: MNOF ≈ 11.9, MTBF ≈ 37 s for short tasks).
        const CAL: [(f64, f64); NUM_PRIORITIES] = [
            (0.55, 0.78),  // 1  → MNOF 0.80
            (0.45, 1.00),  // 2  → MNOF 1.10
            (0.50, 0.90),  // 3  → MNOF 0.95
            (0.50, 0.80),  // 4  → MNOF 0.90
            (0.52, 0.77),  // 5  → MNOF 0.85
            (0.55, 0.78),  // 6  → MNOF 0.80
            (0.62, 0.58),  // 7  → MNOF 0.60
            (0.65, 0.43),  // 8  → MNOF 0.50
            (0.67, 0.36),  // 9  → MNOF 0.45
            (0.08, 11.93), // 10 → MNOF 11.9
            (0.70, 0.17),  // 11 → MNOF 0.35
            (0.72, 0.07),  // 12 → MNOF 0.30
        ];
        let (zero_prob, burst_mean) = CAL[(priority - 1) as usize];
        Self {
            priority,
            zero_prob,
            burst_mean,
            spacing_skew: 0.75,
        }
    }

    /// The priority this model describes.
    #[inline]
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// Expected number of failures for a task of length `te` — nearly
    /// length-independent (the Table 7 property), with the paper's mild
    /// upward drift for very long tasks (priority 2: 1.06 → 1.27 over a
    /// ~50× length range ⇒ exponent ≈ 0.05).
    pub fn mean_failures(&self, te: f64) -> f64 {
        let base = (1.0 - self.zero_prob) * (1.0 + self.burst_mean);
        base * (te.max(1.0) / 500.0).powf(0.05)
    }

    /// Draw the number of failures for a task of length `te`:
    /// zero-inflated shifted Poisson with the length drift applied to the
    /// burst size.
    pub fn sample_count<R: Rng64 + ?Sized>(&self, te: f64, rng: &mut R) -> u32 {
        if rng.next_bool(self.zero_prob) {
            return 0;
        }
        let drift = (te.max(1.0) / 500.0).powf(0.05);
        // Scale the burst (and the +1) so the conditional mean is
        // (1 + burst_mean)·drift, keeping MNOF = mean_failures(te).
        let target = (1.0 + self.burst_mean) * drift;
        let burst = (target - 1.0).max(0.0);
        if burst <= 1e-9 {
            return 1;
        }
        let p = Poisson::new(burst).expect("positive burst mean");
        1 + p.sample(rng) as u32
    }

    /// Draw kill positions for `k` failures over a task of length `te`:
    /// heavy-tailed stick-breaking (spacing weights `U^(−skew)`), sorted.
    /// Consecutive kills are at least one second apart (event logs have
    /// second granularity; kills closer than that are coalesced), so
    /// recorded intervals have a natural ≥ 1 s floor.
    pub fn sample_positions<R: Rng64 + ?Sized>(&self, te: f64, k: u32, rng: &mut R) -> Vec<f64> {
        let mut positions = Vec::with_capacity(k as usize);
        self.sample_positions_into(te, k, rng, &mut positions);
        positions
    }

    /// [`FailureModel::sample_positions`] appended to a caller-provided
    /// buffer — the allocation-free form the replay hot loop uses. Draws
    /// are identical, value for value, to the allocating form.
    ///
    /// The k+1 stick-breaking weights are staged in the tail of `out`
    /// itself and compacted into positions in place, so a warm buffer
    /// costs no allocation at all.
    pub fn sample_positions_into<R: Rng64 + ?Sized>(
        &self,
        te: f64,
        k: u32,
        rng: &mut R,
        out: &mut Vec<f64>,
    ) {
        if k == 0 {
            return;
        }
        // k failures split (0, te) into k+1 spacings.
        let start = out.len();
        let mut total = 0.0;
        for _ in 0..=k {
            let w = rng.next_f64_open().powf(-self.spacing_skew);
            out.push(w);
            total += w;
        }
        let mut acc = 0.0;
        let mut prev = 0.0;
        let mut write = start;
        for i in 0..k as usize {
            let w = out[start + i];
            acc += w / total;
            let p = acc * te;
            // Coalesce sub-second gaps (and keep positions inside (0, te)).
            // `write` never overtakes the weight being read (`write ≤
            // start + i`), so the in-place compaction is safe.
            if p - prev >= 1.0 && p < te {
                out[write] = p;
                write += 1;
                prev = p;
            }
        }
        out.truncate(write);
    }

    /// Draw a full failure plan for a task of length `te`.
    pub fn sample_plan<R: Rng64 + ?Sized>(&self, te: f64, rng: &mut R) -> FailurePlan {
        let k = self.sample_count(te, rng);
        FailurePlan {
            positions: self.sample_positions(te, k, rng),
        }
    }

    /// [`FailureModel::sample_plan`] appended to a caller-provided buffer
    /// (same draws, no allocation on a warm buffer).
    pub fn sample_plan_into<R: Rng64 + ?Sized>(&self, te: f64, rng: &mut R, out: &mut Vec<f64>) {
        let k = self.sample_count(te, rng);
        self.sample_positions_into(te, k, rng, out);
    }

    /// Rough expected uninterrupted interval for a task of length `te`
    /// (`te / (MNOF + 1)`): the Figure 4 ordering statistic.
    pub fn expected_interval(&self, te: f64) -> f64 {
        te / (self.mean_failures(te) + 1.0)
    }
}

/// Shape knobs for a generated workload. [`WorkloadSpec::google_like`] is
/// calibrated to the paper; tests and ablations override single fields.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of jobs to generate.
    pub n_jobs: usize,
    /// Mean job inter-arrival time (seconds); arrivals are Poisson.
    pub mean_interarrival_s: f64,
    /// Fraction of jobs that are bag-of-tasks (the rest are sequential).
    pub bot_fraction: f64,
    /// Sequential jobs draw task counts uniformly from this inclusive range.
    pub st_task_range: (u32, u32),
    /// BoT jobs draw task counts uniformly from this inclusive range.
    pub bot_task_range: (u32, u32),
    /// Median task length (seconds) and multiplicative spread (log-normal).
    pub length_median_s: f64,
    /// Multiplicative spread factor for task lengths.
    pub length_spread: f64,
    /// Clamp range for task lengths (seconds).
    pub length_clamp: (f64, f64),
    /// Fraction of jobs that are long-running services (Google traces mix
    /// short batch tasks with long services; the long tasks are what record
    /// the huge uninterrupted intervals that inflate full-range MTBF in
    /// Table 7).
    pub long_task_fraction: f64,
    /// Median length of the long-service component (seconds).
    pub long_task_median_s: f64,
    /// Multiplicative spread of the long-service component.
    pub long_task_spread: f64,
    /// Clamp range for long-service task lengths (seconds).
    pub long_task_clamp: (f64, f64),
    /// Median task memory (MB) and multiplicative spread (log-normal).
    pub mem_median_mb: f64,
    /// Multiplicative spread factor for memory sizes.
    pub mem_spread: f64,
    /// Clamp range for memory sizes (MB).
    pub mem_clamp: (f64, f64),
    /// Unnormalized weights of priorities 1..=12 (Google workloads are
    /// dominated by low priorities).
    pub priority_weights: [f64; NUM_PRIORITIES],
    /// Probability that a job's priority flips mid-execution (the Figure 14
    /// experiment sets this to 1.0; everything else uses 0.0).
    pub priority_flip_prob: f64,
    /// Which inter-failure law task kill plans are drawn from
    /// ([`crate::failure`]). The default
    /// [`crate::failure::FailureModelSpec::Exponential`] is the
    /// bit-identical legacy calibrated replay; other models keep the
    /// per-priority MNOF calibration and swap the interval distribution.
    pub failure_model: crate::failure::FailureModelSpec,
}

impl WorkloadSpec {
    /// The paper-calibrated default: short small jobs, low priorities
    /// dominant, 40 % BoT, a small long-service population.
    pub fn google_like(n_jobs: usize) -> Self {
        Self {
            n_jobs,
            mean_interarrival_s: 8.0, // ~10k jobs/day, the paper's one-day scale
            bot_fraction: 0.4,
            st_task_range: (1, 4),
            bot_task_range: (2, 12),
            length_median_s: 420.0,
            length_spread: 2.6,
            length_clamp: (30.0, 21_600.0), // 30 s .. 6 h (Figure 8(b) x-range)
            long_task_fraction: 0.08,
            long_task_median_s: 60_000.0,
            long_task_spread: 2.2,
            long_task_clamp: (7_200.0, 250_000.0), // 2 h .. ~3 days
            mem_median_mb: 90.0,
            mem_spread: 2.2,
            mem_clamp: (10.0, 960.0), // Figure 8(a) x-range, 1 GB VMs
            priority_weights: [
                0.21, 0.17, 0.11, 0.08, 0.06, 0.05, 0.05, 0.04, 0.09, 0.06, 0.04, 0.04,
            ],
            priority_flip_prob: 0.0,
            failure_model: crate::failure::FailureModelSpec::Exponential,
        }
    }

    /// Same workload but with every job flipping priority mid-run — the
    /// Figure 14 dynamic-vs-static scenario.
    pub fn with_priority_flips(mut self) -> Self {
        self.priority_flip_prob = 1.0;
        self
    }

    /// Same workload under a different failure model (see
    /// [`crate::failure`]).
    pub fn with_failure_model(mut self, model: crate::failure::FailureModelSpec) -> Self {
        self.failure_model = model;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_stats::rng::Xoshiro256StarStar;

    #[test]
    #[should_panic(expected = "priority must be in 1..=12")]
    fn rejects_priority_zero() {
        FailureModel::for_priority(0);
    }

    #[test]
    #[should_panic(expected = "priority must be in 1..=12")]
    fn rejects_priority_thirteen() {
        FailureModel::for_priority(13);
    }

    #[test]
    fn all_priorities_construct() {
        for p in 1..=12u8 {
            let m = FailureModel::for_priority(p);
            assert_eq!(m.priority(), p);
            assert!(m.mean_failures(500.0) > 0.0);
        }
    }

    #[test]
    fn mnof_nearly_length_independent() {
        // The Table 7 property: MNOF drifts only mildly with task length
        // (paper: 1.06 → 1.27 over ~50× for priority 2).
        let m = FailureModel::for_priority(2);
        let short = m.mean_failures(400.0);
        let long = m.mean_failures(20_000.0);
        assert!(long / short < 1.35, "drift {} → {}", short, long);
        assert!(long > short, "some upward drift expected");
    }

    #[test]
    fn sampled_count_matches_mean() {
        let mut rng = Xoshiro256StarStar::new(1);
        for p in [1u8, 2, 7, 10] {
            let m = FailureModel::for_priority(p);
            let n = 40_000;
            let te = 600.0;
            let mean: f64 = (0..n)
                .map(|_| m.sample_count(te, &mut rng) as f64)
                .sum::<f64>()
                / n as f64;
            let expect = m.mean_failures(te);
            assert!(
                (mean - expect).abs() / expect < 0.05,
                "priority {p}: sampled {mean} vs expected {expect}"
            );
        }
    }

    #[test]
    fn priority10_fails_most() {
        let p10 = FailureModel::for_priority(10).mean_failures(500.0);
        for p in (1..=12u8).filter(|&p| p != 10) {
            let m = FailureModel::for_priority(p).mean_failures(500.0);
            assert!(p10 > 5.0 * m, "p10 {p10} should dwarf p{p} {m}");
        }
    }

    #[test]
    fn interval_ordering_matches_figure4() {
        // Expected uninterrupted interval grows with priority among 1..=6
        // (p10 is the deliberate exception, shortest of all).
        let te = 1000.0;
        let iv: Vec<f64> = (1..=12)
            .map(|p| FailureModel::for_priority(p).expected_interval(te))
            .collect();
        assert!(iv[1] < iv[6], "p2 fails more than p7");
        for (i, &v) in iv.iter().enumerate() {
            if i != 9 {
                assert!(iv[9] < v, "p10 must have the shortest intervals: {iv:?}");
            }
        }
    }

    #[test]
    fn positions_sorted_and_in_range() {
        let m = FailureModel::for_priority(2);
        let mut rng = Xoshiro256StarStar::new(7);
        for _ in 0..200 {
            let plan = m.sample_plan(800.0, &mut rng);
            let mut prev = 0.0;
            for &p in &plan.positions {
                assert!(p > prev && p < 800.0, "position {p} out of order/range");
                prev = p;
            }
            assert_eq!(plan.count() as usize, plan.positions.len());
        }
    }

    #[test]
    fn intervals_sum_below_te() {
        let m = FailureModel::for_priority(10);
        let mut rng = Xoshiro256StarStar::new(9);
        let plan = m.sample_plan(1000.0, &mut rng);
        let intervals = plan.intervals();
        assert_eq!(intervals.len(), plan.positions.len());
        let total: f64 = intervals.iter().sum();
        assert!(total < 1000.0);
        assert!(intervals.iter().all(|&iv| iv > 0.0));
    }

    #[test]
    fn zero_failures_possible_for_quiet_priorities() {
        let m = FailureModel::for_priority(12);
        let mut rng = Xoshiro256StarStar::new(3);
        let zeros = (0..1000)
            .filter(|_| m.sample_count(500.0, &mut rng) == 0)
            .count();
        // zero_prob = 0.72: roughly 720 of 1000.
        assert!((650..790).contains(&zeros), "zeros = {zeros}");
    }

    #[test]
    fn heavy_spacing_skew_creates_interval_spread() {
        // The stick-breaking skew should make max/min spacing ratios large.
        let m = FailureModel::for_priority(2);
        let mut rng = Xoshiro256StarStar::new(11);
        let mut big_ratio = 0usize;
        let mut n = 0usize;
        for _ in 0..500 {
            let pos = m.sample_positions(1000.0, 3, &mut rng);
            let plan = FailurePlan { positions: pos };
            let iv = plan.intervals();
            let max = iv.iter().cloned().fold(0.0, f64::max);
            let min = iv.iter().cloned().fold(f64::INFINITY, f64::min);
            if max / min > 5.0 {
                big_ratio += 1;
            }
            n += 1;
        }
        // With skew 0.75 a 5× spread within a task is common,
        // which uniform spacing would essentially never produce.
        assert!(
            big_ratio > n * 12 / 100,
            "heavy spacings expected: {big_ratio}/{n}"
        );
    }

    #[test]
    fn spec_defaults_sane() {
        let s = WorkloadSpec::google_like(100);
        assert_eq!(s.n_jobs, 100);
        assert!((s.priority_weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(s.bot_fraction > 0.0 && s.bot_fraction < 1.0);
        assert_eq!(s.priority_flip_prob, 0.0);
        assert_eq!(s.clone().with_priority_flips().priority_flip_prob, 1.0);
    }
}
