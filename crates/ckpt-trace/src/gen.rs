//! The trace generator: jobs, tasks, arrivals, priorities, and optional
//! mid-run priority flips, all drawn deterministically from a seed.

use crate::failure::FailureModelSpec;
use crate::spec::{WorkloadSpec, NUM_PRIORITIES};
use ckpt_stats::dist::{ContinuousDist, Exponential, LogNormal};
use ckpt_stats::rng::{Rng64, SplitMix64, Xoshiro256StarStar};

/// A workload spec field rejected by [`generate`]: the field name and why.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadError {
    /// The offending [`WorkloadSpec`] field(s).
    pub field: &'static str,
    /// What was wrong with the value.
    pub detail: String,
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workload spec field {}: {}", self.field, self.detail)
    }
}

impl std::error::Error for WorkloadError {}

/// Job structure, per the paper's §5.1: "there are two types of job
/// structures, either sequential tasks (ST) or bag-of-tasks (BoT)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStructure {
    /// Tasks run one after another (a chain).
    Sequential,
    /// Tasks run in parallel (MapReduce-style).
    BagOfTasks,
}

impl JobStructure {
    /// Short label for reports ("ST" / "BoT").
    pub fn label(&self) -> &'static str {
        match self {
            JobStructure::Sequential => "ST",
            JobStructure::BagOfTasks => "BoT",
        }
    }
}

/// One task of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Globally unique task id.
    pub id: u64,
    /// Owning job id.
    pub job: u64,
    /// Index within the job (execution order for ST jobs).
    pub idx: u32,
    /// Productive length `Te` (seconds) — execution time absent failures and
    /// checkpointing.
    pub length_s: f64,
    /// Memory footprint (MB) — drives checkpoint/restart costs.
    pub mem_mb: f64,
}

/// A planned mid-run priority change (the Figure 14 scenario).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityFlip {
    /// Fraction of the job's total productive work after which the flip
    /// occurs (the paper flips "in the middle of its execution": 0.5).
    pub at_fraction: f64,
    /// The new priority.
    pub new_priority: u8,
}

/// One job: an arrival time, a priority, a structure, and its tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Globally unique job id.
    pub id: u64,
    /// Submission time (seconds since trace start).
    pub arrival_s: f64,
    /// Google-style priority 1..=12.
    pub priority: u8,
    /// ST or BoT.
    pub structure: JobStructure,
    /// The job's tasks (ST jobs execute them in `idx` order).
    pub tasks: Vec<TaskSpec>,
    /// Optional planned priority flip (Figure 14's experiment).
    pub flip: Option<PriorityFlip>,
}

impl JobSpec {
    /// Total productive work across tasks (seconds).
    pub fn total_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.length_s).sum()
    }

    /// Largest single-task memory footprint (MB).
    pub fn max_mem(&self) -> f64 {
        self.tasks.iter().fold(0.0, |m, t| m.max(t.mem_mb))
    }
}

/// A generated trace: the deterministic product of `(spec, seed)`.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The jobs, sorted by arrival time.
    pub jobs: Vec<JobSpec>,
    /// The seed the trace was generated from (recorded for reproducibility).
    pub seed: u64,
    /// The failure model every consumer (history sampler, both engines)
    /// draws task kill plans from. [`FailureModelSpec::Exponential`] is the
    /// legacy calibrated replay; see [`crate::failure`].
    pub failure_model: FailureModelSpec,
}

impl Trace {
    /// Total number of tasks across all jobs.
    pub fn task_count(&self) -> usize {
        self.jobs.iter().map(|j| j.tasks.len()).sum()
    }

    /// Iterate all tasks with their owning job.
    pub fn tasks(&self) -> impl Iterator<Item = (&JobSpec, &TaskSpec)> {
        self.jobs
            .iter()
            .flat_map(|j| j.tasks.iter().map(move |t| (j, t)))
    }

    /// Jobs of one structure.
    pub fn jobs_with_structure(&self, s: JobStructure) -> impl Iterator<Item = &JobSpec> {
        self.jobs.iter().filter(move |j| j.structure == s)
    }

    /// The RNG stream that governs task `task_id`'s failure process. Both
    /// the history sampler and the simulator use this, so a task sees the
    /// *same* failure-interval sequence under every policy — the common
    /// random numbers that make the paper's paired comparisons (Figure 13)
    /// meaningful.
    pub fn failure_stream(&self, task_id: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::stream(SplitMix64::mix(self.seed ^ 0xFA11_57EE), task_id)
    }
}

fn pick_weighted<R: Rng64>(rng: &mut R, weights: &[f64; NUM_PRIORITIES]) -> u8 {
    let total: f64 = weights.iter().sum();
    let mut u = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return (i + 1) as u8;
        }
    }
    NUM_PRIORITIES as u8
}

fn sample_clamped<R: Rng64>(rng: &mut R, d: &LogNormal, clamp: (f64, f64)) -> f64 {
    d.sample(rng).clamp(clamp.0, clamp.1)
}

fn lognormal_field(
    median: f64,
    spread: f64,
    field: &'static str,
) -> Result<LogNormal, WorkloadError> {
    LogNormal::from_median_spread(median, spread).map_err(|e| WorkloadError {
        field,
        detail: e.to_string(),
    })
}

/// Generate a trace from a workload spec and a seed. Deterministic:
/// identical `(spec, seed)` pairs produce identical traces.
///
/// Invalid spec values (non-positive inter-arrival, degenerate length /
/// memory distributions) are reported as a named-field [`WorkloadError`]
/// instead of panicking, so a bad scenario file or CLI flag surfaces as a
/// normal error.
pub fn generate(spec: &WorkloadSpec, seed: u64) -> Result<Trace, WorkloadError> {
    let mut rng = Xoshiro256StarStar::stream(seed, 0x7ACE);
    let interarrival =
        Exponential::from_mean(spec.mean_interarrival_s).map_err(|e| WorkloadError {
            field: "mean_interarrival_s",
            detail: e.to_string(),
        })?;
    let length_dist = lognormal_field(
        spec.length_median_s,
        spec.length_spread,
        "length_median_s/length_spread",
    )?;
    let long_dist = lognormal_field(
        spec.long_task_median_s,
        spec.long_task_spread,
        "long_task_median_s/long_task_spread",
    )?;
    let mem_dist = lognormal_field(
        spec.mem_median_mb,
        spec.mem_spread,
        "mem_median_mb/mem_spread",
    )?;

    let mut jobs = Vec::with_capacity(spec.n_jobs);
    let mut clock = 0.0;
    let mut next_task_id = 0u64;
    for job_id in 0..spec.n_jobs as u64 {
        clock += interarrival.sample(&mut rng);
        let structure = if rng.next_bool(spec.bot_fraction) {
            JobStructure::BagOfTasks
        } else {
            JobStructure::Sequential
        };
        let (lo, hi) = match structure {
            JobStructure::Sequential => spec.st_task_range,
            JobStructure::BagOfTasks => spec.bot_task_range,
        };
        let n_tasks = lo + rng.next_range((hi - lo + 1) as u64) as u32;
        let priority = pick_weighted(&mut rng, &spec.priority_weights);
        // Long-running service jobs: the whole job draws from the long
        // component (services are jobs, not stray tasks inside batch jobs).
        let is_long = rng.next_bool(spec.long_task_fraction);
        let tasks: Vec<TaskSpec> = (0..n_tasks)
            .map(|idx| {
                let length_s = if is_long {
                    sample_clamped(&mut rng, &long_dist, spec.long_task_clamp)
                } else {
                    sample_clamped(&mut rng, &length_dist, spec.length_clamp)
                };
                let t = TaskSpec {
                    id: next_task_id,
                    job: job_id,
                    idx,
                    length_s,
                    mem_mb: sample_clamped(&mut rng, &mem_dist, spec.mem_clamp),
                };
                next_task_id += 1;
                t
            })
            .collect();
        let flip = if rng.next_bool(spec.priority_flip_prob) {
            // Flip to a uniformly random *different* priority at half the
            // job's work, as in the paper's Figure 14 setup.
            let mut new_p = priority;
            while new_p == priority {
                new_p = 1 + rng.next_range(NUM_PRIORITIES as u64) as u8;
            }
            Some(PriorityFlip {
                at_fraction: 0.5,
                new_priority: new_p,
            })
        } else {
            None
        };
        jobs.push(JobSpec {
            id: job_id,
            arrival_s: clock,
            priority,
            structure,
            tasks,
            flip,
        });
    }
    Ok(Trace {
        jobs,
        seed,
        failure_model: spec.failure_model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::google_like(500)
    }

    #[test]
    fn deterministic_generation() {
        let spec = small_spec();
        let a = generate(&spec, 42).expect("valid workload spec");
        let b = generate(&spec, 42).expect("valid workload spec");
        assert_eq!(a.jobs, b.jobs);
        let c = generate(&spec, 43).expect("valid workload spec");
        assert_ne!(a.jobs, c.jobs);
    }

    #[test]
    fn job_count_and_sorted_arrivals() {
        let t = generate(&small_spec(), 7).expect("valid workload spec");
        assert_eq!(t.jobs.len(), 500);
        for w in t.jobs.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s);
        }
    }

    #[test]
    fn task_ids_unique_and_dense() {
        let t = generate(&small_spec(), 7).expect("valid workload spec");
        let mut ids: Vec<u64> = t.tasks().map(|(_, task)| task.id).collect();
        ids.sort_unstable();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(*id, i as u64);
        }
    }

    #[test]
    fn lengths_and_memory_clamped() {
        let spec = small_spec();
        let t = generate(&spec, 11).expect("valid workload spec");
        let mut long_tasks = 0usize;
        let mut total = 0usize;
        for (_, task) in t.tasks() {
            let in_batch =
                task.length_s >= spec.length_clamp.0 && task.length_s <= spec.length_clamp.1;
            let in_long =
                task.length_s >= spec.long_task_clamp.0 && task.length_s <= spec.long_task_clamp.1;
            assert!(
                in_batch || in_long,
                "length {} outside both clamps",
                task.length_s
            );
            if task.length_s > spec.length_clamp.1 {
                long_tasks += 1;
            }
            total += 1;
            assert!(task.mem_mb >= spec.mem_clamp.0 && task.mem_mb <= spec.mem_clamp.1);
        }
        // The long-service component exists but stays a small minority.
        assert!(long_tasks > 0);
        assert!((long_tasks as f64) < 0.15 * total as f64);
    }

    #[test]
    fn structure_mix_matches_fraction() {
        let t = generate(&WorkloadSpec::google_like(4000), 3).expect("valid workload spec");
        let bot = t.jobs_with_structure(JobStructure::BagOfTasks).count();
        let frac = bot as f64 / t.jobs.len() as f64;
        assert!((frac - 0.4).abs() < 0.03, "bot fraction = {frac}");
    }

    #[test]
    fn priorities_cover_range_weighted_low() {
        let t = generate(&WorkloadSpec::google_like(8000), 5).expect("valid workload spec");
        let mut counts = [0usize; NUM_PRIORITIES];
        for j in &t.jobs {
            assert!((1..=12).contains(&j.priority));
            counts[(j.priority - 1) as usize] += 1;
        }
        // Low priorities dominate (weights 0.21, 0.17 for p1, p2).
        assert!(counts[0] > counts[7], "counts = {counts:?}");
        // Every priority appears at this scale.
        assert!(counts.iter().all(|&c| c > 0), "counts = {counts:?}");
    }

    #[test]
    fn task_counts_respect_ranges() {
        let spec = small_spec();
        let t = generate(&spec, 13).expect("valid workload spec");
        for j in &t.jobs {
            let (lo, hi) = match j.structure {
                JobStructure::Sequential => spec.st_task_range,
                JobStructure::BagOfTasks => spec.bot_task_range,
            };
            assert!(j.tasks.len() as u32 >= lo && j.tasks.len() as u32 <= hi);
        }
    }

    #[test]
    fn no_flips_by_default_all_flips_when_asked() {
        let t = generate(&small_spec(), 17).expect("valid workload spec");
        assert!(t.jobs.iter().all(|j| j.flip.is_none()));
        let t2 = generate(&small_spec().with_priority_flips(), 17).expect("valid workload spec");
        assert!(t2.jobs.iter().all(|j| j.flip.is_some()));
        for j in &t2.jobs {
            let f = j.flip.unwrap();
            assert_eq!(f.at_fraction, 0.5);
            assert_ne!(f.new_priority, j.priority);
            assert!((1..=12).contains(&f.new_priority));
        }
    }

    #[test]
    fn failure_stream_is_per_task_deterministic() {
        use ckpt_stats::rng::Rng64;
        let t = generate(&small_spec(), 19).expect("valid workload spec");
        let mut s1 = t.failure_stream(5);
        let mut s1b = t.failure_stream(5);
        let mut s2 = t.failure_stream(6);
        let a: Vec<u64> = (0..4).map(|_| s1.next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|_| s1b.next_u64()).collect();
        let c: Vec<u64> = (0..4).map(|_| s2.next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn job_helpers() {
        let t = generate(&small_spec(), 23).expect("valid workload spec");
        let j = &t.jobs[0];
        let total: f64 = j.tasks.iter().map(|t| t.length_s).sum();
        assert!((j.total_work() - total).abs() < 1e-9);
        assert!(j.max_mem() >= j.tasks[0].mem_mb.min(j.max_mem()));
        assert_eq!(JobStructure::Sequential.label(), "ST");
        assert_eq!(JobStructure::BagOfTasks.label(), "BoT");
    }
}
