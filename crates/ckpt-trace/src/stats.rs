//! "Historical" failure statistics over a generated trace.
//!
//! The paper estimates MNOF and MTBF "based on historical task events in the
//! trace" (§5.1). Here the history of a task is its pre-planned failure
//! events (see [`crate::spec::FailureModel`]): the recorded failure count is
//! the plan's kill count, and the recorded uninterrupted intervals are the
//! gaps between consecutive kills.
//!
//! Two properties of this construction carry the paper's argument:
//!
//! * **Length scaling of intervals** — kill positions scale with task
//!   length, so intervals recorded by short tasks are short while long
//!   service tasks record huge ones. MTBF estimated over short tasks is
//!   modest; over all tasks it is tail-dominated (Table 7's 179 s vs 4199 s
//!   for priority 2) — the bias that breaks Young's formula.
//! * **Common random numbers** — the history uses the same per-task RNG
//!   stream ([`Trace::failure_stream`]) as the simulator, so "precise
//!   prediction" oracles (Table 6) are exact and paired policy comparisons
//!   (Figure 13) replay identical kill events, like the paper's `kill -9`
//!   trace replay.

use crate::gen::{JobSpec, TaskSpec, Trace};
use ckpt_policy::estimator::{GroupedEstimator, TaskHistory};
use std::collections::{HashMap, HashSet};

/// A task's history along with its identity (so experiments can build
/// per-task oracles).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskRecord {
    /// The task's global id.
    pub task_id: u64,
    /// The owning job's id.
    pub job_id: u64,
    /// The recorded failure history.
    pub history: TaskHistory,
}

/// Compute the failure history of one task: its pre-planned kill events,
/// drawn from the task's dedicated stream (identical to what the simulator
/// replays), under the trace's failure model — so the estimators always
/// see data from the same interval law the simulators replay, whatever
/// that law is.
pub fn history_for_task(trace: &Trace, job: &JobSpec, task: &TaskSpec) -> TaskHistory {
    let mut rng = trace.failure_stream(task.id);
    let plan = crate::failure::sample_task_plan(
        trace.failure_model,
        job.priority,
        task.length_s,
        &mut rng,
    );
    TaskHistory {
        priority: job.priority,
        task_length: task.length_s,
        failure_count: plan.count(),
        intervals: plan.intervals(),
    }
}

/// Histories for every task in the trace.
pub fn trace_histories(trace: &Trace) -> Vec<TaskRecord> {
    trace
        .tasks()
        .map(|(job, task)| TaskRecord {
            task_id: task.id,
            job_id: job.id,
            history: history_for_task(trace, job, task),
        })
        .collect()
}

/// [`trace_histories`] derived from an already-sampled
/// [`crate::plan::FailurePlanArena`] instead of re-drawing every plan:
/// the arena holds the exact plans [`history_for_task`] would sample (same
/// streams, same model), so the derived histories are identical — this is
/// how the sweep executor shares one sampling pass between the estimator
/// prep and every replay cell.
pub fn trace_histories_from_plans(
    trace: &Trace,
    plans: &crate::plan::FailurePlanArena,
) -> Vec<TaskRecord> {
    trace
        .tasks()
        .map(|(job, task)| {
            let kills = plans.kills(task.id);
            TaskRecord {
                task_id: task.id,
                job_id: job.id,
                history: TaskHistory {
                    priority: job.priority,
                    task_length: task.length_s,
                    failure_count: kills.len() as u32,
                    intervals: crate::spec::intervals_of(kills),
                },
            }
        })
        .collect()
}

/// Ids of jobs where at least `fraction` of tasks suffered ≥ 1 failure —
/// the paper's sample-job selection rule ("only jobs half of whose tasks
/// (at least) suffer from a failure event are selected", §5.1 uses 0.5).
pub fn failure_prone_jobs(records: &[TaskRecord], fraction: f64) -> HashSet<u64> {
    let mut per_job: HashMap<u64, (usize, usize)> = HashMap::new();
    for r in records {
        let e = per_job.entry(r.job_id).or_insert((0, 0));
        e.0 += 1;
        if r.history.failure_count > 0 {
            e.1 += 1;
        }
    }
    per_job
        .into_iter()
        .filter(|(_, (total, failed))| *failed as f64 >= fraction * *total as f64)
        .map(|(id, _)| id)
        .collect()
}

/// Build a priority-grouped MNOF/MTBF estimator from task records (the
/// Table 7 machinery).
pub fn estimator_from_records(records: &[TaskRecord]) -> GroupedEstimator {
    let mut est = GroupedEstimator::new();
    est.extend(records.iter().map(|r| r.history.clone()));
    est
}

/// Uninterrupted-interval samples pooled per priority — the data behind
/// Figure 4's per-priority CDFs.
pub fn interval_samples_by_priority(records: &[TaskRecord]) -> HashMap<u8, Vec<f64>> {
    let mut map: HashMap<u8, Vec<f64>> = HashMap::new();
    for r in records {
        map.entry(r.history.priority)
            .or_default()
            .extend_from_slice(&r.history.intervals);
    }
    map
}

/// All uninterrupted-interval samples pooled — the data behind Figure 5.
pub fn pooled_intervals(records: &[TaskRecord]) -> Vec<f64> {
    records
        .iter()
        .flat_map(|r| r.history.intervals.iter().copied())
        .collect()
}

/// Per-task oracle lookup: `task_id → (failure_count, mean_interval)`.
/// `mean_interval` is `None` for tasks that recorded no intervals.
/// This is the "precise prediction" input of the paper's Table 6.
pub fn per_task_oracle(records: &[TaskRecord]) -> HashMap<u64, (u32, Option<f64>)> {
    records
        .iter()
        .map(|r| {
            let mtbf = if r.history.intervals.is_empty() {
                None
            } else {
                Some(r.history.intervals.iter().sum::<f64>() / r.history.intervals.len() as f64)
            };
            (r.task_id, (r.history.failure_count, mtbf))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::spec::WorkloadSpec;

    fn trace() -> Trace {
        generate(&WorkloadSpec::google_like(800), 2024).expect("valid workload spec")
    }

    #[test]
    fn histories_deterministic() {
        let t = trace();
        let a = trace_histories(&t);
        let b = trace_histories(&t);
        assert_eq!(a, b);
    }

    #[test]
    fn recorded_intervals_shorter_than_task() {
        // The censoring property that drives Table 7's MTBF inflation.
        let t = trace();
        for r in trace_histories(&t) {
            for &iv in &r.history.intervals {
                assert!(
                    iv < r.history.task_length,
                    "interval {iv} ≥ task length {}",
                    r.history.task_length
                );
            }
            let total: f64 = r.history.intervals.iter().sum();
            assert!(total <= r.history.task_length);
            assert_eq!(r.history.failure_count as usize, r.history.intervals.len());
        }
    }

    #[test]
    fn mtbf_inflates_with_length_limit() {
        // Table 7's headline shape: MTBF grows dramatically as the length
        // limit is lifted (the paper measures 179 s → 4199 s for priority 2;
        // pooled here across priorities for sample-size robustness).
        let t = generate(&WorkloadSpec::google_like(4000), 77).expect("valid workload spec");
        let recs = trace_histories(&t);
        let est = estimator_from_records(&recs);
        let short = est.estimate_pooled(1000.0).unwrap();
        let all = est.estimate_pooled(f64::INFINITY).unwrap();
        assert!(
            all.mtbf > 4.0 * short.mtbf,
            "expected strong inflation: short {} vs all {}",
            short.mtbf,
            all.mtbf
        );
    }

    #[test]
    fn mnof_nearly_length_independent() {
        // The paper's key Table 7 observation: MNOF "would not change a lot
        // with task lengths, rather than MTBF".
        let t = generate(&WorkloadSpec::google_like(4000), 78).expect("valid workload spec");
        let recs = trace_histories(&t);
        let est = estimator_from_records(&recs);
        let short = est.estimate_pooled(1000.0).unwrap();
        let all = est.estimate_pooled(f64::INFINITY).unwrap();
        let ratio = all.mnof / short.mnof;
        assert!(
            ratio > 0.7 && ratio < 1.6,
            "MNOF should be nearly length-free: short {} vs all {}",
            short.mnof,
            all.mnof
        );
    }

    #[test]
    fn priority10_fails_most() {
        let t = generate(&WorkloadSpec::google_like(6000), 79).expect("valid workload spec");
        let recs = trace_histories(&t);
        let est = estimator_from_records(&recs);
        let p10 = est.estimate(10, f64::INFINITY).unwrap();
        let p2 = est.estimate(2, f64::INFINITY).unwrap();
        assert!(p10.mnof > 3.0 * p2.mnof, "p10 {:?} vs p2 {:?}", p10, p2);
    }

    #[test]
    fn failure_prone_selection() {
        let t = trace();
        let recs = trace_histories(&t);
        let selected = failure_prone_jobs(&recs, 0.5);
        assert!(!selected.is_empty());
        assert!(selected.len() < t.jobs.len());
        // Every selected job really has ≥ half its tasks failing.
        for job in &t.jobs {
            if selected.contains(&job.id) {
                let rs: Vec<&TaskRecord> = recs.iter().filter(|r| r.job_id == job.id).collect();
                let failed = rs.iter().filter(|r| r.history.failure_count > 0).count();
                assert!(failed * 2 >= rs.len());
            }
        }
    }

    #[test]
    fn oracle_consistent_with_history() {
        let t = trace();
        let recs = trace_histories(&t);
        let oracle = per_task_oracle(&recs);
        assert_eq!(oracle.len(), recs.len());
        for r in &recs {
            let (count, mtbf) = oracle[&r.task_id];
            assert_eq!(count, r.history.failure_count);
            assert_eq!(mtbf.is_some(), !r.history.intervals.is_empty());
        }
    }

    #[test]
    fn interval_samples_grouped() {
        let t = trace();
        let recs = trace_histories(&t);
        let by_p = interval_samples_by_priority(&recs);
        let pooled = pooled_intervals(&recs);
        let total: usize = by_p.values().map(|v| v.len()).sum();
        assert_eq!(total, pooled.len());
        assert!(!pooled.is_empty());
    }

    #[test]
    fn pooled_intervals_short_mass_matches_paper() {
        // Figure 5: > 63 % of recorded failure intervals below 1000 s.
        let t = generate(&WorkloadSpec::google_like(3000), 80).expect("valid workload spec");
        let recs = trace_histories(&t);
        let pooled = pooled_intervals(&recs);
        let below = pooled.iter().filter(|&&x| x < 1000.0).count();
        let frac = below as f64 / pooled.len() as f64;
        assert!(frac > 0.63, "fraction below 1000 s = {frac}");
    }
}
