//! The failure-plan arena: every task's pre-planned kill events, sampled
//! once and stored flat, plus the post-sampling RNG stream states that
//! make replays resumable.
//!
//! Kill plans are a pure function of `(trace seed, failure model, task id,
//! priority, task length)` — the *policy* never enters the draw (that is
//! precisely the paper's common-random-numbers methodology: every policy
//! replays the same kills, which makes the Figure 13 paired comparisons
//! exact). A sweep that evaluates one workload under N policy/cost cells
//! therefore re-samples N identical plan sets; this arena samples them
//! once per `(trace, failure model)` and shares the result across every
//! cell, bit-identically.
//!
//! Two details make the sharing exact rather than approximate:
//!
//! * Positions are stored in **one flat buffer** with per-task spans, so a
//!   replay borrows a `&[f64]` instead of materializing a per-task `Vec`.
//! * When the trace contains mid-run priority flips, the executor draws a
//!   *fresh* plan for the remaining work from the task's stream — draws
//!   that come **after** the plan's own. The arena captures each task's
//!   stream state right after sampling ([`Xoshiro256StarStar::state`]),
//!   so an arena-backed replay resumes the stream exactly where a
//!   fresh-sampling replay would be. Traces without flips never touch the
//!   stream again, and the capture is skipped.

use crate::failure::sample_task_plan_into;
use crate::gen::Trace;
use ckpt_stats::rng::Xoshiro256StarStar;

/// Every task's kill plan for one `(trace, failure model)` pair, stored
/// flat; see the module docs.
#[derive(Debug, Clone)]
pub struct FailurePlanArena {
    /// All kill positions, task after task (each task's run is sorted).
    positions: Vec<f64>,
    /// `(offset, len)` into `positions`, indexed by task id.
    spans: Vec<(u32, u32)>,
    /// Post-sampling stream state per task — captured only when the trace
    /// contains priority flips (the only consumer of post-plan draws).
    rng_states: Option<Vec<[u64; 4]>>,
}

impl FailurePlanArena {
    /// Sample every task's plan from its own failure stream, exactly as
    /// [`crate::stats::history_for_task`] and the fast replay do.
    pub fn build(trace: &Trace) -> Self {
        let max_id = trace
            .tasks()
            .map(|(_, t)| t.id)
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);
        let needs_states = trace.jobs.iter().any(|j| j.flip.is_some());
        let mut positions = Vec::new();
        let mut spans = vec![(0u32, 0u32); max_id];
        let mut rng_states = needs_states.then(|| vec![[0u64; 4]; max_id]);
        for (job, task) in trace.tasks() {
            let mut rng = trace.failure_stream(task.id);
            let start = positions.len();
            sample_task_plan_into(
                trace.failure_model,
                job.priority,
                task.length_s,
                &mut rng,
                &mut positions,
            );
            assert!(
                positions.len() <= u32::MAX as usize,
                "failure-plan arena overflow: more than u32::MAX kill positions"
            );
            spans[task.id as usize] = (start as u32, (positions.len() - start) as u32);
            if let Some(states) = &mut rng_states {
                states[task.id as usize] = rng.state();
            }
        }
        Self {
            positions,
            spans,
            rng_states,
        }
    }

    /// The kill positions of task `task_id` (empty for tasks with no
    /// planned failures).
    #[inline]
    pub fn kills(&self, task_id: u64) -> &[f64] {
        match self.spans.get(task_id as usize) {
            Some(&(off, len)) => &self.positions[off as usize..(off + len) as usize],
            None => &[],
        }
    }

    /// Whether post-sampling stream states were captured (true exactly
    /// when the trace contains priority flips).
    #[inline]
    pub fn captures_streams(&self) -> bool {
        self.rng_states.is_some()
    }

    /// Resume task `task_id`'s failure stream from right after its plan
    /// was sampled — the state a fresh-sampling replay would be in when
    /// the executor starts. `None` when states were not captured (traces
    /// without flips: the stream is never consumed post-plan).
    pub fn resume_stream(&self, task_id: u64) -> Option<Xoshiro256StarStar> {
        self.rng_states
            .as_ref()
            .map(|s| Xoshiro256StarStar::from_state(s[task_id as usize]))
    }

    /// Number of task slots (max task id + 1).
    #[inline]
    pub fn task_slots(&self) -> usize {
        self.spans.len()
    }

    /// Total planned kills across all tasks.
    #[inline]
    pub fn total_kills(&self) -> usize {
        self.positions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::sample_task_plan;
    use crate::gen::generate;
    use crate::spec::WorkloadSpec;
    use ckpt_stats::rng::Rng64;

    #[test]
    fn arena_matches_fresh_sampling_for_every_task() {
        let trace = generate(&WorkloadSpec::google_like(200), 9).expect("valid spec");
        let arena = FailurePlanArena::build(&trace);
        assert!(!arena.captures_streams(), "no flips ⇒ no states");
        for (job, task) in trace.tasks() {
            let mut rng = trace.failure_stream(task.id);
            let fresh =
                sample_task_plan(trace.failure_model, job.priority, task.length_s, &mut rng);
            assert_eq!(arena.kills(task.id), fresh.positions.as_slice());
        }
        assert_eq!(arena.task_slots(), trace.task_count());
    }

    #[test]
    fn flip_traces_capture_resumable_states() {
        let trace =
            generate(&WorkloadSpec::google_like(80).with_priority_flips(), 11).expect("valid spec");
        let arena = FailurePlanArena::build(&trace);
        assert!(arena.captures_streams());
        for (job, task) in trace.tasks() {
            let mut rng = trace.failure_stream(task.id);
            let _ = sample_task_plan(trace.failure_model, job.priority, task.length_s, &mut rng);
            let mut resumed = arena.resume_stream(task.id).expect("states captured");
            // The resumed stream continues exactly where fresh sampling
            // left off.
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn arena_is_model_sensitive() {
        let spec = WorkloadSpec::google_like(120);
        let base = FailurePlanArena::build(&generate(&spec, 5).expect("valid spec"));
        let pareto = FailurePlanArena::build(
            &generate(
                &spec
                    .clone()
                    .with_failure_model(crate::failure::FailureModelSpec::Pareto {
                        shape: 1.5,
                        scale: 1.0,
                    }),
                5,
            )
            .expect("valid spec"),
        );
        assert_ne!(base.total_kills(), 0);
        // Same trace shape, different interval law ⇒ different plans.
        let differs = (0..base.task_slots() as u64).any(|id| base.kills(id) != pareto.kills(id));
        assert!(differs, "pareto arena replayed the default plans");
    }

    #[test]
    fn empty_trace_is_fine() {
        let trace = Trace {
            jobs: Vec::new(),
            seed: 1,
            failure_model: Default::default(),
        };
        let arena = FailurePlanArena::build(&trace);
        assert_eq!(arena.task_slots(), 0);
        assert_eq!(arena.kills(42), &[] as &[f64]);
        assert!(arena.resume_stream(0).is_none());
    }
}
