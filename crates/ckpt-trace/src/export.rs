//! Trace export/import: a flat CSV format so generated workloads can be
//! inspected, archived, or consumed by external tools, and external traces
//! (e.g. parsed from the real Google cluster data) can be replayed through
//! the simulator.
//!
//! Format: one row per task, job attributes repeated —
//! `job_id,arrival_s,priority,structure,flip_fraction,flip_priority,task_id,task_idx,length_s,mem_mb`
//! with a `# seed=<seed>` comment line carrying the RNG seed (so failure
//! streams reproduce).

use crate::failure::FailureModelSpec;
use crate::gen::{JobSpec, JobStructure, PriorityFlip, TaskSpec, Trace};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

/// Errors from trace I/O.
#[derive(Debug)]
pub enum ExportError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or numeric parse failure, with the offending line number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        what: String,
    },
}

impl std::fmt::Display for ExportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExportError::Io(e) => write!(f, "trace I/O error: {e}"),
            ExportError::Parse { line, what } => {
                write!(f, "trace parse error at line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for ExportError {}

impl From<std::io::Error> for ExportError {
    fn from(e: std::io::Error) -> Self {
        ExportError::Io(e)
    }
}

const HEADER: &str = "job_id,arrival_s,priority,structure,flip_fraction,flip_priority,task_id,task_idx,length_s,mem_mb";

/// Write a trace as CSV.
pub fn write_csv<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<(), ExportError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "# seed={}", trace.seed)?;
    // Non-default failure models are part of the replay contract; record
    // them so a re-imported trace replays the same kill plans. (Default
    // traces keep the historical two-line preamble byte-for-byte.)
    if !trace.failure_model.is_default() {
        writeln!(
            f,
            "# failure_model={}",
            trace.failure_model.render_compact()
        )?;
    }
    writeln!(f, "{HEADER}")?;
    for job in &trace.jobs {
        let (ff, fp) = match job.flip {
            Some(flip) => (flip.at_fraction.to_string(), flip.new_priority.to_string()),
            None => (String::new(), String::new()),
        };
        for t in &job.tasks {
            writeln!(
                f,
                "{},{},{},{},{},{},{},{},{},{}",
                job.id,
                job.arrival_s,
                job.priority,
                job.structure.label(),
                ff,
                fp,
                t.id,
                t.idx,
                t.length_s,
                t.mem_mb
            )?;
        }
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(s: &str, line: usize, what: &str) -> Result<T, ExportError> {
    s.parse().map_err(|_| ExportError::Parse {
        line,
        what: format!("bad {what}: {s:?}"),
    })
}

/// Read a trace back from CSV. Tasks of a job must be contiguous rows (the
/// format [`write_csv`] produces).
pub fn read_csv<P: AsRef<Path>>(path: P) -> Result<Trace, ExportError> {
    let f = BufReader::new(std::fs::File::open(path)?);
    let mut seed = 0u64;
    let mut failure_model = FailureModelSpec::default();
    let mut jobs: Vec<JobSpec> = Vec::new();
    for (i, line) in f.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed == HEADER {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("# seed=") {
            seed = parse(rest, lineno, "seed")?;
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("# failure_model=") {
            failure_model = FailureModelSpec::parse_compact(rest)
                .map_err(|what| ExportError::Parse { line: lineno, what })?;
            continue;
        }
        if trimmed.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = trimmed.split(',').collect();
        if cols.len() != 10 {
            return Err(ExportError::Parse {
                line: lineno,
                what: format!("expected 10 columns, found {}", cols.len()),
            });
        }
        let job_id: u64 = parse(cols[0], lineno, "job_id")?;
        let arrival_s: f64 = parse(cols[1], lineno, "arrival_s")?;
        let priority: u8 = parse(cols[2], lineno, "priority")?;
        let structure = match cols[3] {
            "ST" => JobStructure::Sequential,
            "BoT" => JobStructure::BagOfTasks,
            other => {
                return Err(ExportError::Parse {
                    line: lineno,
                    what: format!("unknown structure {other:?}"),
                })
            }
        };
        let flip = if cols[4].is_empty() {
            None
        } else {
            Some(PriorityFlip {
                at_fraction: parse(cols[4], lineno, "flip_fraction")?,
                new_priority: parse(cols[5], lineno, "flip_priority")?,
            })
        };
        let task = TaskSpec {
            id: parse(cols[6], lineno, "task_id")?,
            job: job_id,
            idx: parse(cols[7], lineno, "task_idx")?,
            length_s: parse(cols[8], lineno, "length_s")?,
            mem_mb: parse(cols[9], lineno, "mem_mb")?,
        };
        match jobs.last_mut() {
            Some(last) if last.id == job_id => last.tasks.push(task),
            _ => jobs.push(JobSpec {
                id: job_id,
                arrival_s,
                priority,
                structure,
                tasks: vec![task],
                flip,
            }),
        }
    }
    Ok(Trace {
        jobs,
        seed,
        failure_model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::spec::WorkloadSpec;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ckpt_trace_test_{}_{name}.csv", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = generate(&WorkloadSpec::google_like(120), 777).expect("valid workload spec");
        let path = tmp("roundtrip");
        write_csv(&trace, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.seed, trace.seed);
        assert_eq!(back.jobs, trace.jobs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_preserves_flips() {
        let trace = generate(&WorkloadSpec::google_like(40).with_priority_flips(), 778)
            .expect("valid workload spec");
        let path = tmp("flips");
        write_csv(&trace, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.jobs, trace.jobs);
        assert!(back.jobs.iter().all(|j| j.flip.is_some()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_preserves_failure_streams() {
        use ckpt_stats::rng::Rng64;
        let trace = generate(&WorkloadSpec::google_like(10), 779).expect("valid workload spec");
        let path = tmp("streams");
        write_csv(&trace, &path).unwrap();
        let back = read_csv(&path).unwrap();
        let mut a = trace.failure_stream(3);
        let mut b = back.failure_stream(3);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn roundtrip_preserves_failure_model() {
        use crate::failure::FailureModelSpec;
        let model = FailureModelSpec::Pareto {
            shape: 1.5,
            scale: 2.0,
        };
        let spec = WorkloadSpec::google_like(20).with_failure_model(model);
        let trace = generate(&spec, 780).expect("valid workload spec");
        let path = tmp("failure_model");
        write_csv(&trace, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.failure_model, model);
        assert_eq!(back.jobs, trace.jobs);
        // Replayed histories must match, since they depend on the model.
        assert_eq!(
            crate::stats::trace_histories(&back),
            crate::stats::trace_histories(&trace)
        );
        std::fs::remove_file(&path).ok();

        // Default traces keep the historical preamble (no model line) and
        // read back as the default model.
        let default_trace = generate(&WorkloadSpec::google_like(5), 781).expect("valid spec");
        let path2 = tmp("default_model");
        write_csv(&default_trace, &path2).unwrap();
        let text = std::fs::read_to_string(&path2).unwrap();
        assert!(!text.contains("failure_model"));
        assert!(read_csv(&path2).unwrap().failure_model.is_default());
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn rejects_malformed_rows() {
        let path = tmp("bad");
        std::fs::write(&path, "# seed=1\nnot,enough,columns\n").unwrap();
        let err = read_csv(&path).unwrap_err();
        assert!(matches!(err, ExportError::Parse { line: 2, .. }), "{err}");
        std::fs::remove_file(&path).ok();

        let path2 = tmp("badnum");
        std::fs::write(&path2, format!("{HEADER}\n0,abc,1,ST,,,0,0,100.0,50.0\n")).unwrap();
        let err2 = read_csv(&path2).unwrap_err();
        assert!(matches!(err2, ExportError::Parse { .. }), "{err2}");
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_csv("/nonexistent/definitely/not/here.csv").unwrap_err();
        assert!(matches!(err, ExportError::Io(_)));
    }
}
