//! **Extension** — the stress-fleet scenario (`specs/stress_fleet.toml`):
//! a 128-host × 8-VM fleet under whole-host failures every ~56 s of
//! simulated time, saturating arrivals — the regime of the Amazon-cloud
//! C/R evaluation (arXiv:2311.17545) and the scale target of the
//! high-throughput DES core. Checkpointing (Formula (3)) lifts WPR and
//! finishes the same workload ~40% sooner than the no-checkpoint
//! baseline, and the frame records the DES event counts that make the
//! run's size auditable.
//!
//! Defaults to `quick` so `exp all` and CI stay fast; the intended
//! headline run is `cloud-ckpt exp run ext_stress_fleet --scale stress`
//! (~1.7 M tasks through the cluster DES).

use crate::exp::{ExpResult, Experiment};
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_scenario::{run_sweep_ctx, to_frame, SweepSpec};

const SPEC: &str = include_str!("../../../../specs/stress_fleet.toml");

/// Stress-fleet extension experiment.
pub struct ExtStressFleet;

impl Experiment for ExtStressFleet {
    fn id(&self) -> &'static str {
        "ext_stress_fleet"
    }
    fn paper_ref(&self) -> &'static str {
        "§2 host-down path at fleet scale (extension)"
    }
    fn claim(&self) -> &'static str {
        "Fleet under host failures: Formula (3) lifts WPR and cuts makespan ~40% vs no-ckpt"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let sweep = SweepSpec::from_str(SPEC).map_err(|e| e.to_string())?;
        let result = run_sweep_ctx(&sweep, ctx).map_err(|e| e.to_string())?;

        let mut table = Frame::new(
            "ext_stress_fleet",
            vec![
                "policy",
                "jobs",
                "mean_wpr",
                "p99_wpr",
                "mean_queue_wait_s",
                "makespan_h",
                "des_events",
            ],
        )
        .with_title(
            "Extension: stress fleet (128 hosts x 8 VMs, host MTBF 2 h) — \
             checkpointing vs no-checkpointing at scale",
        )
        .with_meta("scale", ctx.scale.label())
        .with_meta("spec", "specs/stress_fleet.toml");
        for cell in &result.cells {
            let wpr = cell.metric("wpr")?;
            let wait = cell.metric("queue_wait_s")?;
            let makespan = cell.metric("makespan_s")?;
            let events = cell.metric("events")?;
            table.push_row(row![
                cell.param("policy")?,
                wpr.count,
                wpr.mean,
                wpr.p99,
                wait.mean,
                makespan.mean / 3600.0,
                events.mean,
            ]);
        }

        let mut out = ExpOutput::new();
        out.push(table);
        out.push(to_frame(&sweep, &result));
        Ok(out)
    }
}
