//! **Figure 13** — per-job paired comparison of wall-clock lengths under
//! Formula (3) vs Young's formula (RL = 1000 s): (a) the ratio, (b) the
//! absolute difference.
//!
//! Paper: "about 70 % of jobs' wall-clock lengths are reduced by about 15 %
//! on average, while only 30 % of jobs' wall-clock lengths are increased by
//! 5 % on average". Both runs replay identical kill events (common random
//! numbers), exactly like the paper's trace replay.

use crate::exp::{ExpResult, Experiment};
use crate::harness::{setup_ctx, Scale};
use ckpt_report::{row, ExpOutput, Frame, RunContext, Value};
use ckpt_sim::metrics::{paired_wall_clock, with_max_length};
use ckpt_sim::{run_trace, EstimatorKind, PolicyConfig, RunOptions};

const RL: f64 = 1000.0;

/// Figure 13 experiment.
pub struct Fig13Paired;

impl Experiment for Fig13Paired {
    fn id(&self) -> &'static str {
        "fig13_paired"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 13"
    }
    fn claim(&self) -> &'static str {
        "~70 % of jobs run ~15 % faster under Formula (3); ~30 % run ~5 % slower"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let s = setup_ctx(ctx)?;
        let opts = RunOptions {
            threads: ctx.threads,
        };

        // Deployment estimator (full-range per-priority statistics, as in
        // the Figure 9 runs); RL only filters which jobs are compared.
        let est = EstimatorKind::PerPriority {
            limit: f64::INFINITY,
        };
        let f3 = PolicyConfig::formula3().with_estimator(est);
        let yg = PolicyConfig::young().with_estimator(est);
        let recs_f3 = with_max_length(
            &s.sample_only(&run_trace(&s.trace, &s.estimates, &f3, opts)),
            RL,
        );
        let recs_yg = with_max_length(
            &s.sample_only(&run_trace(&s.trace, &s.estimates, &yg, opts)),
            RL,
        );

        // ratio = wall(F3) / wall(Young): < 1 means Formula (3) is faster.
        let pairs = paired_wall_clock(&recs_f3, &recs_yg);
        if pairs.is_empty() {
            return Err(format!("no paired jobs at RL={RL}").into());
        }

        let faster: Vec<&(u64, f64, f64)> = pairs.iter().filter(|(_, r, _)| *r < 1.0).collect();
        let slower: Vec<&(u64, f64, f64)> = pairs.iter().filter(|(_, r, _)| *r >= 1.0).collect();
        let mean_reduction = if faster.is_empty() {
            0.0
        } else {
            faster.iter().map(|(_, r, _)| 1.0 - r).sum::<f64>() / faster.len() as f64
        };
        let mean_increase = if slower.is_empty() {
            0.0
        } else {
            slower.iter().map(|(_, r, _)| r - 1.0).sum::<f64>() / slower.len() as f64
        };

        let mut summary = Frame::new(
            "fig13_summary",
            vec!["group", "jobs", "share_pct", "mean_wall_change_pct"],
        )
        .with_title(
            "Figure 13: paired per-job comparison, RL = 1000 s \
             (paper: ~70 % faster by ~15 %, ~30 % slower by ~5 %)",
        );
        summary.push_row(row![
            "faster under Formula(3)",
            faster.len(),
            Value::Num(100.0 * faster.len() as f64 / pairs.len() as f64),
            Value::Num(-100.0 * mean_reduction),
        ]);
        summary.push_row(row![
            "faster under Young",
            slower.len(),
            Value::Num(100.0 * slower.len() as f64 / pairs.len() as f64),
            Value::Num(100.0 * mean_increase),
        ]);

        let mut series = Frame::new(
            "fig13_paired",
            vec!["job_id", "wall_ratio_f3_over_young", "wall_diff_s"],
        );
        for &(job, ratio, diff) in &pairs {
            series.push_row(row![job, ratio, diff]);
        }

        let mut out = ExpOutput::new();
        out.push(summary);
        out.push(series);
        Ok(out)
    }
}
