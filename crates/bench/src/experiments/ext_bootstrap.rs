//! **Extension** — bootstrap confidence intervals on the headline result.
//! The paper reports point estimates; this experiment quantifies the
//! uncertainty of the Figure 9 WPR gap with a paired percentile bootstrap
//! (resampling jobs, preserving the common-random-number pairing).

use crate::exp::{ExpResult, Experiment};
use crate::harness::{setup_ctx, Scale};
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_sim::metrics::wprs;
use ckpt_sim::{run_trace, PolicyConfig, RunOptions};
use ckpt_stats::bootstrap::{bootstrap_mean_ci, bootstrap_paired_diff_ci};

/// Bootstrap-CI extension experiment.
pub struct ExtBootstrap;

impl Experiment for ExtBootstrap {
    fn id(&self) -> &'static str {
        "ext_bootstrap"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 9 (extension)"
    }
    fn claim(&self) -> &'static str {
        "The Formula (3) WPR advantage is significant at the 95 % level"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let s = setup_ctx(ctx)?;
        let opts = RunOptions {
            threads: ctx.threads,
        };

        let f3 = s.sample_only(&run_trace(
            &s.trace,
            &s.estimates,
            &PolicyConfig::formula3(),
            opts,
        ));
        let yg = s.sample_only(&run_trace(
            &s.trace,
            &s.estimates,
            &PolicyConfig::young(),
            opts,
        ));
        let w_f3 = wprs(&f3);
        let w_yg = wprs(&yg);

        let ci_f3 = bootstrap_mean_ci(&w_f3, 0.95, 2000, 11).map_err(|e| e.to_string())?;
        let ci_yg = bootstrap_mean_ci(&w_yg, 0.95, 2000, 12).map_err(|e| e.to_string())?;
        let ci_diff =
            bootstrap_paired_diff_ci(&w_f3, &w_yg, 0.95, 2000, 13).map_err(|e| e.to_string())?;

        let mut table = Frame::new(
            "ext_bootstrap_ci",
            vec!["quantity", "estimate", "ci95_lo", "ci95_hi"],
        )
        .with_title("Extension: bootstrap CIs for the Figure 9 headline (paired, 2000 resamples)");
        table.push_row(row![
            "mean WPR Formula(3)",
            ci_f3.estimate,
            ci_f3.lo,
            ci_f3.hi
        ]);
        table.push_row(row!["mean WPR Young", ci_yg.estimate, ci_yg.lo, ci_yg.hi]);
        table.push_row(row![
            "paired diff (F3 - Young)",
            ci_diff.estimate,
            ci_diff.lo,
            ci_diff.hi
        ]);

        let mut out = ExpOutput::new();
        out.push(table);
        if ci_diff.lo > 0.0 {
            out.note("the Formula (3) advantage is significant at the 95 % level (CI excludes 0).");
        } else {
            out.note("warning: the 95 % CI of the gap includes 0 at this scale.");
        }
        Ok(out)
    }
}
