//! **Figure 8** — CDFs of the sample jobs' memory size and execution
//! length, split by structure (ST / BoT / mixture).
//!
//! Paper observation: "job memory sizes and lengths differ significantly
//! according to job structures; however, most jobs are short jobs with
//! small memory sizes."

use crate::exp::{ExpResult, Experiment};
use crate::harness::{setup_ctx, Scale};
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_stats::ecdf::Ecdf;
use ckpt_trace::gen::JobStructure;

/// Figure 8 experiment.
pub struct Fig08JobDist;

impl Experiment for Fig08JobDist {
    fn id(&self) -> &'static str {
        "fig08_job_dist"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 8"
    }
    fn claim(&self) -> &'static str {
        "Sample-job memory/length depend on structure; most jobs are short and small"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let s = setup_ctx(ctx)?;

        // The paper plots the *sample jobs* (its failure-prone selection).
        let classes: [(&str, Option<JobStructure>); 3] = [
            ("ST", Some(JobStructure::Sequential)),
            ("BoT", Some(JobStructure::BagOfTasks)),
            ("mixture", None),
        ];

        let mut summary = Frame::new(
            "fig08_summary",
            vec![
                "class",
                "jobs",
                "med_mem_mb",
                "p95_mem_mb",
                "med_len_h",
                "p95_len_h",
            ],
        )
        .with_title(
            "Figure 8: sample-job memory sizes and lengths \
             (paper: most jobs short with small memory)",
        );
        let mut cdf = Frame::new("fig08_job_dist", vec!["class", "metric", "x", "cdf"]);
        for (label, structure) in classes.iter() {
            let jobs: Vec<_> = s
                .trace
                .jobs
                .iter()
                .filter(|j| s.sample_jobs.contains(&j.id))
                .filter(|j| structure.map(|st| j.structure == st).unwrap_or(true))
                .collect();
            if jobs.is_empty() {
                continue;
            }
            let mems: Vec<f64> = jobs.iter().map(|j| j.max_mem()).collect();
            let lens: Vec<f64> = jobs.iter().map(|j| j.total_work()).collect();
            let em = Ecdf::new(&mems).map_err(|e| e.to_string())?;
            let el = Ecdf::new(&lens).map_err(|e| e.to_string())?;
            summary.push_row(row![
                *label,
                jobs.len(),
                em.quantile(0.5),
                em.quantile(0.95),
                el.quantile(0.5) / 3600.0,
                el.quantile(0.95) / 3600.0,
            ]);
            for (x, q) in em.points(64) {
                cdf.push_row(row![*label, "mem_mb", x, q]);
            }
            for (x, q) in el.points(64) {
                cdf.push_row(row![*label, "len_s", x, q]);
            }
        }

        let mut out = ExpOutput::new();
        out.push(summary);
        out.push(cdf);
        Ok(out)
    }
}
