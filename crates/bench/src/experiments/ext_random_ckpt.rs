//! **Extension** — equidistant vs random checkpoint placement (the
//! related-work baseline): with the same number of checkpoints, uniformly
//! random positions waste expected rollback relative to Theorem 1's even
//! spacing (`Σ gap²/(2Te)` is minimized by equal gaps).

use crate::exp::{ExpResult, Experiment};
use ckpt_policy::nonuniform::GeneralSchedule;
use ckpt_report::{row, ExpOutput, Frame, RunContext, Value};
use ckpt_stats::rng::Xoshiro256StarStar;
use ckpt_stats::summary::OnlineStats;

const SEED_SALT: u64 = 0x4A2D;

/// Random-placement extension experiment.
pub struct ExtRandomCkpt;

impl Experiment for ExtRandomCkpt {
    fn id(&self) -> &'static str {
        "ext_random_ckpt"
    }
    fn paper_ref(&self) -> &'static str {
        "Theorem 1 (extension)"
    }
    fn claim(&self) -> &'static str {
        "Equidistant placement beats random placement, and the premium grows with count"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let te = 1000.0;
        let c = 1.0;
        let r = 1.0;
        let e_y = 2.0;
        let mut rng = Xoshiro256StarStar::new(ctx.salted_seed(SEED_SALT));

        let mut table = Frame::new(
            "ext_random_vs_equidistant",
            vec![
                "checkpoints",
                "equidistant_e_tw",
                "random_e_tw_avg",
                "random_e_tw_max_of_200",
                "random_excess_pct",
            ],
        )
        .with_title(
            "Extension: equidistant (Theorem 1) vs uniformly random checkpoint placement \
             (Te=1000, C=1, R=1, E(Y)=2)",
        );
        for &n in &[1u32, 3, 7, 15, 31] {
            let even = GeneralSchedule::equidistant(te, n + 1).map_err(|e| e.to_string())?;
            let w_even = even
                .expected_wall_clock(c, r, e_y)
                .map_err(|e| e.to_string())?;
            let mut stats = OnlineStats::new();
            for _ in 0..200 {
                let rand = GeneralSchedule::random(te, n, &mut rng).map_err(|e| e.to_string())?;
                stats.add(
                    rand.expected_wall_clock(c, r, e_y)
                        .map_err(|e| e.to_string())?,
                );
            }
            table.push_row(row![
                n,
                w_even,
                stats.mean(),
                stats.max(),
                Value::Num(100.0 * (stats.mean() / w_even - 1.0)),
            ]);
        }
        let mut out = ExpOutput::new();
        out.push(table);
        out.note(
            "equidistant placement minimizes expected rollback (Cauchy-Schwarz on Σ gap²); \
             random placement pays a persistent premium that grows with checkpoint count.",
        );
        Ok(out)
    }
}
