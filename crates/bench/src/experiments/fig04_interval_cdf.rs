//! **Figure 4** — CDF of uninterrupted task intervals, grouped by priority:
//! (a) low priorities 1–6, (b) high priorities 7–12.
//!
//! Paper observation: "tasks with higher priorities tend to have longer
//! uninterrupted execution lengths, because low-priority tasks tend to be
//! preempted by high-priority ones". (Scale note: the paper's x-axes are in
//! days because Google tasks run up to weeks; our synthetic trace is
//! calibrated to the paper's *short-job* regime, so intervals are in
//! seconds-to-hours — the ordering and shape are the reproduced features.)

use crate::exp::{ExpResult, Experiment};
use crate::harness::{setup_ctx, Scale};
use crate::report::f;
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_stats::ecdf::Ecdf;
use ckpt_trace::stats::interval_samples_by_priority;

/// Figure 4 experiment.
pub struct Fig04IntervalCdf;

impl Experiment for Fig04IntervalCdf {
    fn id(&self) -> &'static str {
        "fig04_interval_cdf"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 4"
    }
    fn claim(&self) -> &'static str {
        "Higher-priority tasks have longer uninterrupted execution intervals"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let s = setup_ctx(ctx)?;
        let by_priority = interval_samples_by_priority(&s.records);

        let mut quantiles = Frame::new(
            "fig04_interval_quantiles",
            vec![
                "priority",
                "n_intervals",
                "p25_s",
                "median_s",
                "p75_s",
                "p95_s",
                "mean_s",
            ],
        )
        .with_title(
            "Figure 4: uninterrupted task intervals by priority \
             (paper: higher priority => longer; p10 the exception)",
        );
        let mut cdf = Frame::new("fig04_interval_cdf", vec!["priority", "interval_s", "cdf"]);
        for p in 1..=12u8 {
            let Some(samples) = by_priority.get(&p) else {
                continue;
            };
            if samples.is_empty() {
                continue;
            }
            let e = Ecdf::new(samples).map_err(|e| e.to_string())?;
            quantiles.push_row(row![
                p,
                e.len(),
                e.quantile(0.25),
                e.quantile(0.5),
                e.quantile(0.75),
                e.quantile(0.95),
                e.mean(),
            ]);
            for (x, q) in e.points(64) {
                cdf.push_row(row![p, x, q]);
            }
        }

        let mut out = ExpOutput::new();
        // Echo the ordering check the paper's figure makes visually.
        let med = |p: u8| {
            by_priority
                .get(&p)
                .and_then(|s| Ecdf::new(s).ok())
                .map(|e| e.quantile(0.5))
        };
        if let (Some(m2), Some(m9), Some(m10)) = (med(2), med(9), med(10)) {
            out.note(format!(
                "ordering check: median p2 = {} s < median p9 = {} s; \
                 p10 = {} s (failure-heavy monitoring tier)",
                f(m2),
                f(m9),
                f(m10)
            ));
        }
        out.push(quantiles);
        out.push(cdf);
        Ok(out)
    }
}
