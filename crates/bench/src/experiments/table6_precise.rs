//! **Table 6** — checkpointing effect with *precise* prediction: both
//! formulas are fed each task's true failure count / true mean interval
//! (per-task oracle). Paper: the two are nearly tied — avg WPR 0.960 vs
//! 0.954 (BoT), 0.937 vs 0.938 (ST), 0.949 vs 0.939 (mixture) — "with
//! exact values, both approaches almost coincide as expected".

use crate::exp::{ExpResult, Experiment};
use crate::harness::{setup_ctx, Scale};
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_sim::metrics::{lowest_wpr, mean_wpr, with_structure};
use ckpt_sim::{run_trace, EstimatorKind, PolicyConfig, RunOptions};
use ckpt_trace::gen::JobStructure;

/// Table 6 experiment.
pub struct Table6Precise;

impl Experiment for Table6Precise {
    fn id(&self) -> &'static str {
        "table6_precise"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 6"
    }
    fn claim(&self) -> &'static str {
        "With oracle (precise) prediction, Formula (3) and Young almost coincide"
    }
    fn default_scale(&self) -> Scale {
        // The paper's Table 6 analyses "all of 300k Google jobs" — the
        // month scale (downscale with --scale quick / CKPT_SCALE=quick).
        Scale::Month
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let s = setup_ctx(ctx)?;
        let opts = RunOptions {
            threads: ctx.threads,
        };

        let f3 = PolicyConfig::formula3().with_estimator(EstimatorKind::Oracle);
        let yg = PolicyConfig::young().with_estimator(EstimatorKind::Oracle);
        let recs_f3 = s.sample_only(&run_trace(&s.trace, &s.estimates, &f3, opts));
        let recs_yg = s.sample_only(&run_trace(&s.trace, &s.estimates, &yg, opts));

        let mut table = Frame::new(
            "table6_precise",
            vec![
                "structure",
                "avg_wpr_f3",
                "lowest_f3",
                "avg_wpr_young",
                "lowest_young",
                "paper_avg_f3",
                "paper_avg_young",
            ],
        )
        .with_title("Table 6: WPR with precise (oracle) prediction — the formulas nearly coincide");
        let paper = [
            ("BoT", 0.960, 0.954),
            ("ST", 0.937, 0.938),
            ("Mix", 0.949, 0.939),
        ];
        for (label, p_f3, p_yg) in paper {
            let (a, b): (Vec<_>, Vec<_>) = match label {
                "BoT" => (
                    with_structure(&recs_f3, JobStructure::BagOfTasks),
                    with_structure(&recs_yg, JobStructure::BagOfTasks),
                ),
                "ST" => (
                    with_structure(&recs_f3, JobStructure::Sequential),
                    with_structure(&recs_yg, JobStructure::Sequential),
                ),
                _ => (recs_f3.clone(), recs_yg.clone()),
            };
            table.push_row(row![
                label,
                mean_wpr(&a),
                lowest_wpr(&a),
                mean_wpr(&b),
                lowest_wpr(&b),
                p_f3,
                p_yg,
            ]);
        }
        let mut out = ExpOutput::new();
        out.note(format!(
            "jobs: {} sample jobs of {} total",
            recs_f3.len(),
            s.trace.jobs.len()
        ));
        out.push(table);
        Ok(out)
    }
}
