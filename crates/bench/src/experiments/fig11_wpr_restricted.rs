//! **Figure 11** — WPR distributions for relatively short jobs with
//! restricted task length RL ∈ {1000, 2000, 4000} s, over a one-day trace
//! (~10k jobs). MNOF/MTBF are estimated from the corresponding short tasks
//! ("in order to estimate MTBF with as small errors as possible for
//! Young's formula").
//!
//! Paper: under Formula (3), 98 % of jobs reach WPR > 0.9; under Young's
//! formula up to 40 % of jobs fall below 0.9.

use crate::exp::{ExpResult, Experiment};
use crate::harness::{setup_ctx, Scale};
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_sim::metrics::{mean_wpr, with_max_length, with_structure, wpr_ecdf};
use ckpt_sim::{run_trace, EstimatorKind, PolicyConfig, RunOptions};
use ckpt_trace::gen::JobStructure;

/// Figure 11 experiment.
pub struct Fig11WprRestricted;

impl Experiment for Fig11WprRestricted {
    fn id(&self) -> &'static str {
        "fig11_wpr_restricted"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 11"
    }
    fn claim(&self) -> &'static str {
        "For short jobs, 98 % exceed WPR 0.9 under Formula (3); up to 40 % fall below under Young"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let s = setup_ctx(ctx)?;
        let opts = RunOptions {
            threads: ctx.threads,
        };

        let mut summary = Frame::new(
            "fig11_summary",
            vec![
                "structure",
                "rl_s",
                "policy",
                "jobs",
                "avg_wpr",
                "p_above_09",
            ],
        )
        .with_title(
            "Figure 11: WPR for restricted task lengths (paper: 98 % above 0.9 \
             under Formula (3); up to 40 % below 0.9 under Young)",
        );
        let mut cdf = Frame::new(
            "fig11_wpr_restricted",
            vec!["structure", "rl_s", "policy", "wpr", "cdf"],
        );
        for rl in [1000.0, 2000.0, 4000.0] {
            // Estimators restricted to tasks within the limit (honest MTBF).
            let est = EstimatorKind::PerPriority { limit: rl };
            let f3 = PolicyConfig::formula3().with_estimator(est);
            let yg = PolicyConfig::young().with_estimator(est);
            let recs_f3 = s.sample_only(&run_trace(&s.trace, &s.estimates, &f3, opts));
            let recs_yg = s.sample_only(&run_trace(&s.trace, &s.estimates, &yg, opts));
            for structure in [JobStructure::Sequential, JobStructure::BagOfTasks] {
                for (label, recs) in [("Formula(3)", &recs_f3), ("Young", &recs_yg)] {
                    let sub = with_max_length(&with_structure(recs, structure), rl);
                    if sub.is_empty() {
                        continue;
                    }
                    let e = wpr_ecdf(&sub).ok_or("empty WPR sample")?;
                    summary.push_row(row![
                        structure.label(),
                        rl,
                        label,
                        sub.len(),
                        mean_wpr(&sub),
                        1.0 - e.cdf(0.9),
                    ]);
                    for (x, q) in e.points(64) {
                        cdf.push_row(row![structure.label(), rl, label, x, q]);
                    }
                }
            }
        }
        let mut out = ExpOutput::new();
        out.push(summary);
        out.push(cdf);
        Ok(out)
    }
}
