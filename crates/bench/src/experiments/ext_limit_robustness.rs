//! **Extension** — Table 7's estimation-population cutoff under heavy
//! tails (`specs/limit_robustness.toml`).
//!
//! The paper's estimators restrict their population to tasks of length
//! ≤ `limit` (Table 7's length classes). The cutoff barely moves the MNOF
//! — failure counts are a per-task property — but it moves the MTBF
//! enormously (179 s → 4199 s for priority 2 between the ≤1000 s class
//! and the unrestricted one), because the unrestricted population is
//! dominated by long service tasks' huge uninterrupted intervals. An
//! MTBF-driven policy (Young) therefore checkpoints very differently
//! depending on where the cutoff lands, while Formula (3) is nearly
//! cutoff-free. This experiment sweeps `limit × failure_model` (the
//! ROADMAP's estimator-robustness item) and reports each policy's WPR
//! sensitivity to the cutoff per inter-failure law — heavy tails make
//! the interval census even more skewed, so the gap should widen.

use crate::exp::{ExpResult, Experiment};
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_scenario::{run_sweep_ctx, to_frame, SweepSpec};
use std::collections::BTreeMap;

const SPEC: &str = include_str!("../../../../specs/limit_robustness.toml");

/// Estimator-cutoff robustness extension experiment.
pub struct ExtLimitRobustness;

impl Experiment for ExtLimitRobustness {
    fn id(&self) -> &'static str {
        "ext_limit_robustness"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 7 ext. (estimation-population cutoff)"
    }
    fn claim(&self) -> &'static str {
        "Formula (3) is nearly cutoff-free; Young's WPR swings with the limit, more under heavy tails"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let sweep = SweepSpec::from_str(SPEC).map_err(|e| e.to_string())?;
        let result = run_sweep_ctx(&sweep, ctx).map_err(|e| e.to_string())?;

        let mut per_cell = Frame::new(
            "ext_limit_cells",
            vec![
                "failure_model",
                "limit",
                "policy",
                "jobs",
                "mean_wpr",
                "mean_wall_s",
            ],
        )
        .with_title("Per-cell means: estimation cutoff x inter-failure law x policy")
        .with_meta("scale", ctx.scale.label())
        .with_meta("spec", "specs/limit_robustness.toml");

        // model → policy → WPR means in limit order (sweep order).
        let mut by_model: BTreeMap<String, BTreeMap<String, Vec<f64>>> = BTreeMap::new();
        let mut model_order: Vec<String> = Vec::new();
        for cell in &result.cells {
            let model = cell.param("failure_model")?.to_string();
            let limit = cell.param("limit")?.to_string();
            let policy = cell.param("policy")?.to_string();
            let wpr = cell.metric("wpr")?;
            let wall = cell.metric("wall_s")?;
            per_cell.push_row(row![
                model.clone(),
                limit,
                policy.clone(),
                wpr.count,
                wpr.mean,
                wall.mean,
            ]);
            if !model_order.contains(&model) {
                model_order.push(model.clone());
            }
            by_model
                .entry(model)
                .or_default()
                .entry(policy)
                .or_default()
                .push(wpr.mean);
        }

        // Headline: per model, how far each policy's mean WPR swings as
        // the cutoff moves across Table 7's length classes. `spread` is
        // max − min over the limit axis; the ratio is Young's swing over
        // Formula (3)'s.
        let mut sensitivity = Frame::new(
            "ext_limit_sensitivity",
            vec![
                "failure_model",
                "wpr_formula3_min",
                "wpr_formula3_max",
                "formula3_spread",
                "wpr_young_min",
                "wpr_young_max",
                "young_spread",
                "young_over_formula3_spread",
            ],
        )
        .with_title(
            "WPR sensitivity to the estimation-population cutoff per inter-failure law \
             (spread = max − min mean WPR over the limit axis)",
        );
        for model in &model_order {
            let policies = &by_model[model];
            let series = |policy: &str| -> Result<(f64, f64), String> {
                let wprs = policies
                    .get(policy)
                    .ok_or_else(|| format!("model {model}: missing policy {policy}"))?;
                let min = wprs.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = wprs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                Ok((min, max))
            };
            let (f3_min, f3_max) = series("formula3")?;
            let (yg_min, yg_max) = series("young")?;
            let f3_spread = f3_max - f3_min;
            let yg_spread = yg_max - yg_min;
            sensitivity.push_row(row![
                model.clone(),
                f3_min,
                f3_max,
                f3_spread,
                yg_min,
                yg_max,
                yg_spread,
                if f3_spread > 0.0 {
                    yg_spread / f3_spread
                } else {
                    f64::INFINITY
                },
            ]);
        }

        let mut out = ExpOutput::new();
        out.push(sensitivity);
        out.push(per_cell);
        out.push(to_frame(&sweep, &result));
        Ok(out)
    }
}
