//! **Figure 7** — total checkpointing cost vs number of checkpoints for
//! memory sizes 10–240 MB: (a) over local ramdisk, (b) over NFS.
//!
//! Paper: "the task total checkpointing cost increases linearly with its
//! consumed memory size and with the number of checkpoints"; per-checkpoint
//! cost is 0.016–0.99 s (ramdisk) and 0.25–2.52 s (NFS) over 10–240 MB.
//!
//! Re-expressed through `ckpt-scenario`: the whole figure is the 60-cell
//! grid in `specs/exp_fig07_ckpt_cost.toml` (device × memsize ×
//! n_checkpoints) evaluated by the `ckpt-cost` engine; this experiment only
//! formats the cells into the paper's two panels. A cross-check against
//! the BLCR model asserts the sweep reproduces the direct computation
//! exactly.

use crate::exp::{ExpResult, Experiment};
use crate::report::f;
use ckpt_report::{ExpOutput, Frame, RunContext, Value};
use ckpt_scenario::{run_sweep_ctx, to_frame, SweepSpec};
use ckpt_sim::blcr::{BlcrModel, Device};

const SPEC: &str = include_str!("../../../../specs/exp_fig07_ckpt_cost.toml");

/// Figure 7 experiment.
pub struct Fig07CkptCost;

impl Experiment for Fig07CkptCost {
    fn id(&self) -> &'static str {
        "fig07_ckpt_cost"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 7"
    }
    fn claim(&self) -> &'static str {
        "Total checkpointing cost grows linearly with memory size and checkpoint count"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        // run_sweep_ctx applies the context's seed, scale, and threads; the
        // result records the effective seed for the export metadata.
        let sweep = SweepSpec::from_str(SPEC).map_err(|e| e.to_string())?;
        let result = run_sweep_ctx(&sweep, ctx).map_err(|e| e.to_string())?;

        // total_cost_s keyed by (device, mem, n).
        let mut cost = std::collections::HashMap::new();
        for cell in &result.cells {
            let scen = sweep.cell(cell.index).map_err(|e| e.to_string())?;
            let total = cell
                .metrics
                .iter()
                .find(|(n, _)| *n == "total_cost_s")
                .ok_or("sweep cell is missing the total_cost_s metric")?
                .1
                .mean;
            cost.insert((scen.device, scen.mem_mb as u64, scen.n_checkpoints), total);
        }

        let blcr = BlcrModel;
        let mem_sizes = [10u64, 20, 40, 80, 160, 240];
        let mut out = ExpOutput::new();
        for (panel, device) in [
            ("a", "local ramdisk", Device::Ramdisk),
            ("b", "NFS", Device::CentralNfs),
        ]
        .map(|(p, l, d)| (format!("{p}: {l}"), d))
        {
            let mut table = Frame::new(
                &format!(
                    "fig07_ckpt_cost_{}",
                    match device {
                        Device::Ramdisk => "ramdisk",
                        _ => "nfs",
                    }
                ),
                vec!["memsize_mb", "n=1", "n=2", "n=3", "n=4", "n=5"],
            )
            .with_title(format!(
                "Figure 7({panel}): total checkpointing cost (s) vs number of checkpoints"
            ));
            for &mem in &mem_sizes {
                let mut cells = vec![Value::from(mem)];
                for n in 1..=5u32 {
                    // The panel layout mirrors the paper; a missing key
                    // means the bundled spec no longer covers it.
                    let total = *cost.get(&(device, mem, n)).ok_or_else(|| {
                        format!(
                            "specs/exp_fig07_ckpt_cost.toml no longer covers \
                             device {device:?} mem {mem} n {n}"
                        )
                    })?;
                    // The sweep must reproduce the model exactly.
                    if total != blcr.checkpoint_cost(device, mem as f64) * n as f64 {
                        return Err(format!(
                            "sweep cell (device {device:?}, mem {mem}, n {n}) \
                             diverged from the BLCR model"
                        )
                        .into());
                    }
                    cells.push(Value::Num(total));
                }
                table.push_row(cells);
            }
            out.push(table);
        }

        out.push(to_frame(&sweep, &result));
        out.note(format!(
            "endpoints check — ramdisk 10 MB: {} s (paper 0.016), 240 MB: {} s (paper 0.99); \
             NFS 10 MB: {} s (paper 0.25), 240 MB: {} s (paper 2.52)",
            f(blcr.checkpoint_cost(Device::Ramdisk, 10.0)),
            f(blcr.checkpoint_cost(Device::Ramdisk, 240.0)),
            f(blcr.checkpoint_cost(Device::CentralNfs, 10.0)),
            f(blcr.checkpoint_cost(Device::CentralNfs, 240.0)),
        ));
        Ok(out)
    }
}
