//! **Cluster validation** — run the full-cluster DES (32 hosts × 7 VMs,
//! the paper's testbed shape) against the fast per-task path on the same
//! trace and policy, confirming that (a) the policy ordering
//! (Formula (3) ≥ Young) survives queueing and storage contention, and
//! (b) DM-NFS keeps checkpoint durations flat where central NFS escalates
//! (the in-situ version of Tables 2–3).

use crate::exp::{ExpResult, Experiment};
use crate::harness::setup_with;
use crate::report::f;
use ckpt_report::{row, ExpOutput, Frame, RunContext, Value};
use ckpt_sim::cluster::{ClusterConfig, ClusterSim};
use ckpt_sim::metrics::mean_wpr;
use ckpt_sim::{run_trace, Device, PolicyConfig, RunOptions, StorageChoice};
use ckpt_stats::summary::Summary;
use ckpt_trace::spec::WorkloadSpec;

/// Cluster-validation experiment.
pub struct ClusterValidation;

impl Experiment for ClusterValidation {
    fn id(&self) -> &'static str {
        "cluster_validation"
    }
    fn paper_ref(&self) -> &'static str {
        "Tables 2-3 (in situ), §5 testbed"
    }
    fn claim(&self) -> &'static str {
        "Policy ordering survives cluster effects; DM-NFS flattens checkpoint durations"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        // The cluster engine is O(events) single-threaded; keep it at
        // quick scale by default. Arrival rate is tuned so the paper's
        // 32-host / 224-VM cluster runs loaded but not saturated (the
        // paper replayed its one-month trace on the same topology without
        // unbounded queueing); long service tasks are excluded so the
        // validation window is bounded.
        let mut spec = WorkloadSpec::google_like(ctx.scale.jobs());
        spec.mean_interarrival_s = 25.0;
        spec.long_task_fraction = 0.0;
        let s = setup_with(spec, ctx.seed)?;
        let cfg = ClusterConfig::default();

        let mut table = Frame::new(
            "cluster_validation",
            vec![
                "mode",
                "policy",
                "storage",
                "avg_wpr",
                "mean_ckpt_dur_s",
                "max_conc_ckpts",
            ],
        )
        .with_title(
            "Cluster DES validation: policy ordering survives cluster effects; \
             DM-NFS flattens checkpoint durations",
        );

        for (policy, label) in [
            (PolicyConfig::formula3(), "Formula(3)"),
            (PolicyConfig::young(), "Young"),
        ] {
            // Fast path (no cluster effects).
            let fast = s.sample_only(&run_trace(
                &s.trace,
                &s.estimates,
                &policy,
                RunOptions {
                    threads: ctx.threads,
                },
            ));
            table.push_row(row!["fast", label, "auto", mean_wpr(&fast), "-", "-"]);
            // Full cluster DES.
            let result = ClusterSim::new(cfg, &s.trace, &s.estimates, policy).run();
            let sample: Vec<_> = result
                .jobs
                .iter()
                .filter(|j| s.sample_jobs.contains(&j.base.job_id))
                .map(|j| j.base.clone())
                .collect();
            let dur = Summary::from_slice(&result.checkpoint_durations)
                .map(|sm| Value::Num(sm.mean))
                .unwrap_or_else(|_| Value::Text("-".into()));
            table.push_row(vec![
                Value::from("cluster"),
                Value::from(label),
                Value::from("auto"),
                Value::Num(mean_wpr(&sample)),
                dur,
                Value::from(result.max_concurrent_checkpoints),
            ]);
        }

        // Storage architecture comparison inside the cluster.
        for (device, label) in [
            (Device::CentralNfs, "central NFS"),
            (Device::DmNfs, "DM-NFS"),
        ] {
            let policy = PolicyConfig::formula3().with_storage(StorageChoice::Force(device));
            let result = ClusterSim::new(cfg, &s.trace, &s.estimates, policy).run();
            let sm = Summary::from_slice(&result.checkpoint_durations).map_err(|_| {
                "no checkpoint durations were recorded in the forced-storage cluster run"
            })?;
            table.push_row(row![
                "cluster",
                "Formula(3)",
                label,
                mean_wpr(
                    &result
                        .jobs
                        .iter()
                        .filter(|j| s.sample_jobs.contains(&j.base.job_id))
                        .map(|j| j.base.clone())
                        .collect::<Vec<_>>(),
                ),
                format!("{} (p95 {})", f(sm.mean), f(sm.p95)),
                result.max_concurrent_checkpoints,
            ]);
        }

        let mut out = ExpOutput::new();
        out.push(table);
        Ok(out)
    }
}
