//! **Table 3** — cost of simultaneously checkpointing tasks over the
//! paper's distributively-managed NFS (DM-NFS): every host runs its own NFS
//! server and each checkpoint picks one uniformly at random.
//!
//! Paper: "the checkpointing cost is always limited within 2 seconds even
//! with simultaneous checkpointing, which means a much higher scalability"
//! (avg 1.49–1.75 s across parallel degrees 1–5 at 160 MB).

use crate::exp::{ExpResult, Experiment};
use ckpt_report::{ExpOutput, Frame, RunContext, Value};
use ckpt_sim::blcr::{BlcrModel, Device};
use ckpt_sim::storage::{OpId, StorageBank};
use ckpt_sim::time::SimTime;
use ckpt_stats::rng::{Rng64, Xoshiro256StarStar};
use ckpt_stats::summary::OnlineStats;

const MEM_MB: f64 = 160.0;
const REPS: usize = 25;
const N_HOSTS: usize = 32; // the paper's testbed
const SEED_SALT: u64 = 0xD31F5;

/// Table 3 experiment.
pub struct Table3DmNfs;

impl Experiment for Table3DmNfs {
    fn id(&self) -> &'static str {
        "table3_dmnfs"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 3"
    }
    fn claim(&self) -> &'static str {
        "DM-NFS keeps simultaneous checkpointing cost within ~2 s at every degree"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let blcr = BlcrModel;
        let mut rng = Xoshiro256StarStar::new(ctx.salted_seed(SEED_SALT));

        let mut rows: Vec<Vec<Value>> = vec![
            vec![Value::from("DM-NFS"), Value::from("min")],
            vec![Value::from("DM-NFS"), Value::from("avg")],
            vec![Value::from("DM-NFS"), Value::from("max")],
        ];
        for x in 1..=5usize {
            let mut stats = OnlineStats::new();
            for _ in 0..REPS {
                let mut bank = StorageBank::dm_nfs(N_HOSTS, 1.0);
                let t0 = SimTime::ZERO;
                // Random server per op — the paper's DM-NFS policy.
                let picks: Vec<usize> = (0..x)
                    .map(|_| rng.next_range(N_HOSTS as u64) as usize)
                    .collect();
                for (i, &srv) in picks.iter().enumerate() {
                    let demand = blcr.checkpoint_cost_jittered(Device::DmNfs, MEM_MB, &mut rng);
                    bank.server_mut(srv).add(t0, OpId(i as u64), demand);
                }
                // Drain every server independently.
                for srv in 0..N_HOSTS {
                    let mut now = t0;
                    while let Some((op, when)) = bank.server(srv).next_completion(now) {
                        bank.server_mut(srv).remove(when, op);
                        stats.add(when.as_secs_f64());
                        now = when;
                    }
                }
            }
            rows[0].push(Value::Num(stats.min()));
            rows[1].push(Value::Num(stats.mean()));
            rows[2].push(Value::Num(stats.max()));
        }
        let mut table = Frame::new(
            "table3_dmnfs",
            vec!["type", "stat", "X=1", "X=2", "X=3", "X=4", "X=5"],
        )
        .with_title(
            "Table 3: simultaneous checkpointing over DM-NFS, 160 MB \
             (paper: avg 1.49-1.75 s, max <= 1.97 s)",
        );
        for r in rows {
            table.push_row(r);
        }
        let mut out = ExpOutput::new();
        out.push(table);
        Ok(out)
    }
}
