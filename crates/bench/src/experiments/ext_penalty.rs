//! **Extension** — mis-estimation penalty curves: the quantified version of
//! the paper's robustness argument. Formula (3) driven by an MNOF that is
//! wrong by a factor β pays `(sqrt(β)+1/sqrt(β))/2` of the optimal
//! overhead; Young's formula driven by an MTBF inflated by γ pays the same
//! form in γ — but Table 7 shows β stays near 1 while γ reaches ~20.

use crate::exp::{ExpResult, Experiment};
use crate::report::f;
use ckpt_policy::analysis::{mnof_misestimation_penalty, mtbf_inflation_penalty, penalty_factor};
use ckpt_report::{row, ExpOutput, Frame, RunContext};

/// Mis-estimation-penalty extension experiment.
pub struct ExtPenalty;

impl Experiment for ExtPenalty {
    fn id(&self) -> &'static str {
        "ext_penalty"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 7 / Figures 9-13 (extension)"
    }
    fn claim(&self) -> &'static str {
        "MNOF errors cost ~nothing while MTBF inflation explains the whole WPR gap"
    }

    fn run(&self, _ctx: &RunContext) -> ExpResult {
        let te = 600.0;
        let c = 1.0;
        let e_y_true = 1.2;
        let honest_mtbf = 150.0;

        let mut table = Frame::new(
            "ext_penalty_curves",
            vec![
                "error_factor",
                "ideal_sqrt_penalty",
                "mnof_penalty",
                "mtbf_penalty",
            ],
        )
        .with_title(format!(
            "Extension: overhead penalty vs estimation error \
             (Te={te}, C={c}, true E(Y)={e_y_true}, honest MTBF={honest_mtbf})"
        ));
        for &factor in &[1.0f64, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 18.0, 25.0] {
            let ideal = penalty_factor(factor.sqrt()).map_err(|e| e.to_string())?;
            let p_mnof =
                mnof_misestimation_penalty(te, c, e_y_true, factor).map_err(|e| e.to_string())?;
            let p_mtbf = mtbf_inflation_penalty(te, c, e_y_true, honest_mtbf, factor)
                .map_err(|e| e.to_string())?;
            table.push_row(row![factor, ideal, p_mnof, p_mtbf]);
        }

        let mut out = ExpOutput::new();
        out.push(table);
        out.note(format!(
            "reading: our measured Table 7 shows MNOF errors β ≈ 1.05 (penalty ≈ 1.0) while MTBF \
             inflation reaches γ ≈ 18 (penalty ≈ {}), which is the entire gap of Figures 9-13.",
            f(mtbf_inflation_penalty(te, c, e_y_true, honest_mtbf, 18.0)
                .map_err(|e| e.to_string())?)
        ));
        Ok(out)
    }
}
