//! **Table 4** — time cost of a single checkpoint operation over shared
//! disk vs task memory size. The paper measures 0.33 s at 10.3 MB up to
//! 6.83 s at 240 MB; our cost model interpolates exactly through those
//! measurements, and this experiment regenerates the table (plus
//! interpolated midpoints as evidence of the model's shape).

use crate::exp::{ExpResult, Experiment};
use ckpt_report::{row, ExpOutput, Frame, RunContext, Value};
use ckpt_sim::blcr::BlcrModel;

/// Table 4 experiment.
pub struct Table4OpCost;

impl Experiment for Table4OpCost {
    fn id(&self) -> &'static str {
        "table4_op_cost"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 4"
    }
    fn claim(&self) -> &'static str {
        "Single-checkpoint cost over shared disk matches the paper's 0.33-6.83 s measurements"
    }

    fn run(&self, _ctx: &RunContext) -> ExpResult {
        let blcr = BlcrModel;
        // The paper's measured points.
        let paper: [(f64, f64); 12] = [
            (10.3, 0.33),
            (22.3, 0.42),
            (42.3, 0.60),
            (46.3, 0.66),
            (82.4, 1.46),
            (86.4, 1.75),
            (90.4, 2.09),
            (94.4, 2.34),
            (162.0, 3.68),
            (174.0, 4.95),
            (212.0, 5.47),
            (240.0, 6.83),
        ];
        let mut table = Frame::new(
            "table4_op_cost",
            vec!["memory_mb", "paper_op_time_s", "model_op_time_s"],
        )
        .with_title("Table 4: single checkpoint operation time over shared disk");
        for (mem, t_paper) in paper {
            table.push_row(row![mem, t_paper, blcr.shared_op_time(mem)]);
        }
        // Interpolated midpoints (not in the paper's table).
        for mem in [60.0, 120.0, 200.0] {
            table.push_row(vec![
                Value::Num(mem),
                Value::Text("-".into()),
                Value::Num(blcr.shared_op_time(mem)),
            ]);
        }
        let mut out = ExpOutput::new();
        out.push(table);
        Ok(out)
    }
}
