//! **Figure 5** — distribution of pooled task failure intervals and MLE
//! fits of the paper's five candidate families (exponential, geometric,
//! Laplace, normal, Pareto): (a) all intervals, (b) intervals ≤ 1000 s.
//!
//! Paper findings: "a Pareto distribution fits the sample distribution best
//! in general", "a large majority (over 63 %) of task failure intervals
//! last for less than 1000 seconds", and restricted to those, "the best-fit
//! distribution is an exponential distribution with failure rate
//! λ = 0.00423445".

use crate::exp::{ExpError, ExpResult, Experiment};
use crate::harness::{setup_ctx, Scale};
use crate::report::f;
use ckpt_report::{row, ExpOutput, Frame, RunContext, Value};
use ckpt_stats::ecdf::Ecdf;
use ckpt_stats::fit::{fit_all, rank_by_ks, PAPER_FAMILIES};
use ckpt_trace::stats::pooled_intervals;

/// Figure 5 experiment.
pub struct Fig05MleFit;

/// One panel: a ranked-fit table plus the empirical-vs-fitted CDF series.
fn panel(name: &str, title: &str, samples: &[f64]) -> Result<(Frame, Frame), ExpError> {
    let ranked = rank_by_ks(fit_all(&PAPER_FAMILIES, samples));
    let ecdf = Ecdf::new(samples).map_err(|e| e.to_string())?;

    let mut header: Vec<String> = vec!["interval_s".into(), "empirical_cdf".into()];
    header.extend(ranked.iter().map(|r| r.family.name().to_lowercase()));
    let mut series = Frame::new(&format!("fig05_{name}"), header);
    for (x, q) in ecdf.points(128) {
        let mut cells = vec![Value::Num(x), Value::Num(q)];
        for r in &ranked {
            cells.push(Value::Num(r.cdf(x)));
        }
        series.push_row(cells);
    }

    let mut fits = Frame::new(
        &format!("fig05_{name}_fits"),
        vec!["rank", "family", "params", "KS", "AIC"],
    )
    .with_title(title);
    for (i, r) in ranked.iter().enumerate() {
        let params: Vec<String> = r
            .params
            .iter()
            .map(|(n, v)| format!("{n}={}", f(*v)))
            .collect();
        fits.push_row(row![i + 1, r.family.name(), params.join(" "), r.ks, r.aic,]);
    }
    Ok((fits, series))
}

impl Experiment for Fig05MleFit {
    fn id(&self) -> &'static str {
        "fig05_mle_fit"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 5"
    }
    fn claim(&self) -> &'static str {
        "Pareto fits all failure intervals best; exponential fits intervals <= 1000 s"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let s = setup_ctx(ctx)?;
        let all = pooled_intervals(&s.records);
        if all.is_empty() {
            return Err("trace produced no failure intervals".into());
        }

        let below_1000: Vec<f64> = all.iter().copied().filter(|&x| x <= 1000.0).collect();
        let frac = below_1000.len() as f64 / all.len() as f64;

        let (fits_all, series_all) = panel(
            "all_intervals",
            "Figure 5(a): MLE fits over ALL failure intervals (paper: Pareto fits best)",
            &all,
        )?;
        let (fits_short, series_short) = panel(
            "short_intervals",
            "Figure 5(b): MLE fits over intervals <= 1000 s \
             (paper: exponential best, lambda = 0.00423445)",
            &below_1000,
        )?;

        let mut out = ExpOutput::new();
        out.note(format!(
            "short-interval mass: {} of {} intervals <= 1000 s ({:.1} %); \
             paper reports 'over 63 %'",
            below_1000.len(),
            all.len(),
            100.0 * frac
        ));
        out.push(fits_all);
        out.push(fits_short);
        out.push(series_all);
        out.push(series_short);
        Ok(out)
    }
}
