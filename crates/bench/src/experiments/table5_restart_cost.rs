//! **Table 5** — task restarting cost by migration type over memory size.
//!
//! Migration type A (checkpoint in the failed host's ramdisk, must be moved
//! before restart) vs type B (checkpoint on shared disk). Paper: A is
//! "much higher" — 0.71–5.69 s vs 0.37–2.4 s over 10–240 MB. This
//! experiment regenerates the table from the cost model and reprints the
//! §4.2.2 worked example that decides between the two.

use crate::exp::{ExpResult, Experiment};
use crate::report::f;
use ckpt_policy::storage::{choose_storage, DeviceCosts};
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_sim::blcr::{BlcrModel, Migration};

/// Table 5 experiment.
pub struct Table5RestartCost;

impl Experiment for Table5RestartCost {
    fn id(&self) -> &'static str {
        "table5_restart_cost"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 5"
    }
    fn claim(&self) -> &'static str {
        "Type-A (ramdisk) restarts cost much more than type-B (shared disk) restarts"
    }

    fn run(&self, _ctx: &RunContext) -> ExpResult {
        let blcr = BlcrModel;
        let mems = [10.0, 20.0, 40.0, 80.0, 160.0, 240.0];
        let paper_a = [0.71, 0.84, 1.23, 1.87, 3.22, 5.69];
        let paper_b = [0.37, 0.49, 0.54, 0.86, 1.45, 2.4];

        let mut table = Frame::new(
            "table5_restart_cost",
            vec![
                "memory_mb",
                "paper_a_s",
                "model_a_s",
                "paper_b_s",
                "model_b_s",
            ],
        )
        .with_title("Table 5: task restarting cost by migration type");
        for (i, &mem) in mems.iter().enumerate() {
            table.push_row(row![
                mem,
                paper_a[i],
                blcr.restart_cost(Migration::TypeA, mem),
                paper_b[i],
                blcr.restart_cost(Migration::TypeB, mem),
            ]);
        }

        let mut out = ExpOutput::new();
        out.push(table);

        // The paper's §4.2.2 worked example: Te=200 s, 160 MB, E(Y)=2.
        let local = DeviceCosts::new(0.632, 3.22).map_err(|e| e.to_string())?;
        let shared = DeviceCosts::new(1.67, 1.45).map_err(|e| e.to_string())?;
        let (pick, cl, cs) =
            choose_storage(200.0, 2.0, local, shared).map_err(|e| e.to_string())?;
        out.note(format!(
            "§4.2.2 worked example: local total {} s vs shared total {} s -> pick {} \
             (paper: 28.29 vs 37.78 -> local)",
            f(cl),
            f(cs),
            pick.label()
        ));
        Ok(out)
    }
}
