//! The experiment library: one module per paper figure/table (plus the
//! repo's extensions), each implementing [`crate::exp::Experiment`] and
//! registered in [`crate::registry`].
//!
//! Modules produce [`ckpt_report::ExpOutput`] frames only — rendering is
//! the shared writer's job, so there is no `println!` table code here.

pub mod cluster_validation;
pub mod ext_bootstrap;
pub mod ext_hazard_robustness;
pub mod ext_heavy_tail_fleet;
pub mod ext_host_failures;
pub mod ext_limit_robustness;
pub mod ext_penalty;
pub mod ext_policy_cost_grid;
pub mod ext_random_ckpt;
pub mod ext_stress_fleet;
pub mod fig04_interval_cdf;
pub mod fig05_mle_fit;
pub mod fig07_ckpt_cost;
pub mod fig08_job_dist;
pub mod fig09_wpr_cdf;
pub mod fig10_wpr_priority;
pub mod fig11_wpr_restricted;
pub mod fig12_wallclock;
pub mod fig13_paired;
pub mod fig14_dynamic;
pub mod table2_simultaneous;
pub mod table3_dmnfs;
pub mod table4_op_cost;
pub mod table5_restart_cost;
pub mod table6_precise;
pub mod table7_mnof_mtbf;
