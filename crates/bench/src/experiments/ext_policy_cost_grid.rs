//! **Extension** — the policy × checkpoint-cost acceptance grid: every
//! checkpoint policy (Formula (3), Young, Daly, none) crossed with a
//! geometric sweep of the per-checkpoint cost multiplier. The paper's
//! qualitative claim — Formula (3) dominates and the gap widens as
//! checkpoints get more expensive — as one declarative sweep
//! (`specs/policy_x_ckpt_cost.toml`).

use crate::exp::{ExpResult, Experiment};
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_scenario::{run_sweep_ctx, to_frame, SweepSpec};

const SPEC: &str = include_str!("../../../../specs/policy_x_ckpt_cost.toml");

/// Policy × checkpoint-cost acceptance-grid experiment.
pub struct ExtPolicyCostGrid;

impl Experiment for ExtPolicyCostGrid {
    fn id(&self) -> &'static str {
        "ext_policy_cost_grid"
    }
    fn paper_ref(&self) -> &'static str {
        "Figures 9-13 (extension grid)"
    }
    fn claim(&self) -> &'static str {
        "Formula (3) dominates every policy across a 32x checkpoint-cost range"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        // run_sweep_ctx applies the context's seed, scale, and threads; the
        // result records the effective seed for the export metadata.
        let sweep = SweepSpec::from_str(SPEC).map_err(|e| e.to_string())?;
        let result = run_sweep_ctx(&sweep, ctx).map_err(|e| e.to_string())?;

        // Per-policy WPR across the cost axis (cells are row-major:
        // policy-major order per the spec's axis listing).
        let mut table = Frame::new(
            "ext_policy_cost_grid",
            vec![
                "policy",
                "ckpt_cost_scale",
                "jobs",
                "mean_wpr",
                "p50_wpr",
                "p99_wpr",
            ],
        )
        .with_title(
            "Extension: mean WPR per policy across a geometric checkpoint-cost sweep \
             (failure-prone sample)",
        );
        for cell in &result.cells {
            let wpr = cell.metric("wpr")?;
            table.push_row(row![
                cell.param("policy")?,
                cell.param("ckpt_cost_scale")?,
                wpr.count,
                wpr.mean,
                wpr.p50,
                wpr.p99,
            ]);
        }

        let mut out = ExpOutput::new();
        out.push(table);
        out.push(to_frame(&sweep, &result));
        Ok(out)
    }
}
