//! **Table 7** — MNOF & MTBF with respect to job priority and task-length
//! limit over the (synthetic) Google trace.
//!
//! Paper reference values (seconds): for priority 2, MNOF/MTBF go from
//! 1.06/179 (length ≤ 1000 s) to 1.08/396 (≤ 3600 s) to 1.21/4199
//! (unlimited) — MNOF is stable while MTBF inflates ~23×. Priority 10 is
//! the failure-heavy monitoring tier (MNOF ≈ 11.9, MTBF ≈ 37 s).

use crate::exp::{ExpResult, Experiment};
use crate::harness::{setup_ctx, Scale};
use crate::report::f;
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_trace::stats::estimator_from_records;

/// Table 7 experiment.
pub struct Table7MnofMtbf;

impl Experiment for Table7MnofMtbf {
    fn id(&self) -> &'static str {
        "table7_mnof_mtbf"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 7"
    }
    fn claim(&self) -> &'static str {
        "MNOF is stable across task-length limits while MTBF inflates ~23x"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let s = setup_ctx(ctx)?;
        let est = estimator_from_records(&s.records);

        let limits = [
            (1000.0, "<=1000s"),
            (3600.0, "<=3600s"),
            (f64::INFINITY, "unlimited"),
        ];
        let mut table = Frame::new(
            "table7_mnof_mtbf",
            vec!["limit", "priority", "n_tasks", "mnof", "mtbf_s"],
        )
        .with_title(
            "Table 7: MNOF & MTBF w.r.t. job priority \
             (paper: MNOF stable, MTBF inflates with the limit)",
        );
        for (limit, label) in limits {
            for p in est.priorities() {
                if let Some(e) = est.estimate(p, limit) {
                    table.push_row(row![label, p, e.n_tasks, e.mnof, e.mtbf]);
                }
            }
        }
        let mut out = ExpOutput::new();
        out.push(table);

        // Headline check: pooled inflation factor.
        let short = est
            .estimate_pooled(1000.0)
            .ok_or("no tasks within the 1000 s limit")?;
        let all = est
            .estimate_pooled(f64::INFINITY)
            .ok_or("trace recorded no tasks")?;
        out.note(format!(
            "pooled: MNOF {} -> {} ({}x) | MTBF {}s -> {}s ({}x)",
            f(short.mnof),
            f(all.mnof),
            f(all.mnof / short.mnof),
            f(short.mtbf),
            f(all.mtbf),
            f(all.mtbf / short.mtbf),
        ));
        out.note("paper (priority 2): MNOF 1.06 -> 1.21 (1.14x) | MTBF 179s -> 4199s (23.5x)");
        Ok(out)
    }
}
