//! **Figure 14** — the dynamic (adaptive-MNOF, Algorithm 1) solution vs the
//! static one when every job's priority changes once in the middle of its
//! execution: (a) WPR distribution, (b) per-job wall-clock ratio.
//!
//! Paper: "the worst WPR under dynamic solution stays about 0.8 while that
//! under static approach is about 0.5"; "67 % of jobs' wall-clock lengths
//! are similar under the two different solutions, while over 21 % of jobs
//! run faster in the dynamic one than static one by 10 %".

use crate::exp::{ExpResult, Experiment};
use crate::harness::{setup_with, Scale};
use crate::report::ascii_cdf;
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_sim::metrics::{mean_wpr, paired_wall_clock, wpr_ecdf, wprs};
use ckpt_sim::{run_trace, PolicyConfig, RunOptions};
use ckpt_trace::spec::WorkloadSpec;

/// Figure 14 experiment.
pub struct Fig14Dynamic;

impl Experiment for Fig14Dynamic {
    fn id(&self) -> &'static str {
        "fig14_dynamic"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 14"
    }
    fn claim(&self) -> &'static str {
        "Under mid-run priority flips, adaptive re-solving keeps worst WPR ~0.8 vs ~0.5 static"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let spec = WorkloadSpec::google_like(ctx.scale.jobs()).with_priority_flips();
        let s = setup_with(spec, ctx.seed)?;
        let opts = RunOptions {
            threads: ctx.threads,
        };

        let dynamic_cfg = PolicyConfig::formula3().with_adaptivity(true);
        let static_cfg = PolicyConfig::formula3(); // keeps the start-of-task schedule
        let dynamic = s.sample_only(&run_trace(&s.trace, &s.estimates, &dynamic_cfg, opts));
        let fixed = s.sample_only(&run_trace(&s.trace, &s.estimates, &static_cfg, opts));

        let e_dyn = wpr_ecdf(&dynamic).ok_or("empty dynamic WPR sample")?;
        let e_sta = wpr_ecdf(&fixed).ok_or("empty static WPR sample")?;
        let mut summary = Frame::new(
            "fig14_summary",
            vec![
                "algorithm",
                "jobs",
                "avg_wpr",
                "worst_wpr",
                "p5_wpr",
                "p_below_08",
            ],
        )
        .with_title(
            "Figure 14(a): dynamic vs static WPR under mid-run priority flips \
             (paper: worst ~0.8 vs ~0.5)",
        );
        summary.push_row(row![
            "dynamic (Algorithm 1)",
            dynamic.len(),
            mean_wpr(&dynamic),
            e_dyn.min(),
            e_dyn.quantile(0.05),
            e_dyn.cdf(0.8),
        ]);
        summary.push_row(row![
            "static",
            fixed.len(),
            mean_wpr(&fixed),
            e_sta.min(),
            e_sta.quantile(0.05),
            e_sta.cdf(0.8),
        ]);

        let mut out = ExpOutput::new();
        out.note(ascii_cdf(&e_dyn.points(80), 64, 12, "WPR CDF — dynamic"));
        out.note(ascii_cdf(&e_sta.points(80), 64, 12, "WPR CDF — static"));

        // (b) per-job wall-clock ratio dynamic/static.
        let pairs = paired_wall_clock(&dynamic, &fixed);
        let similar = pairs
            .iter()
            .filter(|(_, r, _)| (*r - 1.0).abs() <= 0.02)
            .count();
        let faster10 = pairs.iter().filter(|(_, r, _)| *r <= 0.90).count();
        out.note(format!(
            "wall-clock ratio (dynamic/static): {:.1} % of jobs within ±2 %, \
             {:.1} % faster by ≥10 % under dynamic (paper: 67 % similar, >21 % faster by 10 %)",
            100.0 * similar as f64 / pairs.len() as f64,
            100.0 * faster10 as f64 / pairs.len() as f64
        ));

        let mut series = Frame::new("fig14_dynamic", vec!["wpr_dynamic", "wpr_static"]);
        for (w_dyn, w_sta) in wprs(&dynamic).iter().zip(wprs(&fixed).iter()) {
            series.push_row(row![*w_dyn, *w_sta]);
        }
        out.push(summary);
        out.push(series);
        Ok(out)
    }
}
