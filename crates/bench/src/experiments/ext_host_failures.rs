//! **Extension** — whole-host failures in the cluster DES: the paper's §2
//! describes that "if a host is down, all the tasks running on the VMs of
//! this host will be immediately restarted on other hosts from their most
//! recent checkpoints". This sweep injects host failures at decreasing
//! MTBFs and shows checkpointing (Formula (3)) degrading gracefully while
//! the no-checkpoint baseline collapses.

use crate::exp::{ExpResult, Experiment};
use crate::harness::setup_with;
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_sim::cluster::{ClusterConfig, ClusterSim};
use ckpt_sim::metrics::mean_wpr;
use ckpt_sim::PolicyConfig;
use ckpt_trace::spec::WorkloadSpec;

/// Host-failure extension experiment.
pub struct ExtHostFailures;

impl Experiment for ExtHostFailures {
    fn id(&self) -> &'static str {
        "ext_host_failures"
    }
    fn paper_ref(&self) -> &'static str {
        "§2 host-down restart path (extension)"
    }
    fn claim(&self) -> &'static str {
        "Checkpointing degrades gracefully under whole-host failures; no-ckpt collapses"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let mut spec = WorkloadSpec::google_like(ctx.scale.jobs().min(500));
        spec.mean_interarrival_s = 25.0;
        spec.long_task_fraction = 0.0;
        let s = setup_with(spec, ctx.seed)?;

        let mut table = Frame::new(
            "ext_host_failures",
            vec![
                "host_mtbf",
                "policy",
                "avg_wpr",
                "host_failures",
                "makespan_h",
            ],
        )
        .with_title("Extension: whole-host failure sweep (paper §2's host-down restart path)");
        for mtbf in [None, Some(14_400.0), Some(3_600.0), Some(1_200.0)] {
            let cfg = ClusterConfig {
                host_mtbf_s: mtbf,
                ..ClusterConfig::default()
            };
            for (label, policy) in [
                ("Formula(3)", PolicyConfig::formula3()),
                ("none", PolicyConfig::none()),
            ] {
                let result = ClusterSim::new(cfg, &s.trace, &s.estimates, policy).run();
                let jobs: Vec<_> = result.jobs.iter().map(|j| j.base.clone()).collect();
                table.push_row(row![
                    mtbf.map(|m| format!("{:.0} min", m / 60.0))
                        .unwrap_or_else(|| "off".into()),
                    label,
                    mean_wpr(&jobs),
                    result.host_failures,
                    result.makespan.as_secs_f64() / 3600.0,
                ]);
            }
        }
        let mut out = ExpOutput::new();
        out.push(table);
        Ok(out)
    }
}
