//! **Table 2** — cost of checkpointing multiple 160 MB tasks
//! simultaneously on local ramdisk vs a central NFS server, parallel degree
//! X = 1..5, min/avg/max over 25 repetitions (the paper's methodology).
//!
//! Paper values (avg): ramdisk stays ≈ 0.58–0.81 s at all degrees; NFS
//! climbs 1.67 → 2.67 → 5.38 → 6.25 → 8.95 s — "the increased checkpointing
//! cost over NFS is due to the network congestion on NFS servers".
//!
//! Re-expressed through `ckpt-scenario`: the table is the 10-cell grid in
//! `specs/exp_table2_simultaneous.toml` (device × degree) evaluated by the
//! `contention` engine — jittered checkpoint demands on a processor-sharing
//! NFS server, with each cell's jitter drawn from an RNG stream derived
//! from `(seed, cell index)` so the table is identical at any thread count.

use crate::exp::{ExpResult, Experiment};
use ckpt_report::{ExpOutput, Frame, RunContext, Value};
use ckpt_scenario::{run_sweep_ctx, to_frame, MetricSummary, SweepSpec};
use ckpt_sim::blcr::Device;
use std::collections::HashMap;

const SPEC: &str = include_str!("../../../../specs/exp_table2_simultaneous.toml");

/// Table 2 experiment.
pub struct Table2Simultaneous;

impl Experiment for Table2Simultaneous {
    fn id(&self) -> &'static str {
        "table2_simultaneous"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 2"
    }
    fn claim(&self) -> &'static str {
        "Simultaneous checkpointing stays flat on ramdisk but congests central NFS"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        // run_sweep_ctx applies the context's seed, scale, and threads; the
        // result records the effective seed for the export metadata.
        let sweep = SweepSpec::from_str(SPEC).map_err(|e| e.to_string())?;
        let result = run_sweep_ctx(&sweep, ctx).map_err(|e| e.to_string())?;

        // duration_s summary keyed by (device, degree).
        let mut dur: HashMap<(Device, usize), MetricSummary> = HashMap::new();
        for cell in &result.cells {
            let scen = sweep.cell(cell.index).map_err(|e| e.to_string())?;
            let s = cell
                .metrics
                .iter()
                .find(|(n, _)| *n == "duration_s")
                .ok_or("sweep cell is missing the duration_s metric")?
                .1;
            dur.insert((scen.device, scen.degree), s);
        }

        let mut table = Frame::new(
            "table2_simultaneous",
            vec!["type", "stat", "X=1", "X=2", "X=3", "X=4", "X=5"],
        )
        .with_title(
            "Table 2: simultaneous checkpointing cost, 160 MB \
             (paper avg: ramdisk 0.58-0.81 s flat; NFS 1.67 -> 8.95 s)",
        );
        for device in [Device::Ramdisk, Device::CentralNfs] {
            let label = match device {
                Device::Ramdisk => "ramdisk",
                _ => "NFS",
            };
            for (stat, pick) in [
                (
                    "min",
                    &(|s: &MetricSummary| s.min) as &dyn Fn(&MetricSummary) -> f64,
                ),
                ("avg", &|s: &MetricSummary| s.mean),
                ("max", &|s: &MetricSummary| s.max),
            ] {
                let mut cells = vec![Value::from(label), Value::from(stat)];
                for x in 1..=5usize {
                    let s = dur.get(&(device, x)).ok_or_else(|| {
                        format!(
                            "specs/exp_table2_simultaneous.toml no longer covers \
                             device {device:?} degree {x}"
                        )
                    })?;
                    cells.push(Value::Num(pick(s)));
                }
                table.push_row(cells);
            }
        }

        let mut out = ExpOutput::new();
        out.push(table);
        out.push(to_frame(&sweep, &result));
        Ok(out)
    }
}
