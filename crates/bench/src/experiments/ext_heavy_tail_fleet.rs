//! **Extension** — heavy-tailed host failures at cluster scale
//! (`specs/heavy_tail_fleet.toml`).
//!
//! The cluster DES (memory-constrained scheduling, storage contention,
//! restart migration) under whole-host failures whose inter-failure law is
//! swept across hazard families with the host MTBF pinned at 2 h — the
//! fleet-level version of the distribution-free stress test. Under bursty
//! (Weibull shape < 1) or heavy-tailed (Pareto) host failures the same
//! MTBF hides clustered outages; the frames record how much of Formula
//! (3)'s advantage over Young survives the move from the memoryless
//! baseline to those regimes, in makespan and WPR.

use crate::exp::{ExpResult, Experiment};
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_scenario::{run_sweep_ctx, to_frame, SweepSpec};
use std::collections::BTreeMap;

const SPEC: &str = include_str!("../../../../specs/heavy_tail_fleet.toml");

/// Heavy-tail fleet extension experiment.
pub struct ExtHeavyTailFleet;

impl Experiment for ExtHeavyTailFleet {
    fn id(&self) -> &'static str {
        "ext_heavy_tail_fleet"
    }
    fn paper_ref(&self) -> &'static str {
        "§2 host-down path under non-exponential hazards (extension)"
    }
    fn claim(&self) -> &'static str {
        "Fleet makespan/WPR under weibull/pareto host failures at a pinned 2 h MTBF"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let sweep = SweepSpec::from_str(SPEC).map_err(|e| e.to_string())?;
        let result = run_sweep_ctx(&sweep, ctx).map_err(|e| e.to_string())?;

        let mut table = Frame::new(
            "ext_heavy_tail_fleet",
            vec![
                "failure_model",
                "policy",
                "jobs",
                "mean_wpr",
                "mean_queue_wait_s",
                "makespan_h",
                "des_events",
            ],
        )
        .with_title(
            "Heavy-tail fleet (32 hosts x 7 VMs, host MTBF pinned at 2 h): \
             per-model cluster outcomes",
        )
        .with_meta("scale", ctx.scale.label())
        .with_meta("spec", "specs/heavy_tail_fleet.toml");
        // model → policy → (makespan_s, wpr)
        let mut by_model: BTreeMap<String, Vec<(String, f64, f64)>> = BTreeMap::new();
        let mut model_order: Vec<String> = Vec::new();
        for cell in &result.cells {
            let model = cell.param("failure_model")?.to_string();
            let policy = cell.param("policy")?.to_string();
            let wpr = cell.metric("wpr")?;
            let wait = cell.metric("queue_wait_s")?;
            let makespan = cell.metric("makespan_s")?;
            let events = cell.metric("events")?;
            table.push_row(row![
                model.clone(),
                policy.clone(),
                wpr.count,
                wpr.mean,
                wait.mean,
                makespan.mean / 3600.0,
                events.mean,
            ]);
            if !model_order.contains(&model) {
                model_order.push(model.clone());
            }
            by_model
                .entry(model)
                .or_default()
                .push((policy, makespan.mean, wpr.mean));
        }

        let mut inflation = Frame::new(
            "ext_heavy_tail_inflation",
            vec![
                "failure_model",
                "makespan_formula3_h",
                "makespan_inflation_young",
                "wpr_formula3",
                "wpr_young",
            ],
        )
        .with_title("Young's makespan inflation over Formula (3) per host-failure law");
        for model in &model_order {
            let cells = &by_model[model];
            let find = |policy: &str| {
                cells
                    .iter()
                    .find(|(p, ..)| p == policy)
                    .ok_or_else(|| format!("model {model}: missing policy {policy}"))
            };
            let (_, f3_mk, f3_wpr) = find("formula3")?.clone();
            let (_, yg_mk, yg_wpr) = find("young")?.clone();
            if f3_mk <= 0.0 {
                return Err(format!("model {model}: empty formula3 makespan").into());
            }
            inflation.push_row(row![
                model.clone(),
                f3_mk / 3600.0,
                yg_mk / f3_mk,
                f3_wpr,
                yg_wpr
            ]);
        }

        let mut out = ExpOutput::new();
        out.push(table);
        out.push(inflation);
        out.push(to_frame(&sweep, &result));
        Ok(out)
    }
}
