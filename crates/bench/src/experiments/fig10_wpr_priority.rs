//! **Figure 10** — min/avg/max WPR per priority under Formula (3) vs
//! Young's formula, split by structure.
//!
//! Paper: "for almost all priorities, the checkpointing method with
//! Formula (3) significantly outperforms that with Young's formula, by
//! 3-10 % on average". (Some priorities are missing in the paper because
//! no job failed or completed there; ours appear when the sample contains
//! them.)
//!
//! Re-expressed through `ckpt-scenario`: the figure is the 48-cell grid in
//! `specs/exp_fig10_wpr_priority.toml` (policy × structure × priority).
//! Structure and priority are pure aggregation filters, so the engine's
//! run-key cache evaluates exactly two replays — one per policy — and the
//! numbers are identical to calling `run_trace` directly with the same
//! trace, estimator and failure-prone sample.

use crate::exp::{ExpResult, Experiment};
use crate::harness::Scale;
use ckpt_policy::PolicyKind;
use ckpt_report::{row, ExpOutput, Frame, RunContext, Value};
use ckpt_scenario::{run_sweep_ctx, to_frame, MetricSummary, SweepSpec};
use ckpt_trace::gen::JobStructure;
use std::collections::HashMap;

const SPEC: &str = include_str!("../../../../specs/exp_fig10_wpr_priority.toml");

/// Figure 10 experiment.
pub struct Fig10WprPriority;

impl Experiment for Fig10WprPriority {
    fn id(&self) -> &'static str {
        "fig10_wpr_priority"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 10"
    }
    fn claim(&self) -> &'static str {
        "Formula (3) outperforms Young by 3-10 % on average for almost all priorities"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        // run_sweep_ctx applies the context's seed, scale, and threads; the
        // result records the effective seed for the export metadata.
        let sweep = SweepSpec::from_str(SPEC).map_err(|e| e.to_string())?;
        let result = run_sweep_ctx(&sweep, ctx).map_err(|e| e.to_string())?;

        // wpr summary keyed by (policy, structure, priority).
        let mut wpr: HashMap<(PolicyKind, JobStructure, u8), MetricSummary> = HashMap::new();
        for cell in &result.cells {
            let scen = sweep.cell(cell.index).map_err(|e| e.to_string())?;
            let s = cell
                .metrics
                .iter()
                .find(|(n, _)| *n == "wpr")
                .ok_or("sweep cell is missing the wpr metric")?
                .1;
            wpr.insert(
                (
                    scen.policy,
                    scen.structure
                        .ok_or("cell has no structure axis assignment")?,
                    scen.priority
                        .ok_or("cell has no priority axis assignment")?,
                ),
                s,
            );
        }

        let mut out = ExpOutput::new();
        for structure in [JobStructure::Sequential, JobStructure::BagOfTasks] {
            let mut table = Frame::new(
                &format!("fig10_wpr_priority_{}", structure.label().to_lowercase()),
                vec![
                    "priority",
                    "jobs",
                    "f3_min",
                    "f3_avg",
                    "f3_max",
                    "y_min",
                    "y_avg",
                    "y_max",
                    "avg_gain_pct",
                ],
            )
            .with_title(format!(
                "Figure 10 ({} jobs): min/avg/max WPR by priority \
                 (paper: Formula (3) ahead by 3-10 % on average)",
                structure.label()
            ));
            for p in 1..=12u8 {
                let (Some(a), Some(b)) = (
                    wpr.get(&(PolicyKind::Formula3, structure, p)),
                    wpr.get(&(PolicyKind::Young, structure, p)),
                ) else {
                    continue;
                };
                if a.count == 0 {
                    continue;
                }
                table.push_row(row![
                    p,
                    a.count,
                    a.min,
                    a.mean,
                    a.max,
                    b.min,
                    b.mean,
                    b.max,
                    Value::Num(100.0 * (a.mean - b.mean)),
                ]);
            }
            out.push(table);
        }

        out.push(to_frame(&sweep, &result));
        Ok(out)
    }
}
