//! **Figure 12** — real wall-clock lengths of jobs under both formulas,
//! with task lengths restricted to RL = 1000 s and RL = 4000 s.
//!
//! Paper: "majority of jobs' wall-clock lengths are incremented by
//! 50-100 seconds under Young's formula compared to our Formula (3)" —
//! large because most Google jobs are only 200–1000 s long.

use crate::exp::{ExpResult, Experiment};
use crate::harness::{setup_ctx, Scale};
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_sim::metrics::{paired_wall_clock, with_max_length};
use ckpt_sim::{run_trace, EstimatorKind, PolicyConfig, RunOptions};
use ckpt_stats::ecdf::Ecdf;

/// Figure 12 experiment.
pub struct Fig12Wallclock;

impl Experiment for Fig12Wallclock {
    fn id(&self) -> &'static str {
        "fig12_wallclock"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 12"
    }
    fn claim(&self) -> &'static str {
        "Most jobs run 50-100 s longer under Young's formula than under Formula (3)"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let s = setup_ctx(ctx)?;
        let opts = RunOptions {
            threads: ctx.threads,
        };

        let mut summary = Frame::new(
            "fig12_summary",
            vec![
                "rl_s",
                "jobs",
                "med_wall_f3_s",
                "med_wall_young_s",
                "med_extra_under_young_s",
                "p75_extra_s",
            ],
        )
        .with_title("Figure 12: wall-clock lengths (paper: most jobs +50-100 s under Young)");
        let mut series = Frame::new(
            "fig12_wallclock",
            vec!["rl_s", "job_id", "young_minus_f3_s"],
        );
        // Deployment estimator (full-range per-priority statistics, as in
        // the Figure 9 runs); the RL value only filters which jobs are
        // plotted.
        let est = EstimatorKind::PerPriority {
            limit: f64::INFINITY,
        };
        for rl in [1000.0, 4000.0] {
            let f3 = PolicyConfig::formula3().with_estimator(est);
            let yg = PolicyConfig::young().with_estimator(est);
            let recs_f3 = with_max_length(
                &s.sample_only(&run_trace(&s.trace, &s.estimates, &f3, opts)),
                rl,
            );
            let recs_yg = with_max_length(
                &s.sample_only(&run_trace(&s.trace, &s.estimates, &yg, opts)),
                rl,
            );
            // Paired per job: Young − Formula(3) wall-clock difference.
            let pairs = paired_wall_clock(&recs_yg, &recs_f3);
            if pairs.is_empty() {
                continue;
            }
            let diffs: Vec<f64> = pairs.iter().map(|&(_, _, d)| d).collect();
            let walls_f3: Vec<f64> = recs_f3.iter().map(|r| r.total_wall).collect();
            let walls_yg: Vec<f64> = recs_yg.iter().map(|r| r.total_wall).collect();
            let ed = Ecdf::new(&diffs).map_err(|e| e.to_string())?;
            let ef = Ecdf::new(&walls_f3).map_err(|e| e.to_string())?;
            let ey = Ecdf::new(&walls_yg).map_err(|e| e.to_string())?;
            summary.push_row(row![
                rl,
                pairs.len(),
                ef.quantile(0.5),
                ey.quantile(0.5),
                ed.quantile(0.5),
                ed.quantile(0.75),
            ]);
            for (i, &(job, _, d)) in pairs.iter().enumerate() {
                // Keep the series bounded at large scales.
                if i % 4 == 0 {
                    series.push_row(row![rl, job, d]);
                }
            }
        }
        let mut out = ExpOutput::new();
        out.push(summary);
        out.push(series);
        Ok(out)
    }
}
