//! **Figure 9** — CDF of the Workload-Processing Ratio under Formula (3)
//! vs Young's formula, with priority-group MNOF/MTBF estimation, split by
//! job structure (a: sequential-task, b: bag-of-task).
//!
//! Paper reference: average WPR 0.945 (Formula 3) vs 0.916 (Young) for ST
//! jobs; 0.955 vs 0.915 for BoT. Only 7 % of ST jobs fall below WPR 0.88
//! under Formula (3) vs ~20 % under Young; 56.6 % of BoT jobs exceed 0.95
//! vs 46.5 %.

use crate::exp::{ExpResult, Experiment};
use crate::harness::{setup_ctx, Scale};
use crate::report::ascii_cdf;
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_sim::metrics::{mean_wpr, with_structure, wpr_ecdf};
use ckpt_sim::{run_trace, PolicyConfig, RunOptions};
use ckpt_trace::gen::JobStructure;

/// Figure 9 experiment.
pub struct Fig09WprCdf;

impl Experiment for Fig09WprCdf {
    fn id(&self) -> &'static str {
        "fig09_wpr_cdf"
    }
    fn paper_ref(&self) -> &'static str {
        "Figure 9"
    }
    fn claim(&self) -> &'static str {
        "Formula (3) beats Young on WPR: ST 0.945 vs 0.916, BoT 0.955 vs 0.915"
    }
    fn default_scale(&self) -> Scale {
        Scale::Day
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let s = setup_ctx(ctx)?;
        let opts = RunOptions {
            threads: ctx.threads,
        };

        let f3 = run_trace(&s.trace, &s.estimates, &PolicyConfig::formula3(), opts);
        let yg = run_trace(&s.trace, &s.estimates, &PolicyConfig::young(), opts);
        let f3 = s.sample_only(&f3);
        let yg = s.sample_only(&yg);

        let mut summary = Frame::new(
            "fig09_summary",
            vec![
                "structure",
                "policy",
                "jobs",
                "avg_wpr",
                "p_below_088",
                "p_above_095",
            ],
        )
        .with_title(
            "Figure 9: WPR under Formula (3) vs Young \
             (paper: ST 0.945 vs 0.916, BoT 0.955 vs 0.915)",
        );
        let mut cdf = Frame::new("fig09_wpr_cdf", vec!["structure", "policy", "wpr", "cdf"]);
        let mut out = ExpOutput::new();
        for structure in [JobStructure::Sequential, JobStructure::BagOfTasks] {
            for (label, recs) in [("Formula(3)", &f3), ("Young", &yg)] {
                let sub = with_structure(recs, structure);
                let ecdf = wpr_ecdf(&sub).ok_or("empty WPR sample")?;
                summary.push_row(row![
                    structure.label(),
                    label,
                    sub.len(),
                    mean_wpr(&sub),
                    ecdf.cdf(0.88),
                    1.0 - ecdf.cdf(0.95),
                ]);
                let pts = ecdf.points(100);
                out.note(ascii_cdf(
                    &pts,
                    64,
                    12,
                    &format!("WPR CDF — {} jobs, {label}", structure.label()),
                ));
                for (x, p) in pts {
                    cdf.push_row(row![structure.label(), label, x, p]);
                }
            }
        }
        out.push(summary);
        out.push(cdf);
        Ok(out)
    }
}
