//! **Extension** — the distribution-free claim, stressed end to end
//! (`specs/hazard_robustness.toml`).
//!
//! Theorem 1's `x* = sqrt(Te·E(Y)/(2C))` needs only the expected failure
//! *count* (MNOF); Young's and Daly's `sqrt(2·C·Tf)` forms consume an MTBF
//! and implicitly assume the memoryless law that makes the mean interval a
//! sufficient statistic. Real failure records are Weibull-with-shape-<-1
//! or heavy-tailed (arXiv:2311.17545; Sodre, arXiv:1802.07455) — so this
//! experiment replays one workload under five inter-failure laws with the
//! per-priority MNOF calibration held fixed, and reports each policy's
//! completion-time inflation over Formula (3) per distribution. An
//! analytic companion frame prices the same effect with
//! [`ckpt_policy::analysis::hazard_policy_costs`].

use crate::exp::{ExpResult, Experiment};
use ckpt_policy::analysis::hazard_policy_costs;
use ckpt_report::{row, ExpOutput, Frame, RunContext};
use ckpt_scenario::{run_sweep_ctx, to_frame, SweepSpec};
use std::collections::BTreeMap;

const SPEC: &str = include_str!("../../../../specs/hazard_robustness.toml");

/// Hazard-robustness extension experiment.
pub struct ExtHazardRobustness;

impl Experiment for ExtHazardRobustness {
    fn id(&self) -> &'static str {
        "ext_hazard_robustness"
    }
    fn paper_ref(&self) -> &'static str {
        "Theorem 1 ext. (distribution-free claim)"
    }
    fn claim(&self) -> &'static str {
        "Formula (3) stays near-optimal under non-exponential hazards; Young/Daly inflate"
    }

    fn run(&self, ctx: &RunContext) -> ExpResult {
        let sweep = SweepSpec::from_str(SPEC).map_err(|e| e.to_string())?;
        let result = run_sweep_ctx(&sweep, ctx).map_err(|e| e.to_string())?;

        // (model → policy → (mean wall, mean overhead, mean wpr)) in
        // sweep order. Overhead = checkpoint + rollback + restart time:
        // the policy-controlled part of the wall clock (Formula (1)).
        let mut by_model: BTreeMap<String, Vec<(String, f64, f64, f64)>> = BTreeMap::new();
        let mut model_order: Vec<String> = Vec::new();
        let mut per_cell = Frame::new(
            "ext_hazard_cells",
            vec![
                "failure_model",
                "policy",
                "jobs",
                "mean_wall_s",
                "mean_wpr",
                "mean_failures",
            ],
        )
        .with_title("Per-cell means: one workload, five inter-failure laws, four policies")
        .with_meta("scale", ctx.scale.label())
        .with_meta("spec", "specs/hazard_robustness.toml");
        for cell in &result.cells {
            let model = cell.param("failure_model")?.to_string();
            let policy = cell.param("policy")?.to_string();
            let wall = cell.metric("wall_s")?;
            let wpr = cell.metric("wpr")?;
            let failures = cell.metric("failures")?;
            let overhead = cell.metric("ckpt_overhead_s")?.mean
                + cell.metric("rollback_s")?.mean
                + cell.metric("restart_s")?.mean;
            per_cell.push_row(row![
                model.clone(),
                policy.clone(),
                wall.count,
                wall.mean,
                wpr.mean,
                failures.mean,
            ]);
            if !model_order.contains(&model) {
                model_order.push(model.clone());
            }
            by_model
                .entry(model)
                .or_default()
                .push((policy, wall.mean, overhead, wpr.mean));
        }

        // The headline: completion-time inflation of each MTBF-driven
        // policy over Formula (3), per distribution — on the full wall
        // clock and on the policy-controlled overhead (Formula (1)'s
        // checkpoint + rollback + restart terms), where the mis-sizing is
        // not diluted by productive time.
        let mut inflation = Frame::new(
            "ext_hazard_inflation",
            vec![
                "failure_model",
                "wall_formula3_s",
                "wall_inflation_young",
                "overhead_formula3_s",
                "overhead_inflation_young",
                "overhead_inflation_daly",
                "overhead_inflation_none",
                "wpr_formula3",
                "wpr_young",
            ],
        )
        .with_title(
            "Completion-time inflation vs Formula (3) per inter-failure law \
             (MNOF calibration held fixed; only the interval distribution changes)",
        );
        for model in &model_order {
            let cells = &by_model[model];
            let find = |policy: &str| {
                cells
                    .iter()
                    .find(|(p, ..)| p == policy)
                    .ok_or_else(|| format!("model {model}: missing policy {policy}"))
            };
            let (_, f3_wall, f3_ovh, f3_wpr) = *find("formula3")?;
            let (_, yg_wall, yg_ovh, yg_wpr) = *find("young")?;
            let (_, _, dl_ovh, _) = *find("daly")?;
            let (_, _, none_ovh, _) = *find("none")?;
            if f3_wall <= 0.0 || f3_ovh <= 0.0 {
                return Err(format!("model {model}: empty formula3 sample").into());
            }
            inflation.push_row(row![
                model.clone(),
                f3_wall,
                yg_wall / f3_wall,
                f3_ovh,
                yg_ovh / f3_ovh,
                dl_ovh / f3_ovh,
                none_ovh / f3_ovh,
                f3_wpr,
                yg_wpr,
            ]);
        }

        // Analytic companion: Formula (4) prices any interval count once
        // E(Y) is known, so the MTBF distortion γ (recorded MTBF over the
        // effective interval te/E(Y)) maps straight to overhead ratios.
        let mut analytic = Frame::new(
            "ext_hazard_analytic",
            vec![
                "mtbf_distortion",
                "x_opt",
                "x_young",
                "x_daly",
                "young_overhead_ratio",
                "daly_overhead_ratio",
            ],
        )
        .with_title(
            "Formula (4) pricing of Young/Daly counts under a distorted MTBF \
             (te=600 s, C=0.5 s, E(Y)=1.2)",
        );
        let (te, c, e_y) = (600.0, 0.5, 1.2);
        for gamma in [1.0, 2.0, 6.0, 18.0] {
            let hc =
                hazard_policy_costs(te, c, e_y, gamma * te / e_y).map_err(|e| e.to_string())?;
            analytic.push_row(row![
                gamma,
                hc.x_opt,
                hc.x_young,
                hc.x_daly,
                hc.young_ratio,
                hc.daly_ratio,
            ]);
        }

        let mut out = ExpOutput::new();
        out.push(inflation);
        out.push(per_cell);
        out.push(analytic);
        out.push(to_frame(&sweep, &result));
        Ok(out)
    }
}
