//! Shared output helpers for the experiment binaries: aligned text tables on
//! stdout and CSV files under `results/`.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Where experiment CSVs land. Resolves `results/` relative to the workspace
/// root (two levels up from this crate's manifest when run via cargo), or the
/// current directory as a fallback.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = <workspace>/crates/bench at compile time.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(Path::new("."));
    root.join("results")
}

/// A simple aligned text table builder for experiment reports.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity; checked at print time).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:<w$}"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        print!("{}", self.render());
    }

    /// Write the table as CSV to `results/<name>.csv`; returns the path.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Write `(x, y...)` series data as CSV to `results/<name>.csv`.
pub fn write_series_csv(
    name: &str,
    header: &[&str],
    rows: &[Vec<f64>],
) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", line.join(","))?;
    }
    Ok(path)
}

/// Format a float compactly for table cells.
pub fn f(v: f64) -> String {
    if v.is_infinite() {
        return "inf".to_string();
    }
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Render a compact ASCII CDF plot from `(x, F)` points (monotone in both).
pub fn ascii_cdf(points: &[(f64, f64)], width: usize, height: usize, label: &str) -> String {
    if points.is_empty() {
        return String::new();
    }
    let x_min = points.first().unwrap().0;
    let x_max = points.last().unwrap().0.max(x_min + f64::MIN_POSITIVE);
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, p) in points {
        let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
        let row = ((1.0 - p) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col.min(width - 1)] = b'*';
    }
    let mut out = format!("{label}  (x: {x_min:.1} .. {x_max:.1}, y: 0..1)\n");
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).unwrap());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "bb", "ccc"]);
        t.row(vec!["1", "2", "3"]);
        t.row(vec!["10", "20", "30"]);
        let s = t.render();
        assert!(s.contains("a   bb  ccc"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.0), "1234");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(0.6321), "0.632");
        assert_eq!(f(f64::INFINITY), "inf");
    }

    #[test]
    fn ascii_cdf_shape() {
        let pts: Vec<(f64, f64)> = (1..=50).map(|i| (i as f64, i as f64 / 50.0)).collect();
        let s = ascii_cdf(&pts, 40, 10, "test");
        assert!(s.starts_with("test"));
        assert!(s.contains('*'));
    }
}
