//! Presentation helpers for the experiment library: the results
//! directory, compact float formatting for text cells, and ASCII CDF
//! plots. All tabular output goes through the shared frame writer in
//! [`ckpt_report`] — there is no bespoke table/CSV code left here.

use std::path::{Path, PathBuf};

pub use ckpt_report::compact_f64 as f;

/// Where experiment outputs land. Resolves `results/` relative to the
/// workspace root (two levels up from this crate's manifest when run via
/// cargo), or the current directory as a fallback.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = <workspace>/crates/bench at compile time.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(Path::new("."));
    root.join("results")
}

/// Render a compact ASCII CDF plot from `(x, F)` points (monotone in both).
pub fn ascii_cdf(points: &[(f64, f64)], width: usize, height: usize, label: &str) -> String {
    if points.is_empty() {
        return String::new();
    }
    let x_min = points.first().unwrap().0;
    let x_max = points.last().unwrap().0.max(x_min + f64::MIN_POSITIVE);
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, p) in points {
        let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
        let row = ((1.0 - p) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col.min(width - 1)] = b'*';
    }
    let mut out = format!("{label}  (x: {x_min:.1} .. {x_max:.1}, y: 0..1)\n");
    for row in grid {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).unwrap());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.0), "1234");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(0.6321), "0.632");
        assert_eq!(f(f64::INFINITY), "inf");
    }

    #[test]
    fn ascii_cdf_shape() {
        let pts: Vec<(f64, f64)> = (1..=50).map(|i| (i as f64, i as f64 / 50.0)).collect();
        let s = ascii_cdf(&pts, 40, 10, "test");
        assert!(s.starts_with("test"));
        assert!(s.contains('*'));
    }
}
