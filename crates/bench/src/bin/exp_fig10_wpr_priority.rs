//! Legacy shim for the registered `fig10_wpr_priority` experiment — prefer
//! `cloud-ckpt exp run fig10_wpr_priority`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("fig10_wpr_priority")
}
