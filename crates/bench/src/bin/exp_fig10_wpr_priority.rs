//! **Figure 10** — min/avg/max WPR per priority under Formula (3) vs
//! Young's formula, split by structure.
//!
//! Paper: "for almost all priorities, the checkpointing method with
//! Formula (3) significantly outperforms that with Young's formula, by
//! 3-10 % on average". (Some priorities are missing in the paper because
//! no job failed or completed there; ours appear when the sample contains
//! them.)

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{f, Table};
use ckpt_sim::metrics::{with_structure, wpr_by_priority};
use ckpt_sim::{run_trace, PolicyConfig, RunOptions};
use ckpt_trace::gen::JobStructure;

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let s = setup(scale, seed_from_env());
    let opts = RunOptions::default();

    let f3 = s.sample_only(&run_trace(&s.trace, &s.estimates, &PolicyConfig::formula3(), opts));
    let yg = s.sample_only(&run_trace(&s.trace, &s.estimates, &PolicyConfig::young(), opts));

    for structure in [JobStructure::Sequential, JobStructure::BagOfTasks] {
        let by_f3 = wpr_by_priority(&with_structure(&f3, structure));
        let by_yg = wpr_by_priority(&with_structure(&yg, structure));
        let mut table = Table::new(vec![
            "priority", "jobs", "F3 min", "F3 avg", "F3 max", "Y min", "Y avg", "Y max", "avg gain",
        ]);
        for p in 1..=12u8 {
            let (Some(a), Some(b)) = (by_f3.get(&p), by_yg.get(&p)) else { continue };
            if a.count() == 0 {
                continue;
            }
            table.row(vec![
                p.to_string(),
                a.count().to_string(),
                f(a.min()),
                f(a.mean()),
                f(a.max()),
                f(b.min()),
                f(b.mean()),
                f(b.max()),
                format!("{:+.1}%", 100.0 * (a.mean() - b.mean())),
            ]);
        }
        table.print(&format!(
            "Figure 10 ({} jobs): min/avg/max WPR by priority (paper: Formula (3) ahead by 3-10 % on average)",
            structure.label()
        ));
        table
            .write_csv(&format!("fig10_wpr_priority_{}", structure.label().to_lowercase()))
            .expect("write CSV");
    }
    println!("\nCSV written to results/fig10_wpr_priority_{{st,bot}}.csv");
}
