//! **Figure 10** — min/avg/max WPR per priority under Formula (3) vs
//! Young's formula, split by structure.
//!
//! Paper: "for almost all priorities, the checkpointing method with
//! Formula (3) significantly outperforms that with Young's formula, by
//! 3-10 % on average". (Some priorities are missing in the paper because
//! no job failed or completed there; ours appear when the sample contains
//! them.)
//!
//! Re-expressed through `ckpt-scenario`: the figure is the 48-cell grid in
//! `specs/exp_fig10_wpr_priority.toml` (policy × structure × priority).
//! Structure and priority are pure aggregation filters, so the engine's
//! run-key cache evaluates exactly two replays — one per policy — and the
//! numbers are identical to calling `run_trace` directly with the same
//! trace, estimator and failure-prone sample.

use ckpt_bench::harness::{seed_from_env, Scale};
use ckpt_bench::report::{f, results_dir, Table};
use ckpt_policy::PolicyKind;
use ckpt_scenario::{run_sweep, write_outputs, MetricSummary, SweepOptions, SweepSpec};
use ckpt_trace::gen::JobStructure;
use std::collections::HashMap;

const SPEC: &str = include_str!("../../../../specs/exp_fig10_wpr_priority.toml");

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let mut sweep = SweepSpec::from_str(SPEC).expect("bundled spec parses");
    sweep.base.jobs = scale.jobs();
    sweep.base.seed = seed_from_env();

    let result = run_sweep(&sweep, SweepOptions::default()).expect("sweep runs");

    // wpr summary keyed by (policy, structure, priority).
    let mut wpr: HashMap<(PolicyKind, JobStructure, u8), MetricSummary> = HashMap::new();
    for cell in &result.cells {
        let scen = sweep.cell(cell.index).expect("cell in grid");
        let s = cell
            .metrics
            .iter()
            .find(|(n, _)| *n == "wpr")
            .expect("wpr metric")
            .1;
        wpr.insert(
            (
                scen.policy,
                scen.structure.expect("axis sets structure"),
                scen.priority.expect("axis sets priority"),
            ),
            s,
        );
    }

    for structure in [JobStructure::Sequential, JobStructure::BagOfTasks] {
        let mut table = Table::new(vec![
            "priority", "jobs", "F3 min", "F3 avg", "F3 max", "Y min", "Y avg", "Y max", "avg gain",
        ]);
        for p in 1..=12u8 {
            let (Some(a), Some(b)) = (
                wpr.get(&(PolicyKind::Formula3, structure, p)),
                wpr.get(&(PolicyKind::Young, structure, p)),
            ) else {
                continue;
            };
            if a.count == 0 {
                continue;
            }
            table.row(vec![
                p.to_string(),
                a.count.to_string(),
                f(a.min),
                f(a.mean),
                f(a.max),
                f(b.min),
                f(b.mean),
                f(b.max),
                format!("{:+.1}%", 100.0 * (a.mean - b.mean)),
            ]);
        }
        table.print(&format!(
            "Figure 10 ({} jobs): min/avg/max WPR by priority (paper: Formula (3) ahead by 3-10 % on average)",
            structure.label()
        ));
        table
            .write_csv(&format!(
                "fig10_wpr_priority_{}",
                structure.label().to_lowercase()
            ))
            .expect("write CSV");
    }

    write_outputs(&sweep, &result, results_dir()).expect("write sweep outputs");
    println!("\nCSV written to results/fig10_wpr_priority_{{st,bot}}.csv");
    println!("sweep grid written to results/fig10_wpr_priority_cells.csv (+ JSON summary)");
}
