//! Legacy shim for the registered `fig11_wpr_restricted` experiment — prefer
//! `cloud-ckpt exp run fig11_wpr_restricted`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("fig11_wpr_restricted")
}
