//! **Figure 11** — WPR distributions for relatively short jobs with
//! restricted task length RL ∈ {1000, 2000, 4000} s, over a one-day trace
//! (~10k jobs). MNOF/MTBF are estimated from the corresponding short tasks
//! ("in order to estimate MTBF with as small errors as possible for
//! Young's formula").
//!
//! Paper: under Formula (3), 98 % of jobs reach WPR > 0.9; under Young's
//! formula up to 40 % of jobs fall below 0.9.

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{f, write_series_csv, Table};
use ckpt_sim::metrics::{mean_wpr, with_max_length, with_structure, wpr_ecdf};
use ckpt_sim::{run_trace, EstimatorKind, PolicyConfig, RunOptions};
use ckpt_trace::gen::JobStructure;

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let s = setup(scale, seed_from_env());
    let opts = RunOptions::default();

    let mut table = Table::new(vec![
        "structure",
        "RL(s)",
        "policy",
        "jobs",
        "avg WPR",
        "P(WPR>0.9)",
    ]);
    let mut csv: Vec<Vec<f64>> = Vec::new();
    for rl in [1000.0, 2000.0, 4000.0] {
        // Estimators restricted to tasks within the limit (honest MTBF).
        let est = EstimatorKind::PerPriority { limit: rl };
        let f3 = PolicyConfig::formula3().with_estimator(est);
        let yg = PolicyConfig::young().with_estimator(est);
        let recs_f3 = s.sample_only(&run_trace(&s.trace, &s.estimates, &f3, opts));
        let recs_yg = s.sample_only(&run_trace(&s.trace, &s.estimates, &yg, opts));
        for structure in [JobStructure::Sequential, JobStructure::BagOfTasks] {
            for (pi, (label, recs)) in [("Formula(3)", &recs_f3), ("Young", &recs_yg)]
                .iter()
                .enumerate()
            {
                let sub = with_max_length(&with_structure(recs, structure), rl);
                if sub.is_empty() {
                    continue;
                }
                let e = wpr_ecdf(&sub).expect("non-empty");
                table.row(vec![
                    structure.label().to_string(),
                    format!("{rl}"),
                    label.to_string(),
                    sub.len().to_string(),
                    f(mean_wpr(&sub)),
                    f(1.0 - e.cdf(0.9)),
                ]);
                for (x, q) in e.points(64) {
                    csv.push(vec![
                        if structure == JobStructure::Sequential {
                            0.0
                        } else {
                            1.0
                        },
                        rl,
                        pi as f64,
                        x,
                        q,
                    ]);
                }
            }
        }
    }
    table.print("Figure 11: WPR for restricted task lengths (paper: 98 % above 0.9 under Formula (3); up to 40 % below 0.9 under Young)");
    table.write_csv("fig11_summary").expect("write CSV");
    write_series_csv(
        "fig11_wpr_restricted",
        &["structure(0=ST)", "RL_s", "policy(0=F3)", "wpr", "cdf"],
        &csv,
    )
    .expect("write CSV");
    println!("\nCSV written to results/fig11_wpr_restricted.csv");
}
