//! Legacy shim for the registered `fig09_wpr_cdf` experiment — prefer
//! `cloud-ckpt exp run fig09_wpr_cdf`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("fig09_wpr_cdf")
}
