//! **Figure 9** — CDF of the Workload-Processing Ratio under Formula (3)
//! vs Young's formula, with priority-group MNOF/MTBF estimation, split by
//! job structure (a: sequential-task, b: bag-of-task).
//!
//! Paper reference: average WPR 0.945 (Formula 3) vs 0.916 (Young) for ST
//! jobs; 0.955 vs 0.915 for BoT. Only 7 % of ST jobs fall below WPR 0.88
//! under Formula (3) vs ~20 % under Young; 56.6 % of BoT jobs exceed 0.95
//! vs 46.5 %.

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{ascii_cdf, f, write_series_csv, Table};
use ckpt_sim::metrics::{mean_wpr, with_structure, wpr_ecdf};
use ckpt_sim::{run_trace, PolicyConfig, RunOptions};
use ckpt_trace::gen::JobStructure;

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let s = setup(scale, seed_from_env());
    let opts = RunOptions::default();

    let f3 = run_trace(&s.trace, &s.estimates, &PolicyConfig::formula3(), opts);
    let yg = run_trace(&s.trace, &s.estimates, &PolicyConfig::young(), opts);
    let f3 = s.sample_only(&f3);
    let yg = s.sample_only(&yg);

    let mut summary = Table::new(vec![
        "structure",
        "policy",
        "jobs",
        "avg WPR",
        "P(WPR<0.88)",
        "P(WPR>0.95)",
    ]);
    let mut csv_rows: Vec<Vec<f64>> = Vec::new();
    for structure in [JobStructure::Sequential, JobStructure::BagOfTasks] {
        for (label, recs) in [("Formula(3)", &f3), ("Young", &yg)] {
            let sub = with_structure(recs, structure);
            let ecdf = wpr_ecdf(&sub).expect("non-empty");
            summary.row(vec![
                structure.label().to_string(),
                label.to_string(),
                sub.len().to_string(),
                f(mean_wpr(&sub)),
                f(ecdf.cdf(0.88)),
                f(1.0 - ecdf.cdf(0.95)),
            ]);
            let pts = ecdf.points(100);
            println!(
                "\n{}",
                ascii_cdf(
                    &pts,
                    64,
                    12,
                    &format!("WPR CDF — {} jobs, {label}", structure.label())
                )
            );
            for (x, p) in pts {
                csv_rows.push(vec![
                    if structure == JobStructure::Sequential {
                        0.0
                    } else {
                        1.0
                    },
                    if label == "Formula(3)" { 0.0 } else { 1.0 },
                    x,
                    p,
                ]);
            }
        }
    }
    summary.print(
        "Figure 9: WPR under Formula (3) vs Young (paper: ST 0.945 vs 0.916, BoT 0.955 vs 0.915)",
    );
    summary.write_csv("fig09_summary").expect("write CSV");
    write_series_csv(
        "fig09_wpr_cdf",
        &["structure(0=ST)", "policy(0=F3)", "wpr", "cdf"],
        &csv_rows,
    )
    .expect("write CSV");
    println!("\nCSV written to results/fig09_summary.csv and results/fig09_wpr_cdf.csv");
}
