//! Legacy shim for the registered `fig13_paired` experiment — prefer
//! `cloud-ckpt exp run fig13_paired`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("fig13_paired")
}
