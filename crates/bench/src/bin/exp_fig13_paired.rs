//! **Figure 13** — per-job paired comparison of wall-clock lengths under
//! Formula (3) vs Young's formula (RL = 1000 s): (a) the ratio, (b) the
//! absolute difference.
//!
//! Paper: "about 70 % of jobs' wall-clock lengths are reduced by about 15 %
//! on average, while only 30 % of jobs' wall-clock lengths are increased by
//! 5 % on average". Both runs replay identical kill events (common random
//! numbers), exactly like the paper's trace replay.

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{write_series_csv, Table};
use ckpt_sim::metrics::{paired_wall_clock, with_max_length};
use ckpt_sim::{run_trace, EstimatorKind, PolicyConfig, RunOptions};

const RL: f64 = 1000.0;

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let s = setup(scale, seed_from_env());
    let opts = RunOptions::default();

    // Deployment estimator (full-range per-priority statistics, as in the
    // Figure 9 runs); RL only filters which jobs are compared.
    let est = EstimatorKind::PerPriority {
        limit: f64::INFINITY,
    };
    let f3 = PolicyConfig::formula3().with_estimator(est);
    let yg = PolicyConfig::young().with_estimator(est);
    let recs_f3 = with_max_length(
        &s.sample_only(&run_trace(&s.trace, &s.estimates, &f3, opts)),
        RL,
    );
    let recs_yg = with_max_length(
        &s.sample_only(&run_trace(&s.trace, &s.estimates, &yg, opts)),
        RL,
    );

    // ratio = wall(F3) / wall(Young): < 1 means Formula (3) is faster.
    let pairs = paired_wall_clock(&recs_f3, &recs_yg);
    assert!(!pairs.is_empty(), "no paired jobs at RL={RL}");

    let faster: Vec<&(u64, f64, f64)> = pairs.iter().filter(|(_, r, _)| *r < 1.0).collect();
    let slower: Vec<&(u64, f64, f64)> = pairs.iter().filter(|(_, r, _)| *r >= 1.0).collect();
    let mean_reduction = if faster.is_empty() {
        0.0
    } else {
        faster.iter().map(|(_, r, _)| 1.0 - r).sum::<f64>() / faster.len() as f64
    };
    let mean_increase = if slower.is_empty() {
        0.0
    } else {
        slower.iter().map(|(_, r, _)| r - 1.0).sum::<f64>() / slower.len() as f64
    };

    let mut table = Table::new(vec!["group", "jobs", "share", "mean wall-clock change"]);
    table.row(vec![
        "faster under Formula(3)".to_string(),
        faster.len().to_string(),
        format!("{:.1}%", 100.0 * faster.len() as f64 / pairs.len() as f64),
        format!("-{:.1}%", 100.0 * mean_reduction),
    ]);
    table.row(vec![
        "faster under Young".to_string(),
        slower.len().to_string(),
        format!("{:.1}%", 100.0 * slower.len() as f64 / pairs.len() as f64),
        format!("+{:.1}%", 100.0 * mean_increase),
    ]);
    table.print("Figure 13: paired per-job comparison, RL = 1000 s (paper: ~70 % faster by ~15 %, ~30 % slower by ~5 %)");
    table.write_csv("fig13_summary").expect("write CSV");

    let csv: Vec<Vec<f64>> = pairs
        .iter()
        .map(|&(job, ratio, diff)| vec![job as f64, ratio, diff])
        .collect();
    write_series_csv(
        "fig13_paired",
        &["job_id", "wall_ratio_f3_over_young", "wall_diff_s"],
        &csv,
    )
    .expect("write CSV");
    println!("\nCSV written to results/fig13_paired.csv");
}
