//! Legacy shim for the registered `table6_precise` experiment — prefer
//! `cloud-ckpt exp run table6_precise`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("table6_precise")
}
