//! **Table 6** — checkpointing effect with *precise* prediction: both
//! formulas are fed each task's true failure count / true mean interval
//! (per-task oracle). Paper: the two are nearly tied — avg WPR 0.960 vs
//! 0.954 (BoT), 0.937 vs 0.938 (ST), 0.949 vs 0.939 (mixture) — "with
//! exact values, both approaches almost coincide as expected".

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{f, Table};
use ckpt_sim::metrics::{lowest_wpr, mean_wpr, with_structure};
use ckpt_sim::{run_trace, EstimatorKind, PolicyConfig, RunOptions};
use ckpt_trace::gen::JobStructure;

fn main() {
    // The paper's Table 6 analyses "all of 300k Google jobs" — the month
    // scale (downscale with CKPT_SCALE=quick for CI).
    let scale = Scale::from_env(Scale::Month);
    let s = setup(scale, seed_from_env());
    let opts = RunOptions::default();

    let f3 = PolicyConfig::formula3().with_estimator(EstimatorKind::Oracle);
    let yg = PolicyConfig::young().with_estimator(EstimatorKind::Oracle);
    let recs_f3 = s.sample_only(&run_trace(&s.trace, &s.estimates, &f3, opts));
    let recs_yg = s.sample_only(&run_trace(&s.trace, &s.estimates, &yg, opts));

    let mut table = Table::new(vec![
        "structure",
        "avg WPR F3",
        "lowest F3",
        "avg WPR Young",
        "lowest Young",
        "paper avg F3",
        "paper avg Young",
    ]);
    let paper = [
        ("BoT", 0.960, 0.954),
        ("ST", 0.937, 0.938),
        ("Mix", 0.949, 0.939),
    ];
    for (label, p_f3, p_yg) in paper {
        let (a, b): (Vec<_>, Vec<_>) = match label {
            "BoT" => (
                with_structure(&recs_f3, JobStructure::BagOfTasks),
                with_structure(&recs_yg, JobStructure::BagOfTasks),
            ),
            "ST" => (
                with_structure(&recs_f3, JobStructure::Sequential),
                with_structure(&recs_yg, JobStructure::Sequential),
            ),
            _ => (recs_f3.clone(), recs_yg.clone()),
        };
        table.row(vec![
            label.to_string(),
            f(mean_wpr(&a)),
            f(lowest_wpr(&a)),
            f(mean_wpr(&b)),
            f(lowest_wpr(&b)),
            f(p_f3),
            f(p_yg),
        ]);
    }
    table.print("Table 6: WPR with precise (oracle) prediction — the formulas nearly coincide");
    table.write_csv("table6_precise").expect("write CSV");
    println!(
        "\njobs: {} sample jobs of {} total",
        recs_f3.len(),
        s.trace.jobs.len()
    );
    println!("CSV written to results/table6_precise.csv");
}
