//! **Figure 7** — total checkpointing cost vs number of checkpoints for
//! memory sizes 10–240 MB: (a) over local ramdisk, (b) over NFS.
//!
//! Paper: "the task total checkpointing cost increases linearly with its
//! consumed memory size and with the number of checkpoints"; per-checkpoint
//! cost is 0.016–0.99 s (ramdisk) and 0.25–2.52 s (NFS) over 10–240 MB.

use ckpt_bench::report::{f, write_series_csv, Table};
use ckpt_sim::blcr::{BlcrModel, Device};

fn main() {
    let blcr = BlcrModel;
    let mem_sizes = [10.0, 20.0, 40.0, 80.0, 160.0, 240.0];
    let mut csv: Vec<Vec<f64>> = Vec::new();

    for (panel, device) in [("a: local ramdisk", Device::Ramdisk), ("b: NFS", Device::CentralNfs)]
    {
        let mut table = Table::new(vec![
            "memsize(MB)", "n=1", "n=2", "n=3", "n=4", "n=5",
        ]);
        for &mem in &mem_sizes {
            let unit = blcr.checkpoint_cost(device, mem);
            let mut row = vec![format!("{mem}")];
            for n in 1..=5u32 {
                row.push(f(unit * n as f64));
                csv.push(vec![
                    if device == Device::Ramdisk { 0.0 } else { 1.0 },
                    mem,
                    n as f64,
                    unit * n as f64,
                ]);
            }
            table.row(row);
        }
        table.print(&format!(
            "Figure 7({panel}): total checkpointing cost (s) vs number of checkpoints"
        ));
    }
    write_series_csv(
        "fig07_ckpt_cost",
        &["device(0=ramdisk)", "mem_mb", "n_checkpoints", "total_cost_s"],
        &csv,
    )
    .expect("write CSV");

    println!(
        "\nendpoints check — ramdisk 10 MB: {} s (paper 0.016), 240 MB: {} s (paper 0.99); \
         NFS 10 MB: {} s (paper 0.25), 240 MB: {} s (paper 2.52)",
        f(blcr.checkpoint_cost(Device::Ramdisk, 10.0)),
        f(blcr.checkpoint_cost(Device::Ramdisk, 240.0)),
        f(blcr.checkpoint_cost(Device::CentralNfs, 10.0)),
        f(blcr.checkpoint_cost(Device::CentralNfs, 240.0)),
    );
    println!("CSV written to results/fig07_ckpt_cost.csv");
}
