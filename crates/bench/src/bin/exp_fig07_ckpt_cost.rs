//! Legacy shim for the registered `fig07_ckpt_cost` experiment — prefer
//! `cloud-ckpt exp run fig07_ckpt_cost`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("fig07_ckpt_cost")
}
