//! **Figure 7** — total checkpointing cost vs number of checkpoints for
//! memory sizes 10–240 MB: (a) over local ramdisk, (b) over NFS.
//!
//! Paper: "the task total checkpointing cost increases linearly with its
//! consumed memory size and with the number of checkpoints"; per-checkpoint
//! cost is 0.016–0.99 s (ramdisk) and 0.25–2.52 s (NFS) over 10–240 MB.
//!
//! Re-expressed through `ckpt-scenario`: the whole figure is the 60-cell
//! grid in `specs/exp_fig07_ckpt_cost.toml` (device × memsize ×
//! n_checkpoints) evaluated by the `ckpt-cost` engine; this binary only
//! formats the cells into the paper's two panels. A cross-check against
//! the BLCR model asserts the sweep reproduces the direct computation
//! exactly.

use ckpt_bench::report::{f, results_dir, Table};
use ckpt_scenario::{run_sweep, write_outputs, SweepOptions, SweepSpec};
use ckpt_sim::blcr::{BlcrModel, Device};

const SPEC: &str = include_str!("../../../../specs/exp_fig07_ckpt_cost.toml");

fn main() {
    let sweep = SweepSpec::from_str(SPEC).expect("bundled spec parses");
    let result = run_sweep(&sweep, SweepOptions::default()).expect("sweep runs");

    // total_cost_s keyed by (device, mem, n).
    let mut cost = std::collections::HashMap::new();
    for cell in &result.cells {
        let scen = sweep.cell(cell.index).expect("cell in grid");
        let total = cell
            .metrics
            .iter()
            .find(|(n, _)| *n == "total_cost_s")
            .expect("ckpt-cost engine emits total_cost_s")
            .1
            .mean;
        cost.insert((scen.device, scen.mem_mb as u64, scen.n_checkpoints), total);
    }

    let blcr = BlcrModel;
    let mem_sizes = [10u64, 20, 40, 80, 160, 240];
    for (panel, device) in [
        ("a: local ramdisk", Device::Ramdisk),
        ("b: NFS", Device::CentralNfs),
    ] {
        let mut table = Table::new(vec!["memsize(MB)", "n=1", "n=2", "n=3", "n=4", "n=5"]);
        for &mem in &mem_sizes {
            let mut row = vec![format!("{mem}")];
            for n in 1..=5u32 {
                // The panel layout mirrors the paper; a missing key means
                // the bundled spec no longer covers it.
                let total = *cost.get(&(device, mem, n)).unwrap_or_else(|| {
                    panic!(
                        "specs/exp_fig07_ckpt_cost.toml no longer covers \
                         device {device:?} mem {mem} n {n}"
                    )
                });
                // The sweep must reproduce the model exactly.
                assert_eq!(total, blcr.checkpoint_cost(device, mem as f64) * n as f64);
                row.push(f(total));
            }
            table.row(row);
        }
        table.print(&format!(
            "Figure 7({panel}): total checkpointing cost (s) vs number of checkpoints"
        ));
    }

    write_outputs(&sweep, &result, results_dir()).expect("write sweep outputs");

    println!(
        "\nendpoints check — ramdisk 10 MB: {} s (paper 0.016), 240 MB: {} s (paper 0.99); \
         NFS 10 MB: {} s (paper 0.25), 240 MB: {} s (paper 2.52)",
        f(blcr.checkpoint_cost(Device::Ramdisk, 10.0)),
        f(blcr.checkpoint_cost(Device::Ramdisk, 240.0)),
        f(blcr.checkpoint_cost(Device::CentralNfs, 10.0)),
        f(blcr.checkpoint_cost(Device::CentralNfs, 240.0)),
    );
    println!("CSV written to results/fig07_ckpt_cost_cells.csv (+ JSON summary)");
}
