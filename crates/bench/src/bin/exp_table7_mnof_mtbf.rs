//! Legacy shim for the registered `table7_mnof_mtbf` experiment — prefer
//! `cloud-ckpt exp run table7_mnof_mtbf`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("table7_mnof_mtbf")
}
