//! **Table 7** — MNOF & MTBF with respect to job priority and task-length
//! limit over the (synthetic) Google trace.
//!
//! Paper reference values (seconds): for priority 2, MNOF/MTBF go from
//! 1.06/179 (length ≤ 1000 s) to 1.08/396 (≤ 3600 s) to 1.21/4199
//! (unlimited) — MNOF is stable while MTBF inflates ~23×. Priority 10 is
//! the failure-heavy monitoring tier (MNOF ≈ 11.9, MTBF ≈ 37 s).

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{f, Table};
use ckpt_trace::stats::estimator_from_records;

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let s = setup(scale, seed_from_env());
    let est = estimator_from_records(&s.records);

    let limits = [
        (1000.0, "<=1000s"),
        (3600.0, "<=3600s"),
        (f64::INFINITY, "unlimited"),
    ];
    let mut table = Table::new(vec!["limit", "priority", "n_tasks", "MNOF", "MTBF(s)"]);
    for (limit, label) in limits {
        for p in est.priorities() {
            if let Some(e) = est.estimate(p, limit) {
                table.row(vec![
                    label.to_string(),
                    p.to_string(),
                    e.n_tasks.to_string(),
                    f(e.mnof),
                    f(e.mtbf),
                ]);
            }
        }
    }
    table.print("Table 7: MNOF & MTBF w.r.t. job priority (paper: MNOF stable, MTBF inflates with the limit)");
    let path = table.write_csv("table7_mnof_mtbf").expect("write CSV");
    println!("\nCSV written to {}", path.display());

    // Headline check echoed for EXPERIMENTS.md: pooled inflation factor.
    let short = est.estimate_pooled(1000.0).expect("short tasks exist");
    let all = est.estimate_pooled(f64::INFINITY).expect("tasks exist");
    println!(
        "\npooled: MNOF {} -> {} ({}x) | MTBF {}s -> {}s ({}x)",
        f(short.mnof),
        f(all.mnof),
        f(all.mnof / short.mnof),
        f(short.mtbf),
        f(all.mtbf),
        f(all.mtbf / short.mtbf),
    );
    println!("paper (priority 2): MNOF 1.06 -> 1.21 (1.14x) | MTBF 179s -> 4199s (23.5x)");
}
