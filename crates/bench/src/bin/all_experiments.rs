//! Legacy shim: run every registered experiment in sequence (in process) —
//! prefer `cloud-ckpt exp all`. Results land on stdout and as CSV under
//! `results/`. Scale control: `CKPT_SCALE=quick|day|month|stress`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_all()
}
