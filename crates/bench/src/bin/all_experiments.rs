//! Run every table/figure experiment in sequence — the one-command
//! regeneration of the paper's evaluation section. Results land on stdout
//! and as CSV under `results/`.
//!
//! Scale control: `CKPT_SCALE=quick|day|month` (each binary picks its own
//! default matching the paper's setup; `quick` keeps everything CI-sized).

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_fig04_interval_cdf",
    "exp_fig05_mle_fit",
    "exp_fig07_ckpt_cost",
    "exp_table2_simultaneous",
    "exp_table3_dmnfs",
    "exp_table4_op_cost",
    "exp_table5_restart_cost",
    "exp_table7_mnof_mtbf",
    "exp_fig08_job_dist",
    "exp_table6_precise",
    "exp_fig09_wpr_cdf",
    "exp_fig10_wpr_priority",
    "exp_fig11_wpr_restricted",
    "exp_fig12_wallclock",
    "exp_fig13_paired",
    "exp_fig14_dynamic",
    "exp_cluster_validation",
    "exp_ext_penalty",
    "exp_ext_random_ckpt",
    "exp_ext_host_failures",
    "exp_ext_bootstrap",
];

fn main() {
    // Sibling binaries live next to this one.
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory").to_path_buf();
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n################################################################");
        println!("# {exp}");
        println!("################################################################");
        let status = Command::new(dir.join(exp)).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("{exp} failed to launch: {e} (build all binaries first: cargo build --release -p ckpt-bench)");
                failures.push(*exp);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; CSVs in results/");
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
