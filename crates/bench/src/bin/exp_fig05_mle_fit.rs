//! Legacy shim for the registered `fig05_mle_fit` experiment — prefer
//! `cloud-ckpt exp run fig05_mle_fit`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("fig05_mle_fit")
}
