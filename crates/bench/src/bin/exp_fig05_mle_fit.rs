//! **Figure 5** — distribution of pooled task failure intervals and MLE
//! fits of the paper's five candidate families (exponential, geometric,
//! Laplace, normal, Pareto): (a) all intervals, (b) intervals ≤ 1000 s.
//!
//! Paper findings: "a Pareto distribution fits the sample distribution best
//! in general", "a large majority (over 63 %) of task failure intervals
//! last for less than 1000 seconds", and restricted to those, "the best-fit
//! distribution is an exponential distribution with failure rate
//! λ = 0.00423445".

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{f, write_series_csv, Table};
use ckpt_stats::ecdf::Ecdf;
use ckpt_stats::fit::{fit_all, rank_by_ks, PAPER_FAMILIES};
use ckpt_trace::stats::pooled_intervals;

fn run_panel(name: &str, samples: &[f64]) -> Table {
    let mut table = Table::new(vec!["rank", "family", "params", "KS", "AIC"]);
    let ranked = rank_by_ks(fit_all(&PAPER_FAMILIES, samples));
    let ecdf = Ecdf::new(samples).expect("non-empty");
    let mut csv: Vec<Vec<f64>> = Vec::new();
    for (x, q) in ecdf.points(128) {
        let mut row = vec![x, q];
        for r in &ranked {
            row.push(r.cdf(x));
        }
        csv.push(row);
    }
    let mut header: Vec<String> = vec!["interval_s".into(), "empirical_cdf".into()];
    header.extend(ranked.iter().map(|r| r.family.name().to_lowercase()));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    write_series_csv(&format!("fig05_{name}"), &header_refs, &csv).expect("write CSV");

    for (i, r) in ranked.iter().enumerate() {
        let params: Vec<String> = r
            .params
            .iter()
            .map(|(n, v)| format!("{n}={}", f(*v)))
            .collect();
        table.row(vec![
            (i + 1).to_string(),
            r.family.name().to_string(),
            params.join(" "),
            format!("{:.4}", r.ks),
            format!("{:.0}", r.aic),
        ]);
    }
    table
}

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let s = setup(scale, seed_from_env());
    let all = pooled_intervals(&s.records);
    assert!(!all.is_empty(), "trace produced no failure intervals");

    let below_1000: Vec<f64> = all.iter().copied().filter(|&x| x <= 1000.0).collect();
    let frac = below_1000.len() as f64 / all.len() as f64;
    println!(
        "short-interval mass: {} of {} intervals <= 1000 s ({:.1} %); paper reports 'over 63 %'",
        below_1000.len(),
        all.len(),
        100.0 * frac
    );

    let t_all = run_panel("all_intervals", &all);
    t_all.print("Figure 5(a): MLE fits over ALL failure intervals (paper: Pareto fits best)");

    let t_short = run_panel("short_intervals", &below_1000);
    t_short.print("Figure 5(b): MLE fits over intervals <= 1000 s (paper: exponential best, lambda = 0.00423445)");

    println!(
        "\nCSV written to results/fig05_all_intervals.csv and results/fig05_short_intervals.csv"
    );
}
