//! **Table 5** — task restarting cost by migration type over memory size.
//!
//! Migration type A (checkpoint in the failed host's ramdisk, must be moved
//! before restart) vs type B (checkpoint on shared disk). Paper: A is
//! "much higher" — 0.71–5.69 s vs 0.37–2.4 s over 10–240 MB. This binary
//! regenerates the table from the cost model and reprints the §4.2.2
//! worked example that decides between the two.

use ckpt_bench::report::{f, Table};
use ckpt_policy::storage::{choose_storage, DeviceCosts};
use ckpt_sim::blcr::{BlcrModel, Migration};

fn main() {
    let blcr = BlcrModel;
    let mems = [10.0, 20.0, 40.0, 80.0, 160.0, 240.0];
    let paper_a = [0.71, 0.84, 1.23, 1.87, 3.22, 5.69];
    let paper_b = [0.37, 0.49, 0.54, 0.86, 1.45, 2.4];

    let mut table = Table::new(vec![
        "memory(MB)",
        "paper A(s)",
        "model A(s)",
        "paper B(s)",
        "model B(s)",
    ]);
    for (i, &mem) in mems.iter().enumerate() {
        table.row(vec![
            format!("{mem}"),
            f(paper_a[i]),
            f(blcr.restart_cost(Migration::TypeA, mem)),
            f(paper_b[i]),
            f(blcr.restart_cost(Migration::TypeB, mem)),
        ]);
    }
    table.print("Table 5: task restarting cost by migration type");
    table.write_csv("table5_restart_cost").expect("write CSV");

    // The paper's §4.2.2 worked example: Te=200 s, 160 MB, E(Y)=2.
    let local = DeviceCosts::new(0.632, 3.22).expect("paper costs");
    let shared = DeviceCosts::new(1.67, 1.45).expect("paper costs");
    let (pick, cl, cs) = choose_storage(200.0, 2.0, local, shared).expect("valid inputs");
    println!(
        "\n§4.2.2 worked example: local total {} s vs shared total {} s -> pick {} (paper: 28.29 vs 37.78 -> local)",
        f(cl),
        f(cs),
        pick.label()
    );
    println!("CSV written to results/table5_restart_cost.csv");
}
