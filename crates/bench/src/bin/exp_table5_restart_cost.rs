//! Legacy shim for the registered `table5_restart_cost` experiment — prefer
//! `cloud-ckpt exp run table5_restart_cost`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("table5_restart_cost")
}
