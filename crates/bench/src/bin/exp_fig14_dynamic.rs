//! **Figure 14** — the dynamic (adaptive-MNOF, Algorithm 1) solution vs the
//! static one when every job's priority changes once in the middle of its
//! execution: (a) WPR distribution, (b) per-job wall-clock ratio.
//!
//! Paper: "the worst WPR under dynamic solution stays about 0.8 while that
//! under static approach is about 0.5"; "67 % of jobs' wall-clock lengths
//! are similar under the two different solutions, while over 21 % of jobs
//! run faster in the dynamic one than static one by 10 %".

use ckpt_bench::harness::{seed_from_env, setup_with, Scale};
use ckpt_bench::report::{ascii_cdf, f, write_series_csv, Table};
use ckpt_sim::metrics::{mean_wpr, paired_wall_clock, wpr_ecdf, wprs};
use ckpt_sim::{run_trace, PolicyConfig, RunOptions};
use ckpt_trace::spec::WorkloadSpec;

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let spec = WorkloadSpec::google_like(scale.jobs()).with_priority_flips();
    let s = setup_with(spec, seed_from_env());
    let opts = RunOptions::default();

    let dynamic_cfg = PolicyConfig::formula3().with_adaptivity(true);
    let static_cfg = PolicyConfig::formula3(); // keeps the start-of-task schedule
    let dynamic = s.sample_only(&run_trace(&s.trace, &s.estimates, &dynamic_cfg, opts));
    let fixed = s.sample_only(&run_trace(&s.trace, &s.estimates, &static_cfg, opts));

    let e_dyn = wpr_ecdf(&dynamic).expect("non-empty");
    let e_sta = wpr_ecdf(&fixed).expect("non-empty");
    let mut table = Table::new(vec![
        "algorithm",
        "jobs",
        "avg WPR",
        "worst WPR",
        "p5 WPR",
        "P(WPR<0.8)",
    ]);
    table.row(vec![
        "dynamic (Algorithm 1)".to_string(),
        dynamic.len().to_string(),
        f(mean_wpr(&dynamic)),
        f(e_dyn.min()),
        f(e_dyn.quantile(0.05)),
        f(e_dyn.cdf(0.8)),
    ]);
    table.row(vec![
        "static".to_string(),
        fixed.len().to_string(),
        f(mean_wpr(&fixed)),
        f(e_sta.min()),
        f(e_sta.quantile(0.05)),
        f(e_sta.cdf(0.8)),
    ]);
    table.print("Figure 14(a): dynamic vs static WPR under mid-run priority flips (paper: worst ~0.8 vs ~0.5)");
    table.write_csv("fig14_summary").expect("write CSV");

    println!(
        "\n{}",
        ascii_cdf(&e_dyn.points(80), 64, 12, "WPR CDF — dynamic")
    );
    println!(
        "{}",
        ascii_cdf(&e_sta.points(80), 64, 12, "WPR CDF — static")
    );

    // (b) per-job wall-clock ratio dynamic/static.
    let pairs = paired_wall_clock(&dynamic, &fixed);
    let similar = pairs
        .iter()
        .filter(|(_, r, _)| (*r - 1.0).abs() <= 0.02)
        .count();
    let faster10 = pairs.iter().filter(|(_, r, _)| *r <= 0.90).count();
    println!(
        "wall-clock ratio (dynamic/static): {:.1} % of jobs within ±2 %, {:.1} % faster by ≥10 % under dynamic \
         (paper: 67 % similar, >21 % faster by 10 %)",
        100.0 * similar as f64 / pairs.len() as f64,
        100.0 * faster10 as f64 / pairs.len() as f64
    );

    let mut csv: Vec<Vec<f64>> = Vec::new();
    for (w_dyn, w_sta) in wprs(&dynamic).iter().zip(wprs(&fixed).iter()) {
        csv.push(vec![*w_dyn, *w_sta]);
    }
    write_series_csv("fig14_dynamic", &["wpr_dynamic", "wpr_static"], &csv).expect("write CSV");
    println!("CSV written to results/fig14_dynamic.csv");
}
