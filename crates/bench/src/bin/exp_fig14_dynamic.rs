//! Legacy shim for the registered `fig14_dynamic` experiment — prefer
//! `cloud-ckpt exp run fig14_dynamic`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("fig14_dynamic")
}
