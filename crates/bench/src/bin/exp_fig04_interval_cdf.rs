//! **Figure 4** — CDF of uninterrupted task intervals, grouped by priority:
//! (a) low priorities 1–6, (b) high priorities 7–12.
//!
//! Paper observation: "tasks with higher priorities tend to have longer
//! uninterrupted execution lengths, because low-priority tasks tend to be
//! preempted by high-priority ones". (Scale note: the paper's x-axes are in
//! days because Google tasks run up to weeks; our synthetic trace is
//! calibrated to the paper's *short-job* regime, so intervals are in
//! seconds-to-hours — the ordering and shape are the reproduced features.)

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{f, write_series_csv, Table};
use ckpt_stats::ecdf::Ecdf;
use ckpt_trace::stats::interval_samples_by_priority;

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let s = setup(scale, seed_from_env());
    let by_priority = interval_samples_by_priority(&s.records);

    let mut table = Table::new(vec![
        "priority",
        "n_intervals",
        "p25(s)",
        "median(s)",
        "p75(s)",
        "p95(s)",
        "mean(s)",
    ]);
    let mut csv: Vec<Vec<f64>> = Vec::new();
    for p in 1..=12u8 {
        let Some(samples) = by_priority.get(&p) else {
            continue;
        };
        if samples.is_empty() {
            continue;
        }
        let e = Ecdf::new(samples).expect("non-empty");
        table.row(vec![
            p.to_string(),
            e.len().to_string(),
            f(e.quantile(0.25)),
            f(e.quantile(0.5)),
            f(e.quantile(0.75)),
            f(e.quantile(0.95)),
            f(e.mean()),
        ]);
        for (x, q) in e.points(64) {
            csv.push(vec![p as f64, x, q]);
        }
    }
    table.print("Figure 4: uninterrupted task intervals by priority (paper: higher priority => longer; p10 the exception)");
    table
        .write_csv("fig04_interval_quantiles")
        .expect("write CSV");
    write_series_csv(
        "fig04_interval_cdf",
        &["priority", "interval_s", "cdf"],
        &csv,
    )
    .expect("write CSV");

    // Echo the ordering check the paper's figure makes visually.
    let med = |p: u8| {
        by_priority
            .get(&p)
            .and_then(|s| Ecdf::new(s).ok())
            .map(|e| e.quantile(0.5))
    };
    if let (Some(m2), Some(m9), Some(m10)) = (med(2), med(9), med(10)) {
        println!(
            "\nordering check: median p2 = {} s < median p9 = {} s; p10 = {} s (failure-heavy monitoring tier)",
            f(m2), f(m9), f(m10)
        );
    }
    println!("CSV written to results/fig04_interval_cdf.csv");
}
