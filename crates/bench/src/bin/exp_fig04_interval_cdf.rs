//! Legacy shim for the registered `fig04_interval_cdf` experiment — prefer
//! `cloud-ckpt exp run fig04_interval_cdf`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("fig04_interval_cdf")
}
