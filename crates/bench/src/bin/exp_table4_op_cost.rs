//! Legacy shim for the registered `table4_op_cost` experiment — prefer
//! `cloud-ckpt exp run table4_op_cost`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("table4_op_cost")
}
