//! **Table 4** — time cost of a single checkpoint operation over shared
//! disk vs task memory size. The paper measures 0.33 s at 10.3 MB up to
//! 6.83 s at 240 MB; our cost model interpolates exactly through those
//! measurements, and this binary regenerates the table (plus interpolated
//! midpoints as evidence of the model's shape).

use ckpt_bench::report::{f, Table};
use ckpt_sim::blcr::BlcrModel;

fn main() {
    let blcr = BlcrModel;
    // The paper's measured points.
    let paper: [(f64, f64); 12] = [
        (10.3, 0.33),
        (22.3, 0.42),
        (42.3, 0.60),
        (46.3, 0.66),
        (82.4, 1.46),
        (86.4, 1.75),
        (90.4, 2.09),
        (94.4, 2.34),
        (162.0, 3.68),
        (174.0, 4.95),
        (212.0, 5.47),
        (240.0, 6.83),
    ];
    let mut table = Table::new(vec!["memory(MB)", "paper op time(s)", "model op time(s)"]);
    for (mem, t_paper) in paper {
        table.row(vec![
            format!("{mem}"),
            f(t_paper),
            f(blcr.shared_op_time(mem)),
        ]);
    }
    // Interpolated midpoints (not in the paper's table).
    for mem in [60.0, 120.0, 200.0] {
        table.row(vec![
            format!("{mem}"),
            "-".into(),
            f(blcr.shared_op_time(mem)),
        ]);
    }
    table.print("Table 4: single checkpoint operation time over shared disk");
    table.write_csv("table4_op_cost").expect("write CSV");
    println!("\nCSV written to results/table4_op_cost.csv");
}
