//! **Extension** — whole-host failures in the cluster DES: the paper's §2
//! describes that "if a host is down, all the tasks running on the VMs of
//! this host will be immediately restarted on other hosts from their most
//! recent checkpoints". This sweep injects host failures at decreasing
//! MTBFs and shows checkpointing (Formula (3)) degrading gracefully while
//! the no-checkpoint baseline collapses.

use ckpt_bench::harness::{seed_from_env, setup_with, Scale};
use ckpt_bench::report::{f, Table};
use ckpt_sim::cluster::{ClusterConfig, ClusterSim};
use ckpt_sim::metrics::mean_wpr;
use ckpt_sim::PolicyConfig;
use ckpt_trace::spec::WorkloadSpec;

fn main() {
    let scale = Scale::from_env(Scale::Quick);
    let mut spec = WorkloadSpec::google_like(scale.jobs().min(500));
    spec.mean_interarrival_s = 25.0;
    spec.long_task_fraction = 0.0;
    let s = setup_with(spec, seed_from_env());

    let mut table = Table::new(vec![
        "host MTBF",
        "policy",
        "avg WPR",
        "host failures",
        "makespan(h)",
    ]);
    for mtbf in [None, Some(14_400.0), Some(3_600.0), Some(1_200.0)] {
        let cfg = ClusterConfig {
            host_mtbf_s: mtbf,
            ..ClusterConfig::default()
        };
        for (label, policy) in [
            ("Formula(3)", PolicyConfig::formula3()),
            ("none", PolicyConfig::none()),
        ] {
            let result = ClusterSim::new(cfg, &s.trace, &s.estimates, policy).run();
            let jobs: Vec<_> = result.jobs.iter().map(|j| j.base.clone()).collect();
            table.row(vec![
                mtbf.map(|m| format!("{:.0} min", m / 60.0))
                    .unwrap_or_else(|| "off".into()),
                label.to_string(),
                f(mean_wpr(&jobs)),
                result.host_failures.to_string(),
                f(result.makespan.as_secs_f64() / 3600.0),
            ]);
        }
    }
    table.print("Extension: whole-host failure sweep (paper §2's host-down restart path)");
    table.write_csv("ext_host_failures").expect("write CSV");
    println!("\nCSV written to results/ext_host_failures.csv");
}
