//! Legacy shim for the registered `ext_host_failures` experiment — prefer
//! `cloud-ckpt exp run ext_host_failures`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("ext_host_failures")
}
