//! **Extension** — mis-estimation penalty curves: the quantified version of
//! the paper's robustness argument. Formula (3) driven by an MNOF that is
//! wrong by a factor β pays `(sqrt(β)+1/sqrt(β))/2` of the optimal
//! overhead; Young's formula driven by an MTBF inflated by γ pays the same
//! form in γ — but Table 7 shows β stays near 1 while γ reaches ~20.

use ckpt_bench::report::{f, write_series_csv, Table};
use ckpt_policy::analysis::{mnof_misestimation_penalty, mtbf_inflation_penalty, penalty_factor};

fn main() {
    let te = 600.0;
    let c = 1.0;
    let e_y_true = 1.2;
    let honest_mtbf = 150.0;

    let mut table = Table::new(vec![
        "error factor",
        "ideal penalty",
        "Formula(3) w/ MNOF err",
        "Young w/ MTBF inflation",
    ]);
    let mut csv: Vec<Vec<f64>> = Vec::new();
    for &factor in &[1.0f64, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 18.0, 25.0] {
        let ideal = penalty_factor(factor.sqrt()).unwrap();
        let p_mnof = mnof_misestimation_penalty(te, c, e_y_true, factor).unwrap();
        let p_mtbf = mtbf_inflation_penalty(te, c, e_y_true, honest_mtbf, factor).unwrap();
        table.row(vec![f(factor), f(ideal), f(p_mnof), f(p_mtbf)]);
        csv.push(vec![factor, ideal, p_mnof, p_mtbf]);
    }
    table.print(&format!(
        "Extension: overhead penalty vs estimation error (Te={te}, C={c}, true E(Y)={e_y_true}, honest MTBF={honest_mtbf})"
    ));
    write_series_csv(
        "ext_penalty_curves",
        &[
            "error_factor",
            "ideal_sqrt_penalty",
            "mnof_penalty",
            "mtbf_penalty",
        ],
        &csv,
    )
    .expect("write CSV");

    println!(
        "\nreading: our measured Table 7 shows MNOF errors β ≈ 1.05 (penalty ≈ 1.0) while MTBF\n\
         inflation reaches γ ≈ 18 (penalty ≈ {}), which is the entire gap of Figures 9-13.",
        f(mtbf_inflation_penalty(te, c, e_y_true, honest_mtbf, 18.0).unwrap())
    );
    println!("CSV written to results/ext_penalty_curves.csv");
}
