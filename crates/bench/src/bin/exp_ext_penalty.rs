//! Legacy shim for the registered `ext_penalty` experiment — prefer
//! `cloud-ckpt exp run ext_penalty`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("ext_penalty")
}
