//! **Extension** — equidistant vs random checkpoint placement (the
//! related-work baseline): with the same number of checkpoints, uniformly
//! random positions waste expected rollback relative to Theorem 1's even
//! spacing (`Σ gap²/(2Te)` is minimized by equal gaps).

use ckpt_bench::harness::seed_from_env;
use ckpt_bench::report::{f, Table};
use ckpt_policy::nonuniform::GeneralSchedule;
use ckpt_stats::rng::Xoshiro256StarStar;
use ckpt_stats::summary::OnlineStats;

fn main() {
    let te = 1000.0;
    let c = 1.0;
    let r = 1.0;
    let e_y = 2.0;
    let mut rng = Xoshiro256StarStar::new(seed_from_env() ^ 0x4A2D);

    let mut table = Table::new(vec![
        "checkpoints",
        "equidistant E(Tw)",
        "random E(Tw) avg",
        "random E(Tw) p95-ish(max of 200)",
        "random excess",
    ]);
    for &n in &[1u32, 3, 7, 15, 31] {
        let even = GeneralSchedule::equidistant(te, n + 1).unwrap();
        let w_even = even.expected_wall_clock(c, r, e_y).unwrap();
        let mut stats = OnlineStats::new();
        for _ in 0..200 {
            let rand = GeneralSchedule::random(te, n, &mut rng).unwrap();
            stats.add(rand.expected_wall_clock(c, r, e_y).unwrap());
        }
        table.row(vec![
            n.to_string(),
            f(w_even),
            f(stats.mean()),
            f(stats.max()),
            format!("{:+.1}%", 100.0 * (stats.mean() / w_even - 1.0)),
        ]);
    }
    table.print("Extension: equidistant (Theorem 1) vs uniformly random checkpoint placement (Te=1000, C=1, R=1, E(Y)=2)");
    table
        .write_csv("ext_random_vs_equidistant")
        .expect("write CSV");
    println!("\nequidistant placement minimizes expected rollback (Cauchy-Schwarz on Σ gap²);");
    println!("random placement pays a persistent premium that grows with checkpoint count.");
    println!("CSV written to results/ext_random_vs_equidistant.csv");
}
