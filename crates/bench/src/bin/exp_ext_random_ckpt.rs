//! Legacy shim for the registered `ext_random_ckpt` experiment — prefer
//! `cloud-ckpt exp run ext_random_ckpt`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("ext_random_ckpt")
}
