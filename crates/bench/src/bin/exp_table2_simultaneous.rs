//! **Table 2** — cost of checkpointing multiple 160 MB tasks
//! simultaneously on local ramdisk vs a central NFS server, parallel degree
//! X = 1..5, min/avg/max over 25 repetitions (the paper's methodology).
//!
//! Paper values (avg): ramdisk stays ≈ 0.58–0.81 s at all degrees; NFS
//! climbs 1.67 → 2.67 → 5.38 → 6.25 → 8.95 s — "the increased checkpointing
//! cost over NFS is due to the network congestion on NFS servers".

use ckpt_bench::harness::seed_from_env;
use ckpt_bench::report::{f, Table};
use ckpt_sim::blcr::{BlcrModel, Device};
use ckpt_sim::storage::{OpId, PsResource};
use ckpt_sim::time::SimTime;
use ckpt_stats::rng::Xoshiro256StarStar;
use ckpt_stats::summary::OnlineStats;

const MEM_MB: f64 = 160.0;
const REPS: usize = 25;

/// Durations of `x` simultaneous ops on one PS server with per-op demand
/// drawn with jitter.
fn nfs_round(x: usize, blcr: &BlcrModel, rng: &mut Xoshiro256StarStar) -> Vec<f64> {
    let mut server = PsResource::new(1.0);
    let t0 = SimTime::ZERO;
    for i in 0..x {
        let demand = blcr.checkpoint_cost_jittered(Device::CentralNfs, MEM_MB, rng);
        server.add(t0, OpId(i as u64), demand);
    }
    // Drain the server, recording each completion time (= duration, since
    // all ops start at t 0).
    let mut now = t0;
    let mut durations = Vec::with_capacity(x);
    while let Some((op, when)) = server.next_completion(now) {
        server.remove(when, op);
        durations.push(when.as_secs_f64());
        now = when;
    }
    durations
}

fn main() {
    let blcr = BlcrModel;
    let mut rng = Xoshiro256StarStar::new(seed_from_env() ^ 0x7AB1E2);

    let mut table = Table::new(vec!["type", "stat", "X=1", "X=2", "X=3", "X=4", "X=5"]);
    for device in [Device::Ramdisk, Device::CentralNfs] {
        let mut mins = Vec::new();
        let mut avgs = Vec::new();
        let mut maxs = Vec::new();
        for x in 1..=5usize {
            let mut stats = OnlineStats::new();
            for _ in 0..REPS {
                match device {
                    Device::Ramdisk => {
                        // No contention: each op takes its own (jittered)
                        // nominal time regardless of the parallel degree.
                        for _ in 0..x {
                            stats.add(blcr.checkpoint_cost_jittered(device, MEM_MB, &mut rng));
                        }
                    }
                    _ => {
                        for d in nfs_round(x, &blcr, &mut rng) {
                            stats.add(d);
                        }
                    }
                }
            }
            mins.push(f(stats.min()));
            avgs.push(f(stats.mean()));
            maxs.push(f(stats.max()));
        }
        let label = match device {
            Device::Ramdisk => "ramdisk",
            _ => "NFS",
        };
        table.row(vec![label.to_string(), "min".into(), mins[0].clone(), mins[1].clone(), mins[2].clone(), mins[3].clone(), mins[4].clone()]);
        table.row(vec![label.to_string(), "avg".into(), avgs[0].clone(), avgs[1].clone(), avgs[2].clone(), avgs[3].clone(), avgs[4].clone()]);
        table.row(vec![label.to_string(), "max".into(), maxs[0].clone(), maxs[1].clone(), maxs[2].clone(), maxs[3].clone(), maxs[4].clone()]);
    }
    table.print("Table 2: simultaneous checkpointing cost, 160 MB (paper avg: ramdisk 0.58-0.81 s flat; NFS 1.67 -> 8.95 s)");
    table.write_csv("table2_simultaneous").expect("write CSV");
    println!("\nCSV written to results/table2_simultaneous.csv");
}
