//! Legacy shim for the registered `table2_simultaneous` experiment — prefer
//! `cloud-ckpt exp run table2_simultaneous`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("table2_simultaneous")
}
