//! **Table 2** — cost of checkpointing multiple 160 MB tasks
//! simultaneously on local ramdisk vs a central NFS server, parallel degree
//! X = 1..5, min/avg/max over 25 repetitions (the paper's methodology).
//!
//! Paper values (avg): ramdisk stays ≈ 0.58–0.81 s at all degrees; NFS
//! climbs 1.67 → 2.67 → 5.38 → 6.25 → 8.95 s — "the increased checkpointing
//! cost over NFS is due to the network congestion on NFS servers".
//!
//! Re-expressed through `ckpt-scenario`: the table is the 10-cell grid in
//! `specs/exp_table2_simultaneous.toml` (device × degree) evaluated by the
//! `contention` engine — jittered checkpoint demands on a processor-sharing
//! NFS server, with each cell's jitter drawn from an RNG stream derived
//! from `(seed, cell index)` so the table is identical at any thread count.

use ckpt_bench::harness::seed_from_env;
use ckpt_bench::report::{f, results_dir, Table};
use ckpt_scenario::{run_sweep, write_outputs, MetricSummary, SweepOptions, SweepSpec};
use ckpt_sim::blcr::Device;
use std::collections::HashMap;

const SPEC: &str = include_str!("../../../../specs/exp_table2_simultaneous.toml");

fn main() {
    let mut sweep = SweepSpec::from_str(SPEC).expect("bundled spec parses");
    sweep.base.seed = seed_from_env();

    let result = run_sweep(&sweep, SweepOptions::default()).expect("sweep runs");

    // duration_s summary keyed by (device, degree).
    let mut dur: HashMap<(Device, usize), MetricSummary> = HashMap::new();
    for cell in &result.cells {
        let scen = sweep.cell(cell.index).expect("cell in grid");
        let s = cell
            .metrics
            .iter()
            .find(|(n, _)| *n == "duration_s")
            .expect("duration metric")
            .1;
        dur.insert((scen.device, scen.degree), s);
    }

    let mut table = Table::new(vec!["type", "stat", "X=1", "X=2", "X=3", "X=4", "X=5"]);
    for device in [Device::Ramdisk, Device::CentralNfs] {
        let label = match device {
            Device::Ramdisk => "ramdisk",
            _ => "NFS",
        };
        let col = |pick: &dyn Fn(&MetricSummary) -> f64| -> Vec<String> {
            (1..=5usize)
                .map(|x| {
                    let s = dur.get(&(device, x)).unwrap_or_else(|| {
                        panic!(
                            "specs/exp_table2_simultaneous.toml no longer covers \
                             device {device:?} degree {x}"
                        )
                    });
                    f(pick(s))
                })
                .collect()
        };
        for (stat, pick) in [
            (
                "min",
                &(|s: &MetricSummary| s.min) as &dyn Fn(&MetricSummary) -> f64,
            ),
            ("avg", &|s: &MetricSummary| s.mean),
            ("max", &|s: &MetricSummary| s.max),
        ] {
            let cells = col(pick);
            table.row(vec![
                label.to_string(),
                stat.into(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
                cells[3].clone(),
                cells[4].clone(),
            ]);
        }
    }
    table.print("Table 2: simultaneous checkpointing cost, 160 MB (paper avg: ramdisk 0.58-0.81 s flat; NFS 1.67 -> 8.95 s)");
    table.write_csv("table2_simultaneous").expect("write CSV");

    write_outputs(&sweep, &result, results_dir()).expect("write sweep outputs");
    println!("\nCSV written to results/table2_simultaneous.csv");
    println!("sweep grid written to results/table2_simultaneous_cells.csv (+ JSON summary)");
}
