//! Legacy shim for the registered `cluster_validation` experiment — prefer
//! `cloud-ckpt exp run cluster_validation`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("cluster_validation")
}
