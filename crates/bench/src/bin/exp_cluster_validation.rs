//! **Cluster validation** — run the full-cluster DES (32 hosts × 7 VMs,
//! the paper's testbed shape) against the fast per-task path on the same
//! trace and policy, confirming that (a) the policy ordering
//! (Formula (3) ≥ Young) survives queueing and storage contention, and
//! (b) DM-NFS keeps checkpoint durations flat where central NFS escalates
//! (the in-situ version of Tables 2–3).

use ckpt_bench::harness::{seed_from_env, setup_with, Scale};
use ckpt_bench::report::{f, Table};
use ckpt_sim::cluster::{ClusterConfig, ClusterSim};
use ckpt_sim::metrics::mean_wpr;
use ckpt_sim::{run_trace, Device, PolicyConfig, RunOptions, StorageChoice};
use ckpt_stats::summary::Summary;
use ckpt_trace::spec::WorkloadSpec;

fn main() {
    // The cluster engine is O(events) single-threaded; keep it at quick
    // scale by default. Arrival rate is tuned so the paper's 32-host /
    // 224-VM cluster runs loaded but not saturated (the paper replayed its
    // one-month trace on the same topology without unbounded queueing);
    // long service tasks are excluded so the validation window is bounded.
    let scale = Scale::from_env(Scale::Quick);
    let mut spec = WorkloadSpec::google_like(scale.jobs());
    spec.mean_interarrival_s = 25.0;
    spec.long_task_fraction = 0.0;
    let s = setup_with(spec, seed_from_env());
    let cfg = ClusterConfig::default();

    let mut table = Table::new(vec![
        "mode",
        "policy",
        "storage",
        "avg WPR",
        "mean ckpt dur(s)",
        "max conc ckpts",
    ]);

    for (policy, label) in [
        (PolicyConfig::formula3(), "Formula(3)"),
        (PolicyConfig::young(), "Young"),
    ] {
        // Fast path (no cluster effects).
        let fast = s.sample_only(&run_trace(
            &s.trace,
            &s.estimates,
            &policy,
            RunOptions::default(),
        ));
        table.row(vec![
            "fast".to_string(),
            label.to_string(),
            "auto".to_string(),
            f(mean_wpr(&fast)),
            "-".to_string(),
            "-".to_string(),
        ]);
        // Full cluster DES.
        let result = ClusterSim::new(cfg, &s.trace, &s.estimates, policy).run();
        let sample: Vec<_> = result
            .jobs
            .iter()
            .filter(|j| s.sample_jobs.contains(&j.base.job_id))
            .map(|j| j.base.clone())
            .collect();
        let dur = Summary::from_slice(&result.checkpoint_durations)
            .map(|sm| f(sm.mean))
            .unwrap_or_else(|_| "-".into());
        table.row(vec![
            "cluster".to_string(),
            label.to_string(),
            "auto".to_string(),
            f(mean_wpr(&sample)),
            dur,
            result.max_concurrent_checkpoints.to_string(),
        ]);
    }

    // Storage architecture comparison inside the cluster.
    for (device, label) in [
        (Device::CentralNfs, "central NFS"),
        (Device::DmNfs, "DM-NFS"),
    ] {
        let policy = PolicyConfig::formula3().with_storage(StorageChoice::Force(device));
        let result = ClusterSim::new(cfg, &s.trace, &s.estimates, policy).run();
        let sm = Summary::from_slice(&result.checkpoint_durations).expect("checkpoints happened");
        table.row(vec![
            "cluster".to_string(),
            "Formula(3)".to_string(),
            label.to_string(),
            f(mean_wpr(
                &result
                    .jobs
                    .iter()
                    .filter(|j| s.sample_jobs.contains(&j.base.job_id))
                    .map(|j| j.base.clone())
                    .collect::<Vec<_>>(),
            )),
            format!("{} (p95 {})", f(sm.mean), f(sm.p95)),
            result.max_concurrent_checkpoints.to_string(),
        ]);
    }

    table.print("Cluster DES validation: policy ordering survives cluster effects; DM-NFS flattens checkpoint durations");
    table.write_csv("cluster_validation").expect("write CSV");
    println!("\nCSV written to results/cluster_validation.csv");
}
