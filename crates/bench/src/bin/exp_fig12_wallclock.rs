//! Legacy shim for the registered `fig12_wallclock` experiment — prefer
//! `cloud-ckpt exp run fig12_wallclock`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("fig12_wallclock")
}
