//! **Figure 12** — real wall-clock lengths of jobs under both formulas,
//! with task lengths restricted to RL = 1000 s and RL = 4000 s.
//!
//! Paper: "majority of jobs' wall-clock lengths are incremented by
//! 50-100 seconds under Young's formula compared to our Formula (3)" —
//! large because most Google jobs are only 200–1000 s long.

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{f, write_series_csv, Table};
use ckpt_sim::metrics::{paired_wall_clock, with_max_length};
use ckpt_sim::{run_trace, EstimatorKind, PolicyConfig, RunOptions};
use ckpt_stats::ecdf::Ecdf;

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let s = setup(scale, seed_from_env());
    let opts = RunOptions::default();

    let mut table = Table::new(vec![
        "RL(s)",
        "jobs",
        "med wall F3(s)",
        "med wall Young(s)",
        "med extra under Young(s)",
        "p75 extra(s)",
    ]);
    let mut csv: Vec<Vec<f64>> = Vec::new();
    // Deployment estimator (full-range per-priority statistics, as in the
    // Figure 9 runs); the RL value only filters which jobs are plotted.
    let est = EstimatorKind::PerPriority {
        limit: f64::INFINITY,
    };
    for rl in [1000.0, 4000.0] {
        let f3 = PolicyConfig::formula3().with_estimator(est);
        let yg = PolicyConfig::young().with_estimator(est);
        let recs_f3 = with_max_length(
            &s.sample_only(&run_trace(&s.trace, &s.estimates, &f3, opts)),
            rl,
        );
        let recs_yg = with_max_length(
            &s.sample_only(&run_trace(&s.trace, &s.estimates, &yg, opts)),
            rl,
        );
        // Paired per job: Young − Formula(3) wall-clock difference.
        let pairs = paired_wall_clock(&recs_yg, &recs_f3);
        if pairs.is_empty() {
            continue;
        }
        let diffs: Vec<f64> = pairs.iter().map(|&(_, _, d)| d).collect();
        let walls_f3: Vec<f64> = recs_f3.iter().map(|r| r.total_wall).collect();
        let walls_yg: Vec<f64> = recs_yg.iter().map(|r| r.total_wall).collect();
        let ed = Ecdf::new(&diffs).expect("non-empty");
        let ef = Ecdf::new(&walls_f3).expect("non-empty");
        let ey = Ecdf::new(&walls_yg).expect("non-empty");
        table.row(vec![
            format!("{rl}"),
            pairs.len().to_string(),
            f(ef.quantile(0.5)),
            f(ey.quantile(0.5)),
            f(ed.quantile(0.5)),
            f(ed.quantile(0.75)),
        ]);
        for (i, &(job, _, d)) in pairs.iter().enumerate() {
            // Keep the CSV bounded at large scales.
            if i % 4 == 0 {
                csv.push(vec![rl, job as f64, d]);
            }
        }
    }
    table.print("Figure 12: wall-clock lengths (paper: most jobs +50-100 s under Young)");
    table.write_csv("fig12_summary").expect("write CSV");
    write_series_csv(
        "fig12_wallclock",
        &["RL_s", "job_id", "young_minus_f3_s"],
        &csv,
    )
    .expect("write CSV");
    println!("\nCSV written to results/fig12_wallclock.csv");
}
