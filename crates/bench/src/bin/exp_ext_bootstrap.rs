//! **Extension** — bootstrap confidence intervals on the headline result.
//! The paper reports point estimates; this binary quantifies the
//! uncertainty of the Figure 9 WPR gap with a paired percentile bootstrap
//! (resampling jobs, preserving the common-random-number pairing).

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{f, Table};
use ckpt_sim::metrics::wprs;
use ckpt_sim::{run_trace, PolicyConfig, RunOptions};
use ckpt_stats::bootstrap::{bootstrap_mean_ci, bootstrap_paired_diff_ci};

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let s = setup(scale, seed_from_env());
    let opts = RunOptions::default();

    let f3 = s.sample_only(&run_trace(
        &s.trace,
        &s.estimates,
        &PolicyConfig::formula3(),
        opts,
    ));
    let yg = s.sample_only(&run_trace(
        &s.trace,
        &s.estimates,
        &PolicyConfig::young(),
        opts,
    ));
    let w_f3 = wprs(&f3);
    let w_yg = wprs(&yg);

    let ci_f3 = bootstrap_mean_ci(&w_f3, 0.95, 2000, 11).expect("bootstrap");
    let ci_yg = bootstrap_mean_ci(&w_yg, 0.95, 2000, 12).expect("bootstrap");
    let ci_diff = bootstrap_paired_diff_ci(&w_f3, &w_yg, 0.95, 2000, 13).expect("bootstrap");

    let mut table = Table::new(vec!["quantity", "estimate", "95% CI low", "95% CI high"]);
    table.row(vec![
        "mean WPR Formula(3)".to_string(),
        f(ci_f3.estimate),
        f(ci_f3.lo),
        f(ci_f3.hi),
    ]);
    table.row(vec![
        "mean WPR Young".to_string(),
        f(ci_yg.estimate),
        f(ci_yg.lo),
        f(ci_yg.hi),
    ]);
    table.row(vec![
        "paired diff (F3 - Young)".to_string(),
        f(ci_diff.estimate),
        f(ci_diff.lo),
        f(ci_diff.hi),
    ]);
    table.print("Extension: bootstrap CIs for the Figure 9 headline (paired, 2000 resamples)");
    table.write_csv("ext_bootstrap_ci").expect("write CSV");

    if ci_diff.lo > 0.0 {
        println!("\nthe Formula (3) advantage is significant at the 95 % level (CI excludes 0).");
    } else {
        println!("\nwarning: the 95 % CI of the gap includes 0 at this scale.");
    }
    println!("CSV written to results/ext_bootstrap_ci.csv");
}
