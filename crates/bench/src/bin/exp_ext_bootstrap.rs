//! Legacy shim for the registered `ext_bootstrap` experiment — prefer
//! `cloud-ckpt exp run ext_bootstrap`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("ext_bootstrap")
}
