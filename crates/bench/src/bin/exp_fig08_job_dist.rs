//! Legacy shim for the registered `fig08_job_dist` experiment — prefer
//! `cloud-ckpt exp run fig08_job_dist`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("fig08_job_dist")
}
