//! **Figure 8** — CDFs of the sample jobs' memory size and execution
//! length, split by structure (ST / BoT / mixture).
//!
//! Paper observation: "job memory sizes and lengths differ significantly
//! according to job structures; however, most jobs are short jobs with
//! small memory sizes."

use ckpt_bench::harness::{seed_from_env, setup, Scale};
use ckpt_bench::report::{ascii_cdf, f, write_series_csv, Table};
use ckpt_stats::ecdf::Ecdf;
use ckpt_trace::gen::JobStructure;

fn main() {
    let scale = Scale::from_env(Scale::Day);
    let s = setup(scale, seed_from_env());

    // The paper plots the *sample jobs* (its failure-prone selection).
    let classes: [(&str, Option<JobStructure>); 3] = [
        ("ST", Some(JobStructure::Sequential)),
        ("BoT", Some(JobStructure::BagOfTasks)),
        ("mixture", None),
    ];

    let mut table = Table::new(vec![
        "class",
        "jobs",
        "med mem(MB)",
        "p95 mem(MB)",
        "med len(h)",
        "p95 len(h)",
    ]);
    let mut csv: Vec<Vec<f64>> = Vec::new();
    for (ci, (label, structure)) in classes.iter().enumerate() {
        let jobs: Vec<_> = s
            .trace
            .jobs
            .iter()
            .filter(|j| s.sample_jobs.contains(&j.id))
            .filter(|j| structure.map(|st| j.structure == st).unwrap_or(true))
            .collect();
        if jobs.is_empty() {
            continue;
        }
        let mems: Vec<f64> = jobs.iter().map(|j| j.max_mem()).collect();
        let lens: Vec<f64> = jobs.iter().map(|j| j.total_work()).collect();
        let em = Ecdf::new(&mems).expect("non-empty");
        let el = Ecdf::new(&lens).expect("non-empty");
        table.row(vec![
            label.to_string(),
            jobs.len().to_string(),
            f(em.quantile(0.5)),
            f(em.quantile(0.95)),
            f(el.quantile(0.5) / 3600.0),
            f(el.quantile(0.95) / 3600.0),
        ]);
        for (x, q) in em.points(64) {
            csv.push(vec![ci as f64, 0.0, x, q]);
        }
        for (x, q) in el.points(64) {
            csv.push(vec![ci as f64, 1.0, x, q]);
        }
        if *label == "mixture" {
            println!(
                "{}",
                ascii_cdf(&em.points(64), 64, 10, "job memory size CDF (MB, mixture)")
            );
            println!(
                "{}",
                ascii_cdf(&el.points(64), 64, 10, "job length CDF (s, mixture)")
            );
        }
    }
    table.print(
        "Figure 8: sample-job memory sizes and lengths (paper: most jobs short with small memory)",
    );
    table.write_csv("fig08_summary").expect("write CSV");
    write_series_csv(
        "fig08_job_dist",
        &["class(0=ST,1=BoT,2=mix)", "metric(0=mem,1=len)", "x", "cdf"],
        &csv,
    )
    .expect("write CSV");
    println!("\nCSV written to results/fig08_job_dist.csv");
}
