//! **Table 3** — cost of simultaneously checkpointing tasks over the
//! paper's distributively-managed NFS (DM-NFS): every host runs its own NFS
//! server and each checkpoint picks one uniformly at random.
//!
//! Paper: "the checkpointing cost is always limited within 2 seconds even
//! with simultaneous checkpointing, which means a much higher scalability"
//! (avg 1.49–1.75 s across parallel degrees 1–5 at 160 MB).

use ckpt_bench::harness::seed_from_env;
use ckpt_bench::report::{f, Table};
use ckpt_sim::blcr::{BlcrModel, Device};
use ckpt_sim::storage::{OpId, StorageBank};
use ckpt_sim::time::SimTime;
use ckpt_stats::rng::{Rng64, Xoshiro256StarStar};
use ckpt_stats::summary::OnlineStats;

const MEM_MB: f64 = 160.0;
const REPS: usize = 25;
const N_HOSTS: usize = 32; // the paper's testbed

fn main() {
    let blcr = BlcrModel;
    let mut rng = Xoshiro256StarStar::new(seed_from_env() ^ 0xD31F5);

    let mut rows: Vec<Vec<String>> = vec![
        vec!["DM-NFS".into(), "min".into()],
        vec!["DM-NFS".into(), "avg".into()],
        vec!["DM-NFS".into(), "max".into()],
    ];
    for x in 1..=5usize {
        let mut stats = OnlineStats::new();
        for _ in 0..REPS {
            let mut bank = StorageBank::dm_nfs(N_HOSTS, 1.0);
            let t0 = SimTime::ZERO;
            // Random server per op — the paper's DM-NFS policy.
            let picks: Vec<usize> = (0..x)
                .map(|_| rng.next_range(N_HOSTS as u64) as usize)
                .collect();
            for (i, &srv) in picks.iter().enumerate() {
                let demand = blcr.checkpoint_cost_jittered(Device::DmNfs, MEM_MB, &mut rng);
                bank.server_mut(srv).add(t0, OpId(i as u64), demand);
            }
            // Drain every server independently.
            for srv in 0..N_HOSTS {
                let mut now = t0;
                while let Some((op, when)) = bank.server(srv).next_completion(now) {
                    bank.server_mut(srv).remove(when, op);
                    stats.add(when.as_secs_f64());
                    now = when;
                }
            }
        }
        rows[0].push(f(stats.min()));
        rows[1].push(f(stats.mean()));
        rows[2].push(f(stats.max()));
    }
    let mut table = Table::new(vec!["type", "stat", "X=1", "X=2", "X=3", "X=4", "X=5"]);
    for r in rows {
        table.row(r);
    }
    table.print("Table 3: simultaneous checkpointing over DM-NFS, 160 MB (paper: avg 1.49-1.75 s, max <= 1.97 s)");
    table.write_csv("table3_dmnfs").expect("write CSV");
    println!("\nCSV written to results/table3_dmnfs.csv");
}
