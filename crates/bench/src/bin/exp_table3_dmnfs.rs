//! Legacy shim for the registered `table3_dmnfs` experiment — prefer
//! `cloud-ckpt exp run table3_dmnfs`.

fn main() -> std::process::ExitCode {
    ckpt_bench::shim_main("table3_dmnfs")
}
