//! # ckpt-bench — the experiment library for the SC'13 reproduction
//!
//! Every figure/table of the paper's evaluation section (plus this
//! repo's extensions) is a typed, registered [`exp::Experiment`]:
//!
//! * [`exp`] — the `Experiment` trait (`id()`, `paper_ref()`, `claim()`,
//!   `run(&RunContext) -> ExpOutput`).
//! * [`registry`] — the static list of all 23 experiments, the lookup
//!   functions, and the shims backing the legacy `exp_*` binaries.
//! * [`experiments`] — one module per experiment; each produces
//!   structured [`ckpt_report::Frame`]s rendered by the shared writer
//!   (CSV / JSON / aligned table) — no bespoke `println!` paths.
//! * [`harness`] — shared trace setup; scale/seed/context types are
//!   re-exported from [`ckpt_report`].
//! * `benches/` — criterion micro/meso benchmarks of the policy math,
//!   the statistics substrate, the DES engine, and the end-to-end replay.
//!
//! The first-class front end is `cloud-ckpt exp list|run|all`; the
//! `src/bin/exp_*` binaries remain as two-line shims for backward
//! compatibility.

pub mod exp;
pub mod experiments;
pub mod harness;
pub mod registry;
pub mod report;

pub use exp::{ExpError, ExpResult, Experiment};
pub use registry::{shim_all, shim_main};
