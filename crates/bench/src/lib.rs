//! # ckpt-bench — experiment harness for the SC'13 reproduction
//!
//! This crate contains no library logic of its own; it hosts:
//!
//! * `src/bin/exp_*` — one binary per table and figure in the paper's
//!   evaluation section, each printing paper-reported values next to our
//!   measured values and writing CSV into `results/`.
//! * `benches/` — criterion micro/meso benchmarks of the policy math, the
//!   statistics substrate, the DES engine, and the end-to-end replay, plus
//!   the ablation benches listed in DESIGN.md §5.
//!
//! Shared helpers for the experiment binaries live in [`report`] and
//! [`harness`].

pub mod harness;
pub mod report;
