//! The static experiment registry: every paper figure/table (plus the
//! repo's extensions) as one addressable, machine-readable list — the
//! single source behind `cloud-ckpt exp list|run|all` and the legacy
//! `exp_*` binary shims.

use crate::exp::Experiment;
use crate::experiments::*;
use ckpt_report::{row, Frame, RunContext, Sink};
use std::process::ExitCode;

/// Every registered experiment, in the paper's presentation order
/// (figures/tables first, then the extensions).
pub static EXPERIMENTS: &[&dyn Experiment] = &[
    &fig04_interval_cdf::Fig04IntervalCdf,
    &fig05_mle_fit::Fig05MleFit,
    &fig07_ckpt_cost::Fig07CkptCost,
    &table2_simultaneous::Table2Simultaneous,
    &table3_dmnfs::Table3DmNfs,
    &table4_op_cost::Table4OpCost,
    &table5_restart_cost::Table5RestartCost,
    &table7_mnof_mtbf::Table7MnofMtbf,
    &fig08_job_dist::Fig08JobDist,
    &table6_precise::Table6Precise,
    &fig09_wpr_cdf::Fig09WprCdf,
    &fig10_wpr_priority::Fig10WprPriority,
    &fig11_wpr_restricted::Fig11WprRestricted,
    &fig12_wallclock::Fig12Wallclock,
    &fig13_paired::Fig13Paired,
    &fig14_dynamic::Fig14Dynamic,
    &cluster_validation::ClusterValidation,
    &ext_penalty::ExtPenalty,
    &ext_random_ckpt::ExtRandomCkpt,
    &ext_host_failures::ExtHostFailures,
    &ext_bootstrap::ExtBootstrap,
    &ext_policy_cost_grid::ExtPolicyCostGrid,
    &ext_stress_fleet::ExtStressFleet,
    &ext_hazard_robustness::ExtHazardRobustness,
    &ext_heavy_tail_fleet::ExtHeavyTailFleet,
    &ext_limit_robustness::ExtLimitRobustness,
];

/// All experiments, in registry order.
pub fn all() -> &'static [&'static dyn Experiment] {
    EXPERIMENTS
}

/// Look an experiment up by id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    EXPERIMENTS.iter().copied().find(|e| e.id() == id)
}

/// All registered ids, in registry order.
pub fn ids() -> Vec<&'static str> {
    EXPERIMENTS.iter().map(|e| e.id()).collect()
}

/// The catalog as a frame: id, paper anchor, default scale, claim.
pub fn catalog() -> Frame {
    let mut frame = Frame::new(
        "experiment_catalog",
        vec!["id", "paper_ref", "default_scale", "claim"],
    )
    .with_title("Registered experiments (cloud-ckpt exp run <id>)")
    .with_meta("count", EXPERIMENTS.len().to_string());
    for e in EXPERIMENTS {
        frame.push_row(row![
            e.id(),
            e.paper_ref(),
            e.default_scale().label(),
            e.claim()
        ]);
    }
    frame
}

/// Entry point for the legacy `exp_*` binaries: resolve the environment
/// (`CKPT_SCALE`, `CKPT_SEED`; unknown values are hard errors) at the
/// experiment's default scale, run it, print tables to stdout, and write
/// CSV frames under `results/`. This matches the historical binaries
/// except that the sweep-backed ones no longer write the superseded
/// `results/<name>_summary.json` companion — the cells CSV (and
/// `cloud-ckpt exp run <id> --format json`) carry the same data.
pub fn shim_main(id: &str) -> ExitCode {
    let Some(exp) = find(id) else {
        eprintln!("error: experiment {id:?} is not registered");
        return ExitCode::FAILURE;
    };
    let ctx = match RunContext::from_env(exp.default_scale()) {
        Ok(ctx) => ctx.with_sink(Sink::table().with_dir(crate::report::results_dir())),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_and_emit(exp, &ctx) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {id}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Entry point for the legacy `all_experiments` binary: run the whole
/// registry in order (in process — no subprocess relaunching), banner per
/// experiment, non-zero exit if any failed.
pub fn shim_all() -> ExitCode {
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n################################################################");
        println!("# {}  ({})", exp.id(), exp.paper_ref());
        println!("################################################################");
        let ctx = match RunContext::from_env(exp.default_scale()) {
            Ok(ctx) => ctx.with_sink(Sink::table().with_dir(crate::report::results_dir())),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = run_and_emit(*exp, &ctx) {
            eprintln!("{} failed: {e}", exp.id());
            failures.push(exp.id());
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; CSVs in results/");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        ExitCode::FAILURE
    }
}

/// Run one experiment and emit its output through the context's sink;
/// reports the files written (table format only).
pub fn run_and_emit(exp: &dyn Experiment, ctx: &RunContext) -> Result<(), String> {
    let output = exp.run(ctx).map_err(|e| e.to_string())?;
    let paths = ctx.sink.emit(&output).map_err(|e| e.to_string())?;
    if ctx.sink.format == ckpt_report::Format::Table && !ctx.sink.quiet {
        for p in &paths {
            println!("wrote {}", p.display());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_has_26_unique_ids() {
        let ids = ids();
        assert_eq!(ids.len(), 26, "{ids:?}");
        let set: HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len(), "duplicate experiment ids");
    }

    #[test]
    fn every_experiment_has_paper_ref_and_claim() {
        for e in all() {
            assert!(!e.paper_ref().is_empty(), "{} paper_ref empty", e.id());
            assert!(!e.claim().is_empty(), "{} claim empty", e.id());
            assert!(
                e.id()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{} id not snake_case",
                e.id()
            );
        }
    }

    #[test]
    fn find_resolves_every_id_and_rejects_unknown() {
        for id in ids() {
            assert_eq!(find(id).unwrap().id(), id);
        }
        assert!(find("fig99_nope").is_none());
    }

    #[test]
    fn catalog_frame_covers_the_registry() {
        let frame = catalog();
        assert_eq!(frame.rows.len(), EXPERIMENTS.len());
        assert_eq!(frame.columns[0], "id");
    }

    /// The README's experiment-catalog table must not drift from the
    /// registry: every registered id appears as exactly one table row
    /// whose command column reproduces the experiment, and there are no
    /// extra rows for unregistered ids.
    #[test]
    fn readme_catalog_matches_registry() {
        let readme = include_str!("../../../README.md");
        let section = readme
            .split("### Experiment catalog")
            .nth(1)
            .expect("README has an '### Experiment catalog' section");
        let section = section.split("\n##").next().unwrap_or(section);
        let rows: Vec<&str> = section.lines().filter(|l| l.starts_with("| `")).collect();
        assert_eq!(
            rows.len(),
            EXPERIMENTS.len(),
            "README catalog has {} rows but the registry has {} experiments",
            rows.len(),
            EXPERIMENTS.len()
        );
        for e in EXPERIMENTS {
            let id = e.id();
            let row = rows
                .iter()
                .find(|r| r.starts_with(&format!("| `{id}`")))
                .unwrap_or_else(|| panic!("README catalog is missing a row for {id}"));
            assert!(
                row.contains(&format!("cloud-ckpt exp run {id}")),
                "README row for {id} must show its reproducing command: {row}"
            );
        }
    }
}
