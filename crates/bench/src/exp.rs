//! The typed experiment API: one trait every paper figure/table (and
//! extension) implements, executed under a shared [`RunContext`] and
//! producing a structured [`ExpOutput`] rendered by the shared frame
//! writer — no bespoke `println!` paths.

use ckpt_report::{ExpOutput, RunContext, Scale};

/// Error from one experiment run (bad inputs, I/O, an invariant the
/// experiment asserts about its own spec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpError(pub String);

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl std::error::Error for ExpError {}

impl From<String> for ExpError {
    fn from(s: String) -> Self {
        ExpError(s)
    }
}
impl From<&str> for ExpError {
    fn from(s: &str) -> Self {
        ExpError(s.to_string())
    }
}

/// Result of one experiment run.
pub type ExpResult = Result<ExpOutput, ExpError>;

/// One experiment of the paper's evaluation section (or one of this
/// repo's extensions): a stable id, the paper anchor, a one-line claim,
/// and an execution entry point consuming the shared [`RunContext`].
///
/// Implementations are registered in [`crate::registry`] and reached
/// through `cloud-ckpt exp list|run|all`; the legacy `exp_*` binaries are
/// two-line shims over the same registry.
///
/// # Example
///
/// ```
/// use ckpt_bench::exp::{Experiment, ExpResult};
/// use ckpt_report::{row, ExpOutput, Frame, RunContext, Scale};
///
/// struct Demo;
///
/// impl Experiment for Demo {
///     fn id(&self) -> &'static str {
///         "demo"
///     }
///     fn paper_ref(&self) -> &'static str {
///         "Figure 0"
///     }
///     fn claim(&self) -> &'static str {
///         "experiments are frames, not println!"
///     }
///     fn run(&self, ctx: &RunContext) -> ExpResult {
///         let mut frame = Frame::new("demo", vec!["scale", "seed"]);
///         frame.push_row(row![ctx.scale.label(), ctx.seed]);
///         let mut out = ExpOutput::new();
///         out.push(frame);
///         Ok(out)
///     }
/// }
///
/// let out = Demo.run(&RunContext::new(Scale::Quick)).unwrap();
/// assert_eq!(out.frames.len(), 1);
/// assert_eq!(out.frames[0].to_csv(), "scale,seed\nquick,20130217\n");
/// ```
pub trait Experiment: Sync {
    /// Stable registry id — also the CLI name (`cloud-ckpt exp run <id>`)
    /// and the prefix of the experiment's output frames.
    fn id(&self) -> &'static str;

    /// The paper figure/table this reproduces (e.g. `"Figure 9"`), or the
    /// extension it builds on.
    fn paper_ref(&self) -> &'static str;

    /// One-line claim being reproduced or tested.
    fn claim(&self) -> &'static str;

    /// Scale used when neither `--scale` nor `CKPT_SCALE` picks one.
    fn default_scale(&self) -> Scale {
        Scale::Quick
    }

    /// Execute under the context, producing structured frames + notes.
    fn run(&self, ctx: &RunContext) -> ExpResult;
}
