//! Shared experiment setup: standard trace scales, estimates, and the
//! paper's sample-job selection.

use ckpt_sim::policy::Estimates;
use ckpt_trace::gen::{generate, Trace};
use ckpt_trace::spec::WorkloadSpec;
use ckpt_trace::stats::{failure_prone_jobs, trace_histories, TaskRecord};
use std::collections::HashSet;

/// Default seed used by every experiment (override with `CKPT_SEED`).
pub const DEFAULT_SEED: u64 = 20130217;

/// Experiment scale, controlling trace sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: quick sanity run (a few hundred jobs).
    Quick,
    /// The paper's one-day experiment (~10k jobs).
    Day,
    /// The paper's month-scale analysis (large; used by Table 6 / Fig 9-10).
    Month,
}

impl Scale {
    /// Number of jobs at this scale.
    pub fn jobs(&self) -> usize {
        match self {
            Scale::Quick => 800,
            Scale::Day => 10_000,
            Scale::Month => 100_000,
        }
    }

    /// Resolve from the `CKPT_SCALE` environment variable
    /// (`quick` / `day` / `month`), defaulting to `default`.
    pub fn from_env(default: Scale) -> Scale {
        match std::env::var("CKPT_SCALE").ok().as_deref() {
            Some("quick") => Scale::Quick,
            Some("day") => Scale::Day,
            Some("month") => Scale::Month,
            _ => default,
        }
    }
}

/// Seed from `CKPT_SEED` or the default.
pub fn seed_from_env() -> u64 {
    std::env::var("CKPT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// A fully prepared experiment context.
pub struct Setup {
    /// The generated trace.
    pub trace: Trace,
    /// Per-task failure histories (the "historical trace events").
    pub records: Vec<TaskRecord>,
    /// Precomputed estimator state.
    pub estimates: Estimates,
    /// The paper's sample jobs: ids where ≥ half the tasks failed.
    pub sample_jobs: HashSet<u64>,
}

/// Prepare a standard Google-like workload at the given scale.
pub fn setup(scale: Scale, seed: u64) -> Setup {
    setup_with(WorkloadSpec::google_like(scale.jobs()), seed)
}

/// Prepare with a custom spec (e.g. priority flips for Figure 14).
pub fn setup_with(spec: WorkloadSpec, seed: u64) -> Setup {
    let trace = generate(&spec, seed);
    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let sample_jobs = failure_prone_jobs(&records, 0.5);
    Setup {
        trace,
        records,
        estimates,
        sample_jobs,
    }
}

impl Setup {
    /// Restrict job records to the paper's failure-prone sample set.
    pub fn sample_only(&self, records: &[ckpt_sim::JobRecord]) -> Vec<ckpt_sim::JobRecord> {
        records
            .iter()
            .filter(|r| self.sample_jobs.contains(&r.job_id))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_setup_produces_samples() {
        let s = setup(Scale::Quick, 1);
        assert_eq!(s.trace.jobs.len(), 800);
        assert!(!s.sample_jobs.is_empty());
        assert_eq!(s.records.len(), s.trace.task_count());
    }

    #[test]
    fn scale_env_parsing() {
        assert_eq!(Scale::from_env(Scale::Quick), Scale::Quick);
        assert_eq!(Scale::Day.jobs(), 10_000);
    }
}
