//! Shared experiment setup: standard trace scales, estimates, and the
//! paper's sample-job selection.
//!
//! Scale, seeding, and environment resolution live in [`ckpt_report`]
//! (re-exported here) so every layer — experiments, sweeps, CLI — shares
//! one [`RunContext`].

use ckpt_sim::policy::Estimates;
use ckpt_trace::gen::{generate, Trace};
use ckpt_trace::spec::WorkloadSpec;
use ckpt_trace::stats::{failure_prone_jobs, trace_histories, TaskRecord};
use std::collections::HashSet;

pub use ckpt_report::{seed_from_env, RunContext, Scale, DEFAULT_SEED};

/// A fully prepared experiment context.
pub struct Setup {
    /// The generated trace.
    pub trace: Trace,
    /// Per-task failure histories (the "historical trace events").
    pub records: Vec<TaskRecord>,
    /// Precomputed estimator state.
    pub estimates: Estimates,
    /// The paper's sample jobs: ids where ≥ half the tasks failed.
    pub sample_jobs: HashSet<u64>,
}

/// Prepare a standard Google-like workload at the given scale.
pub fn setup(scale: Scale, seed: u64) -> Result<Setup, String> {
    setup_with(WorkloadSpec::google_like(scale.jobs()), seed)
}

/// Prepare a standard workload from a [`RunContext`] (its scale + seed).
pub fn setup_ctx(ctx: &RunContext) -> Result<Setup, String> {
    setup(ctx.scale, ctx.seed)
}

/// Prepare with a custom spec (e.g. priority flips for Figure 14, or a
/// non-default failure model). Spec errors surface as experiment errors
/// instead of aborting the process.
pub fn setup_with(spec: WorkloadSpec, seed: u64) -> Result<Setup, String> {
    let trace = generate(&spec, seed).map_err(|e| e.to_string())?;
    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let sample_jobs = failure_prone_jobs(&records, 0.5);
    Ok(Setup {
        trace,
        records,
        estimates,
        sample_jobs,
    })
}

impl Setup {
    /// Restrict job records to the paper's failure-prone sample set.
    pub fn sample_only(&self, records: &[ckpt_sim::JobRecord]) -> Vec<ckpt_sim::JobRecord> {
        records
            .iter()
            .filter(|r| self.sample_jobs.contains(&r.job_id))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_setup_produces_samples() {
        let s = setup(Scale::Quick, 1).unwrap();
        assert_eq!(s.trace.jobs.len(), 800);
        assert!(!s.sample_jobs.is_empty());
        assert_eq!(s.records.len(), s.trace.task_count());
    }

    #[test]
    fn setup_ctx_matches_explicit_setup() {
        let ctx = RunContext::new(Scale::Quick).with_seed(1);
        let a = setup_ctx(&ctx).unwrap();
        let b = setup(Scale::Quick, 1).unwrap();
        assert_eq!(a.trace.jobs.len(), b.trace.jobs.len());
        assert_eq!(a.sample_jobs, b.sample_jobs);
    }

    #[test]
    fn scale_env_parsing_is_strict() {
        // Unset → default; the strictness itself is covered in
        // ckpt-report (environment mutation is not thread-safe in tests).
        assert_eq!(Scale::from_env(Scale::Quick).unwrap(), Scale::Quick);
        assert_eq!(Scale::Day.jobs(), 10_000);
        assert!(Scale::parse("huge").is_err());
    }
}
