//! Criterion benches of the DES substrate: event-queue throughput,
//! processor-sharing server churn, and single-task execution.

use ckpt_policy::schedule::EquidistantSchedule;
use ckpt_sim::controller::{Controller, FixedSchedule};
use ckpt_sim::event::EventQueue;
use ckpt_sim::storage::{OpId, PsResource};
use ckpt_sim::task_sim::{simulate_task, TaskSimSpec};
use ckpt_sim::time::SimTime;
use ckpt_stats::rng::Xoshiro256StarStar;
use ckpt_trace::spec::FailureModel;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, _, p)) = q.pop() {
                acc = acc.wrapping_add(p);
            }
            acc
        })
    });
    g.bench_function("schedule_cancel_half_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = (0..10_000u64)
                .map(|i| q.schedule(SimTime(i % 997), i))
                .collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_ps_server(c: &mut Criterion) {
    c.benchmark_group("ps_server")
        .bench_function("churn_1000_ops", |b| {
            b.iter(|| {
                let mut ps = PsResource::new(1.0);
                let mut now = SimTime::ZERO;
                let mut next_op = 0u64;
                // Keep ~8 ops in flight, completing the earliest each round.
                for _ in 0..1000 {
                    while ps.active() < 8 {
                        ps.add(now, OpId(next_op), 1.0 + (next_op % 5) as f64 * 0.3);
                        next_op += 1;
                    }
                    let (op, when) = ps.next_completion(now).unwrap();
                    ps.remove(when, op);
                    now = when;
                }
                now
            })
        });
}

fn bench_task_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("task_sim");
    let spec = TaskSimSpec {
        te: 600.0,
        ckpt_cost: 0.5,
        restart_cost: 1.0,
    };
    g.bench_function("quiet_priority12_task", |b| {
        let model = FailureModel::for_priority(12);
        b.iter(|| {
            let mut ctl = Controller::Fixed(FixedSchedule::new(
                &EquidistantSchedule::new(600.0, 12).unwrap(),
            ));
            let mut rng = Xoshiro256StarStar::new(black_box(3));
            simulate_task(&spec, model, None, &mut ctl, &mut rng).wall
        })
    });
    g.bench_function("heavy_priority10_task", |b| {
        let model = FailureModel::for_priority(10);
        b.iter(|| {
            let mut ctl = Controller::Fixed(FixedSchedule::new(
                &EquidistantSchedule::new(600.0, 40).unwrap(),
            ));
            let mut rng = Xoshiro256StarStar::new(black_box(3));
            simulate_task(&spec, model, None, &mut ctl, &mut rng).wall
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_event_queue, bench_ps_server, bench_task_sim
}
criterion_main!(benches);
