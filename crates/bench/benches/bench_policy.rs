//! Criterion benches of the policy math: Theorem 1, Young, Daly, the
//! adaptive controller, and the §4.2.2 storage decision. These are the
//! per-task planning costs a scheduler would pay at admission time — the
//! paper's Algorithm 1 runs this once per task plus once per MNOF change.

use ckpt_policy::adaptive::AdaptiveCheckpointer;
use ckpt_policy::daly::daly_interval_count;
use ckpt_policy::optimal::{brute_force_optimal, expected_wall_clock, optimal_interval_count};
use ckpt_policy::storage::{choose_storage, DeviceCosts};
use ckpt_policy::young::young_interval_count;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

fn bench_formulas(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_formulas");
    g.bench_function("optimal_interval_count", |b| {
        b.iter(|| optimal_interval_count(black_box(441.0), black_box(1.0), black_box(2.0)))
    });
    g.bench_function("young_interval_count", |b| {
        b.iter(|| young_interval_count(black_box(441.0), black_box(1.0), black_box(179.0)))
    });
    g.bench_function("daly_interval_count", |b| {
        b.iter(|| daly_interval_count(black_box(441.0), black_box(1.0), black_box(179.0)))
    });
    g.bench_function("expected_wall_clock", |b| {
        b.iter(|| {
            expected_wall_clock(
                black_box(441.0),
                black_box(1.0),
                black_box(1.5),
                black_box(2.0),
                black_box(21),
            )
        })
    });
    g.bench_function("brute_force_optimal_500", |b| {
        b.iter(|| brute_force_optimal(black_box(441.0), black_box(1.0), black_box(2.0), 500))
    });
    g.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptive_controller");
    g.bench_function("construct", |b| {
        b.iter(|| AdaptiveCheckpointer::new(black_box(441.0), black_box(1.0), black_box(2.0)))
    });
    g.bench_function("full_task_walkthrough", |b| {
        b.iter(|| {
            let mut ctl = AdaptiveCheckpointer::new(441.0, 1.0, 2.0).unwrap();
            let mut pos = ctl.segment();
            while pos < 441.0 {
                ctl.on_checkpoint_complete(pos);
                pos += ctl.segment();
            }
            ctl.progress()
        })
    });
    g.bench_function("mnof_change_resolve", |b| {
        let ctl = AdaptiveCheckpointer::new(441.0, 1.0, 2.0).unwrap();
        b.iter_batched(
            || ctl.clone(),
            |mut ctl| {
                ctl.update_mnof(black_box(8.0));
                ctl
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_storage_choice(c: &mut Criterion) {
    let local = DeviceCosts::new(0.632, 3.22).unwrap();
    let shared = DeviceCosts::new(1.67, 1.45).unwrap();
    c.benchmark_group("storage_decision")
        .bench_function("choose_storage", |b| {
            b.iter(|| choose_storage(black_box(200.0), black_box(2.0), local, shared))
        });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_formulas, bench_adaptive, bench_storage_choice
}
criterion_main!(benches);
