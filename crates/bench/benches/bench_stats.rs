//! Criterion benches of the statistics substrate: sampling, ECDF
//! construction/query, and the MLE fitters behind Figure 5.

use ckpt_stats::dist::{ContinuousDist, Exponential, Normal, Pareto, Weibull};
use ckpt_stats::ecdf::Ecdf;
use ckpt_stats::fit::{fit_all, fit_exponential, fit_pareto, fit_weibull, PAPER_FAMILIES};
use ckpt_stats::rng::{Rng64, SplitMix64, Xoshiro256StarStar};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500))
}

fn samples(n: usize) -> Vec<f64> {
    let d = Pareto::new(1.0, 1.2).unwrap();
    let mut rng = Xoshiro256StarStar::new(42);
    d.sample_n(&mut rng, n)
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("xoshiro_u64_x1000", |b| {
        let mut rng = Xoshiro256StarStar::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        })
    });
    g.bench_function("splitmix_f64_x1000", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.next_f64();
            }
            acc
        })
    });
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("distribution_sampling_x1000");
    let mut rng = Xoshiro256StarStar::new(7);
    let exp = Exponential::new(0.004).unwrap();
    let par = Pareto::new(30.0, 1.1).unwrap();
    let nor = Normal::new(0.0, 1.0).unwrap();
    let wei = Weibull::new(0.7, 100.0).unwrap();
    g.bench_function("exponential", |b| {
        b.iter(|| (0..1000).map(|_| exp.sample(&mut rng)).sum::<f64>())
    });
    g.bench_function("pareto", |b| {
        b.iter(|| (0..1000).map(|_| par.sample(&mut rng)).sum::<f64>())
    });
    g.bench_function("normal", |b| {
        b.iter(|| (0..1000).map(|_| nor.sample(&mut rng)).sum::<f64>())
    });
    g.bench_function("weibull", |b| {
        b.iter(|| (0..1000).map(|_| wei.sample(&mut rng)).sum::<f64>())
    });
    g.finish();
}

fn bench_ecdf(c: &mut Criterion) {
    let xs = samples(50_000);
    let ecdf = Ecdf::new(&xs).unwrap();
    let mut g = c.benchmark_group("ecdf");
    g.bench_function("construct_50k", |b| b.iter(|| Ecdf::new(black_box(&xs))));
    g.bench_function("cdf_query", |b| b.iter(|| ecdf.cdf(black_box(123.4))));
    g.bench_function("quantile_query", |b| {
        b.iter(|| ecdf.quantile(black_box(0.37)))
    });
    g.bench_function("points_100", |b| b.iter(|| ecdf.points(100)));
    g.finish();
}

fn bench_fitting(c: &mut Criterion) {
    let xs = samples(10_000);
    let mut g = c.benchmark_group("mle_fit_10k");
    g.bench_function("exponential", |b| {
        b.iter(|| fit_exponential(black_box(&xs)))
    });
    g.bench_function("pareto", |b| b.iter(|| fit_pareto(black_box(&xs))));
    g.bench_function("weibull_newton", |b| b.iter(|| fit_weibull(black_box(&xs))));
    g.bench_function("figure5_panel_all_families", |b| {
        b.iter(|| fit_all(&PAPER_FAMILIES, black_box(&xs)).len())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_rng, bench_sampling, bench_ecdf, bench_fitting
}
criterion_main!(benches);
