//! Ablation benches for the design choices called out in DESIGN.md §5.
//! These measure *solution quality* (mean WPR over a fixed workload) as
//! well as time, using criterion for the time axis and stdout for the
//! quality axis (printed once per run).
//!
//! Ablations:
//! * rounding of `x*` — continuous vs floor vs cost-compared;
//! * estimator granularity — oracle vs per-priority vs global;
//! * storage choice — §4.2.2 auto vs forced ramdisk vs forced DM-NFS;
//! * adaptivity under priority flips — Algorithm 1 vs static.

use ckpt_sim::metrics::mean_wpr;
use ckpt_sim::policy::{Estimates, EstimatorKind, PolicyConfig, StorageChoice};
use ckpt_sim::runner::{run_trace, RunOptions};
use ckpt_sim::Device;
use ckpt_trace::gen::generate;
use ckpt_trace::spec::WorkloadSpec;
use ckpt_trace::stats::trace_histories;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::OnceLock;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

struct Fixture {
    trace: ckpt_trace::gen::Trace,
    flip_trace: ckpt_trace::gen::Trace,
    estimates: Estimates,
    flip_estimates: Estimates,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let trace = generate(&WorkloadSpec::google_like(800), 99).expect("valid workload spec");
        let estimates = Estimates::from_records(&trace_histories(&trace));
        let flip_trace = generate(&WorkloadSpec::google_like(800).with_priority_flips(), 99)
            .expect("valid workload spec");
        let flip_estimates = Estimates::from_records(&trace_histories(&flip_trace));
        Fixture {
            trace,
            flip_trace,
            estimates,
            flip_estimates,
        }
    })
}

fn quality(cfg: &PolicyConfig, flip: bool) -> f64 {
    let fx = fixture();
    let (trace, est) = if flip {
        (&fx.flip_trace, &fx.flip_estimates)
    } else {
        (&fx.trace, &fx.estimates)
    };
    let recs = run_trace(trace, est, cfg, RunOptions::default());
    mean_wpr(&recs)
}

fn bench_estimator_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_estimator");
    let variants = [
        ("oracle", EstimatorKind::Oracle),
        (
            "per_priority",
            EstimatorKind::PerPriority {
                limit: f64::INFINITY,
            },
        ),
        (
            "global",
            EstimatorKind::Global {
                limit: f64::INFINITY,
            },
        ),
    ];
    for (name, est) in variants {
        let cfg = PolicyConfig::formula3().with_estimator(est);
        println!(
            "[quality] estimator={name}: mean WPR = {:.4}",
            quality(&cfg, false)
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                let fx = fixture();
                run_trace(&fx.trace, &fx.estimates, &cfg, RunOptions::default()).len()
            })
        });
    }
    g.finish();
}

fn bench_storage_choice(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_storage");
    let variants = [
        ("auto_4_2_2", StorageChoice::Auto),
        ("force_ramdisk", StorageChoice::Force(Device::Ramdisk)),
        ("force_dmnfs", StorageChoice::Force(Device::DmNfs)),
    ];
    for (name, storage) in variants {
        let cfg = PolicyConfig::formula3().with_storage(storage);
        println!(
            "[quality] storage={name}: mean WPR = {:.4}",
            quality(&cfg, false)
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                let fx = fixture();
                run_trace(&fx.trace, &fx.estimates, &cfg, RunOptions::default()).len()
            })
        });
    }
    g.finish();
}

fn bench_adaptivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_adaptivity");
    for (name, adaptive) in [("static", false), ("adaptive_algorithm1", true)] {
        let cfg = PolicyConfig::formula3().with_adaptivity(adaptive);
        println!(
            "[quality] {name} under flips: mean WPR = {:.4}",
            quality(&cfg, true)
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                let fx = fixture();
                run_trace(
                    &fx.flip_trace,
                    &fx.flip_estimates,
                    &cfg,
                    RunOptions::default(),
                )
                .len()
            })
        });
    }
    g.finish();
}

fn bench_policy_quality(c: &mut Criterion) {
    // Formula (3) vs Young vs Daly vs none on the same workload (the
    // headline, as an always-printed quality ablation).
    let mut g = c.benchmark_group("ablation_policy");
    for (name, cfg) in [
        ("formula3", PolicyConfig::formula3()),
        ("young", PolicyConfig::young()),
        ("daly", PolicyConfig::daly()),
        ("no_checkpointing", PolicyConfig::none()),
    ] {
        println!(
            "[quality] policy={name}: mean WPR = {:.4}",
            quality(&cfg, false)
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                let fx = fixture();
                run_trace(&fx.trace, &fx.estimates, &cfg, RunOptions::default()).len()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_policy_quality, bench_estimator_granularity, bench_storage_choice, bench_adaptivity
}
criterion_main!(benches);
