//! Criterion benches of the end-to-end machinery: trace generation,
//! history extraction, and parallel trace replay (1 thread vs all cores —
//! the runner's crossbeam scaling).

use ckpt_sim::policy::{Estimates, PolicyConfig};
use ckpt_sim::runner::{run_trace, RunOptions};
use ckpt_trace::gen::generate;
use ckpt_trace::spec::WorkloadSpec;
use ckpt_trace::stats::trace_histories;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

fn bench_generation(c: &mut Criterion) {
    let spec = WorkloadSpec::google_like(2000);
    let mut g = c.benchmark_group("trace_generation");
    g.bench_function("generate_2k_jobs", |b| {
        b.iter(|| generate(&spec, black_box(7)))
    });
    let trace = generate(&spec, 7).expect("valid workload spec");
    g.bench_function("histories_2k_jobs", |b| b.iter(|| trace_histories(&trace)));
    let records = trace_histories(&trace);
    g.bench_function("estimates_from_records", |b| {
        b.iter(|| Estimates::from_records(black_box(&records)))
    });
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let spec = WorkloadSpec::google_like(1000);
    let trace = generate(&spec, 11).expect("valid workload spec");
    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let cfg = PolicyConfig::formula3();
    let mut g = c.benchmark_group("trace_replay_1k_jobs");
    g.bench_function("one_thread", |b| {
        b.iter(|| run_trace(&trace, &estimates, &cfg, RunOptions { threads: 1 }))
    });
    g.bench_function("all_cores", |b| {
        b.iter(|| run_trace(&trace, &estimates, &cfg, RunOptions { threads: 0 }))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_generation, bench_replay
}
criterion_main!(benches);
