//! Criterion benches of the sweep engine: grid expansion, cell evaluation
//! throughput (cells/sec) for the replay and analytic engines, the run-key
//! cache's amortization of filter-only grids, the cluster-DES
//! throughput benchmark (events/sec on the stress-fleet workload), which
//! records its measurement in `BENCH_des.json` at the repo root, and the
//! fast-path sweep throughput benchmark (cells/sec on the
//! `policy_x_ckpt_cost` acceptance grid), which records `BENCH_sweep.json`
//! the same way.
//!
//! `CKPT_BENCH_ONLY=<substring>` restricts a run to matching bench groups
//! (the CI smoke uses `CKPT_BENCH_ONLY=sweep_throughput`).

use ckpt_faults::{FaultPlan, FaultState};
use ckpt_obs::{Counter, Counters, Observer, Telemetry};
use ckpt_scenario::{
    run_sweep, run_sweep_checkpointed, run_sweep_guarded, run_sweep_telemetry, CheckpointConfig,
    FaultPolicy, SweepOptions, SweepSpec,
};
use ckpt_sim::cluster::{ClusterConfig, ClusterSim, SimBudget};
use ckpt_sim::policy::{Estimates, PolicyConfig};
use ckpt_sim::shard::ShardedClusterSim;
use ckpt_stats::rng::Xoshiro256StarStar;
use ckpt_trace::failure::{sample_task_plan, FailureModelSpec, FailureProcess};
use ckpt_trace::gen::generate;
use ckpt_trace::spec::WorkloadSpec;
use ckpt_trace::stats::trace_histories;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

/// `CKPT_BENCH_ONLY=<substring>` gate: lets CI smoke one group without
/// paying for the whole file (the criterion shim has no CLI filter).
fn bench_enabled(group: &str) -> bool {
    match std::env::var("CKPT_BENCH_ONLY") {
        Ok(only) if !only.is_empty() => group.contains(&only),
        _ => true,
    }
}

const REPLAY_GRID: &str = r#"
    [sweep]
    name = "bench_replay"
    engine = "fast"
    seed = 7
    jobs = 200

    [axes]
    policy = ["formula3", "young", "daly", "none"]
    ckpt_cost_scale = [0.5, 1.0, 2.0]
"#;

const FILTER_GRID: &str = r#"
    [sweep]
    name = "bench_filters"
    engine = "fast"
    seed = 7
    jobs = 200
    sample = "all"

    [axes]
    structure = ["ST", "BoT"]
    priority = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]
"#;

const ANALYTIC_GRID: &str = r#"
    [sweep]
    name = "bench_analytic"
    engine = "ckpt-cost"

    [axes]
    device = ["ramdisk", "nfs", "dmnfs"]
    mem_mb = [10, 20, 40, 80, 160, 240]
    n_checkpoints = { from = 1, to = 10, steps = 10 }
"#;

const CONTENTION_GRID: &str = r#"
    [sweep]
    name = "bench_contention"
    engine = "contention"
    seed = 7
    mem_mb = 160
    reps = 25

    [axes]
    device = ["ramdisk", "nfs"]
    degree = { from = 1, to = 5, steps = 5 }
"#;

fn bench_expansion(c: &mut Criterion) {
    if !bench_enabled("sweep_expansion") {
        return;
    }
    let sweep = SweepSpec::from_str(ANALYTIC_GRID).expect("spec parses");
    let mut g = c.benchmark_group("sweep_expansion");
    g.bench_function("parse_spec", |b| {
        b.iter(|| SweepSpec::from_str(black_box(ANALYTIC_GRID)).unwrap())
    });
    g.bench_function("expand_180_cells", |b| b.iter(|| sweep.cells().unwrap()));
    g.finish();
}

fn bench_cells_per_sec(c: &mut Criterion) {
    if !bench_enabled("sweep_cells_per_sec") {
        return;
    }
    let mut g = c.benchmark_group("sweep_cells_per_sec");
    for (label, spec_text) in [
        ("replay_12cells_200jobs", REPLAY_GRID),
        ("filter_24cells_one_replay", FILTER_GRID),
        ("analytic_180cells", ANALYTIC_GRID),
        ("contention_10cells", CONTENTION_GRID),
    ] {
        let sweep = SweepSpec::from_str(spec_text).expect("spec parses");
        g.bench_function(label, |b| {
            b.iter(|| run_sweep(black_box(&sweep), SweepOptions::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    if !bench_enabled("sweep_thread_scaling") {
        return;
    }
    let sweep = SweepSpec::from_str(REPLAY_GRID).expect("spec parses");
    let mut g = c.benchmark_group("sweep_thread_scaling");
    g.bench_function("one_thread", |b| {
        b.iter(|| run_sweep(&sweep, SweepOptions { threads: 1 }).unwrap())
    });
    g.bench_function("all_cores", |b| {
        b.iter(|| run_sweep(&sweep, SweepOptions { threads: 0 }).unwrap())
    });
    g.finish();
}

/// The stress-fleet bench workload: `specs/stress_fleet.toml`'s cluster
/// shape (128 hosts × 8 VMs, host MTBF 2 h, saturating arrivals) at a
/// bench-sized job count. `CKPT_DES_BENCH_JOBS` overrides the size.
fn des_bench_setup(jobs: usize) -> (ckpt_trace::gen::Trace, Estimates, ClusterConfig) {
    let mut spec = WorkloadSpec::google_like(jobs);
    spec.mean_interarrival_s = 2.0;
    spec.long_task_fraction = 0.0;
    let trace = generate(&spec, 20130217).expect("valid workload spec");
    let records = trace_histories(&trace);
    let estimates = Estimates::from_records(&records);
    let cfg = ClusterConfig {
        n_hosts: 128,
        vms_per_host: 8,
        host_mem_mb: 8.0 * 1024.0,
        storage_rate: 1.0,
        host_mtbf_s: Some(7_200.0),
        ..ClusterConfig::default()
    };
    (trace, estimates, cfg)
}

/// One timed end-to-end run (engine construction + event loop, the span a
/// user pays for): returns `(events, tasks, wall seconds)`.
fn des_measure(jobs: usize) -> (u64, usize, f64) {
    let (trace, estimates, cfg) = des_bench_setup(jobs);
    let tasks = trace.task_count();
    let t0 = std::time::Instant::now();
    let result = ClusterSim::new(cfg, &trace, &estimates, PolicyConfig::formula3()).run();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(result.tasks_done, tasks, "stress bench must complete");
    (result.events, tasks, wall)
}

/// One timed end-to-end sharded run of the same workload: the host fleet
/// split into `shards` groups advancing in parallel on `threads` workers
/// through conservative time windows. Returns `(events, wall seconds)`.
fn des_measure_sharded(jobs: usize, shards: usize, threads: usize) -> (u64, f64) {
    let (trace, estimates, cfg) = des_bench_setup(jobs);
    let tasks = trace.task_count();
    let t0 = std::time::Instant::now();
    let result = ShardedClusterSim::new(cfg, &trace, &estimates, PolicyConfig::formula3(), shards)
        .with_threads(threads)
        .run()
        .expect("sharded stress bench runs");
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        result.tasks_done, tasks,
        "sharded stress bench must complete"
    );
    (result.events, wall)
}

/// DES throughput on the stress-fleet workload, recorded in
/// `BENCH_des.json` next to the measured pre-rewrite baseline (same
/// workload, same machine class, captured before the TaskStore/FastQueue
/// engine landed). The acceptance bar for the rewrite was ≥ 5× events/sec
/// over that baseline. A `sharded` leg runs the same workload through
/// [`ShardedClusterSim`] (host-group shards over conservative time
/// windows) and records its wall, rate, and shard counters alongside the
/// thread count it ran with.
fn bench_des_throughput(c: &mut Criterion) {
    if !bench_enabled("des_throughput") {
        return;
    }
    // Criterion samples a smaller instance so iteration stays snappy...
    let (trace, estimates, cfg) = des_bench_setup(3_000);
    let mut g = c.benchmark_group("des_throughput");
    g.bench_function("cluster_3k_jobs_stress_shape", |b| {
        b.iter(|| {
            ClusterSim::new(cfg, black_box(&trace), &estimates, PolicyConfig::formula3()).run()
        })
    });
    g.finish();

    // ...and the recorded measurement runs the full stress-bench size once.
    // `BENCH_des.json` is only (re)written when CKPT_DES_BENCH_RECORD=1 —
    // the checked-in file is a point-in-time record against the pre-rewrite
    // baseline on one machine class, and a casual `cargo bench` on another
    // machine must not silently clobber it. Without the flag, a smaller
    // instance is measured and printed for orientation only.
    let record = std::env::var("CKPT_DES_BENCH_RECORD").is_ok_and(|v| v == "1");
    let jobs: usize = std::env::var("CKPT_DES_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if record { 30_000 } else { 3_000 });
    let (events, tasks, wall) = des_measure(jobs);
    let events_per_sec = events as f64 / wall;
    // Telemetry counters from an observed, *untimed* run of the same
    // workload: deterministic, so they describe exactly the run measured
    // above without a counting observer in the timed path.
    let (trace, estimates, cfg) = des_bench_setup(jobs);
    let (_, _, counters) = ClusterSim::new(cfg, &trace, &estimates, PolicyConfig::formula3())
        .with_observer(Counters::new())
        .run_observed(SimBudget::UNLIMITED, |_| {});
    assert_eq!(counters.get(Counter::EventsPopped), events);
    counters
        .verify_invariants(true)
        .expect("counter identities");

    // Sharded leg: the same workload with the host fleet partitioned into
    // contiguous host-group shards advancing in parallel through
    // conservative time windows. The design target is >= 4x wall over the
    // single-engine run at shards = threads = cores; the record keeps the
    // thread count alongside the numbers so a capture on a small machine
    // reads as what it is.
    let shard_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let shards = shard_threads.max(4);
    let (sharded_events, sharded_wall) = des_measure_sharded(jobs, shards, shard_threads);
    let sharded_rate = sharded_events as f64 / sharded_wall;
    let sharded_speedup = wall / sharded_wall;
    // Shard counters from an observed, untimed run (deterministic, so
    // they describe exactly the run measured above).
    let (trace, estimates, cfg) = des_bench_setup(jobs);
    let (sharded_result, sharded_counters) =
        ShardedClusterSim::new(cfg, &trace, &estimates, PolicyConfig::formula3(), shards)
            .with_threads(shard_threads)
            .run_observed::<Counters>(|_| {})
            .expect("observed sharded run");
    assert_eq!(sharded_result.events, sharded_events);
    sharded_counters
        .verify_shard_invariants(shards as u64, sharded_events)
        .expect("sharded counter identities");
    let shard_windows = sharded_counters.get(Counter::ShardWindows);
    let shard_merges = sharded_counters.get(Counter::ShardMerges);

    // Pre-rewrite engine on this exact workload (jobs=30000, tasks=128619):
    // 11_420_570 events in 30.49 s end-to-end.
    let (base_events, base_wall) = (11_420_570u64, 30.49f64);
    let base_rate = base_events as f64 / base_wall;
    let json = format!(
        "{{\n  \"bench\": \"des_throughput\",\n  \"workload\": {{\n    \"spec_shape\": \"specs/stress_fleet.toml\",\n    \"jobs\": {jobs},\n    \"tasks\": {tasks},\n    \"seed\": 20130217\n  }},\n  \"engine\": {{\n    \"events\": {events},\n    \"wall_s\": {wall:.3},\n    \"events_per_sec\": {events_per_sec:.0}\n  }},\n  \"counters\": {{\n    \"events_popped\": {},\n    \"task_kills\": {},\n    \"host_failures\": {},\n    \"checkpoints_written\": {},\n    \"heap_peak\": {}\n  }},\n  \"sharded\": {{\n    \"shards\": {shards},\n    \"threads\": {shard_threads},\n    \"events\": {sharded_events},\n    \"wall_s\": {sharded_wall:.3},\n    \"events_per_sec\": {sharded_rate:.0},\n    \"speedup_wall_vs_unsharded\": {sharded_speedup:.2},\n    \"shard_windows\": {shard_windows},\n    \"shard_merges\": {shard_merges},\n    \"note\": \"host fleet split into contiguous shard groups advancing through conservative time windows; results depend on the shard count, never the thread count. The >= 4x wall target applies at shards = threads = cores; this record was captured with threads = {shard_threads}.\"\n  }},\n  \"baseline_pre_rewrite\": {{\n    \"events\": {base_events},\n    \"wall_s\": {base_wall:.3},\n    \"events_per_sec\": {base_rate:.0},\n    \"note\": \"engine before the TaskStore/FastQueue rewrite, same workload and machine class\"\n  }},\n  \"speedup_events_per_sec\": {:.2},\n  \"speedup_wall\": {:.2}\n}}\n",
        counters.get(Counter::EventsPopped),
        counters.get(Counter::TaskKills),
        counters.get(Counter::HostFailures),
        counters.get(Counter::CheckpointsWritten),
        counters.get(Counter::HeapPeak),
        events_per_sec / base_rate,
        base_wall / wall,
    );
    if record {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
        std::fs::write(path, &json).expect("write BENCH_des.json");
    }
    println!(
        "des_throughput: {jobs} jobs / {tasks} tasks -> {events} events in {wall:.3}s \
         ({events_per_sec:.0} ev/s; recorded 30k-job baseline ratio only applies at \
         the recorded size); sharded x{shards} on {shard_threads} thread(s): \
         {sharded_wall:.3}s ({sharded_rate:.0} ev/s, {sharded_speedup:.2}x wall){}",
        if record {
            " — BENCH_des.json updated"
        } else {
            " — set CKPT_DES_BENCH_RECORD=1 to re-record BENCH_des.json"
        }
    );
}

/// Failure-model sampler throughput: draws/sec per inter-failure law, and
/// task-plans/sec through `sample_task_plan` — so a regression in the
/// hazard layer's cost (which sits on the trace-prep hot path of every
/// sweep cell) shows up in the perf trajectory alongside the DES numbers.
fn bench_failure_samplers(c: &mut Criterion) {
    if !bench_enabled("failure_sampler_throughput") {
        return;
    }
    let models: [(&str, FailureModelSpec); 5] = [
        ("exponential", FailureModelSpec::Exponential),
        (
            "weibull",
            FailureModelSpec::Weibull {
                shape: 0.7,
                scale: 1.0,
            },
        ),
        (
            "lognormal",
            FailureModelSpec::LogNormal {
                sigma: 1.0,
                scale: 1.0,
            },
        ),
        (
            "pareto",
            FailureModelSpec::Pareto {
                shape: 1.5,
                scale: 1.0,
            },
        ),
        ("trace", FailureModelSpec::TraceReplay { scale: 1.0 }),
    ];

    let mut g = c.benchmark_group("failure_sampler_throughput");
    for (label, model) in models {
        g.bench_function(&format!("intervals_10k_{label}"), |b| {
            let process = model.process(500.0);
            b.iter(|| {
                let mut rng = Xoshiro256StarStar::new(7);
                let mut acc = 0.0;
                for _ in 0..10_000 {
                    acc += process.sample_interval(&mut rng);
                }
                black_box(acc)
            })
        });
        g.bench_function(&format!("task_plans_1k_{label}"), |b| {
            b.iter(|| {
                let mut rng = Xoshiro256StarStar::new(11);
                let mut kills = 0u32;
                for _ in 0..1_000 {
                    kills += sample_task_plan(black_box(model), 2, 800.0, &mut rng).count();
                }
                black_box(kills)
            })
        });
    }
    g.finish();
}

/// The `policy_x_ckpt_cost` acceptance grid, verbatim — the sweep the
/// fast-path rewrite (plan arena + allocation-free replay) was measured
/// against.
const ACCEPTANCE_GRID: &str = include_str!("../../../specs/policy_x_ckpt_cost.toml");

/// Fast-path sweep throughput on the `policy_x_ckpt_cost` grid (24 cells,
/// 800 jobs, one shared trace), recorded in `BENCH_sweep.json` next to
/// the measured pre-rewrite baseline (same grid, same machine class,
/// captured before the plan-arena/allocation-free-replay rewrite landed).
/// The acceptance bar for the rewrite was ≥ 4× cells/sec over that
/// baseline. A second record times the `ext_hazard_robustness` experiment
/// end to end (registry run at its default scale), the sweep-backed
/// experiment the ISSUE named as the secondary workload. A third leg runs
/// the same grid with `--checkpoint-dir` persistence on, so the store's
/// overhead (bar: ≤ 5% cells/sec regression) is part of the record. A
/// fourth leg runs the grid in `metrics = "streaming"` mode against its
/// full-mode twin (both at `sample = "all"`, which streaming requires),
/// so the quantile-sketch fold's overhead (same ≤ 5% bar) is too. A
/// fifth leg re-runs the checkpointed grid through `run_sweep_guarded`
/// with a never-firing fault plan armed, pinning the fault-isolation
/// layer's guard overhead to the same ≤ 5% bar.
fn bench_sweep_throughput(c: &mut Criterion) {
    if !bench_enabled("sweep_throughput") {
        return;
    }
    let sweep = SweepSpec::from_str(ACCEPTANCE_GRID).expect("spec parses");
    let cells = sweep.grid_size();
    // Workload identity comes from the parsed spec, so an edited grid
    // can never be recorded under stale numbers.
    let (grid_jobs, grid_seed) = (sweep.base.jobs, sweep.base.seed);

    let mut g = c.benchmark_group("sweep_throughput");
    g.bench_function("policy_x_ckpt_cost_24cells", |b| {
        b.iter(|| run_sweep(black_box(&sweep), SweepOptions::default()).unwrap())
    });
    g.finish();

    // Recorded measurement: best-of-5 wall for the whole grid, plus the
    // hazard-robustness experiment end to end. `BENCH_sweep.json` is only
    // (re)written when CKPT_SWEEP_BENCH_RECORD=1 — the checked-in file is
    // a point-in-time record against the pre-rewrite baseline on one
    // machine class, and a casual `cargo bench` on another machine must
    // not silently clobber it.
    let record = std::env::var("CKPT_SWEEP_BENCH_RECORD").is_ok_and(|v| v == "1");
    // One unmeasured warmup run first: the opening iteration pays one-off
    // costs (directory creation for the checkpoint store, cold allocator
    // arenas, page cache) that belong to setup, not the steady-state
    // throughput the bars are written against. Without it the checkpointed
    // leg's first run once dragged the record over its 5% bar.
    let best_of = |runs: usize, f: &dyn Fn()| -> f64 {
        f();
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let t0 = std::time::Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let sweep_wall = best_of(5, &|| {
        let r = run_sweep(&sweep, SweepOptions::default()).unwrap();
        assert_eq!(r.cells.len(), cells);
    });
    let cells_per_sec = cells as f64 / sweep_wall;

    // The same grid with `--checkpoint-dir` persistence on: every cell is
    // encoded, checksummed, and appended to the store as it completes.
    // Each iteration recreates the store (resume = false truncates), so
    // the measured span is the full write path, not an all-skipped replay.
    // The acceptance bar for the checkpoint subsystem is ≤ 5% cells/sec
    // regression versus the unpersisted run above.
    let ckpt_dir = std::env::temp_dir().join(format!("ckpt_sweep_bench_{}", std::process::id()));
    let ckpt_config = CheckpointConfig {
        dir: ckpt_dir.clone(),
        resume: false,
        crash_after_cells: None,
    };
    let ckpt_wall = best_of(5, &|| {
        let (r, _) =
            run_sweep_checkpointed(&sweep, SweepOptions::default(), None, &ckpt_config).unwrap();
        assert_eq!(r.cells.len(), cells);
    });
    std::fs::remove_dir_all(&ckpt_dir).ok();
    let ckpt_cells_per_sec = cells as f64 / ckpt_wall;
    let ckpt_overhead_pct = (ckpt_wall / sweep_wall - 1.0) * 100.0;

    // The same checkpointed grid through the fault-isolation layer with a
    // parsed-but-never-firing plan armed: every cell pays the guard
    // (catch_unwind, per-cell fault lookup, write-ordinal ticks) without
    // any fault actually firing — the overhead a cautious operator pays
    // for always running with `--inject` ready. Same ≤ 5% bar, measured
    // against the checkpointed leg it wraps.
    let fault_dir = std::env::temp_dir().join(format!("fault_sweep_bench_{}", std::process::id()));
    let fault_config = CheckpointConfig {
        dir: fault_dir.clone(),
        resume: false,
        crash_after_cells: None,
    };
    let plan =
        FaultPlan::parse("panic@cell=999999; io_error@write=999999999").expect("bench plan parses");
    let fault_wall = best_of(5, &|| {
        let policy = FaultPolicy {
            faults: std::sync::Arc::new(FaultState::new(plan.clone())),
            strict: false,
        };
        let (r, _) = run_sweep_guarded(
            &sweep,
            SweepOptions::default(),
            None,
            Some(&fault_config),
            &policy,
        )
        .unwrap();
        assert_eq!(r.cells.len(), cells);
        assert!(!r.health.degraded());
    });
    std::fs::remove_dir_all(&fault_dir).ok();
    let fault_cells_per_sec = cells as f64 / fault_wall;
    let fault_overhead_pct = (fault_wall / ckpt_wall - 1.0) * 100.0;

    // The same grid in streaming-metrics mode versus its full-mode twin,
    // both at `sample = "all"` (streaming requires the pass-through
    // filter settings, and the twin keeps the comparison apples-to-
    // apples): the quantile-sketch fold must cost ≤ 5% cells/sec versus
    // materializing and sorting the full record vectors.
    let mut full_all = sweep.clone();
    full_all.base.sample = ckpt_scenario::SampleFilter::All;
    let mut streaming = full_all.clone();
    streaming.base.metrics = ckpt_scenario::spec::MetricsChoice::Streaming;
    let full_all_wall = best_of(5, &|| {
        let r = run_sweep(&full_all, SweepOptions::default()).unwrap();
        assert_eq!(r.cells.len(), cells);
    });
    let stream_wall = best_of(5, &|| {
        let r = run_sweep(&streaming, SweepOptions::default()).unwrap();
        assert_eq!(r.cells.len(), cells);
    });
    let stream_cells_per_sec = cells as f64 / stream_wall;
    let stream_overhead_pct = (stream_wall / full_all_wall - 1.0) * 100.0;

    // The bars are acceptance criteria, not commentary: a breach fails the
    // bench loudly instead of quietly recording a number that reads as a
    // regression. (Checked on every run; a recording run must never
    // persist a breach.)
    for (leg, overhead_pct, bar_pct) in [
        ("checkpointed", ckpt_overhead_pct, 5.0),
        ("fault_layer", fault_overhead_pct, 5.0),
        ("streaming", stream_overhead_pct, 5.0),
    ] {
        assert!(
            overhead_pct <= bar_pct,
            "sweep_throughput: {leg} leg breaches its bar: \
             {overhead_pct:.2}% overhead > {bar_pct:.1}% allowed"
        );
    }

    // Telemetry counters from an observed, *untimed* pass over the same
    // grid: deterministic, so they describe the measured workload without
    // putting a counting observer in the timed path.
    let telemetry = Telemetry::new();
    run_sweep_telemetry(&sweep, SweepOptions::default(), Some(&telemetry)).unwrap();
    let counters = telemetry.counters.snapshot();
    assert_eq!(counters.get(Counter::CellsEvaluated), cells as u64);
    counters
        .verify_invariants(true)
        .expect("counter identities");

    let hazard = ckpt_bench::registry::find("ext_hazard_robustness").expect("registered");
    let ctx = ckpt_report::RunContext::new(hazard.default_scale());
    let hazard_wall = best_of(3, &|| {
        hazard.run(&ctx).expect("hazard experiment runs");
    });

    // Pre-rewrite fast path on this exact grid and machine class:
    // 24 cells in 0.5651 s (42.5 cells/s); ext_hazard_robustness in
    // 0.488 s end to end.
    let (base_wall, base_hazard_wall) = (0.5651f64, 0.488f64);
    let base_rate = cells as f64 / base_wall;
    let json = format!(
        "{{\n  \"bench\": \"sweep_throughput\",\n  \"grid\": {{\n    \"spec\": \"specs/policy_x_ckpt_cost.toml\",\n    \"cells\": {cells},\n    \"jobs\": {grid_jobs},\n    \"seed\": {grid_seed}\n  }},\n  \"engine\": {{\n    \"wall_s\": {sweep_wall:.4},\n    \"cells_per_sec\": {cells_per_sec:.1}\n  }},\n  \"checkpointed\": {{\n    \"wall_s\": {ckpt_wall:.4},\n    \"cells_per_sec\": {ckpt_cells_per_sec:.1},\n    \"overhead_pct\": {ckpt_overhead_pct:.2},\n    \"note\": \"same grid with --checkpoint-dir persistence on (store recreated per run); bar is <= 5% cells/sec regression\"\n  }},\n  \"fault_layer\": {{\n    \"wall_s\": {fault_wall:.4},\n    \"cells_per_sec\": {fault_cells_per_sec:.1},\n    \"overhead_pct\": {fault_overhead_pct:.2},\n    \"note\": \"same checkpointed grid through run_sweep_guarded with a parsed-but-never-firing --inject plan armed (catch_unwind + fault lookups on every cell); bar is <= 5% cells/sec regression vs the checkpointed leg\"\n  }},\n  \"streaming\": {{\n    \"wall_s\": {stream_wall:.4},\n    \"cells_per_sec\": {stream_cells_per_sec:.1},\n    \"full_mode_wall_s\": {full_all_wall:.4},\n    \"overhead_pct\": {stream_overhead_pct:.2},\n    \"note\": \"same grid at metrics=streaming vs its full-mode twin, both at sample=all; sketch-backed p50/p99, bar is <= 5% cells/sec regression\"\n  }},\n  \"counters\": {{\n    \"cells_evaluated\": {},\n    \"jobs_replayed\": {},\n    \"tasks_replayed\": {},\n    \"checkpoints_written\": {},\n    \"plan_lookups\": {},\n    \"arena_hits\": {}\n  }},\n  \"baseline_pre_rewrite\": {{\n    \"wall_s\": {base_wall:.4},\n    \"cells_per_sec\": {base_rate:.1},\n    \"note\": \"fast path before the plan-arena/allocation-free-replay rewrite, same grid and machine class\"\n  }},\n  \"speedup_cells_per_sec\": {:.2},\n  \"ext_hazard_robustness\": {{\n    \"wall_s\": {hazard_wall:.4},\n    \"baseline_wall_s\": {base_hazard_wall:.4},\n    \"speedup_wall\": {:.2}\n  }}\n}}\n",
        counters.get(Counter::CellsEvaluated),
        counters.get(Counter::JobsReplayed),
        counters.get(Counter::TasksReplayed),
        counters.get(Counter::CheckpointsWritten),
        counters.get(Counter::PlanLookups),
        counters.get(Counter::ArenaHits),
        cells_per_sec / base_rate,
        base_hazard_wall / hazard_wall,
    );
    if record {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
        std::fs::write(path, &json).expect("write BENCH_sweep.json");
    }
    println!(
        "sweep_throughput: {cells} cells in {sweep_wall:.4}s ({cells_per_sec:.1} cells/s; \
         {:.2}x the recorded pre-rewrite baseline); checkpointed {ckpt_wall:.4}s \
         ({ckpt_overhead_pct:+.2}% overhead); fault layer {fault_wall:.4}s \
         ({fault_overhead_pct:+.2}% vs checkpointed); streaming {stream_wall:.4}s \
         ({stream_overhead_pct:+.2}% vs full at sample=all); \
         ext_hazard_robustness {hazard_wall:.4}s{}",
        cells_per_sec / base_rate,
        if record {
            " — BENCH_sweep.json updated"
        } else {
            " — set CKPT_SWEEP_BENCH_RECORD=1 to re-record BENCH_sweep.json"
        }
    );
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_expansion, bench_cells_per_sec, bench_scaling, bench_des_throughput,
        bench_failure_samplers, bench_sweep_throughput
}
criterion_main!(benches);
