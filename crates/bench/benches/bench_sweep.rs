//! Criterion benches of the sweep engine: grid expansion, cell evaluation
//! throughput (cells/sec) for the replay and analytic engines, and the
//! run-key cache's amortization of filter-only grids — the hot path later
//! PRs will track.

use ckpt_scenario::{run_sweep, SweepOptions, SweepSpec};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
}

const REPLAY_GRID: &str = r#"
    [sweep]
    name = "bench_replay"
    engine = "fast"
    seed = 7
    jobs = 200

    [axes]
    policy = ["formula3", "young", "daly", "none"]
    ckpt_cost_scale = [0.5, 1.0, 2.0]
"#;

const FILTER_GRID: &str = r#"
    [sweep]
    name = "bench_filters"
    engine = "fast"
    seed = 7
    jobs = 200
    sample = "all"

    [axes]
    structure = ["ST", "BoT"]
    priority = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]
"#;

const ANALYTIC_GRID: &str = r#"
    [sweep]
    name = "bench_analytic"
    engine = "ckpt-cost"

    [axes]
    device = ["ramdisk", "nfs", "dmnfs"]
    mem_mb = [10, 20, 40, 80, 160, 240]
    n_checkpoints = { from = 1, to = 10, steps = 10 }
"#;

const CONTENTION_GRID: &str = r#"
    [sweep]
    name = "bench_contention"
    engine = "contention"
    seed = 7
    mem_mb = 160
    reps = 25

    [axes]
    device = ["ramdisk", "nfs"]
    degree = { from = 1, to = 5, steps = 5 }
"#;

fn bench_expansion(c: &mut Criterion) {
    let sweep = SweepSpec::from_str(ANALYTIC_GRID).expect("spec parses");
    let mut g = c.benchmark_group("sweep_expansion");
    g.bench_function("parse_spec", |b| {
        b.iter(|| SweepSpec::from_str(black_box(ANALYTIC_GRID)).unwrap())
    });
    g.bench_function("expand_180_cells", |b| b.iter(|| sweep.cells().unwrap()));
    g.finish();
}

fn bench_cells_per_sec(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep_cells_per_sec");
    for (label, spec_text) in [
        ("replay_12cells_200jobs", REPLAY_GRID),
        ("filter_24cells_one_replay", FILTER_GRID),
        ("analytic_180cells", ANALYTIC_GRID),
        ("contention_10cells", CONTENTION_GRID),
    ] {
        let sweep = SweepSpec::from_str(spec_text).expect("spec parses");
        g.bench_function(label, |b| {
            b.iter(|| run_sweep(black_box(&sweep), SweepOptions::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let sweep = SweepSpec::from_str(REPLAY_GRID).expect("spec parses");
    let mut g = c.benchmark_group("sweep_thread_scaling");
    g.bench_function("one_thread", |b| {
        b.iter(|| run_sweep(&sweep, SweepOptions { threads: 1 }).unwrap())
    });
    g.bench_function("all_cores", |b| {
        b.iter(|| run_sweep(&sweep, SweepOptions { threads: 0 }).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_expansion, bench_cells_per_sec, bench_scaling
}
criterion_main!(benches);
