//! The output sink: one place that decides how frames reach stdout and
//! disk, shared by the experiment registry and the CLI.

use crate::frame::{ExpOutput, Frame};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Rendering format for frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Aligned text tables with title banners (human-facing default).
    Table,
    /// RFC-4180 CSV, one document per frame.
    Csv,
    /// One self-describing JSON document for the whole output.
    Json,
}

impl Format {
    /// Parse a format name. Unknown values are an error naming the
    /// accepted set.
    pub fn parse(s: &str) -> Result<Format, String> {
        match s {
            "table" => Ok(Format::Table),
            "csv" => Ok(Format::Csv),
            "json" => Ok(Format::Json),
            other => Err(format!(
                "unknown format {other:?} (accepted values: table, csv, json)"
            )),
        }
    }

    /// Lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            Format::Table => "table",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }

    /// File extension for per-frame files.
    pub fn extension(&self) -> &'static str {
        match self {
            Format::Table => "txt",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }
}

/// Where rendered frames go: a stdout format plus an optional directory
/// that receives one file per frame.
#[derive(Debug, Clone)]
pub struct Sink {
    /// Format used on the stream passed to [`Sink::emit_to`].
    pub format: Format,
    /// When set, every frame is also written to `<dir>/<name>.<ext>`.
    pub dir: Option<PathBuf>,
    /// Format used for the per-frame files (legacy experiment binaries
    /// print tables but persist CSV).
    pub file_format: Format,
    /// Suppress stream output entirely (file-only mode).
    pub quiet: bool,
}

impl Sink {
    /// Human-facing default: tables on stdout, CSV files when a directory
    /// is attached.
    pub fn table() -> Self {
        Self {
            format: Format::Table,
            dir: None,
            file_format: Format::Csv,
            quiet: false,
        }
    }

    /// A sink rendering `format` both on the stream and in files.
    pub fn new(format: Format) -> Self {
        Self {
            format,
            dir: None,
            file_format: format,
            quiet: false,
        }
    }

    /// Attach an output directory (one file per frame).
    pub fn with_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// Override the per-frame file format.
    pub fn with_file_format(mut self, format: Format) -> Self {
        self.file_format = format;
        self
    }

    /// Suppress stream output.
    pub fn silent(mut self) -> Self {
        self.quiet = true;
        self
    }

    fn render(frame: &Frame, format: Format) -> String {
        match format {
            Format::Table => frame.to_table(),
            Format::Csv => frame.to_csv(),
            Format::Json => frame.to_json(),
        }
    }

    /// Emit an output: render frames (and notes) onto `w` and, when a
    /// directory is attached, write one file per frame. Returns the file
    /// paths written.
    pub fn emit_to(&self, output: &ExpOutput, w: &mut dyn Write) -> std::io::Result<Vec<PathBuf>> {
        if !self.quiet {
            match self.format {
                Format::Json => {
                    // One document for the whole output, notes included.
                    w.write_all(output.to_json().as_bytes())?;
                }
                Format::Table => {
                    for frame in &output.frames {
                        w.write_all(frame.to_table().as_bytes())?;
                    }
                    for note in &output.notes {
                        writeln!(w, "\n{note}")?;
                    }
                }
                Format::Csv => {
                    for frame in &output.frames {
                        writeln!(w, "# frame: {}", frame.name)?;
                        w.write_all(frame.to_csv().as_bytes())?;
                    }
                }
            }
        }
        let mut paths = Vec::new();
        if let Some(dir) = &self.dir {
            std::fs::create_dir_all(dir)?;
            for frame in &output.frames {
                let path = dir.join(format!("{}.{}", frame.name, self.file_format.extension()));
                std::fs::write(&path, Self::render(frame, self.file_format))?;
                paths.push(path);
            }
        }
        Ok(paths)
    }

    /// [`Sink::emit_to`] onto real stdout.
    pub fn emit(&self, output: &ExpOutput) -> std::io::Result<Vec<PathBuf>> {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let paths = self.emit_to(output, &mut lock)?;
        lock.flush()?;
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn output() -> ExpOutput {
        let mut f = Frame::new("sink_test", vec!["k", "v"]);
        f.push_row(row!["a", 1.5]);
        let mut out = ExpOutput::new();
        out.push(f);
        out.note("done");
        out
    }

    #[test]
    fn table_stream_includes_notes() {
        let mut buf = Vec::new();
        Sink::table().emit_to(&output(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("=== sink_test ==="));
        assert!(s.contains("done"));
    }

    #[test]
    fn csv_stream_prefixes_frame_names() {
        let mut buf = Vec::new();
        Sink::new(Format::Csv).emit_to(&output(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("# frame: sink_test\n"));
        assert!(s.contains("k,v\na,1.5\n"));
    }

    #[test]
    fn files_land_in_dir_with_format_extension() {
        let dir = std::env::temp_dir().join(format!("ckpt_report_sink_{}", std::process::id()));
        let paths = Sink::new(Format::Json)
            .with_dir(&dir)
            .silent()
            .emit_to(&output(), &mut Vec::new())
            .unwrap();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].ends_with("sink_test.json"));
        let body = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(body.contains("\"columns\": [\"k\", \"v\"]"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn format_parse_rejects_unknown() {
        assert!(Format::parse("yaml")
            .unwrap_err()
            .contains("table, csv, json"));
        assert_eq!(Format::parse("json").unwrap(), Format::Json);
    }
}
