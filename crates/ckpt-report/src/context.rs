//! The run context every experiment and sweep consumes: seed, scale,
//! thread budget, output sink — with strict environment resolution.

use crate::sink::Sink;
use ckpt_obs::Telemetry;
use std::sync::Arc;

/// Default seed used by every experiment (override with `CKPT_SEED` or
/// `--seed`): the paper's submission date.
pub const DEFAULT_SEED: u64 = 20130217;

/// Experiment scale, controlling trace sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: quick sanity run (a few hundred jobs).
    Quick,
    /// The paper's one-day experiment (~10k jobs).
    Day,
    /// The paper's month-scale analysis (large; used by Table 6 / Fig 9-10).
    Month,
    /// Stress tier: beyond the paper — the regimes of the restart/checkpoint
    /// asymptotics literature (very long tasks, high failure rates, large
    /// fleets) that only the high-throughput DES core can reach.
    Stress,
}

impl Scale {
    /// Number of jobs at this scale.
    pub fn jobs(&self) -> usize {
        match self {
            Scale::Quick => 800,
            Scale::Day => 10_000,
            Scale::Month => 100_000,
            Scale::Stress => 400_000,
        }
    }

    /// Lowercase label (`quick` / `day` / `month` / `stress`).
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Day => "day",
            Scale::Month => "month",
            Scale::Stress => "stress",
        }
    }

    /// Parse a scale name. Unknown values are an error naming the
    /// accepted set.
    pub fn parse(s: &str) -> Result<Scale, String> {
        match s {
            "quick" => Ok(Scale::Quick),
            "day" => Ok(Scale::Day),
            "month" => Ok(Scale::Month),
            "stress" => Ok(Scale::Stress),
            other => Err(format!(
                "unknown scale {other:?} (accepted values: quick, day, month, stress)"
            )),
        }
    }

    /// Resolve from the `CKPT_SCALE` environment variable, defaulting to
    /// `default` when unset. An unrecognized value is a hard error (it
    /// would otherwise silently run the wrong experiment size).
    pub fn from_env(default: Scale) -> Result<Scale, String> {
        match std::env::var("CKPT_SCALE") {
            Err(std::env::VarError::NotPresent) => Ok(default),
            Err(std::env::VarError::NotUnicode(_)) => Err("CKPT_SCALE: value is not valid UTF-8 \
                     (accepted values: quick, day, month, stress)"
                .to_string()),
            Ok(v) => Scale::parse(&v).map_err(|e| format!("CKPT_SCALE: {e}")),
        }
    }
}

/// Seed from `CKPT_SEED`, or [`DEFAULT_SEED`] when unset. A value that is
/// not a `u64` is a hard error.
pub fn seed_from_env() -> Result<u64, String> {
    match std::env::var("CKPT_SEED") {
        Err(std::env::VarError::NotPresent) => Ok(DEFAULT_SEED),
        Err(std::env::VarError::NotUnicode(_)) => Err(
            "CKPT_SEED: value is not valid UTF-8 (expected an unsigned 64-bit seed)".to_string(),
        ),
        Ok(v) => v
            .parse()
            .map_err(|_| format!("CKPT_SEED: cannot parse {v:?} as an unsigned 64-bit seed")),
    }
}

/// Centralized execution context: one value carries everything an
/// experiment or sweep needs to run and report.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Base RNG seed (experiments derive their streams from it).
    pub seed: u64,
    /// Workload scale.
    pub scale: Scale,
    /// Worker-thread budget for parallel replays; 0 ⇒ one per core.
    pub threads: usize,
    /// Where rendered frames go.
    pub sink: Sink,
    /// Telemetry bundle (counters, timers, optional progress heartbeats).
    /// `None` — the default — means instrumentation compiles to nothing
    /// in the engines and outputs are byte-identical to an
    /// uninstrumented build.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Cluster shard count override (`--shards`). `None` leaves whatever
    /// the spec says; `Some(s)` forces every cluster replay under this
    /// context to partition its host fleet into `s` shards. Results
    /// depend on the shard count (it is part of the replay identity),
    /// never on the thread count.
    pub shards: Option<usize>,
}

impl RunContext {
    /// A context at the given scale with the default seed, automatic
    /// thread count, and a stdout table sink.
    pub fn new(scale: Scale) -> Self {
        Self {
            seed: DEFAULT_SEED,
            scale,
            threads: 0,
            sink: Sink::table(),
            telemetry: None,
            shards: None,
        }
    }

    /// Resolve scale and seed from the environment (`CKPT_SCALE`,
    /// `CKPT_SEED`), starting from the experiment's default scale.
    /// Unrecognized values are hard errors.
    pub fn from_env(default_scale: Scale) -> Result<Self, String> {
        Ok(Self {
            seed: seed_from_env()?,
            scale: Scale::from_env(default_scale)?,
            threads: 0,
            sink: Sink::table(),
            telemetry: None,
            shards: None,
        })
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the thread budget.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Override the output sink.
    pub fn with_sink(mut self, sink: Sink) -> Self {
        self.sink = sink;
        self
    }

    /// Attach a telemetry bundle; sweeps and experiments running under
    /// this context will count into it (and heartbeat, if it carries a
    /// progress sink).
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Override the cluster shard count for every cluster replay run
    /// under this context.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Derive an experiment-local seed: the shared base seed XOR a
    /// per-use salt (replaces the ad-hoc XOR constants the one-off
    /// binaries used to scatter).
    pub fn salted_seed(&self, salt: u64) -> u64 {
        self.seed ^ salt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_accepts_known_and_rejects_unknown() {
        assert_eq!(Scale::parse("quick").unwrap(), Scale::Quick);
        assert_eq!(Scale::parse("month").unwrap(), Scale::Month);
        let err = Scale::parse("huge").unwrap_err();
        assert!(err.contains("quick, day, month"), "{err}");
    }

    #[test]
    fn context_carries_overrides() {
        let ctx = RunContext::new(Scale::Quick).with_seed(7).with_threads(2);
        assert_eq!(ctx.seed, 7);
        assert_eq!(ctx.threads, 2);
        assert_eq!(ctx.salted_seed(0xFF), 7 ^ 0xFF);
    }

    #[test]
    fn scale_jobs_are_monotone() {
        assert!(Scale::Quick.jobs() < Scale::Day.jobs());
        assert!(Scale::Day.jobs() < Scale::Month.jobs());
        assert!(Scale::Month.jobs() < Scale::Stress.jobs());
    }

    #[test]
    fn stress_scale_parses_and_labels() {
        assert_eq!(Scale::parse("stress").unwrap(), Scale::Stress);
        assert_eq!(Scale::Stress.label(), "stress");
    }
}
