//! Telemetry exports: the deterministic counter [`Frame`] and the
//! non-deterministic timings JSON side-channel.
//!
//! The split is the whole point: counter totals are thread-invariant
//! simulation facts and render through the same deterministic frame
//! writer as every result table, while wall-clock phase timings are
//! machine facts and go to a separate `timings.json` that deliberately
//! shares nothing with the frame path.

use crate::frame::Frame;
use crate::value::Value;
use ckpt_obs::{Counters, Telemetry, Timers, ALL_PHASES};
use std::path::{Path, PathBuf};

/// Build the deterministic counter frame: one `(counter, value)` row per
/// catalog entry, in catalog order. Byte-identical across thread counts
/// for the same run inputs.
pub fn counters_frame(counters: &Counters) -> Frame {
    let mut frame = Frame::new("telemetry_counters", vec!["counter", "value"])
        .with_title("telemetry counters (deterministic)");
    for (c, v) in counters.entries() {
        frame.push_row(vec![Value::from(c.name()), Value::from(v)]);
    }
    frame
}

/// Render the wall-clock phase breakdown as a small JSON document —
/// non-deterministic by nature, so it never goes through [`Frame`].
pub fn timings_json(timers: &Timers) -> String {
    let snap = timers.snapshot();
    let mut out = String::from("{\n  \"phase_nanos\": {\n");
    for (i, p) in ALL_PHASES.into_iter().enumerate() {
        let nanos = snap.iter().find(|(q, _)| *q == p).map(|(_, n)| *n).unwrap();
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            p.name(),
            nanos,
            if i + 1 < ALL_PHASES.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Write a run's telemetry under `dir`: the counter frame as
/// `telemetry_counters.csv` + `telemetry_counters.json` (deterministic)
/// and the phase timings as `timings.json` (wall-clock). Returns the
/// written paths.
pub fn write_telemetry(
    telemetry: &Telemetry,
    dir: impl AsRef<Path>,
) -> std::io::Result<Vec<PathBuf>> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let frame = counters_frame(&telemetry.counters.snapshot());
    let csv_path = dir.join("telemetry_counters.csv");
    let json_path = dir.join("telemetry_counters.json");
    let timings_path = dir.join("timings.json");
    std::fs::write(&csv_path, frame.to_csv())?;
    std::fs::write(&json_path, frame.to_json())?;
    std::fs::write(&timings_path, timings_json(&telemetry.timers))?;
    Ok(vec![csv_path, json_path, timings_path])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_obs::{Counter, Observer};

    #[test]
    fn counter_frame_lists_catalog_in_order() {
        let mut c = Counters::new();
        c.incr(Counter::TaskKills, 7);
        let frame = counters_frame(&c);
        assert_eq!(frame.rows.len(), ckpt_obs::N_COUNTERS);
        let csv = frame.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "counter,value");
        assert!(csv.contains("task_kills,7"));
        assert!(csv.contains("events_popped,0"));
        // Catalog order: events_popped first.
        assert!(csv.find("events_popped").unwrap() < csv.find("task_kills").unwrap());
    }

    #[test]
    fn counter_frame_is_deterministic_bytes() {
        let mut a = Counters::new();
        a.incr(Counter::EventsPopped, 3);
        let mut b = Counters::new();
        b.incr(Counter::EventsPopped, 3);
        assert_eq!(counters_frame(&a).to_csv(), counters_frame(&b).to_csv());
        assert_eq!(counters_frame(&a).to_json(), counters_frame(&b).to_json());
    }

    #[test]
    fn timings_json_names_every_phase() {
        let t = Timers::new();
        t.add_nanos(ckpt_obs::Phase::Simulate, 123);
        let json = timings_json(&t);
        for p in ALL_PHASES {
            assert!(json.contains(&format!("\"{}\"", p.name())), "{json}");
        }
        assert!(json.contains("\"simulate\": 123"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn write_telemetry_creates_all_three_files() {
        let t = Telemetry::new();
        t.counters.add(Counter::CellsEvaluated, 4);
        let dir = std::env::temp_dir().join(format!("ckpt_report_tel_{}", std::process::id()));
        let paths = write_telemetry(&t, &dir).unwrap();
        assert_eq!(paths.len(), 3);
        t.counters.add(Counter::CellsSkipped, 20);
        t.counters.add(Counter::CellsResumed, 4);
        t.counters.add(Counter::CkptRecordsWritten, 4);
        let csv = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(csv.contains("cells_evaluated,4"));
        // The resume counters ride the same catalog-driven frame — no
        // separate plumbing to forget.
        let frame = counters_frame(&t.counters.snapshot());
        let csv = frame.to_csv();
        assert!(csv.contains("cells_skipped,20"), "{csv}");
        assert!(csv.contains("cells_resumed,4"), "{csv}");
        assert!(csv.contains("ckpt_records_written,4"), "{csv}");
        assert!(std::fs::read_to_string(&paths[2])
            .unwrap()
            .contains("phase_nanos"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
