//! # ckpt-report — shared experiment output frames and run context
//!
//! Every result in this workspace — a paper figure/table experiment, a
//! sweep grid, a CLI replay summary — is ultimately *tabular data with a
//! bit of metadata*. This crate gives all of them one representation and
//! one writer:
//!
//! * [`Frame`] — named columns + typed rows + `(key, value)` metadata,
//!   rendered by a single deterministic CSV / JSON / aligned-table
//!   implementation (shortest-roundtrip floats, RFC-4180 quoting, stable
//!   key order), so outputs are byte-identical across runs, platforms,
//!   and thread counts.
//! * [`ExpOutput`] — what one experiment produces: a list of frames plus
//!   free-text notes (the prose observations the paper prints under its
//!   figures).
//! * [`RunContext`] — the execution context every experiment and sweep
//!   consumes: seed, [`Scale`], thread budget, and an output [`Sink`].
//!   Environment resolution (`CKPT_SCALE`, `CKPT_SEED`) is strict:
//!   unrecognized values are hard errors naming the accepted set.
//! * [`Sink`] — where frames go: a stdout format ([`Format`]) and an
//!   optional directory for per-frame files.
//! * [`telemetry`] — the observability exports: `ckpt-obs` counter totals
//!   rendered as a deterministic [`Frame`], and wall-clock phase timings
//!   as a separate non-deterministic `timings.json`.
//!
//! `ckpt-scenario`'s sweep exports and `ckpt-bench`'s experiment registry
//! both build on these types, so a sweep cell and a standalone experiment
//! share one execution and export path.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod context;
pub mod frame;
pub mod sink;
pub mod telemetry;
pub mod value;

pub use context::{seed_from_env, RunContext, Scale, DEFAULT_SEED};
pub use frame::{ExpOutput, Frame};
pub use sink::{Format, Sink};
pub use telemetry::{counters_frame, timings_json, write_telemetry};
pub use value::{compact_f64, csv_field, fmt_f64, json_escape, json_num, Value};
