//! The structured output frame and the one shared renderer behind every
//! CSV file, JSON document, and stdout table in the workspace.

use crate::value::{csv_field, json_escape, Value};

/// A named table of results: columns, typed rows, and `(key, value)`
/// metadata. Frames are the unit of experiment output — one frame per
/// paper panel/series — and render deterministically to CSV, JSON, or an
/// aligned text table.
///
/// # Example
///
/// ```
/// use ckpt_report::{row, Frame};
///
/// let mut frame = Frame::new("wpr_by_policy", vec!["policy", "mean_wpr"])
///     .with_title("Mean WPR per policy")
///     .with_meta("seed", "20130217");
/// frame.push_row(row!["formula3", 0.945]);
/// frame.push_row(row!["young", 0.916]);
///
/// // Every rendering is deterministic; CSV is the most compact.
/// assert_eq!(
///     frame.to_csv(),
///     "policy,mean_wpr\nformula3,0.945\nyoung,0.916\n"
/// );
/// assert!(frame.to_table().contains("=== Mean WPR per policy ==="));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Machine name; used for output file names (`<name>.csv`).
    pub name: String,
    /// Human title; used as the table banner.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; every row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<Value>>,
    /// Ordered metadata (engine, seed, grid shape, paper reference, ...).
    pub metadata: Vec<(String, String)>,
}

impl Frame {
    /// Start a frame with the given name (also its initial title) and
    /// column headers.
    pub fn new<S: Into<String>>(name: &str, columns: Vec<S>) -> Self {
        Self {
            name: name.to_string(),
            title: name.to_string(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            metadata: Vec::new(),
        }
    }

    /// Set the human-readable title (table banner).
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// Append one metadata entry (insertion order is preserved in every
    /// rendering).
    pub fn with_meta(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metadata.push((key.into(), value.into()));
        self
    }

    /// Append one data row. Panics if the arity does not match the header
    /// (a programming error in the experiment, not an input error).
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "frame {:?}: row arity {} != {} columns",
            self.name,
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// True when the frame has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV: one header line, one line per row, full-precision
    /// floats, RFC-4180 quoting.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let header: Vec<String> = self.columns.iter().map(|c| csv_field(c)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::render_csv).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as a self-describing JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out.push('\n');
        out
    }

    /// Write the frame's JSON object at the given indentation level
    /// (no trailing newline), so frames can nest inside an
    /// [`ExpOutput`] document.
    pub(crate) fn write_json(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        out.push_str(&format!("{pad}{{\n"));
        out.push_str(&format!(
            "{pad}  \"name\": \"{}\",\n",
            json_escape(&self.name)
        ));
        out.push_str(&format!(
            "{pad}  \"title\": \"{}\",\n",
            json_escape(&self.title)
        ));
        let meta: Vec<String> = self
            .metadata
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
            .collect();
        out.push_str(&format!("{pad}  \"metadata\": {{{}}},\n", meta.join(", ")));
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect();
        out.push_str(&format!("{pad}  \"columns\": [{}],\n", cols.join(", ")));
        if self.rows.is_empty() {
            out.push_str(&format!("{pad}  \"rows\": []\n"));
        } else {
            out.push_str(&format!("{pad}  \"rows\": [\n"));
            for (i, row) in self.rows.iter().enumerate() {
                let cells: Vec<String> = row.iter().map(Value::render_json).collect();
                out.push_str(&format!(
                    "{pad}    [{}]{}\n",
                    cells.join(", "),
                    if i + 1 < self.rows.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!("{pad}  ]\n"));
        }
        out.push_str(&format!("{pad}}}"));
    }

    /// Render as an aligned text table with a title banner and any
    /// metadata as `key: value` lines.
    pub fn to_table(&self) -> String {
        let mut out = format!("\n=== {} ===\n", self.title);
        for (k, v) in &self.metadata {
            out.push_str(&format!("{k}: {v}\n"));
        }
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::render_cell).collect())
            .collect();
        let ncols = self.columns.len();
        let mut widths: Vec<usize> = self.columns.iter().map(|h| h.len()).collect();
        for row in &cells {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:<w$}"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.columns));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &cells {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// What one experiment produces: structured frames plus free-text notes
/// (the prose observations printed under the paper's figures).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExpOutput {
    /// The experiment's frames, in presentation order.
    pub frames: Vec<Frame>,
    /// Free-text observations; rendered after the tables (table format)
    /// or as a JSON string array.
    pub notes: Vec<String>,
}

impl ExpOutput {
    /// An empty output.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a frame.
    pub fn push(&mut self, frame: Frame) {
        self.frames.push(frame);
    }

    /// Append a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render the whole output as one JSON document:
    /// `{"frames": [...], "notes": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        if self.frames.is_empty() {
            out.push_str("  \"frames\": [],\n");
        } else {
            out.push_str("  \"frames\": [\n");
            for (i, f) in self.frames.iter().enumerate() {
                f.write_json(&mut out, 2);
                out.push_str(if i + 1 < self.frames.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("  ],\n");
        }
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect();
        out.push_str(&format!("  \"notes\": [{}]\n", notes.join(", ")));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn sample() -> Frame {
        let mut f = Frame::new("t", vec!["a", "bb", "ccc"])
            .with_title("sample frame")
            .with_meta("seed", "7");
        f.push_row(row![1u32, 2u32, 3u32]);
        f.push_row(row![10u32, 20u32, 30u32]);
        f
    }

    #[test]
    fn table_renders_aligned() {
        let s = sample().to_table();
        assert!(s.contains("=== sample frame ==="));
        assert!(s.contains("seed: 7"));
        assert!(s.contains("a   bb  ccc"));
    }

    #[test]
    fn csv_roundtrips_shape() {
        let s = sample().to_csv();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines, vec!["a,bb,ccc", "1,2,3", "10,20,30"]);
    }

    #[test]
    fn json_is_structurally_sound() {
        let j = sample().to_json();
        assert!(j.contains("\"name\": \"t\""));
        assert!(j.contains("\"columns\": [\"a\", \"bb\", \"ccc\"]"));
        assert!(j.contains("[10, 20, 30]"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn output_json_nests_frames_and_notes() {
        let mut out = ExpOutput::new();
        out.push(sample());
        out.note("observation");
        let j = out.to_json();
        assert!(j.contains("\"frames\": ["));
        assert!(j.contains("\"notes\": [\"observation\"]"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut f = Frame::new("t", vec!["a", "b"]);
        f.push_row(row![1u32]);
    }
}
