//! Typed frame cells and the deterministic scalar renderers shared by
//! every output format in the workspace.

/// One cell of a [`crate::Frame`] row.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Free text (labels, policy names, file paths).
    Text(String),
    /// An exact integer (counts, ids, priorities).
    Int(i64),
    /// A measurement. Rendered with shortest-roundtrip precision in CSV,
    /// as a JSON number (or `null` for non-finite values), and compactly
    /// in aligned tables.
    Num(f64),
}

impl Value {
    /// Render for a CSV field (full precision, RFC-4180 quoting).
    pub fn render_csv(&self) -> String {
        match self {
            Value::Text(s) => csv_field(s),
            Value::Int(i) => i.to_string(),
            Value::Num(v) => fmt_f64(*v),
        }
    }

    /// Render as a JSON value (numbers stay numbers; NaN/inf become null).
    pub fn render_json(&self) -> String {
        match self {
            Value::Text(s) => format!("\"{}\"", json_escape(s)),
            Value::Int(i) => i.to_string(),
            Value::Num(v) => json_num(*v),
        }
    }

    /// Render for an aligned text table (compact float formatting).
    pub fn render_cell(&self) -> String {
        match self {
            Value::Text(s) => s.clone(),
            Value::Int(i) => i.to_string(),
            Value::Num(v) => compact_f64(*v),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        // Values past i64::MAX (64-bit hashes, extreme seeds) must not
        // wrap negative; render them exactly as text instead.
        match i64::try_from(v) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::Text(v.to_string()),
        }
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}

/// Build a frame row from mixed cell types: `row!["ST", 42, 0.945]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::Value::from($v)),*]
    };
}

/// Deterministic full-precision float rendering for CSV (shortest
/// roundtrip, with explicit `NaN` / `inf` spellings).
pub fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "inf".to_string()
        } else {
            "-inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

/// JSON number rendering: JSON has no NaN/inf, so they become `null`.
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// RFC-4180-style quoting for a CSV field: values containing the
/// delimiter, quotes, or newlines (e.g. a path with a comma) are wrapped
/// and escaped instead of silently shifting columns.
pub fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float compactly for aligned table cells.
pub fn compact_f64(v: f64) -> String {
    if v.is_nan() {
        return "-".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering_is_typed() {
        assert_eq!(Value::from("a,b").render_csv(), "\"a,b\"");
        assert_eq!(Value::from(3u32).render_csv(), "3");
        assert_eq!(Value::from(0.1).render_csv(), "0.1");
        assert_eq!(Value::Num(f64::NAN).render_csv(), "NaN");
    }

    #[test]
    fn json_rendering_is_typed() {
        assert_eq!(
            Value::from("say \"hi\"").render_json(),
            "\"say \\\"hi\\\"\""
        );
        assert_eq!(Value::from(3usize).render_json(), "3");
        assert_eq!(Value::Num(f64::INFINITY).render_json(), "null");
    }

    #[test]
    fn compact_formatting() {
        assert_eq!(compact_f64(0.0), "0");
        assert_eq!(compact_f64(1234.0), "1234");
        assert_eq!(compact_f64(12.345), "12.35");
        assert_eq!(compact_f64(0.6321), "0.632");
        assert_eq!(compact_f64(f64::INFINITY), "inf");
        assert_eq!(compact_f64(f64::NEG_INFINITY), "-inf");
    }

    #[test]
    fn u64_past_i64_max_renders_exactly_as_text() {
        assert_eq!(Value::from(u64::MAX), Value::Text(u64::MAX.to_string()));
        assert_eq!(Value::from(u64::MAX).render_csv(), "18446744073709551615");
        assert_eq!(Value::from(3u64), Value::Int(3));
    }

    #[test]
    fn row_macro_mixes_types() {
        let r = row!["x", 1u64, 2.5];
        assert_eq!(
            r,
            vec![Value::Text("x".into()), Value::Int(1), Value::Num(2.5)]
        );
    }
}
