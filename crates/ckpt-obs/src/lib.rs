//! # ckpt-obs — zero-overhead telemetry for the engines, sweeps, and
//! experiments
//!
//! Three small, hand-rolled (no external deps) layers:
//!
//! * [`Counters`] — named monotonic counters on a plain `u64` array. Each
//!   worker thread owns its own cell ([`Observer::incr`] is a plain add,
//!   no atomics in the hot loop) and flushes into a [`SharedCounters`]
//!   bank at its join point. Sum- and max-merged counters are commutative,
//!   so the merged totals are **invariant to thread count and scheduling**
//!   — a counter frame is deterministic output, safe to export next to
//!   golden-digested results.
//! * [`Timers`] — scoped wall-clock phase timing
//!   ([`Phase::Parse`]..[`Phase::Export`]). Wall-clock is inherently
//!   non-deterministic, so timers live in a **separate** export
//!   (`timings.json`) and must never feed a deterministic frame.
//! * [`Progress`] — a throttled (~2 Hz) heartbeat sink for stderr:
//!   events/s, cells done/total, ETA. Side-effect only; never touches
//!   results.
//!
//! ## The zero-cost contract
//!
//! Engines take a generic `Obs: Observer` parameter defaulting to
//! [`NoObs`], a zero-sized type whose methods are empty `#[inline]`
//! bodies — with telemetry off, instrumentation compiles to nothing and
//! outputs are byte-identical to an uninstrumented build. With telemetry
//! on, the observer is a per-worker [`Counters`] cell: incrementing is an
//! array add, allocation-free, and safe inside the hottest loops.
//!
//! ## Determinism rules
//!
//! 1. Counter totals must be a pure function of the simulation inputs —
//!    count simulation facts (events, kills, checkpoints), never
//!    scheduling facts (which worker, what order, how long).
//! 2. Merges must be commutative and associative (sums and maxes are),
//!    so flush order cannot leak into totals.
//! 3. Wall-clock ([`Timers`], [`Progress`]) stays out of every
//!    deterministic artifact.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The counter catalog. Every counter is monotone within a run; the
/// display/merge order is this declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// DES events popped off the future-event list (arrivals included).
    EventsPopped,
    /// DES events scheduled, *including* provably-stale kills that the
    /// engine skipped scheduling (see [`Counter::StaleSkips`]) — so that
    /// `popped == scheduled − stale_skips` holds on completed runs.
    EventsScheduled,
    /// Provably-stale failure events never enqueued (the kill falls
    /// beyond its phase's known end, so it could only arrive stale).
    StaleSkips,
    /// Task kills delivered (planned trace kills + host-failure victims).
    TaskKills,
    /// Whole-host failures injected.
    HostFailures,
    /// Checkpoints written durably.
    CheckpointsWritten,
    /// Checkpoints aborted by a failure mid-write.
    CheckpointsAborted,
    /// Task restarts (every kill leads to exactly one restart).
    Restarts,
    /// Adaptive re-plans (priority-flip re-solves on the fast path).
    Replans,
    /// Kill-plan lookups on the fast replay path (one per task).
    PlanLookups,
    /// Plan lookups served by a shared [`FailurePlanArena`] borrow.
    ///
    /// [`FailurePlanArena`]: https://docs.rs/ckpt-trace
    ArenaHits,
    /// Plan lookups that sampled fresh (no arena available).
    ArenaMisses,
    /// Tasks replayed on the fast path.
    TasksReplayed,
    /// Jobs replayed on the fast path.
    JobsReplayed,
    /// Sweep cells evaluated.
    CellsEvaluated,
    /// Sweep cells loaded from a checkpoint store instead of evaluated
    /// (a `--resume` run skipping already-persisted cells).
    CellsSkipped,
    /// Sweep cells evaluated *by a resume run* — the missing cells a
    /// `--resume` replayed after loading the rest from the store.
    CellsResumed,
    /// Cell records appended to a checkpoint store.
    CkptRecordsWritten,
    /// Conservative time windows completed by a sharded cluster run
    /// (one per barrier, regardless of shard count).
    ShardWindows,
    /// Per-shard metric folds performed at window barriers
    /// (`shards − 1` per window: shard 0 is the fold seed).
    ShardMerges,
    /// Peak length of the DES future-event heap (max-merged).
    HeapPeak,
    /// Sweep cells quarantined after exhausting the retry budget
    /// (exported with `Failed` status and NaN metrics).
    CellsFailed,
    /// Cell-evaluation retry attempts (a panic or error on a guarded
    /// attempt that had budget left).
    CellsRetried,
    /// Store/export I/O retry attempts (transient errors retried with
    /// backoff).
    IoRetries,
    /// Faults an injected [`FaultPlan`] actually fired
    /// (`--inject` / `CKPT_FAULT_PLAN`; zero on clean runs).
    ///
    /// [`FaultPlan`]: https://docs.rs/ckpt-faults
    FaultsInjected,
}

/// Number of counters in the catalog.
pub const N_COUNTERS: usize = 25;

/// All counters, in catalog (display/merge) order.
pub const ALL_COUNTERS: [Counter; N_COUNTERS] = [
    Counter::EventsPopped,
    Counter::EventsScheduled,
    Counter::StaleSkips,
    Counter::TaskKills,
    Counter::HostFailures,
    Counter::CheckpointsWritten,
    Counter::CheckpointsAborted,
    Counter::Restarts,
    Counter::Replans,
    Counter::PlanLookups,
    Counter::ArenaHits,
    Counter::ArenaMisses,
    Counter::TasksReplayed,
    Counter::JobsReplayed,
    Counter::CellsEvaluated,
    Counter::CellsSkipped,
    Counter::CellsResumed,
    Counter::CkptRecordsWritten,
    Counter::ShardWindows,
    Counter::ShardMerges,
    Counter::HeapPeak,
    Counter::CellsFailed,
    Counter::CellsRetried,
    Counter::IoRetries,
    Counter::FaultsInjected,
];

impl Counter {
    /// Stable snake_case name (frame rows, docs).
    pub fn name(self) -> &'static str {
        match self {
            Counter::EventsPopped => "events_popped",
            Counter::EventsScheduled => "events_scheduled",
            Counter::StaleSkips => "stale_skips",
            Counter::TaskKills => "task_kills",
            Counter::HostFailures => "host_failures",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::CheckpointsAborted => "checkpoints_aborted",
            Counter::Restarts => "restarts",
            Counter::Replans => "replans",
            Counter::PlanLookups => "plan_lookups",
            Counter::ArenaHits => "arena_hits",
            Counter::ArenaMisses => "arena_misses",
            Counter::TasksReplayed => "tasks_replayed",
            Counter::JobsReplayed => "jobs_replayed",
            Counter::CellsEvaluated => "cells_evaluated",
            Counter::CellsSkipped => "cells_skipped",
            Counter::CellsResumed => "cells_resumed",
            Counter::CkptRecordsWritten => "ckpt_records_written",
            Counter::ShardWindows => "shard_windows",
            Counter::ShardMerges => "shard_merges",
            Counter::HeapPeak => "heap_peak",
            Counter::CellsFailed => "cells_failed",
            Counter::CellsRetried => "cells_retried",
            Counter::IoRetries => "io_retries",
            Counter::FaultsInjected => "faults_injected",
        }
    }

    /// Whether merging takes the max (high-water marks) instead of the
    /// sum.
    pub fn is_peak(self) -> bool {
        matches!(self, Counter::HeapPeak)
    }
}

/// The instrumentation hook engines are generic over. Implemented by
/// [`NoObs`] (every method an empty inline body — the disabled build) and
/// [`Counters`] (plain array adds — the enabled build).
pub trait Observer: Default + Send {
    /// `false` only for [`NoObs`]; lets call sites skip work that only
    /// feeds telemetry (e.g. reading a queue length for a peak).
    const ENABLED: bool;

    /// Add `n` to a counter.
    fn incr(&mut self, c: Counter, n: u64);

    /// Add 1 to a counter.
    #[inline(always)]
    fn tick(&mut self, c: Counter) {
        self.incr(c, 1);
    }

    /// Raise a high-water-mark counter to at least `v`.
    fn record_peak(&mut self, c: Counter, v: u64);

    /// Current value of a counter (0 for [`NoObs`]).
    fn get(&self, c: Counter) -> u64;

    /// Fold another cell of the same observer type in (sum / max per
    /// counter kind). The sharded cluster runner drains per-shard cells
    /// through this at every window barrier, in shard order; a no-op for
    /// [`NoObs`].
    fn merge_from(&mut self, other: &Self);
}

/// The disabled observer: zero-sized, every method compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoObs;

impl Observer for NoObs {
    const ENABLED: bool = false;

    #[inline(always)]
    fn incr(&mut self, _c: Counter, _n: u64) {}

    #[inline(always)]
    fn record_peak(&mut self, _c: Counter, _v: u64) {}

    #[inline(always)]
    fn get(&self, _c: Counter) -> u64 {
        0
    }

    #[inline(always)]
    fn merge_from(&mut self, _other: &Self) {}
}

/// A per-worker counter cell: a plain `u64` array, allocation-free and
/// atomics-free. Merge cells with [`Counters::merge`] (or flush into a
/// [`SharedCounters`]) at join points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    vals: [u64; N_COUNTERS],
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            vals: [0; N_COUNTERS],
        }
    }
}

impl Observer for Counters {
    const ENABLED: bool = true;

    #[inline(always)]
    fn incr(&mut self, c: Counter, n: u64) {
        self.vals[c as usize] += n;
    }

    #[inline(always)]
    fn record_peak(&mut self, c: Counter, v: u64) {
        let slot = &mut self.vals[c as usize];
        if v > *slot {
            *slot = v;
        }
    }

    #[inline(always)]
    fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    #[inline(always)]
    fn merge_from(&mut self, other: &Self) {
        self.merge(other);
    }
}

impl Counters {
    /// A zeroed cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another cell in: sums for flow counters, max for peaks.
    /// Commutative and associative, so merge order never shows in totals.
    pub fn merge(&mut self, other: &Counters) {
        for c in ALL_COUNTERS {
            let i = c as usize;
            if c.is_peak() {
                self.vals[i] = self.vals[i].max(other.vals[i]);
            } else {
                self.vals[i] += other.vals[i];
            }
        }
    }

    /// `(counter, value)` pairs in catalog order.
    pub fn entries(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        ALL_COUNTERS.iter().map(|&c| (c, self.vals[c as usize]))
    }

    /// Check the counter-level accounting identities:
    ///
    /// * `events_popped == events_scheduled − stale_skips` (holds exactly
    ///   on *completed* DES runs — a budget-interrupted run leaves
    ///   scheduled events unpopped);
    /// * `arena_hits + arena_misses == plan_lookups`.
    ///
    /// `des_completed` gates the first identity. Returns a message naming
    /// the violated identity.
    pub fn verify_invariants(&self, des_completed: bool) -> Result<(), String> {
        let g = |c: Counter| self.vals[c as usize];
        if des_completed {
            let (popped, scheduled, stale) = (
                g(Counter::EventsPopped),
                g(Counter::EventsScheduled),
                g(Counter::StaleSkips),
            );
            if popped != scheduled - stale {
                return Err(format!(
                    "events_popped ({popped}) != events_scheduled ({scheduled}) - \
                     stale_skips ({stale})"
                ));
            }
        }
        let (hits, misses, lookups) = (
            g(Counter::ArenaHits),
            g(Counter::ArenaMisses),
            g(Counter::PlanLookups),
        );
        if hits + misses != lookups {
            return Err(format!(
                "arena_hits ({hits}) + arena_misses ({misses}) != plan_lookups ({lookups})"
            ));
        }
        Ok(())
    }

    /// Check the sharded-run accounting identities against a known shard
    /// count and total cluster event count (for runs that executed
    /// exactly one sharded cluster simulation):
    ///
    /// * `shard_merges == shard_windows × (shards − 1)` — every window
    ///   barrier folds every non-seed shard exactly once;
    /// * `events_popped == cluster_events` — the per-shard
    ///   `events_popped` cells sum (commutatively) to the cluster total;
    /// * an unsharded run (`shards <= 1`) records no windows or merges.
    ///
    /// Returns a message naming the violated identity.
    pub fn verify_shard_invariants(&self, shards: u64, cluster_events: u64) -> Result<(), String> {
        let g = |c: Counter| self.vals[c as usize];
        let (windows, merges, popped) = (
            g(Counter::ShardWindows),
            g(Counter::ShardMerges),
            g(Counter::EventsPopped),
        );
        if shards <= 1 {
            if windows != 0 || merges != 0 {
                return Err(format!(
                    "unsharded run recorded shard_windows ({windows}) / \
                     shard_merges ({merges})"
                ));
            }
            return Ok(());
        }
        if merges != windows * (shards - 1) {
            return Err(format!(
                "shard_merges ({merges}) != shard_windows ({windows}) * \
                 (shards - 1) ({})",
                shards - 1
            ));
        }
        if popped != cluster_events {
            return Err(format!(
                "events_popped ({popped}) != cluster event total ({cluster_events})"
            ));
        }
        Ok(())
    }

    /// Check the sweep accounting identities against a known grid size
    /// (for runs that executed exactly one sweep):
    ///
    /// * `cells_skipped + cells_evaluated + cells_failed == grid_size` —
    ///   every cell was loaded from the checkpoint store, evaluated, or
    ///   quarantined (ok + quarantined + skipped covers the grid);
    /// * `cells_resumed <= cells_evaluated + cells_failed` — resumed
    ///   cells are a subset of the cells this run actually attempted;
    /// * `ckpt_records_written` is `0` (no store attached) or equals
    ///   `cells_evaluated` (every *successful* evaluation was persisted;
    ///   quarantined cells are never written, so `--resume` retries
    ///   them).
    ///
    /// Returns a message naming the violated identity.
    pub fn verify_sweep_invariants(&self, grid_size: u64) -> Result<(), String> {
        let g = |c: Counter| self.vals[c as usize];
        let (skipped, evaluated, failed, resumed, written) = (
            g(Counter::CellsSkipped),
            g(Counter::CellsEvaluated),
            g(Counter::CellsFailed),
            g(Counter::CellsResumed),
            g(Counter::CkptRecordsWritten),
        );
        if skipped + evaluated + failed != grid_size {
            return Err(format!(
                "cells_skipped ({skipped}) + cells_evaluated ({evaluated}) + \
                 cells_failed ({failed}) != grid size ({grid_size})"
            ));
        }
        if resumed > evaluated + failed {
            return Err(format!(
                "cells_resumed ({resumed}) > cells_evaluated ({evaluated}) + \
                 cells_failed ({failed})"
            ));
        }
        if written != 0 && written != evaluated {
            return Err(format!(
                "ckpt_records_written ({written}) is neither 0 nor \
                 cells_evaluated ({evaluated})"
            ));
        }
        Ok(())
    }
}

/// A cross-thread counter bank: workers absorb their local [`Counters`]
/// cells here at join points. Relaxed atomics suffice — sums and maxes
/// are commutative, and readers snapshot after the joins that published
/// the writes.
#[derive(Debug, Default)]
pub struct SharedCounters {
    cells: [AtomicU64; N_COUNTERS],
}

impl SharedCounters {
    /// A zeroed bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one worker-local cell in (sum / max per counter kind).
    pub fn absorb(&self, local: &Counters) {
        for (c, v) in local.entries() {
            if v == 0 {
                continue;
            }
            let cell = &self.cells[c as usize];
            if c.is_peak() {
                cell.fetch_max(v, Ordering::Relaxed);
            } else {
                cell.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// Add directly to one counter (coordinator-side bookkeeping such as
    /// cells-evaluated; not for hot loops).
    pub fn add(&self, c: Counter, n: u64) {
        if c.is_peak() {
            self.cells[c as usize].fetch_max(n, Ordering::Relaxed);
        } else {
            self.cells[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Copy the current totals out.
    pub fn snapshot(&self) -> Counters {
        let mut out = Counters::default();
        for c in ALL_COUNTERS {
            out.vals[c as usize] = self.cells[c as usize].load(Ordering::Relaxed);
        }
        out
    }
}

/// The instrumented phases of a sweep / experiment run, coarsest useful
/// breakdown: where does the wall-clock go?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Reading and parsing specs / flags.
    Parse,
    /// Expanding the sweep grid into scenario cells.
    Plan,
    /// Trace generation, kill-plan sampling, estimator fitting.
    Sample,
    /// Engine execution (DES runs, fast replays).
    Simulate,
    /// Metric aggregation and filtering.
    Aggregate,
    /// Rendering and writing output files.
    Export,
}

/// Number of phases.
pub const N_PHASES: usize = 6;

/// All phases, in pipeline order.
pub const ALL_PHASES: [Phase; N_PHASES] = [
    Phase::Parse,
    Phase::Plan,
    Phase::Sample,
    Phase::Simulate,
    Phase::Aggregate,
    Phase::Export,
];

impl Phase {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Plan => "plan",
            Phase::Sample => "sample",
            Phase::Simulate => "simulate",
            Phase::Aggregate => "aggregate",
            Phase::Export => "export",
        }
    }
}

/// Cumulative per-phase wall-clock, nanosecond-resolution. Phases may
/// overlap (parallel workers can be in [`Phase::Simulate`] concurrently),
/// so totals are *cpu-phase* time, and can exceed wall time. Strictly
/// non-deterministic: export only to the timings side-channel, never into
/// a deterministic frame.
#[derive(Debug, Default)]
pub struct Timers {
    nanos: [AtomicU64; N_PHASES],
}

impl Timers {
    /// Zeroed timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under a phase.
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add_nanos(phase, start.elapsed().as_nanos() as u64);
        out
    }

    /// Record raw nanoseconds against a phase.
    pub fn add_nanos(&self, phase: Phase, nanos: u64) {
        self.nanos[phase as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    /// `(phase, cumulative nanoseconds)` in pipeline order.
    pub fn snapshot(&self) -> [(Phase, u64); N_PHASES] {
        let mut out = [(Phase::Parse, 0u64); N_PHASES];
        for (i, p) in ALL_PHASES.into_iter().enumerate() {
            out[i] = (p, self.nanos[p as usize].load(Ordering::Relaxed));
        }
        out
    }
}

/// Heartbeat interval: ~2 Hz, the throttle that keeps `--progress` cheap
/// on million-event runs.
const HEARTBEAT_NANOS: u64 = 500_000_000;

/// A throttled progress heartbeat sink writing plain lines to stderr.
///
/// All state is atomic so any worker can report; a compare-and-swap on
/// the last-emit time enforces the ~2 Hz throttle without locks, and
/// losing the race costs a few atomic loads. Heartbeats are a pure
/// side-channel — they never feed results.
#[derive(Debug)]
pub struct Progress {
    start: Instant,
    /// Nanos-since-start of the last emitted heartbeat.
    last_emit: AtomicU64,
    events: AtomicU64,
    cells_done: AtomicU64,
    cells_total: AtomicU64,
}

impl Default for Progress {
    fn default() -> Self {
        Self::new()
    }
}

impl Progress {
    /// A heartbeat clock starting now.
    pub fn new() -> Self {
        Progress {
            start: Instant::now(),
            last_emit: AtomicU64::new(0),
            events: AtomicU64::new(0),
            cells_done: AtomicU64::new(0),
            cells_total: AtomicU64::new(0),
        }
    }

    /// Set the denominator for `cells done/total`.
    pub fn set_cells_total(&self, n: u64) {
        self.cells_total.store(n, Ordering::Relaxed);
    }

    /// Fold in newly processed events (partial counts welcome).
    pub fn add_events(&self, n: u64) {
        self.events.fetch_add(n, Ordering::Relaxed);
    }

    /// Mark one sweep cell complete.
    pub fn cell_done(&self) {
        self.cells_done.fetch_add(1, Ordering::Relaxed);
        self.beat();
    }

    /// Emit a heartbeat line to stderr if the throttle window has passed.
    /// Call freely from hot-ish paths; the common case is three relaxed
    /// loads and a compare.
    pub fn beat(&self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        let last = self.last_emit.load(Ordering::Relaxed);
        if elapsed.saturating_sub(last) < HEARTBEAT_NANOS {
            return;
        }
        // One winner per window; losers skip the write entirely.
        if self
            .last_emit
            .compare_exchange(last, elapsed, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.emit(elapsed);
    }

    /// Emit a final summary line regardless of the throttle.
    pub fn finish(&self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        self.emit(elapsed);
    }

    fn emit(&self, elapsed_nanos: u64) {
        let secs = (elapsed_nanos as f64 / 1e9).max(1e-9);
        let events = self.events.load(Ordering::Relaxed);
        let done = self.cells_done.load(Ordering::Relaxed);
        let total = self.cells_total.load(Ordering::Relaxed);
        let mut line = format!("progress: {:.1}s", secs);
        if total > 0 {
            line.push_str(&format!(" | cells {done}/{total}"));
            if done > 0 && done < total {
                let eta = secs / done as f64 * (total - done) as f64;
                line.push_str(&format!(" | eta {eta:.0}s"));
            }
        }
        if events > 0 {
            line.push_str(&format!(
                " | {events} events ({:.2}M ev/s)",
                events as f64 / secs / 1e6
            ));
        }
        eprintln!("{line}");
    }
}

/// The bundle a run threads through engines and executors: a shared
/// counter bank (deterministic), phase timers (wall-clock side-channel),
/// and an optional heartbeat sink (`--progress`).
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Deterministic counter totals, absorbed from per-worker cells.
    pub counters: SharedCounters,
    /// Wall-clock phase breakdown (non-deterministic side-channel).
    pub timers: Timers,
    /// Heartbeat sink; `None` unless `--progress` asked for one.
    pub progress: Option<Progress>,
}

impl Telemetry {
    /// Telemetry with counters and timers only (no heartbeats).
    pub fn new() -> Self {
        Self::default()
    }

    /// Telemetry with a stderr heartbeat sink attached.
    pub fn with_progress(mut self) -> Self {
        self.progress = Some(Progress::new());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // The whole point of this test is pinning the compile-time constants.
    #[allow(clippy::assertions_on_constants)]
    fn noobs_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<NoObs>(), 0);
        let mut o = NoObs;
        o.incr(Counter::EventsPopped, 5);
        o.tick(Counter::TaskKills);
        o.record_peak(Counter::HeapPeak, 99);
        assert_eq!(o.get(Counter::EventsPopped), 0);
        assert!(!NoObs::ENABLED);
        assert!(Counters::ENABLED);
    }

    #[test]
    fn counter_catalog_is_consistent() {
        assert_eq!(ALL_COUNTERS.len(), N_COUNTERS);
        let mut names: Vec<&str> = ALL_COUNTERS.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_COUNTERS, "duplicate counter names");
        for (i, c) in ALL_COUNTERS.iter().enumerate() {
            assert_eq!(*c as usize, i, "{} out of order", c.name());
        }
    }

    #[test]
    fn counters_sum_and_peak_merge() {
        let mut a = Counters::new();
        a.incr(Counter::TaskKills, 3);
        a.record_peak(Counter::HeapPeak, 10);
        let mut b = Counters::new();
        b.incr(Counter::TaskKills, 4);
        b.record_peak(Counter::HeapPeak, 7);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.get(Counter::TaskKills), 7);
        assert_eq!(ab.get(Counter::HeapPeak), 10);
    }

    #[test]
    fn record_peak_keeps_high_water_mark() {
        let mut c = Counters::new();
        c.record_peak(Counter::HeapPeak, 5);
        c.record_peak(Counter::HeapPeak, 3);
        assert_eq!(c.get(Counter::HeapPeak), 5);
        c.record_peak(Counter::HeapPeak, 8);
        assert_eq!(c.get(Counter::HeapPeak), 8);
    }

    #[test]
    fn shared_counters_absorb_matches_local_merge() {
        let shared = SharedCounters::new();
        let mut locals = Vec::new();
        for i in 0..4u64 {
            let mut c = Counters::new();
            c.incr(Counter::EventsPopped, 10 + i);
            c.record_peak(Counter::HeapPeak, 100 * (i + 1));
            locals.push(c);
        }
        for l in &locals {
            shared.absorb(l);
        }
        let mut merged = Counters::new();
        for l in &locals {
            merged.merge(l);
        }
        assert_eq!(shared.snapshot(), merged);
    }

    #[test]
    fn invariants_detect_violations() {
        let mut ok = Counters::new();
        ok.incr(Counter::EventsScheduled, 10);
        ok.incr(Counter::StaleSkips, 2);
        ok.incr(Counter::EventsPopped, 8);
        ok.incr(Counter::PlanLookups, 5);
        ok.incr(Counter::ArenaHits, 5);
        assert!(ok.verify_invariants(true).is_ok());

        let mut bad = ok;
        bad.incr(Counter::EventsPopped, 1);
        let err = bad.verify_invariants(true).unwrap_err();
        assert!(err.contains("events_popped"), "{err}");
        // Incomplete runs skip the DES identity but keep the arena one.
        assert!(bad.verify_invariants(false).is_ok());

        let mut bad2 = ok;
        bad2.incr(Counter::ArenaMisses, 1);
        let err = bad2.verify_invariants(false).unwrap_err();
        assert!(err.contains("arena_hits"), "{err}");
    }

    #[test]
    fn sweep_invariants_detect_violations() {
        // An uncheckpointed run: everything evaluated, nothing written.
        let mut plain = Counters::new();
        plain.incr(Counter::CellsEvaluated, 24);
        assert!(plain.verify_sweep_invariants(24).is_ok());

        // A resume run: 10 loaded, 14 replayed, all 14 persisted.
        let mut resumed = Counters::new();
        resumed.incr(Counter::CellsSkipped, 10);
        resumed.incr(Counter::CellsEvaluated, 14);
        resumed.incr(Counter::CellsResumed, 14);
        resumed.incr(Counter::CkptRecordsWritten, 14);
        assert!(resumed.verify_sweep_invariants(24).is_ok());

        // A degraded run: 23 ok + 1 quarantined still covers the grid,
        // and only the ok cells were persisted.
        let mut degraded = Counters::new();
        degraded.incr(Counter::CellsEvaluated, 23);
        degraded.incr(Counter::CellsFailed, 1);
        degraded.incr(Counter::CellsRetried, 3);
        degraded.incr(Counter::CkptRecordsWritten, 23);
        assert!(degraded.verify_sweep_invariants(24).is_ok());

        let err = plain.verify_sweep_invariants(25).unwrap_err();
        assert!(err.contains("cells_skipped"), "{err}");

        let mut bad = resumed;
        bad.incr(Counter::CellsResumed, 1);
        let err = bad.verify_sweep_invariants(24).unwrap_err();
        assert!(err.contains("cells_resumed"), "{err}");

        let mut partial = plain;
        partial.incr(Counter::CkptRecordsWritten, 23);
        let err = partial.verify_sweep_invariants(24).unwrap_err();
        assert!(err.contains("ckpt_records_written"), "{err}");
    }

    #[test]
    fn shard_invariants_detect_violations() {
        // A 4-shard run over 3 windows: 3 × (4 − 1) = 9 merges.
        let mut ok = Counters::new();
        ok.incr(Counter::ShardWindows, 3);
        ok.incr(Counter::ShardMerges, 9);
        ok.incr(Counter::EventsPopped, 1000);
        assert!(ok.verify_shard_invariants(4, 1000).is_ok());

        let err = ok.verify_shard_invariants(4, 999).unwrap_err();
        assert!(err.contains("events_popped"), "{err}");

        let mut bad = ok;
        bad.incr(Counter::ShardMerges, 1);
        let err = bad.verify_shard_invariants(4, 1000).unwrap_err();
        assert!(err.contains("shard_merges"), "{err}");

        // Unsharded runs must record no window machinery at all.
        let plain = Counters::new();
        assert!(plain.verify_shard_invariants(1, 42).is_ok());
        let err = ok.verify_shard_invariants(1, 1000).unwrap_err();
        assert!(err.contains("unsharded"), "{err}");
    }

    #[test]
    fn timers_accumulate_into_phases() {
        let t = Timers::new();
        let v = t.time(Phase::Simulate, || 42);
        assert_eq!(v, 42);
        t.add_nanos(Phase::Simulate, 1_000);
        t.add_nanos(Phase::Export, 5);
        let snap = t.snapshot();
        let get = |p: Phase| snap.iter().find(|(q, _)| *q == p).unwrap().1;
        assert!(get(Phase::Simulate) >= 1_000);
        assert_eq!(get(Phase::Export), 5);
        assert_eq!(get(Phase::Parse), 0);
    }

    #[test]
    fn progress_throttles_but_finishes() {
        // Can't assert on stderr here; check the counters and that the
        // throttle state machine doesn't wedge.
        let p = Progress::new();
        p.set_cells_total(10);
        p.add_events(1_000);
        for _ in 0..5 {
            p.cell_done();
        }
        assert_eq!(p.cells_done.load(Ordering::Relaxed), 5);
        p.finish();
    }

    #[test]
    fn telemetry_bundle_defaults_off() {
        let t = Telemetry::new();
        assert!(t.progress.is_none());
        let t = Telemetry::new().with_progress();
        assert!(t.progress.is_some());
    }
}
