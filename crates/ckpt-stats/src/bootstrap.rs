//! Bootstrap resampling: confidence intervals for the WPR comparisons in
//! EXPERIMENTS.md (the paper reports point estimates; we add uncertainty).

use crate::rng::{Rng64, Xoshiro256StarStar};
use crate::{Result, StatsError};

/// A two-sided bootstrap percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapCi {
    /// Point estimate (statistic on the full sample).
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lo: f64,
    /// Upper bound of the interval.
    pub hi: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
    /// Number of bootstrap resamples used.
    pub resamples: usize,
}

/// Percentile-bootstrap CI of an arbitrary statistic.
///
/// * `samples` — the data,
/// * `level` — confidence level in (0, 1),
/// * `resamples` — number of bootstrap draws (≥ 100 recommended),
/// * `stat` — the statistic (e.g. the mean),
/// * `seed` — determinism.
pub fn bootstrap_ci<F: Fn(&[f64]) -> f64>(
    samples: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
    stat: F,
) -> Result<BootstrapCi> {
    if samples.is_empty() {
        return Err(StatsError::BadInput("bootstrap: empty sample"));
    }
    if !(level > 0.0 && level < 1.0) {
        return Err(StatsError::BadParam {
            what: "bootstrap level",
            value: level,
        });
    }
    if resamples < 10 {
        return Err(StatsError::BadInput("bootstrap: too few resamples"));
    }
    let estimate = stat(samples);
    let mut rng = Xoshiro256StarStar::new(seed);
    let n = samples.len();
    let mut stats: Vec<f64> = Vec::with_capacity(resamples);
    let mut resample = vec![0.0; n];
    for _ in 0..resamples {
        for slot in resample.iter_mut() {
            *slot = samples[rng.next_range(n as u64) as usize];
        }
        stats.push(stat(&resample));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let alpha = (1.0 - level) / 2.0;
    let idx = |q: f64| -> f64 {
        let i = ((q * resamples as f64).floor() as usize).min(resamples - 1);
        stats[i]
    };
    Ok(BootstrapCi {
        estimate,
        lo: idx(alpha),
        hi: idx(1.0 - alpha),
        level,
        resamples,
    })
}

/// Bootstrap CI of the mean.
pub fn bootstrap_mean_ci(
    samples: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Result<BootstrapCi> {
    bootstrap_ci(samples, level, resamples, seed, |xs| {
        xs.iter().sum::<f64>() / xs.len() as f64
    })
}

/// Bootstrap CI of the difference of means between paired samples
/// (`a[i] − b[i]`): resamples job indices, preserving the pairing — the
/// right uncertainty for the paper's common-random-number comparisons.
pub fn bootstrap_paired_diff_ci(
    a: &[f64],
    b: &[f64],
    level: f64,
    resamples: usize,
    seed: u64,
) -> Result<BootstrapCi> {
    if a.len() != b.len() {
        return Err(StatsError::BadInput("bootstrap: paired samples must align"));
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    bootstrap_mean_ci(&diffs, level, resamples, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDist, Normal};

    #[test]
    fn ci_covers_true_mean() {
        let d = Normal::new(10.0, 2.0).unwrap();
        let mut rng = Xoshiro256StarStar::new(1);
        let xs = d.sample_n(&mut rng, 2000);
        let ci = bootstrap_mean_ci(&xs, 0.95, 500, 2).unwrap();
        assert!(ci.lo < 10.0 && 10.0 < ci.hi, "{ci:?}");
        assert!(ci.lo < ci.estimate && ci.estimate < ci.hi);
        // Width should be roughly 4·σ/sqrt(n) ≈ 0.18.
        assert!(ci.hi - ci.lo < 0.4, "{ci:?}");
    }

    #[test]
    fn paired_diff_detects_shift() {
        let mut rng = Xoshiro256StarStar::new(3);
        let d = Normal::new(0.0, 1.0).unwrap();
        let base: Vec<f64> = d.sample_n(&mut rng, 1000);
        let shifted: Vec<f64> = base.iter().map(|x| x + 0.5).collect();
        let ci = bootstrap_paired_diff_ci(&shifted, &base, 0.95, 300, 4).unwrap();
        assert!(ci.lo > 0.49 && ci.hi < 0.51, "{ci:?}"); // exact pairing: diff is constant
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).sin()).collect();
        let a = bootstrap_mean_ci(&xs, 0.9, 200, 7).unwrap();
        let b = bootstrap_mean_ci(&xs, 0.9, 200, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(bootstrap_mean_ci(&[], 0.95, 100, 1).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 1.5, 100, 1).is_err());
        assert!(bootstrap_mean_ci(&[1.0], 0.95, 5, 1).is_err());
        assert!(bootstrap_paired_diff_ci(&[1.0], &[1.0, 2.0], 0.95, 100, 1).is_err());
    }
}
