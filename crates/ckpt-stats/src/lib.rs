//! # ckpt-stats — statistics substrate for the SC'13 checkpoint-restart reproduction
//!
//! This crate provides every piece of probability and statistics machinery the
//! reproduction of *"Optimization of Cloud Task Processing with
//! Checkpoint-Restart Mechanism"* (Di, Robert, Vivien, Kondo, Wang, Cappello —
//! SC'13) needs, implemented from scratch so that the whole workspace stays
//! deterministic and dependency-light:
//!
//! * **Deterministic RNGs** ([`rng`]) — `SplitMix64` and `Xoshiro256StarStar`
//!   with explicit 64-bit seeding and stream derivation, so every experiment in
//!   the paper reproduction is bit-for-bit reproducible across runs and thread
//!   counts.
//! * **Distributions** ([`dist`]) — the continuous families the paper fits to
//!   Google failure intervals in Figure 5 (exponential, Pareto, Laplace,
//!   normal, geometric) plus Weibull, log-normal and uniform, and the Poisson
//!   counting distribution used for the paper's worked examples of the
//!   expected number of failures `E(Y)`.
//! * **Maximum-likelihood fitting** ([`fit`]) — closed-form or iterative MLE
//!   for each family together with goodness-of-fit diagnostics
//!   (Kolmogorov–Smirnov statistic, log-likelihood, AIC). This regenerates the
//!   paper's Figure 5 analysis ("Pareto fits all intervals best; exponential
//!   fits the ≤1000 s body best").
//! * **Empirical machinery** ([`ecdf`], [`histogram`], [`summary`]) —
//!   empirical CDFs and quantiles (every CDF plot in the paper), histograms,
//!   and numerically stable online moments.
//! * **Quantile sketch** ([`sketch`]) — a deterministic mergeable
//!   log-spaced histogram with exact rank selection and a documented
//!   relative value-error bound, so streaming sweeps can export p50/p99
//!   that are bit-identical at any thread count.
//! * **Mixtures** ([`mixture`]) — two-component mixtures used by the trace
//!   generator to reproduce the paper's observation that failure intervals
//!   have a short-interval body (63 % below 1000 s) and a Pareto tail that
//!   inflates the MTBF.
//!
//! ## Quick example
//!
//! ```
//! use ckpt_stats::dist::{ContinuousDist, Exponential};
//! use ckpt_stats::fit::fit_exponential;
//! use ckpt_stats::rng::SplitMix64;
//!
//! let mut rng = SplitMix64::new(42);
//! let d = Exponential::new(0.00423445).unwrap(); // the paper's fitted rate
//! let samples: Vec<f64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
//! let fitted = fit_exponential(&samples).unwrap();
//! assert!((fitted.rate() - 0.00423445).abs() / 0.00423445 < 0.05);
//! ```

#![warn(missing_docs)]
// `!(v > 0.0)` deliberately rejects NaN alongside non-positive values; the
// clippy-suggested `v <= 0.0` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(rust_2018_idioms)]

pub mod bootstrap;
pub mod dist;
pub mod ecdf;
pub mod fit;
pub mod histogram;
pub mod mixture;
pub mod rng;
pub mod sketch;
pub mod solve;
pub mod summary;

pub use dist::{ContinuousDist, DiscreteDist};
pub use ecdf::Ecdf;
pub use rng::{Rng64, SplitMix64, Xoshiro256StarStar};
pub use sketch::QuantileSketch;
pub use summary::{OnlineStats, Summary};

/// Crate-wide error type for invalid statistical parameters or inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A distribution parameter was outside its valid domain.
    BadParam {
        /// Human-readable description of the offending parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An input sample set was empty or otherwise unusable.
    BadInput(&'static str),
    /// An iterative numerical routine failed to converge.
    NoConvergence(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::BadParam { what, value } => {
                write!(f, "invalid parameter {what}: {value}")
            }
            StatsError::BadInput(msg) => write!(f, "invalid input: {msg}"),
            StatsError::NoConvergence(msg) => write!(f, "no convergence: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;
