//! Summary statistics: numerically stable online moments (Welford) and
//! batch percentile summaries — the min/avg/max triples of the paper's
//! Tables 2–3 and Figure 10 come from these.

use crate::{Result, StatsError};

/// Welford-style online accumulator for count/mean/variance/min/max.
///
/// Merging two accumulators is supported (parallel reduction in the
/// experiment runner uses it).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (Chan's parallel algorithm).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (`NaN` when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`inf` when empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Batch summary with percentiles, for report tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Compute a summary of `samples`. Errors on empty input or NaNs.
    pub fn from_slice(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::BadInput("summary: empty sample set"));
        }
        if samples.iter().any(|x| x.is_nan()) {
            return Err(StatsError::BadInput("summary: NaN in samples"));
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut acc = OnlineStats::new();
        for &x in samples {
            acc.add(x);
        }
        let pct = |q: f64| -> f64 {
            let n = sorted.len();
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[idx]
        };
        Ok(Self {
            count: samples.len(),
            min: sorted[0],
            p25: pct(0.25),
            median: pct(0.5),
            mean: acc.mean(),
            p75: pct(0.75),
            p95: pct(0.95),
            max: *sorted.last().unwrap(),
            std_dev: if samples.len() > 1 {
                acc.std_dev()
            } else {
                0.0
            },
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.4} p25={:.4} med={:.4} mean={:.4} p75={:.4} p95={:.4} max={:.4} sd={:.4}",
            self.count,
            self.min,
            self.p25,
            self.median,
            self.mean,
            self.p75,
            self.p95,
            self.max,
            self.std_dev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0, 5.0, 3.0];
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.add(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.variance() - var).abs() < 1e-12);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.count(), 10);
    }

    #[test]
    fn empty_stats_are_nan() {
        let acc = OnlineStats::new();
        assert!(acc.mean().is_nan());
        assert!(acc.variance().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.add(x);
        }
        for &x in &xs[37..] {
            right.add(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.add(1.0);
        a.add(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn summary_percentiles() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_slice(&xs).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(Summary::from_slice(&[]).is_err());
        assert!(Summary::from_slice(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_slice(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn display_formats() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0]).unwrap();
        let text = format!("{s}");
        assert!(text.contains("n=3"));
        assert!(text.contains("med="));
    }
}
