//! Deterministic mergeable quantile sketch.
//!
//! A fixed-rule log-spaced histogram in the DDSketch family: every
//! observation `v` with `|v| > MIN_POS` lands in the bucket
//! `i = ⌈ln|v| / ln γ⌉` (sign-mirrored for negatives), where
//! `γ = (1 + α)/(1 − α)` and `α =` [`ALPHA`]. Bucket counts are plain
//! `u64`s, so [`QuantileSketch::merge`] is element-wise integer addition —
//! exactly associative and commutative, with the empty sketch as identity.
//! Per-worker sketches folded at a join are therefore **bit-identical for
//! any thread count**, which is the property the streaming sweep path
//! builds its determinism guarantee on.
//!
//! # Error bound
//!
//! Rank is exact: the sketch stores exact integer counts per bucket, and
//! [`QuantileSketch::quantile`] selects the bucket containing the
//! nearest-rank order statistic `r = clamp(⌈q·n⌉, 1, n)` — the same rank
//! rule the workspace uses for exact quantiles over sorted vectors. Only
//! the *value* is approximated, by the bucket's geometric midpoint
//! `sign · γ^(i − 1/2)` clamped into the exactly-tracked `[min, max]`:
//!
//! * for `|v| > MIN_POS` the relative error is at most `√γ − 1` (≈ 1.005 %
//!   at `α = 0.01`) — see [`QuantileSketch::relative_error_bound`];
//! * observations with `|v| ≤ MIN_POS` share one zero bucket reported as
//!   `0.0`, an absolute error of at most [`MIN_POS`] (`1e-12`).
//!
//! Memory is one `u64` per *occupied* bucket plus a contiguous span of
//! empties between the extremes: ~460 buckets per decade of dynamic range
//! at `α = 0.01`.

use crate::StatsError;

/// Relative-accuracy parameter of the sketch: quantile *values* are exact
/// in rank and within `√γ − 1 ≈ α` in relative value error.
pub const ALPHA: f64 = 0.01;

/// Magnitudes at or below this threshold collapse into the zero bucket
/// (reported as exactly `0.0`).
pub const MIN_POS: f64 = 1e-12;

/// `γ = (1 + α)/(1 − α)`: the geometric bucket growth factor.
fn gamma() -> f64 {
    (1.0 + ALPHA) / (1.0 - ALPHA)
}

/// Bucket index for a magnitude `m > MIN_POS`: `⌈ln m / ln γ⌉`.
fn bucket_index(m: f64) -> i64 {
    (m.ln() / gamma().ln()).ceil() as i64
}

/// Geometric midpoint of bucket `i`: `γ^(i − 1/2)`.
fn bucket_midpoint(i: i64) -> f64 {
    ((i as f64 - 0.5) * gamma().ln()).exp()
}

/// A contiguous span of log-spaced bucket counts. `bins[k]` counts
/// magnitudes in bucket `offset + k`. Kept *canonical* (first and last
/// bin non-zero, or empty) by construction, so derived equality compares
/// logical content.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct LogBins {
    offset: i64,
    bins: Vec<u64>,
}

impl LogBins {
    fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    fn add(&mut self, idx: i64) {
        if self.bins.is_empty() {
            self.offset = idx;
            self.bins.push(1);
            return;
        }
        if idx < self.offset {
            let grow = (self.offset - idx) as usize;
            let mut widened = vec![0u64; grow + self.bins.len()];
            widened[grow..].copy_from_slice(&self.bins);
            self.bins = widened;
            self.offset = idx;
        } else if idx >= self.offset + self.bins.len() as i64 {
            self.bins.resize((idx - self.offset) as usize + 1, 0);
        }
        self.bins[(idx - self.offset) as usize] += 1;
    }

    fn merge(&mut self, other: &LogBins) {
        if other.bins.is_empty() {
            return;
        }
        if self.bins.is_empty() {
            *self = other.clone();
            return;
        }
        let lo = self.offset.min(other.offset);
        let hi = (self.offset + self.bins.len() as i64).max(other.offset + other.bins.len() as i64);
        let mut merged = vec![0u64; (hi - lo) as usize];
        for (k, &c) in self.bins.iter().enumerate() {
            merged[(self.offset - lo) as usize + k] = c;
        }
        for (k, &c) in other.bins.iter().enumerate() {
            merged[(other.offset - lo) as usize + k] += c;
        }
        self.offset = lo;
        self.bins = merged;
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&(self.bins.len() as u64).to_le_bytes());
        for &b in &self.bins {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }

    fn decode(bytes: &[u8], at: &mut usize) -> crate::Result<LogBins> {
        let offset = i64::from_le_bytes(take(bytes, at)?);
        let len = u64::from_le_bytes(take(bytes, at)?) as usize;
        let mut bins = Vec::with_capacity(len);
        for _ in 0..len {
            bins.push(u64::from_le_bytes(take(bytes, at)?));
        }
        if !bins.is_empty() && (bins[0] == 0 || bins[bins.len() - 1] == 0) {
            return Err(StatsError::BadInput("sketch bins not in canonical form"));
        }
        Ok(LogBins { offset, bins })
    }
}

fn take(bytes: &[u8], at: &mut usize) -> crate::Result<[u8; 8]> {
    let end = at
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or(StatsError::BadInput("sketch bytes truncated"))?;
    let mut word = [0u8; 8];
    word.copy_from_slice(&bytes[*at..end]);
    *at = end;
    Ok(word)
}

/// Serialization format version written by [`QuantileSketch::to_bytes`].
const CODEC_VERSION: u8 = 1;

/// Mergeable quantile sketch over `f64` observations (log-spaced
/// histogram; see the [module docs](self) for the bucketing rule and the
/// error bound). `merge` is associative and commutative with the empty
/// sketch as identity, and equality is logical-content equality, so two
/// sketches built from the same multiset of observations — in any order,
/// by any partition across workers — compare equal.
///
/// ```
/// use ckpt_stats::sketch::QuantileSketch;
///
/// let mut a = QuantileSketch::new();
/// let mut b = QuantileSketch::new();
/// for v in [1.0, 2.0, 3.0] {
///     a.add(v);
/// }
/// for v in [4.0, 5.0] {
///     b.add(v);
/// }
/// a.merge(&b);
/// let p50 = a.quantile(0.5);
/// assert!((p50 - 3.0).abs() / 3.0 <= a.relative_error_bound());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantileSketch {
    count: u64,
    zero: u64,
    min: f64,
    max: f64,
    neg: LogBins,
    pos: LogBins,
}

impl QuantileSketch {
    /// An empty sketch (`min = +∞`, `max = −∞`, like `StreamSummary`).
    pub fn new() -> Self {
        QuantileSketch {
            count: 0,
            zero: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            neg: LogBins::default(),
            pos: LogBins::default(),
        }
    }

    /// Build a sketch from a slice of observations.
    pub fn from_values(values: &[f64]) -> Self {
        let mut s = QuantileSketch::new();
        for &v in values {
            s.add(v);
        }
        s
    }

    /// Number of observations ingested.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Upper bound on the relative value error of [`Self::quantile`] for
    /// observations with `|v| > MIN_POS`: `√γ − 1` (≈ 1.005 % at
    /// `α = 0.01`).
    pub fn relative_error_bound(&self) -> f64 {
        gamma().sqrt() - 1.0
    }

    /// Ingest one observation.
    ///
    /// # Panics
    /// Panics on NaN — a NaN metric upstream is a bug, not data.
    #[inline]
    pub fn add(&mut self, v: f64) {
        assert!(!v.is_nan(), "sketch values must not be NaN");
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        if v.abs() <= MIN_POS {
            self.zero += 1;
        } else if v > 0.0 {
            self.pos.add(bucket_index(v));
        } else {
            self.neg.add(bucket_index(-v));
        }
    }

    /// Merge another sketch in. Element-wise integer addition of bucket
    /// counts: exactly associative, commutative, and identity on empty —
    /// any merge tree over the same per-worker sketches yields the same
    /// bits.
    pub fn merge(&mut self, other: &QuantileSketch) {
        self.count += other.count;
        self.zero += other.zero;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.neg.merge(&other.neg);
        self.pos.merge(&other.pos);
    }

    /// Nearest-rank quantile estimate for `q ∈ [0, 1]` (`NaN` when the
    /// sketch is empty).
    ///
    /// The rank `r = clamp(⌈q·n⌉, 1, n)` is exact — identical to the
    /// workspace's sorted-vector quantile rule — and the returned value is
    /// the containing bucket's geometric midpoint clamped into the exact
    /// `[min, max]`, so it is within the documented relative error bound
    /// of the exact order statistic.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        // Ascending value order: negatives (largest magnitude first), the
        // zero bucket, then positives (smallest magnitude first).
        for (k, &c) in self.neg.bins.iter().enumerate().rev() {
            seen += c;
            if seen >= rank {
                let mid = -bucket_midpoint(self.neg.offset + k as i64);
                return mid.clamp(self.min, self.max);
            }
        }
        seen += self.zero;
        if seen >= rank {
            return 0.0f64.clamp(self.min, self.max);
        }
        for (k, &c) in self.pos.bins.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = bucket_midpoint(self.pos.offset + k as i64);
                return mid.clamp(self.min, self.max);
            }
        }
        // Unreachable when the per-bucket counts sum to `count`; fall back
        // to the exact maximum rather than panic in release builds.
        self.max
    }

    /// Canonical byte serialization (little-endian, versioned). Because
    /// bucket spans are kept canonical, equal sketches serialize to equal
    /// bytes — the property the sweep checkpoint codec's byte-identical
    /// resume contract relies on.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(41 + 8 * (self.neg.bins.len() + self.pos.bins.len()));
        out.push(CODEC_VERSION);
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.zero.to_le_bytes());
        out.extend_from_slice(&self.min.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max.to_bits().to_le_bytes());
        self.neg.encode(&mut out);
        self.pos.encode(&mut out);
        out
    }

    /// Decode a sketch serialized by [`Self::to_bytes`], validating the
    /// version, framing, and count/bucket consistency.
    pub fn from_bytes(bytes: &[u8]) -> crate::Result<Self> {
        if bytes.first() != Some(&CODEC_VERSION) {
            return Err(StatsError::BadInput("unknown sketch codec version"));
        }
        let mut at = 1usize;
        let count = u64::from_le_bytes(take(bytes, &mut at)?);
        let zero = u64::from_le_bytes(take(bytes, &mut at)?);
        let min = f64::from_bits(u64::from_le_bytes(take(bytes, &mut at)?));
        let max = f64::from_bits(u64::from_le_bytes(take(bytes, &mut at)?));
        let neg = LogBins::decode(bytes, &mut at)?;
        let pos = LogBins::decode(bytes, &mut at)?;
        if at != bytes.len() {
            return Err(StatsError::BadInput("trailing bytes after sketch"));
        }
        if zero + neg.total() + pos.total() != count {
            return Err(StatsError::BadInput("sketch bucket counts disagree"));
        }
        Ok(QuantileSketch {
            count,
            zero,
            min,
            max,
            neg,
            pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        sorted[idx]
    }

    fn assert_within_bound(s: &QuantileSketch, sorted: &[f64]) {
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(sorted, q);
            let approx = s.quantile(q);
            let tol = s.relative_error_bound() * exact.abs() + MIN_POS;
            assert!(
                (approx - exact).abs() <= tol,
                "q={q}: approx {approx} vs exact {exact} (tol {tol})"
            );
        }
    }

    #[test]
    fn empty_sketch_is_nan_and_identity() {
        let e = QuantileSketch::new();
        assert!(e.quantile(0.5).is_nan());
        assert_eq!(e.count(), 0);
        let mut s = QuantileSketch::from_values(&[1.0, 2.0, 3.0]);
        let before = s.clone();
        s.merge(&e);
        assert_eq!(s, before);
        let mut e2 = QuantileSketch::new();
        e2.merge(&before);
        assert_eq!(e2, before);
    }

    #[test]
    fn quantiles_track_exact_values() {
        let values: Vec<f64> = (1..=1000).map(|i| (i as f64) * 0.37).collect();
        let s = QuantileSketch::from_values(&values);
        assert_within_bound(&s, &values);
        assert_eq!(s.min(), values[0]);
        assert_eq!(s.max(), values[999]);
    }

    #[test]
    fn negative_and_zero_values() {
        let mut values = vec![-50.0, -1.0, 0.0, 0.0, 2.0, 100.0, -3.0e-13];
        let s = QuantileSketch::from_values(&values);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_within_bound(&s, &values);
        // Extremes stay inside the exact range.
        assert!(s.quantile(0.0) >= s.min());
        assert!(s.quantile(1.0) <= s.max());
    }

    #[test]
    fn merge_matches_concat() {
        let a: Vec<f64> = (0..300).map(|i| (i as f64 * 0.11).exp() % 977.0).collect();
        let b: Vec<f64> = (0..200).map(|i| (i as f64) + 0.5).collect();
        let mut merged = QuantileSketch::from_values(&a);
        merged.merge(&QuantileSketch::from_values(&b));
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        assert_eq!(merged, QuantileSketch::from_values(&concat));
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let parts: Vec<QuantileSketch> = [&[1.0, 5.0, 9.0][..], &[2.0, -4.0], &[1e6, 1e-6, 0.0]]
            .iter()
            .map(|vs| QuantileSketch::from_values(vs))
            .collect();
        let mut ab_c = parts[0].clone();
        ab_c.merge(&parts[1]);
        ab_c.merge(&parts[2]);
        let mut a_bc = parts[1].clone();
        a_bc.merge(&parts[2]);
        let mut left = parts[0].clone();
        left.merge(&a_bc);
        assert_eq!(ab_c, left);
        let mut cba = parts[2].clone();
        cba.merge(&parts[1]);
        cba.merge(&parts[0]);
        assert_eq!(ab_c, cba);
    }

    #[test]
    fn bytes_round_trip() {
        let s = QuantileSketch::from_values(&[-7.5, 0.0, 1e-14, 3.25, 88.0, 1e9]);
        let back = QuantileSketch::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(s, back);
        assert_eq!(s.to_bytes(), back.to_bytes());
        let empty = QuantileSketch::new();
        assert_eq!(
            QuantileSketch::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn bytes_reject_corruption() {
        let s = QuantileSketch::from_values(&[1.0, 2.0]);
        let bytes = s.to_bytes();
        assert!(QuantileSketch::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(QuantileSketch::from_bytes(&wrong_version).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(QuantileSketch::from_bytes(&trailing).is_err());
        let mut bad_count = bytes;
        bad_count[1] ^= 0xff;
        assert!(QuantileSketch::from_bytes(&bad_count).is_err());
        assert!(QuantileSketch::from_bytes(&[]).is_err());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn nan_input_panics() {
        QuantileSketch::new().add(f64::NAN);
    }
}
