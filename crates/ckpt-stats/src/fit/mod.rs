//! Maximum-likelihood fitting with goodness-of-fit diagnostics.
//!
//! Figure 5 of the paper fits five families — exponential, geometric,
//! Laplace, normal, Pareto — to Google task failure intervals with MLE and
//! compares their CDFs against the sample distribution, concluding that
//! *"a Pareto distribution fits the sample distribution best in general"*
//! while *"if we just consider failure intervals within 1000 seconds, the
//! best-fit distribution is an exponential"* with rate λ = 0.00423445.
//! [`fit_all`] + [`rank_by_ks`] reproduce exactly that analysis.

use crate::dist::{
    ContinuousDist, DynContinuousDist, Exponential, Gamma, Geometric, Laplace, LogNormal, Normal,
    Pareto, Uniform, Weibull,
};
use crate::ecdf::Ecdf;
use crate::solve::{bisect, digamma, newton_bisect};
use crate::{Result, StatsError};

/// The distribution families this module can fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Exponential(λ).
    Exponential,
    /// Geometric(p) on {1, 2, ...}.
    Geometric,
    /// Laplace(μ, b).
    Laplace,
    /// Normal(μ, σ).
    Normal,
    /// Pareto(x_m, α).
    Pareto,
    /// Weibull(k, λ).
    Weibull,
    /// LogNormal(μ, σ).
    LogNormal,
    /// Uniform(a, b).
    Uniform,
    /// Gamma(k, θ).
    Gamma,
}

impl Family {
    /// Human-readable family name, matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Exponential => "Exponential",
            Family::Geometric => "Geometric",
            Family::Laplace => "Laplace",
            Family::Normal => "Normal",
            Family::Pareto => "Pareto",
            Family::Weibull => "Weibull",
            Family::LogNormal => "LogNormal",
            Family::Uniform => "Uniform",
            Family::Gamma => "Gamma",
        }
    }

    /// Number of free parameters (for AIC).
    pub fn k(&self) -> usize {
        match self {
            Family::Exponential | Family::Geometric => 1,
            _ => 2,
        }
    }
}

/// Result of fitting one family to a sample set.
pub struct FitReport {
    /// Which family was fitted.
    pub family: Family,
    /// `(name, value)` pairs of the fitted parameters.
    pub params: Vec<(&'static str, f64)>,
    /// Log-likelihood of the sample under the fitted parameters.
    pub loglik: f64,
    /// Akaike information criterion `2k − 2·loglik` (lower is better).
    pub aic: f64,
    /// Two-sided Kolmogorov–Smirnov statistic vs the sample ECDF
    /// (lower is better; this is the paper's visual-CDF-closeness criterion
    /// made quantitative).
    pub ks: f64,
    /// Sample size.
    pub n: usize,
    dist: Box<dyn DynContinuousDist>,
}

impl FitReport {
    /// CDF of the fitted distribution (for plotting against the ECDF, as in
    /// Figure 5).
    pub fn cdf(&self, x: f64) -> f64 {
        self.dist.cdf_dyn(x)
    }

    /// Mean of the fitted distribution (may be infinite for heavy tails).
    pub fn mean(&self) -> f64 {
        self.dist.mean_dyn()
    }

    /// Look up a fitted parameter by name.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

impl std::fmt::Debug for FitReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FitReport")
            .field("family", &self.family)
            .field("params", &self.params)
            .field("loglik", &self.loglik)
            .field("aic", &self.aic)
            .field("ks", &self.ks)
            .field("n", &self.n)
            .finish()
    }
}

impl std::fmt::Display for FitReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:<12}", self.family.name())?;
        for (name, value) in &self.params {
            write!(f, " {name}={value:.6}")?;
        }
        write!(
            f,
            "  loglik={:.2} aic={:.2} ks={:.4}",
            self.loglik, self.aic, self.ks
        )
    }
}

fn validate_positive(samples: &[f64], what: &'static str) -> Result<()> {
    if samples.is_empty() {
        return Err(StatsError::BadInput(what));
    }
    if samples.iter().any(|&x| !x.is_finite() || x <= 0.0) {
        return Err(StatsError::BadInput(what));
    }
    Ok(())
}

fn validate_finite(samples: &[f64], what: &'static str) -> Result<()> {
    if samples.is_empty() {
        return Err(StatsError::BadInput(what));
    }
    if samples.iter().any(|&x| !x.is_finite()) {
        return Err(StatsError::BadInput(what));
    }
    Ok(())
}

/// MLE for the exponential: `λ̂ = n / Σx`.
pub fn fit_exponential(samples: &[f64]) -> Result<Exponential> {
    validate_positive(samples, "fit_exponential: need positive samples")?;
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Exponential::from_mean(mean)
}

/// MLE for the normal: `μ̂ = mean`, `σ̂² = (1/n)Σ(x−μ̂)²`.
pub fn fit_normal(samples: &[f64]) -> Result<Normal> {
    validate_finite(samples, "fit_normal: need finite samples")?;
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(StatsError::BadInput("fit_normal: zero variance"));
    }
    Normal::new(mean, var.sqrt())
}

/// MLE for the Laplace: `μ̂ = median`, `b̂ = (1/n)Σ|x−μ̂|`.
pub fn fit_laplace(samples: &[f64]) -> Result<Laplace> {
    validate_finite(samples, "fit_laplace: need finite samples")?;
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
    };
    let b = samples.iter().map(|x| (x - median).abs()).sum::<f64>() / samples.len() as f64;
    if b <= 0.0 {
        return Err(StatsError::BadInput("fit_laplace: zero dispersion"));
    }
    Laplace::new(median, b)
}

/// MLE for Pareto Type I: `x̂_m = min(x)`, `α̂ = n / Σ ln(x/x̂_m)`.
pub fn fit_pareto(samples: &[f64]) -> Result<Pareto> {
    validate_positive(samples, "fit_pareto: need positive samples")?;
    let xm = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let log_sum: f64 = samples.iter().map(|&x| (x / xm).ln()).sum();
    if log_sum <= 0.0 {
        return Err(StatsError::BadInput(
            "fit_pareto: degenerate samples (all equal)",
        ));
    }
    let alpha = samples.len() as f64 / log_sum;
    Pareto::new(xm, alpha)
}

/// MLE for the geometric on `{1, 2, ...}` after rounding samples to integers
/// (≥ 1): `p̂ = n / Σk`.
pub fn fit_geometric(samples: &[f64]) -> Result<Geometric> {
    validate_positive(samples, "fit_geometric: need positive samples")?;
    let sum: f64 = samples.iter().map(|&x| x.round().max(1.0)).sum();
    let p = samples.len() as f64 / sum;
    Geometric::new(p.min(1.0))
}

/// MLE for the log-normal: fit a normal to `ln x`.
pub fn fit_lognormal(samples: &[f64]) -> Result<LogNormal> {
    validate_positive(samples, "fit_lognormal: need positive samples")?;
    let logs: Vec<f64> = samples.iter().map(|x| x.ln()).collect();
    let n = logs.len() as f64;
    let mu = logs.iter().sum::<f64>() / n;
    let var = logs.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / n;
    if var <= 0.0 {
        return Err(StatsError::BadInput("fit_lognormal: zero log-variance"));
    }
    LogNormal::new(mu, var.sqrt())
}

/// MLE for the uniform: `â = min`, `b̂ = max` (widened infinitesimally so all
/// samples lie strictly inside).
pub fn fit_uniform(samples: &[f64]) -> Result<Uniform> {
    validate_finite(samples, "fit_uniform: need finite samples")?;
    let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if lo >= hi {
        return Err(StatsError::BadInput("fit_uniform: degenerate samples"));
    }
    // Nudge hi so that max(x) has positive density under the half-open pdf.
    Uniform::new(lo, hi + (hi - lo) * 1e-12 + f64::MIN_POSITIVE)
}

/// MLE for the gamma: the shape solves `ln k − ψ(k) = ln(mean) − mean(ln x)`
/// (strictly decreasing left side ⇒ bisection), then `θ̂ = mean / k̂`.
pub fn fit_gamma(samples: &[f64]) -> Result<Gamma> {
    validate_positive(samples, "fit_gamma: need positive samples")?;
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let mean_ln = samples.iter().map(|x| x.ln()).sum::<f64>() / n;
    let s = mean.ln() - mean_ln;
    if s <= 0.0 {
        return Err(StatsError::BadInput(
            "fit_gamma: degenerate samples (all equal)",
        ));
    }
    let k = bisect(|k| k.ln() - digamma(k) - s, 1e-4, 1e6, 1e-10, 300)
        .map_err(|_| StatsError::NoConvergence("fit_gamma shape"))?;
    Gamma::new(k, mean / k)
}

/// MLE for the Weibull via safe Newton on the shape's profile-likelihood
/// equation, then closed-form scale.
pub fn fit_weibull(samples: &[f64]) -> Result<Weibull> {
    validate_positive(samples, "fit_weibull: need positive samples")?;
    let n = samples.len() as f64;
    let mean_ln: f64 = samples.iter().map(|x| x.ln()).sum::<f64>() / n;
    // Profile equation: f(k) = Σ x^k ln x / Σ x^k − 1/k − mean_ln = 0.
    let g = |k: f64| -> (f64, f64) {
        let mut s0 = 0.0; // Σ x^k
        let mut s1 = 0.0; // Σ x^k ln x
        let mut s2 = 0.0; // Σ x^k (ln x)^2
        for &x in samples {
            let lx = x.ln();
            let xk = (k * lx).exp();
            s0 += xk;
            s1 += xk * lx;
            s2 += xk * lx * lx;
        }
        let f = s1 / s0 - 1.0 / k - mean_ln;
        let df = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
        (f, df)
    };
    // Bracket the shape generously; k=1 (exponential) is a good start.
    let k = newton_bisect(g, 1e-3, 1e3, 1.0, 1e-10, 200)
        .map_err(|_| StatsError::NoConvergence("fit_weibull shape"))?;
    let s0: f64 = samples.iter().map(|&x| (k * x.ln()).exp()).sum();
    let scale = (s0 / n).powf(1.0 / k);
    Weibull::new(k, scale)
}

fn loglik<D: ContinuousDist>(d: &D, samples: &[f64]) -> f64 {
    samples.iter().map(|&x| d.ln_pdf(x)).sum()
}

fn report<D: ContinuousDist + Send + Sync + 'static>(
    family: Family,
    params: Vec<(&'static str, f64)>,
    d: D,
    samples: &[f64],
    ecdf: &Ecdf,
) -> FitReport {
    let ll = loglik(&d, samples);
    let aic = 2.0 * family.k() as f64 - 2.0 * ll;
    let ks = ecdf.ks_statistic(|x| d.cdf(x));
    FitReport {
        family,
        params,
        loglik: ll,
        aic,
        ks,
        n: samples.len(),
        dist: Box::new(d),
    }
}

/// Fit one family to `samples`, returning a full report.
pub fn fit_family(family: Family, samples: &[f64]) -> Result<FitReport> {
    let ecdf = Ecdf::new(samples)?;
    Ok(match family {
        Family::Exponential => {
            let d = fit_exponential(samples)?;
            report(family, vec![("rate", d.rate())], d, samples, &ecdf)
        }
        Family::Geometric => {
            let d = fit_geometric(samples)?;
            report(family, vec![("p", d.p())], d, samples, &ecdf)
        }
        Family::Laplace => {
            let d = fit_laplace(samples)?;
            report(
                family,
                vec![("mu", d.mu()), ("b", d.b())],
                d,
                samples,
                &ecdf,
            )
        }
        Family::Normal => {
            let d = fit_normal(samples)?;
            report(
                family,
                vec![("mu", d.mu()), ("sigma", d.sigma())],
                d,
                samples,
                &ecdf,
            )
        }
        Family::Pareto => {
            let d = fit_pareto(samples)?;
            report(
                family,
                vec![("scale", d.scale()), ("shape", d.shape())],
                d,
                samples,
                &ecdf,
            )
        }
        Family::Weibull => {
            let d = fit_weibull(samples)?;
            report(
                family,
                vec![("shape", d.shape()), ("scale", d.scale())],
                d,
                samples,
                &ecdf,
            )
        }
        Family::LogNormal => {
            let d = fit_lognormal(samples)?;
            report(
                family,
                vec![("mu", d.mu()), ("sigma", d.sigma())],
                d,
                samples,
                &ecdf,
            )
        }
        Family::Uniform => {
            let d = fit_uniform(samples)?;
            report(family, vec![("a", d.a()), ("b", d.b())], d, samples, &ecdf)
        }
        Family::Gamma => {
            let d = fit_gamma(samples)?;
            report(
                family,
                vec![("shape", d.shape()), ("scale", d.scale())],
                d,
                samples,
                &ecdf,
            )
        }
    })
}

/// The five families the paper compares in Figure 5.
pub const PAPER_FAMILIES: [Family; 5] = [
    Family::Exponential,
    Family::Geometric,
    Family::Laplace,
    Family::Normal,
    Family::Pareto,
];

/// Fit all requested families, skipping any that fail on the given sample set.
pub fn fit_all(families: &[Family], samples: &[f64]) -> Vec<FitReport> {
    families
        .iter()
        .filter_map(|&f| fit_family(f, samples).ok())
        .collect()
}

/// Rank fit reports by KS statistic ascending (best CDF match first), the
/// quantitative version of the paper's visual comparison.
pub fn rank_by_ks(mut reports: Vec<FitReport>) -> Vec<FitReport> {
    reports.sort_by(|a, b| a.ks.partial_cmp(&b.ks).unwrap());
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn samples_from<D: ContinuousDist>(d: &D, seed: u64, n: usize) -> Vec<f64> {
        let mut rng = Xoshiro256StarStar::new(seed);
        d.sample_n(&mut rng, n)
    }

    #[test]
    fn exponential_recovery() {
        let d = Exponential::new(0.00423445).unwrap();
        let xs = samples_from(&d, 1, 50_000);
        let f = fit_exponential(&xs).unwrap();
        assert!((f.rate() - d.rate()).abs() / d.rate() < 0.03);
    }

    #[test]
    fn normal_recovery() {
        let d = Normal::new(42.0, 7.0).unwrap();
        let xs = samples_from(&d, 2, 50_000);
        let f = fit_normal(&xs).unwrap();
        assert!((f.mu() - 42.0).abs() < 0.2);
        assert!((f.sigma() - 7.0).abs() < 0.2);
    }

    #[test]
    fn laplace_recovery() {
        let d = Laplace::new(10.0, 3.0).unwrap();
        let xs = samples_from(&d, 3, 50_000);
        let f = fit_laplace(&xs).unwrap();
        assert!((f.mu() - 10.0).abs() < 0.2);
        assert!((f.b() - 3.0).abs() < 0.2);
    }

    #[test]
    fn pareto_recovery() {
        let d = Pareto::new(30.0, 1.3).unwrap();
        let xs = samples_from(&d, 4, 50_000);
        let f = fit_pareto(&xs).unwrap();
        assert!((f.scale() - 30.0).abs() < 0.5);
        assert!((f.shape() - 1.3).abs() < 0.05);
    }

    #[test]
    fn weibull_recovery() {
        let d = Weibull::new(0.8, 120.0).unwrap();
        let xs = samples_from(&d, 5, 50_000);
        let f = fit_weibull(&xs).unwrap();
        assert!((f.shape() - 0.8).abs() < 0.03, "shape = {}", f.shape());
        assert!((f.scale() - 120.0).abs() < 5.0, "scale = {}", f.scale());
    }

    #[test]
    fn gamma_recovery() {
        use crate::dist::Gamma;
        let d = Gamma::new(2.3, 40.0).unwrap();
        let xs = samples_from(&d, 55, 50_000);
        let f = fit_gamma(&xs).unwrap();
        assert!((f.shape() - 2.3).abs() < 0.1, "shape = {}", f.shape());
        assert!((f.scale() - 40.0).abs() < 2.0, "scale = {}", f.scale());
    }

    #[test]
    fn gamma_fit_rejects_degenerate() {
        assert!(fit_gamma(&[2.0, 2.0, 2.0]).is_err());
        assert!(fit_gamma(&[]).is_err());
    }

    #[test]
    fn lognormal_recovery() {
        let d = LogNormal::new(3.0, 0.9).unwrap();
        let xs = samples_from(&d, 6, 50_000);
        let f = fit_lognormal(&xs).unwrap();
        assert!((f.mu() - 3.0).abs() < 0.05);
        assert!((f.sigma() - 0.9).abs() < 0.05);
    }

    #[test]
    fn geometric_recovery() {
        use crate::dist::DiscreteDist;
        let d = Geometric::new(0.02).unwrap();
        let mut rng = Xoshiro256StarStar::new(7);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| DiscreteDist::sample(&d, &mut rng) as f64)
            .collect();
        let f = fit_geometric(&xs).unwrap();
        assert!((f.p() - 0.02).abs() < 0.002);
    }

    #[test]
    fn uniform_recovery() {
        let d = Uniform::new(5.0, 9.0).unwrap();
        let xs = samples_from(&d, 8, 10_000);
        let f = fit_uniform(&xs).unwrap();
        assert!((f.a() - 5.0).abs() < 0.01);
        assert!((f.b() - 9.0).abs() < 0.01);
    }

    #[test]
    fn fitters_reject_empty_and_bad() {
        assert!(fit_exponential(&[]).is_err());
        assert!(fit_exponential(&[-1.0]).is_err());
        assert!(fit_pareto(&[2.0, 2.0, 2.0]).is_err());
        assert!(fit_normal(&[3.0, 3.0, 3.0]).is_err());
        assert!(fit_uniform(&[1.0, 1.0]).is_err());
    }

    #[test]
    fn ks_ranking_identifies_true_family() {
        // Pareto data: Pareto should rank above normal/laplace/exponential —
        // the Figure 5(a) conclusion.
        let d = Pareto::new(25.0, 1.1).unwrap();
        let xs = samples_from(&d, 9, 20_000);
        let ranked = rank_by_ks(fit_all(&PAPER_FAMILIES, &xs));
        assert_eq!(ranked[0].family, Family::Pareto, "ranking: {:?}", ranked);
    }

    #[test]
    fn ks_ranking_short_intervals_prefer_exponential_over_normal() {
        // Exponential body: exponential should beat normal and laplace —
        // the Figure 5(b) conclusion.
        let d = Exponential::new(0.004).unwrap();
        let xs = samples_from(&d, 10, 20_000);
        let ranked = rank_by_ks(fit_all(&PAPER_FAMILIES, &xs));
        let exp_rank = ranked
            .iter()
            .position(|r| r.family == Family::Exponential)
            .unwrap();
        let norm_rank = ranked
            .iter()
            .position(|r| r.family == Family::Normal)
            .unwrap();
        assert!(exp_rank < norm_rank);
    }

    #[test]
    fn aic_consistent_with_loglik() {
        let d = Exponential::new(1.0).unwrap();
        let xs = samples_from(&d, 11, 1000);
        let r = fit_family(Family::Exponential, &xs).unwrap();
        assert!((r.aic - (2.0 - 2.0 * r.loglik)).abs() < 1e-9);
    }

    #[test]
    fn report_param_lookup_and_display() {
        let d = Exponential::new(2.0).unwrap();
        let xs = samples_from(&d, 12, 1000);
        let r = fit_family(Family::Exponential, &xs).unwrap();
        assert!(r.param("rate").is_some());
        assert!(r.param("nope").is_none());
        let text = format!("{r}");
        assert!(text.contains("Exponential"));
        assert!(text.contains("ks="));
    }
}
