//! Probability distributions: the continuous families the paper fits to
//! Google failure intervals in Figure 5 (exponential, Pareto, Laplace,
//! normal, geometric) plus Weibull, log-normal, uniform and gamma, and the
//! discrete Poisson/geometric counting distributions.
//!
//! All sampling is inverse-transform (or explicit rejection for the gamma)
//! on top of [`Rng64`], so draws are bit-for-bit reproducible across
//! platforms — no dependency on external RNG crates' value streams.

use crate::rng::Rng64;
use crate::solve::{erfc, gamma_p, inv_norm_cdf, ln_factorial, ln_gamma};
use crate::{Result, StatsError};

/// A continuous univariate distribution.
///
/// `sample` has a default inverse-transform implementation via
/// [`ContinuousDist::quantile`]; distributions with cheaper direct samplers
/// override it.
pub trait ContinuousDist {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile (inverse CDF) at `p ∈ (0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Expected value (may be `inf` for heavy tails).
    fn mean(&self) -> f64;

    /// Variance (may be `inf` for heavy tails).
    fn variance(&self) -> f64;

    /// Natural log of the density at `x` (default: `ln(pdf(x))`; overridden
    /// where direct evaluation is more stable).
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    /// Draw one value.
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.next_f64_open())
    }

    /// Draw `n` values.
    fn sample_n<R: Rng64 + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Object-safe view of a [`ContinuousDist`] (the generic `sample` method
/// keeps the main trait from being a trait object).
pub trait DynContinuousDist: Send + Sync {
    /// CDF, callable through a trait object.
    fn cdf_dyn(&self, x: f64) -> f64;
    /// Mean, callable through a trait object.
    fn mean_dyn(&self) -> f64;
}

impl<D: ContinuousDist + Send + Sync> DynContinuousDist for D {
    fn cdf_dyn(&self, x: f64) -> f64 {
        self.cdf(x)
    }
    fn mean_dyn(&self) -> f64 {
        self.mean()
    }
}

/// A discrete distribution over the non-negative integers.
pub trait DiscreteDist {
    /// Draw one value.
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64;

    /// Expected value.
    fn mean(&self) -> f64;
}

fn require(cond: bool, what: &'static str, value: f64) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(StatsError::BadParam { what, value })
    }
}

// --- Exponential -------------------------------------------------------------

/// Exponential(λ) on `[0, ∞)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// From the rate λ > 0.
    pub fn new(rate: f64) -> Result<Self> {
        require(rate.is_finite() && rate > 0.0, "exponential rate", rate)?;
        Ok(Self { rate })
    }

    /// From the mean `1/λ > 0`.
    pub fn from_mean(mean: f64) -> Result<Self> {
        require(mean.is_finite() && mean > 0.0, "exponential mean", mean)?;
        Ok(Self { rate: 1.0 / mean })
    }

    /// The rate λ.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ContinuousDist for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }
    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p in (0,1) required, got {p}");
        -(-p).ln_1p() / self.rate
    }
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }
}

// --- Normal ------------------------------------------------------------------

/// Normal(μ, σ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// From mean μ and standard deviation σ > 0.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        require(mu.is_finite(), "normal mu", mu)?;
        require(sigma.is_finite() && sigma > 0.0, "normal sigma", sigma)?;
        Ok(Self { mu, sigma })
    }

    /// The location μ.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale σ.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDist for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }
    fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * inv_norm_cdf(p)
    }
    fn mean(&self) -> f64 {
        self.mu
    }
    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        -0.5 * z * z - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
}

// --- LogNormal ---------------------------------------------------------------

/// LogNormal(μ, σ): `ln X ~ Normal(μ, σ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From the log-space parameters.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        require(mu.is_finite(), "lognormal mu", mu)?;
        require(sigma.is_finite() && sigma > 0.0, "lognormal sigma", sigma)?;
        Ok(Self { mu, sigma })
    }

    /// From the median and a multiplicative spread factor `s > 1`: the
    /// central ~68 % of mass lies within `[median/s, median·s]`
    /// (`μ = ln median`, `σ = ln s`).
    pub fn from_median_spread(median: f64, spread: f64) -> Result<Self> {
        require(
            median.is_finite() && median > 0.0,
            "lognormal median",
            median,
        )?;
        require(
            spread.is_finite() && spread > 1.0,
            "lognormal spread",
            spread,
        )?;
        Self::new(median.ln(), spread.ln())
    }

    /// The log-space location μ.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The log-space scale σ.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl ContinuousDist for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }
    fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * inv_norm_cdf(p)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
}

// --- Pareto ------------------------------------------------------------------

/// Pareto Type I (x_m, α) on `[x_m, ∞)` — the paper's heavy tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// From the scale `x_m > 0` and shape `α > 0`.
    pub fn new(scale: f64, shape: f64) -> Result<Self> {
        require(scale.is_finite() && scale > 0.0, "pareto scale", scale)?;
        require(shape.is_finite() && shape > 0.0, "pareto shape", shape)?;
        Ok(Self { scale, shape })
    }

    /// The scale (minimum) x_m.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The shape (tail index) α.
    #[inline]
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl ContinuousDist for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            self.shape * self.scale.powf(self.shape) / x.powf(self.shape + 1.0)
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= self.scale {
            0.0
        } else {
            1.0 - (self.scale / x).powf(self.shape)
        }
    }
    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p in (0,1) required, got {p}");
        self.scale * (1.0 - p).powf(-1.0 / self.shape)
    }
    fn mean(&self) -> f64 {
        if self.shape > 1.0 {
            self.shape * self.scale / (self.shape - 1.0)
        } else {
            f64::INFINITY
        }
    }
    fn variance(&self) -> f64 {
        if self.shape > 2.0 {
            let a = self.shape;
            self.scale * self.scale * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        } else {
            f64::INFINITY
        }
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.scale {
            f64::NEG_INFINITY
        } else {
            self.shape.ln() + self.shape * self.scale.ln() - (self.shape + 1.0) * x.ln()
        }
    }
}

// --- Laplace -----------------------------------------------------------------

/// Laplace(μ, b) — double exponential.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    mu: f64,
    b: f64,
}

impl Laplace {
    /// From location μ and scale `b > 0`.
    pub fn new(mu: f64, b: f64) -> Result<Self> {
        require(mu.is_finite(), "laplace mu", mu)?;
        require(b.is_finite() && b > 0.0, "laplace b", b)?;
        Ok(Self { mu, b })
    }

    /// The location μ.
    #[inline]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale b.
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }
}

impl ContinuousDist for Laplace {
    fn pdf(&self, x: f64) -> f64 {
        (-(x - self.mu).abs() / self.b).exp() / (2.0 * self.b)
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < self.mu {
            0.5 * ((x - self.mu) / self.b).exp()
        } else {
            1.0 - 0.5 * (-(x - self.mu) / self.b).exp()
        }
    }
    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p in (0,1) required, got {p}");
        if p < 0.5 {
            self.mu + self.b * (2.0 * p).ln()
        } else {
            self.mu - self.b * (2.0 * (1.0 - p)).ln()
        }
    }
    fn mean(&self) -> f64 {
        self.mu
    }
    fn variance(&self) -> f64 {
        2.0 * self.b * self.b
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        -(x - self.mu).abs() / self.b - (2.0 * self.b).ln()
    }
}

// --- Weibull -----------------------------------------------------------------

/// Weibull(k, λ) on `[0, ∞)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// From shape `k > 0` and scale `λ > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        require(shape.is_finite() && shape > 0.0, "weibull shape", shape)?;
        require(scale.is_finite() && scale > 0.0, "weibull scale", scale)?;
        Ok(Self { shape, scale })
    }

    /// The shape k.
    #[inline]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale λ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let t = x / self.scale;
        self.shape / self.scale * t.powf(self.shape - 1.0) * (-t.powf(self.shape)).exp()
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }
    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p in (0,1) required, got {p}");
        self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape)
    }
    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }
    fn variance(&self) -> f64 {
        let g1 = (ln_gamma(1.0 + 1.0 / self.shape)).exp();
        let g2 = (ln_gamma(1.0 + 2.0 / self.shape)).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let t = x / self.scale;
        self.shape.ln() - self.scale.ln() + (self.shape - 1.0) * t.ln() - t.powf(self.shape)
    }
}

// --- Uniform -----------------------------------------------------------------

/// Uniform(a, b) on the half-open interval `[a, b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// From the bounds `a < b`.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        require(a.is_finite(), "uniform a", a)?;
        require(b.is_finite() && b > a, "uniform b", b)?;
        Ok(Self { a, b })
    }

    /// The lower bound a.
    #[inline]
    pub fn a(&self) -> f64 {
        self.a
    }

    /// The upper bound b.
    #[inline]
    pub fn b(&self) -> f64 {
        self.b
    }
}

impl ContinuousDist for Uniform {
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.a && x < self.b {
            1.0 / (self.b - self.a)
        } else {
            0.0
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.a) / (self.b - self.a)).clamp(0.0, 1.0)
    }
    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p in (0,1) required, got {p}");
        self.a + p * (self.b - self.a)
    }
    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }
    fn variance(&self) -> f64 {
        let w = self.b - self.a;
        w * w / 12.0
    }
}

// --- Gamma -------------------------------------------------------------------

/// Gamma(k, θ) on `(0, ∞)` (shape–scale parameterization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// From shape `k > 0` and scale `θ > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        require(shape.is_finite() && shape > 0.0, "gamma shape", shape)?;
        require(scale.is_finite() && scale > 0.0, "gamma scale", scale)?;
        Ok(Self { shape, scale })
    }

    /// The shape k.
    #[inline]
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale θ.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl ContinuousDist for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }
    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p in (0,1) required, got {p}");
        // Monotone CDF: expand an upper bracket, then bisect.
        let mut hi = self.mean() + 10.0 * self.variance().sqrt().max(self.scale);
        while self.cdf(hi) < p {
            hi *= 2.0;
        }
        let (mut lo, mut hi) = (0.0, hi);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
    fn mean(&self) -> f64 {
        self.shape * self.scale
    }
    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln()
    }
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia–Tsang squeeze; the k < 1 case boosts a (k+1) draw.
        let (k, boost) = if self.shape < 1.0 {
            (self.shape + 1.0, rng.next_f64_open().powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let z = inv_norm_cdf(rng.next_f64_open());
            let v = 1.0 + c * z;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = rng.next_f64_open();
            if u < 1.0 - 0.0331 * z * z * z * z || u.ln() < 0.5 * z * z + d * (1.0 - v3 + v3.ln()) {
                return d * v3 * self.scale * boost;
            }
        }
    }
}

// --- Geometric ---------------------------------------------------------------

/// Geometric(p) on `{1, 2, ...}` — number of trials to first success.
///
/// Doubles as a "continuous" distribution for MLE ranking purposes (the
/// paper compares it against continuous families in Figure 5): densities are
/// evaluated at rounded support points and the CDF is the usual step
/// function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// From the success probability `p ∈ (0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        require(p.is_finite() && p > 0.0 && p <= 1.0, "geometric p", p)?;
        Ok(Self { p })
    }

    /// The success probability p.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl ContinuousDist for Geometric {
    fn pdf(&self, x: f64) -> f64 {
        let k = x.round();
        if k < 1.0 {
            0.0
        } else {
            self.p * (1.0 - self.p).powf(k - 1.0)
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < 1.0 {
            0.0
        } else {
            1.0 - (1.0 - self.p).powf(x.floor())
        }
    }
    fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q < 1.0, "quantile: p in (0,1) required, got {q}");
        if self.p >= 1.0 {
            return 1.0;
        }
        ((1.0 - q).ln() / (1.0 - self.p).ln()).ceil().max(1.0)
    }
    fn mean(&self) -> f64 {
        1.0 / self.p
    }
    fn variance(&self) -> f64 {
        (1.0 - self.p) / (self.p * self.p)
    }
    fn ln_pdf(&self, x: f64) -> f64 {
        let k = x.round();
        if k < 1.0 {
            f64::NEG_INFINITY
        } else {
            self.p.ln() + (k - 1.0) * (1.0 - self.p).ln()
        }
    }
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        DiscreteDist::sample(self, rng) as f64
    }
}

impl DiscreteDist for Geometric {
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u = rng.next_f64_open();
        (u.ln() / (1.0 - self.p).ln()).floor() as u64 + 1
    }
    fn mean(&self) -> f64 {
        1.0 / self.p
    }
}

// --- Poisson -----------------------------------------------------------------

/// Poisson(λ) on `{0, 1, 2, ...}` — the paper's counting model for the
/// expected number of failures `E(Y)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// From the mean `λ > 0`.
    pub fn new(lambda: f64) -> Result<Self> {
        require(lambda.is_finite() && lambda > 0.0, "poisson lambda", lambda)?;
        Ok(Self { lambda })
    }

    /// The mean λ.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        (k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)).exp()
    }
}

impl DiscreteDist for Poisson {
    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 60.0 {
            // Knuth's product-of-uniforms method.
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64_open();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        }
        // Large mean: split λ and sum (keeps Knuth's method in its stable
        // range without changing the distribution).
        let halves = (self.lambda / 30.0).ceil() as u64;
        let part = Poisson {
            lambda: self.lambda / halves as f64,
        };
        (0..halves).map(|_| part.sample(rng)).sum()
    }
    fn mean(&self) -> f64 {
        self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256StarStar;

    fn check_mean<D: ContinuousDist>(d: &D, seed: u64, tol: f64) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let n = 60_000;
        let mean = d.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!(
            (mean - d.mean()).abs() / d.mean().abs().max(1.0) < tol,
            "sample mean {mean} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn constructors_reject_bad_params() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::from_mean(-1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::from_median_spread(100.0, 1.0).is_err());
        assert!(Pareto::new(1.0, -2.0).is_err());
        assert!(Laplace::new(0.0, 0.0).is_err());
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 2.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Geometric::new(0.0).is_err());
        assert!(Poisson::new(0.0).is_err());
    }

    #[test]
    fn sample_means_match_analytic() {
        check_mean(&Exponential::new(0.004).unwrap(), 1, 0.02);
        check_mean(&Normal::new(42.0, 7.0).unwrap(), 2, 0.02);
        check_mean(&LogNormal::new(2.0, 0.8).unwrap(), 3, 0.03);
        check_mean(&Pareto::new(10.0, 3.0).unwrap(), 4, 0.02);
        check_mean(&Laplace::new(5.0, 2.0).unwrap(), 5, 0.02);
        check_mean(&Weibull::new(1.5, 100.0).unwrap(), 6, 0.02);
        check_mean(&Uniform::new(-3.0, 9.0).unwrap(), 7, 0.02);
        check_mean(&Gamma::new(2.3, 40.0).unwrap(), 8, 0.02);
    }

    #[test]
    fn quantile_cdf_roundtrip_all_families() {
        let exp = Exponential::new(0.1).unwrap();
        let nor = Normal::new(0.0, 1.0).unwrap();
        let ln = LogNormal::new(1.0, 0.5).unwrap();
        let par = Pareto::new(2.0, 1.5).unwrap();
        let lap = Laplace::new(-1.0, 2.0).unwrap();
        let wei = Weibull::new(0.8, 50.0).unwrap();
        let uni = Uniform::new(0.0, 10.0).unwrap();
        let gam = Gamma::new(3.0, 2.0).unwrap();
        for i in 1..40 {
            let p = i as f64 / 40.0;
            assert!((exp.cdf(exp.quantile(p)) - p).abs() < 1e-9);
            assert!((nor.cdf(nor.quantile(p)) - p).abs() < 1e-6);
            assert!((ln.cdf(ln.quantile(p)) - p).abs() < 1e-6);
            assert!((par.cdf(par.quantile(p)) - p).abs() < 1e-9);
            assert!((lap.cdf(lap.quantile(p)) - p).abs() < 1e-9);
            assert!((wei.cdf(wei.quantile(p)) - p).abs() < 1e-9);
            assert!((uni.cdf(uni.quantile(p)) - p).abs() < 1e-9);
            assert!((gam.cdf(gam.quantile(p)) - p).abs() < 1e-8);
        }
    }

    #[test]
    fn pareto_heavy_tail_mean() {
        assert!(Pareto::new(1.0, 0.9).unwrap().mean().is_infinite());
        assert!(Pareto::new(1.0, 1.5).unwrap().variance().is_infinite());
        let p = Pareto::new(1000.0, 2.0).unwrap();
        assert!((p.mean() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn poisson_sample_mean() {
        for lambda in [0.5, 3.0, 11.9, 75.0] {
            let d = Poisson::new(lambda).unwrap();
            let mut rng = Xoshiro256StarStar::new(9);
            let n = 40_000;
            let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.05,
                "lambda {lambda}: sampled {mean}"
            );
        }
    }

    #[test]
    fn geometric_support_starts_at_one() {
        let d = Geometric::new(0.3).unwrap();
        let mut rng = Xoshiro256StarStar::new(11);
        for _ in 0..10_000 {
            assert!(DiscreteDist::sample(&d, &mut rng) >= 1);
        }
        assert_eq!(d.cdf(0.5), 0.0);
        assert!((d.cdf(1.0) - 0.3).abs() < 1e-12);
        let mut rng2 = Xoshiro256StarStar::new(12);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| DiscreteDist::sample(&d, &mut rng2) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0 / 0.3).abs() < 0.05, "mean {mean}");
    }

    type LnAndPdf = Box<dyn Fn(f64) -> (f64, f64)>;

    #[test]
    fn ln_pdf_matches_pdf() {
        let dists: Vec<LnAndPdf> = vec![
            {
                let d = Exponential::new(0.5).unwrap();
                Box::new(move |x| (d.ln_pdf(x), d.pdf(x)))
            },
            {
                let d = Normal::new(1.0, 2.0).unwrap();
                Box::new(move |x| (d.ln_pdf(x), d.pdf(x)))
            },
            {
                let d = LogNormal::new(0.5, 0.7).unwrap();
                Box::new(move |x| (d.ln_pdf(x), d.pdf(x)))
            },
            {
                let d = Gamma::new(2.0, 3.0).unwrap();
                Box::new(move |x| (d.ln_pdf(x), d.pdf(x)))
            },
        ];
        for f in &dists {
            for &x in &[0.3, 1.0, 4.5, 20.0] {
                let (lp, p) = f(x);
                assert!((lp.exp() - p).abs() < 1e-12 * (1.0 + p));
            }
        }
    }

    #[test]
    fn dyn_view_agrees() {
        let d = Exponential::new(0.25).unwrap();
        let b: Box<dyn DynContinuousDist> = Box::new(d);
        assert_eq!(b.cdf_dyn(3.0), d.cdf(3.0));
        assert_eq!(b.mean_dyn(), 4.0);
    }
}
