//! Small numerical routines used by the MLE fitters and quantile functions:
//! bisection root finding, Newton–Raphson with bisection fallback, golden
//! section minimization, and special functions (`erf`, `erfc`, `ln_gamma`).

use crate::{Result, StatsError};

/// Find a root of `f` in `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs. Converges to absolute
/// tolerance `tol` on the argument or after `max_iter` halvings.
pub fn bisect<F: Fn(f64) -> f64>(
    f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo * fhi > 0.0 {
        return Err(StatsError::BadInput("bisect: no sign change on interval"));
    }
    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid == 0.0 || (hi - lo) < tol {
            return Ok(mid);
        }
        if flo * fmid < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fmid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Newton–Raphson with a bracketing bisection fallback.
///
/// `f` returns `(value, derivative)`. The iterate is kept inside `[lo, hi]`;
/// whenever a Newton step leaves the bracket or the derivative vanishes the
/// routine falls back to bisection on the current bracket. This is the classic
/// "safe Newton" of Numerical Recipes.
pub fn newton_bisect<F: Fn(f64) -> (f64, f64)>(
    f: F,
    mut lo: f64,
    mut hi: f64,
    x0: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    let (flo, _) = f(lo);
    let (fhi, _) = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo * fhi > 0.0 {
        return Err(StatsError::BadInput(
            "newton_bisect: no sign change on interval",
        ));
    }
    // Orient so that f(lo) < 0 < f(hi).
    if flo > 0.0 {
        std::mem::swap(&mut lo, &mut hi);
    }
    let mut x = x0.clamp(lo.min(hi), lo.max(hi));
    for _ in 0..max_iter {
        let (fx, dfx) = f(x);
        if fx.abs() < tol {
            return Ok(x);
        }
        // Shrink the bracket using the current iterate, *then* pick the next
        // point — this way a bisection fallback can never return the current
        // iterate and stall.
        if fx < 0.0 {
            lo = x;
        } else {
            hi = x;
        }
        let newton = if dfx != 0.0 { x - fx / dfx } else { f64::NAN };
        let in_bracket = newton.is_finite() && (newton - lo) * (newton - hi) < 0.0;
        let x_new = if in_bracket { newton } else { 0.5 * (lo + hi) };
        if (x_new - x).abs() < tol {
            return Ok(x_new);
        }
        x = x_new;
    }
    Err(StatsError::NoConvergence("newton_bisect"))
}

/// Golden-section search for the minimum of a unimodal `f` on `[lo, hi]`.
pub fn golden_min<F: Fn(f64) -> f64>(
    f: F,
    mut lo: f64,
    mut hi: f64,
    tol: f64,
    max_iter: usize,
) -> f64 {
    const INV_PHI: f64 = 0.618_033_988_749_894_9; // (sqrt(5) - 1) / 2
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..max_iter {
        if (hi - lo).abs() < tol {
            break;
        }
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = f(d);
        }
    }
    0.5 * (lo + hi)
}

/// The error function `erf(x)`, accurate to ~1.2e-7 (Numerical Recipes'
/// Chebyshev fit of `erfc`). Sufficient for CDF evaluation and fitting.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Chebyshev polynomial approximation (Numerical Recipes 6.2).
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9), refined with one Halley step.
pub fn inv_norm_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inv_norm_cdf: p must be in (0,1), got {p}"
    );
    // Coefficients for Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement using the analytic normal pdf/cdf.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Natural log of the gamma function (Lanczos approximation, |err| < 2e-10).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma: x must be positive, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of `n!` via `ln_gamma`.
#[inline]
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x)/Γ(a)`
/// (Numerical Recipes 6.2: series for `x < a+1`, continued fraction
/// otherwise). Accurate to ~1e-12 over the ranges used here.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p: a must be positive, got {a}");
    assert!(x >= 0.0, "gamma_p: x must be non-negative, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a, x) = 1 − P(a, x) (Lentz's method).
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        (1.0 - q).clamp(0.0, 1.0)
    }
}

/// Digamma function `ψ(x)` (asymptotic series with recurrence shift),
/// used by the gamma MLE fitter.
pub fn digamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "digamma: x must be positive, got {x}");
    let mut result = 0.0;
    // Shift x up until the asymptotic expansion is accurate (truncation
    // error ~ x^-10 at the shift point).
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_rejects_bad_bracket() {
        assert!(bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9, 100).is_err());
    }

    #[test]
    fn bisect_accepts_root_at_endpoint() {
        let r = bisect(|x| x, 0.0, 1.0, 1e-12, 100).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn newton_finds_cube_root() {
        let f = |x: f64| (x * x * x - 27.0, 3.0 * x * x);
        let r = newton_bisect(f, 0.0, 10.0, 5.0, 1e-12, 100).unwrap();
        assert!((r - 3.0).abs() < 1e-9);
    }

    #[test]
    fn newton_handles_flat_derivative() {
        // f(x) = x^3 has zero derivative at 0 but the bracket keeps us safe.
        let f = |x: f64| (x * x * x - 1e-9, 3.0 * x * x);
        let r = newton_bisect(f, -1.0, 1.0, 0.0, 1e-14, 200).unwrap();
        assert!((r - 1e-3).abs() < 1e-5);
    }

    #[test]
    fn golden_min_parabola() {
        let m = golden_min(|x| (x - 3.5) * (x - 3.5), 0.0, 10.0, 1e-10, 200);
        assert!((m - 3.5).abs() < 1e-8);
    }

    #[test]
    fn erf_reference_values() {
        // Values from Abramowitz & Stegun tables. The Chebyshev fit is
        // accurate to ~1.2e-7, so tolerances are set accordingly.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-7, "x = {x}");
        }
    }

    #[test]
    fn inv_norm_round_trips() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = inv_norm_cdf(p);
            let back = 0.5 * erfc(-x / std::f64::consts::SQRT_2);
            assert!((back - p).abs() < 1e-7, "p = {p}, back = {back}");
        }
    }

    #[test]
    fn inv_norm_median_is_zero() {
        // Limited by the erfc approximation used in the Halley refinement.
        assert!(inv_norm_cdf(0.5).abs() < 1e-6);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let expect: f64 = (1..n).map(|k| (k as f64).ln()).sum();
            assert!((ln_gamma(n as f64) - expect).abs() < 1e-8, "n = {n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-9);
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^−x.
        for &x in &[0.1, 1.0, 3.7, 10.0] {
            assert!(
                (gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12,
                "x = {x}"
            );
        }
    }

    #[test]
    fn gamma_p_erlang_special_case() {
        // P(2, x) = 1 − e^−x(1 + x).
        for &x in &[0.5f64, 2.0, 8.0] {
            let expect = 1.0 - (-x).exp() * (1.0 + x);
            assert!((gamma_p(2.0, x) - expect).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn gamma_p_monotone_and_bounded() {
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.2;
            let p = gamma_p(3.3, x);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev - 1e-12);
            prev = p;
        }
        assert!(prev > 0.9999);
    }

    #[test]
    fn digamma_reference_values() {
        // ψ(1) = −γ (Euler–Mascheroni).
        assert!((digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-10);
        // Recurrence ψ(x+1) = ψ(x) + 1/x.
        for &x in &[0.5, 1.7, 4.2] {
            assert!(
                (digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10,
                "x = {x}"
            );
        }
    }
}
