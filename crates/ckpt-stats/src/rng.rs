//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component of the reproduction draws randomness through the
//! [`Rng64`] trait, backed by one of two small, well-studied generators:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood's 64-bit mixer. Used for seeding and
//!   for *stream derivation*: deriving an independent per-task or per-job
//!   generator from `(experiment seed, entity id)` so that results do not
//!   depend on scheduling order or thread count.
//! * [`Xoshiro256StarStar`] — Blackman/Vigna's general-purpose generator with
//!   256 bits of state, used for the bulk of the sampling.
//!
//! Both implement [`rand::RngCore`] for interop with the `rand` ecosystem,
//! but all distribution sampling in this workspace goes through our own
//! inverse-transform code (see [`crate::dist`]) so that the generated values
//! are stable across `rand` versions.

/// A minimal deterministic RNG interface: everything the workspace samples
/// ultimately reduces to uniform `u64`s and uniform `f64`s in `[0, 1)`.
pub trait Rng64 {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the 53 most significant bits so every representable value is
    /// equally likely and `1.0` is never returned.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53-bit mantissa / 2^53 — the standard uniform double construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next uniform `f64` in the *open* interval `(0, 1)` — convenient for
    /// inverse-transform sampling of distributions whose quantile function
    /// diverges at 0 or 1 (exponential, Pareto, ...).
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, n)`. Uses Lemire-style rejection to avoid
    /// modulo bias.
    #[inline]
    fn next_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_range: empty range");
        // Widening-multiply rejection sampling (Lemire 2018).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    fn next_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// The SplitMix64 generator (Steele, Lea, Flood — "Fast splittable
/// pseudorandom number generators", OOPSLA 2014).
///
/// One 64-bit word of state; passes BigCrush when used as a mixer. Its main
/// roles here are seed expansion and derivation of independent streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed. Any seed (including 0) is fine.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Mix a single value through the SplitMix64 finalizer. Useful as a
    /// stateless hash for deriving seeds.
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256** generator (Blackman & Vigna, 2018).
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality. This is
/// the workhorse generator used by the trace generator and the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion, per the reference implementation's
    /// recommendation. The state is guaranteed non-zero.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15; // never all-zero
        }
        Self { s }
    }

    /// Derive an independent stream for entity `id` under experiment `seed`.
    ///
    /// Streams derived with different `(seed, id)` pairs are statistically
    /// independent for all practical purposes (SplitMix64 finalizer mixing),
    /// which is what makes the parallel experiment runner deterministic: each
    /// job samples from its own stream no matter which thread executes it.
    pub fn stream(seed: u64, id: u64) -> Self {
        Self::new(SplitMix64::mix(seed ^ SplitMix64::mix(id)))
    }

    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }

    /// Snapshot the generator's 256-bit state. Together with
    /// [`Xoshiro256StarStar::from_state`] this lets a caller freeze a
    /// stream mid-sequence and resume it later *exactly* — the mechanism
    /// the failure-plan arena uses to replay a task's post-plan draws
    /// (priority-flip re-plans) without re-consuming the plan's own draws.
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by
    /// [`Xoshiro256StarStar::state`]. The all-zero state is invalid for
    /// xoshiro (it is a fixed point) and is rejected.
    #[inline]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0, 0, 0, 0], "xoshiro256** state must be non-zero");
        Self { s }
    }

    /// Jump ahead by 2^128 steps (for manual stream splitting, mostly useful
    /// in tests).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                let _ = self.next_u64();
            }
        }
        self.s = s;
    }
}

impl Rng64 for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

// --- rand interop -----------------------------------------------------------

impl rand::RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (Rng64::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        Rng64::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl rand::RngCore for Xoshiro256StarStar {
    fn next_u32(&mut self) -> u32 {
        (Rng64::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        Rng64::next_u64(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

fn fill_bytes_via_u64<R: Rng64>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference sequence for seed 1234567 from the public-domain C code.
        let mut rng = SplitMix64::new(1234567);
        let first = Rng64::next_u64(&mut rng);
        let second = Rng64::next_u64(&mut rng);
        assert_ne!(first, second);
        // Determinism: same seed, same sequence.
        let mut rng2 = SplitMix64::new(1234567);
        assert_eq!(first, Rng64::next_u64(&mut rng2));
        assert_eq!(second, Rng64::next_u64(&mut rng2));
    }

    #[test]
    fn splitmix_known_answer() {
        // Known-answer test: SplitMix64 with seed 0 must produce the
        // published first output 0xE220A8397B1DCDAF.
        let mut rng = SplitMix64::new(0);
        assert_eq!(Rng64::next_u64(&mut rng), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn xoshiro_determinism_and_difference() {
        let mut a = Xoshiro256StarStar::new(99);
        let mut b = Xoshiro256StarStar::new(99);
        let mut c = Xoshiro256StarStar::new(100);
        let xa: Vec<u64> = (0..16).map(|_| Rng64::next_u64(&mut a)).collect();
        let xb: Vec<u64> = (0..16).map(|_| Rng64::next_u64(&mut b)).collect();
        let xc: Vec<u64> = (0..16).map(|_| Rng64::next_u64(&mut c)).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::new(7);
        for _ in 0..100_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u), "u = {u}");
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = Xoshiro256StarStar::new(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn next_range_unbiased_small() {
        let mut rng = Xoshiro256StarStar::new(3);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.next_range(5) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.01, "frac = {frac}");
        }
    }

    #[test]
    fn next_range_bounds() {
        let mut rng = SplitMix64::new(17);
        for _ in 0..10_000 {
            assert!(rng.next_range(3) < 3);
            assert_eq!(rng.next_range(1), 0);
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut s1 = Xoshiro256StarStar::stream(42, 0);
        let mut s2 = Xoshiro256StarStar::stream(42, 1);
        let a: Vec<u64> = (0..8).map(|_| Rng64::next_u64(&mut s1)).collect();
        let b: Vec<u64> = (0..8).map(|_| Rng64::next_u64(&mut s2)).collect();
        assert_ne!(a, b);
        // Stream derivation is pure: same (seed, id) gives same stream.
        let mut s1b = Xoshiro256StarStar::stream(42, 0);
        let a2: Vec<u64> = (0..8).map(|_| Rng64::next_u64(&mut s1b)).collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn state_roundtrip_resumes_exactly() {
        let mut a = Xoshiro256StarStar::new(77);
        for _ in 0..13 {
            let _ = Rng64::next_u64(&mut a);
        }
        let frozen = a.state();
        let tail: Vec<u64> = (0..8).map(|_| Rng64::next_u64(&mut a)).collect();
        let mut resumed = Xoshiro256StarStar::from_state(frozen);
        let replay: Vec<u64> = (0..8).map(|_| Rng64::next_u64(&mut resumed)).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn jump_changes_state() {
        let mut a = Xoshiro256StarStar::new(5);
        let b = a.clone();
        a.jump();
        assert_ne!(a, b);
    }

    #[test]
    fn rand_rngcore_interop() {
        use rand::RngCore;
        let mut rng = Xoshiro256StarStar::new(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
        let _ = rng.next_u32();
    }

    #[test]
    fn open_interval_never_zero() {
        let mut rng = SplitMix64::new(0xDEAD);
        for _ in 0..100_000 {
            let u = rng.next_f64_open();
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
