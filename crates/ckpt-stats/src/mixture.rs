//! Two-component mixture distributions.
//!
//! The paper's central empirical observation (Figure 5, Table 7) is that
//! Google failure intervals have a *short body and a heavy tail*: "a majority
//! of failure intervals are short while a minority are extremely long,
//! leading to the large MTBF on average". The trace generator models this as
//! a mixture of a short-interval component (exponential) and a Pareto tail,
//! which reproduces both the ≥63 % sub-1000 s mass and the MTBF inflation
//! that breaks Young's formula.

use crate::dist::ContinuousDist;
use crate::rng::Rng64;
use crate::solve::bisect;
use crate::{Result, StatsError};

/// Mixture of two continuous distributions: with probability `w` sample from
/// `a`, otherwise from `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mixture<A, B> {
    w: f64,
    a: A,
    b: B,
}

impl<A: ContinuousDist, B: ContinuousDist> Mixture<A, B> {
    /// Create a mixture with weight `w ∈ [0, 1]` on component `a`.
    pub fn new(w: f64, a: A, b: B) -> Result<Self> {
        if !(0.0..=1.0).contains(&w) || !w.is_finite() {
            return Err(StatsError::BadParam {
                what: "mixture weight",
                value: w,
            });
        }
        Ok(Self { w, a, b })
    }

    /// The weight on component `a`.
    #[inline]
    pub fn weight(&self) -> f64 {
        self.w
    }

    /// Component `a` (weight `w`).
    #[inline]
    pub fn component_a(&self) -> &A {
        &self.a
    }

    /// Component `b` (weight `1 - w`).
    #[inline]
    pub fn component_b(&self) -> &B {
        &self.b
    }
}

impl<A: ContinuousDist, B: ContinuousDist> ContinuousDist for Mixture<A, B> {
    fn pdf(&self, x: f64) -> f64 {
        self.w * self.a.pdf(x) + (1.0 - self.w) * self.b.pdf(x)
    }

    fn cdf(&self, x: f64) -> f64 {
        self.w * self.a.cdf(x) + (1.0 - self.w) * self.b.cdf(x)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile: p in (0,1) required, got {p}");
        // Degenerate weights delegate to the live component.
        if self.w >= 1.0 {
            return self.a.quantile(p);
        }
        if self.w <= 0.0 {
            return self.b.quantile(p);
        }
        // No closed form: bracket by the component quantiles and bisect on
        // the (monotone) mixture CDF.
        let qa = self.a.quantile(p);
        let qb = self.b.quantile(p);
        let lo = qa.min(qb);
        let hi = qa.max(qb);
        if (hi - lo).abs() < f64::EPSILON {
            return lo;
        }
        bisect(|x| self.cdf(x) - p, lo, hi, 1e-10 * (1.0 + hi.abs()), 200)
            .unwrap_or(0.5 * (lo + hi))
    }

    fn mean(&self) -> f64 {
        self.w * self.a.mean() + (1.0 - self.w) * self.b.mean()
    }

    fn variance(&self) -> f64 {
        // Law of total variance.
        let ma = self.a.mean();
        let mb = self.b.mean();
        let m = self.mean();
        if !ma.is_finite() || !mb.is_finite() {
            return f64::INFINITY;
        }
        self.w * (self.a.variance() + (ma - m) * (ma - m))
            + (1.0 - self.w) * (self.b.variance() + (mb - m) * (mb - m))
    }

    fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.next_bool(self.w) {
            self.a.sample(rng)
        } else {
            self.b.sample(rng)
        }
    }
}

/// The paper-calibrated failure-interval family: exponential body + Pareto
/// tail. `BodyTail::paper_like(body_mean, tail_scale, tail_shape, body_weight)`
/// puts `body_weight` of mass on short exponential intervals and the rest on
/// a Pareto tail.
pub type BodyTail = Mixture<crate::dist::Exponential, crate::dist::Pareto>;

/// Construct a body-tail failure-interval distribution.
///
/// * `body_mean` — mean of the short exponential component (seconds),
/// * `tail_scale`/`tail_shape` — Pareto tail parameters,
/// * `body_weight` — fraction of intervals drawn from the body.
pub fn body_tail(
    body_mean: f64,
    tail_scale: f64,
    tail_shape: f64,
    body_weight: f64,
) -> Result<BodyTail> {
    let body = crate::dist::Exponential::from_mean(body_mean)?;
    let tail = crate::dist::Pareto::new(tail_scale, tail_shape)?;
    Mixture::new(body_weight, body, tail)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Normal, Pareto};
    use crate::rng::Xoshiro256StarStar;

    #[test]
    fn rejects_bad_weight() {
        let a = Exponential::new(1.0).unwrap();
        let b = Pareto::new(1.0, 2.0).unwrap();
        assert!(Mixture::new(1.5, a, b).is_err());
        assert!(Mixture::new(-0.1, a, b).is_err());
    }

    #[test]
    fn cdf_is_weighted_sum() {
        let a = Exponential::new(0.1).unwrap();
        let b = Pareto::new(100.0, 1.5).unwrap();
        let m = Mixture::new(0.7, a, b).unwrap();
        for &x in &[1.0, 50.0, 150.0, 1000.0] {
            let expect = 0.7 * a.cdf(x) + 0.3 * b.cdf(x);
            assert!((m.cdf(x) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_roundtrip() {
        let m = body_tail(100.0, 500.0, 1.2, 0.8).unwrap();
        for i in 1..50 {
            let p = i as f64 / 50.0;
            let x = m.quantile(p);
            assert!((m.cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn degenerate_weights() {
        let a = Exponential::new(1.0).unwrap();
        let b = Normal::new(100.0, 1.0).unwrap();
        let all_a = Mixture::new(1.0, a, b).unwrap();
        let all_b = Mixture::new(0.0, a, b).unwrap();
        assert!((all_a.quantile(0.5) - a.quantile(0.5)).abs() < 1e-9);
        assert!((all_b.quantile(0.5) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn mean_weighted() {
        let m = body_tail(100.0, 1000.0, 2.0, 0.9).unwrap();
        // 0.9·100 + 0.1·(2·1000/1) = 90 + 200 = 290
        assert!((m.mean() - 290.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_tail_infects_mean() {
        // Tail shape ≤ 1 ⇒ infinite mixture mean even with 99 % body weight —
        // the degenerate regime for MTBF estimation.
        let m = body_tail(100.0, 1000.0, 0.9, 0.99).unwrap();
        assert!(m.mean().is_infinite());
        assert!(m.variance().is_infinite());
    }

    #[test]
    fn body_tail_reproduces_short_interval_mass() {
        // Calibrated like the paper: > 63 % of intervals below 1000 s.
        let m = body_tail(180.0, 800.0, 1.1, 0.7).unwrap();
        assert!(m.cdf(1000.0) > 0.63, "cdf(1000) = {}", m.cdf(1000.0));
        // ... and a median far below the mean (tail inflation).
        let median = m.quantile(0.5);
        assert!(m.mean() > 3.0 * median);
    }

    #[test]
    fn sampling_matches_cdf() {
        let m = body_tail(50.0, 300.0, 1.5, 0.75).unwrap();
        let mut rng = Xoshiro256StarStar::new(13);
        let n = 20_000;
        let mut xs: Vec<f64> = (0..n).map(|_| m.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ecdf = crate::ecdf::Ecdf::from_sorted(xs).unwrap();
        let ks = ecdf.ks_statistic(|x| m.cdf(x));
        assert!(ks < 0.015, "ks = {ks}");
    }
}
