//! Empirical cumulative distribution functions.
//!
//! Every CDF figure in the paper (Figures 4, 5, 8, 9, 11, 14) is an ECDF of
//! some per-task or per-job quantity; this module provides construction,
//! evaluation, quantiles, and plot-ready point extraction.

use crate::{Result, StatsError};

/// An empirical CDF over a set of `f64` samples.
///
/// Construction sorts a copy of the samples (`O(n log n)`); evaluation is a
/// binary search (`O(log n)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from samples. NaNs are rejected; an empty input is an
    /// error (an ECDF of nothing is meaningless).
    pub fn new(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(StatsError::BadInput("ecdf: empty sample set"));
        }
        if samples.iter().any(|x| x.is_nan()) {
            return Err(StatsError::BadInput("ecdf: NaN in samples"));
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ok(Self { sorted })
    }

    /// Build from an already-sorted vector (checked in debug builds only).
    pub fn from_sorted(sorted: Vec<f64>) -> Result<Self> {
        if sorted.is_empty() {
            return Err(StatsError::BadInput("ecdf: empty sample set"));
        }
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
        Ok(Self { sorted })
    }

    /// Number of underlying samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty (never true for a constructed ECDF).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`: fraction of samples ≤ `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        // partition_point gives the count of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Empirical quantile: smallest sample `x` with `cdf(x) >= q`, for
    /// `q ∈ (0, 1]`. `q = 0.5` is the median.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(
            q > 0.0 && q <= 1.0,
            "quantile: q in (0,1] required, got {q}"
        );
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Minimum sample.
    #[inline]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    #[inline]
    pub fn max(&self) -> f64 {
        *self.sorted.last().unwrap()
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The underlying sorted samples.
    #[inline]
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Extract `n` plot-ready `(x, F(x))` points, uniformly spaced in
    /// probability — exactly what the paper's CDF figures plot.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "points: need at least 2 points");
        (0..n)
            .map(|i| {
                let q = (i as f64 + 1.0) / n as f64;
                (self.quantile(q), q)
            })
            .collect()
    }

    /// Fraction of samples ≤ `limit` — e.g. the paper's "over 63 % of failure
    /// intervals last less than 1000 seconds".
    pub fn fraction_below(&self, limit: f64) -> f64 {
        self.cdf(limit)
    }

    /// Two-sided Kolmogorov–Smirnov statistic against an analytic CDF.
    pub fn ks_statistic<F: Fn(f64) -> f64>(&self, cdf: F) -> f64 {
        let n = self.sorted.len() as f64;
        let mut ks: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let c = cdf(x);
            let hi = (i as f64 + 1.0) / n;
            let lo = i as f64 / n;
            ks = ks.max((c - lo).abs()).max((hi - c).abs());
        }
        ks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_input() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn step_function_semantics() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn handles_duplicates() {
        let e = Ecdf::new(&[2.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(e.cdf(2.0), 0.75);
        assert_eq!(e.cdf(1.9), 0.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(e.quantile(0.2), 10.0);
        assert_eq!(e.quantile(0.21), 20.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(1.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_zero() {
        let e = Ecdf::new(&[1.0]).unwrap();
        e.quantile(0.0);
    }

    #[test]
    fn quantile_cdf_galois() {
        // quantile(q) is the smallest x with cdf(x) >= q.
        let e = Ecdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]).unwrap();
        for i in 1..=100 {
            let q = i as f64 / 100.0;
            let x = e.quantile(q);
            assert!(e.cdf(x) >= q - 1e-12);
        }
    }

    #[test]
    fn points_are_monotone() {
        let e = Ecdf::new(
            &(0..1000)
                .map(|i| (i as f64).sin() * 50.0)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let pts = e.points(64);
        assert_eq!(pts.len(), 64);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_of_own_cdf_is_small() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64 / 1000.0).collect();
        let e = Ecdf::new(&samples).unwrap();
        // Against the true U(0,1) CDF the KS statistic should be tiny.
        let ks = e.ks_statistic(|x| x.clamp(0.0, 1.0));
        assert!(ks < 0.01, "ks = {ks}");
    }

    #[test]
    fn fraction_below_matches_paper_usage() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 * 20.0).collect(); // 20..2000
        let e = Ecdf::new(&samples).unwrap();
        assert!((e.fraction_below(1000.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_sorted_equivalent() {
        let raw = vec![5.0, 1.0, 3.0];
        let a = Ecdf::new(&raw).unwrap();
        let b = Ecdf::from_sorted(vec![1.0, 3.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }
}
