//! Fixed-width histograms, used for distribution sanity checks and for the
//! textual "figure" renderings the experiment binaries emit.

use crate::{Result, StatsError};

/// A fixed-bin-width histogram over `[lo, hi)` with an overflow/underflow
/// count, built incrementally.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Result<Self> {
        if !(lo < hi) || !lo.is_finite() || !hi.is_finite() {
            return Err(StatsError::BadInput("histogram: invalid range"));
        }
        if nbins == 0 {
            return Err(StatsError::BadInput("histogram: zero bins"));
        }
        Ok(Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        })
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Add many observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Raw bin counts.
    #[inline]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of observations below `lo`.
    #[inline]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of observations at or above `hi`.
    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations added (including under/overflow).
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Normalized densities (bin fraction / bin width); integrates to the
    /// in-range fraction of mass.
    pub fn densities(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let n = self.count.max(1) as f64;
        self.bins.iter().map(|&c| c as f64 / n / w).collect()
    }

    /// Render a compact ASCII bar chart (one line per bin), for the textual
    /// experiment reports.
    pub fn ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let bar_len = (c as f64 / max as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>12.2} | {:<width$} {}\n",
                self.bin_center(i),
                "#".repeat(bar_len),
                c,
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_construction() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 2).is_err());
    }

    #[test]
    fn bins_and_flows() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.extend(&[-1.0, 0.0, 1.9, 2.0, 9.99, 10.0, 55.0]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn densities_integrate_to_in_range_mass() {
        let mut h = Histogram::new(0.0, 1.0, 10).unwrap();
        for i in 0..1000 {
            h.add(i as f64 / 1000.0);
        }
        let total: f64 = h.densities().iter().sum::<f64>() * 0.1;
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ascii_renders() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.extend(&[0.5, 1.5, 1.6, 3.9]);
        let s = h.ascii(20);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }
}
