//! # ckpt-store — append-only, crash-safe store of completed sweep cells
//!
//! The paper optimizes long-running cloud tasks by checkpointing them;
//! this crate applies the same mechanism to our own long-running task,
//! the sweep executor. A [`SweepStore`] is a single on-disk file holding
//! every grid cell a sweep has completed so far, written so that a
//! process killed at **any** byte boundary leaves a file the next run can
//! open, trust, and extend:
//!
//! * a versioned, checksummed **header** pins the run identity — format
//!   version, spec digest, seed, scale (base job count), grid size — so a
//!   resume against a changed spec is rejected by name instead of
//!   silently merging incompatible cells;
//! * each **record** is one completed cell, framed as
//!   `len | fnv1a(blob) | blob` and appended with a single `write_all`,
//!   so a record is either fully present and checksummed or detectably
//!   partial;
//! * [`SweepStore::open`] scans the file front to back and, on the first
//!   short or checksum-failing frame, **truncates** the file back to the
//!   last valid record and reports the dropped bytes — the
//!   corrupt-tail-recovery discipline of every append-only log.
//!
//! The store knows nothing about what a cell *is*: records carry an
//! opaque payload plus the cell's grid index and a caller-computed key
//! digest (the sweep layer uses a digest of the cell's run key and
//! rendered axis params). Layering stays clean — framing, checksums and
//! recovery live here; the cell codec lives with the cell type.
//!
//! Durability model: appends reach the kernel page cache on return
//! (process-crash/preemption safe — the threat model of the ROADMAP's
//! preemptible-fleet item); [`SweepStore::sync`] forces them to stable
//! storage for power-loss durability at the caller's cadence.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// On-disk format magic, bumped together with [`FORMAT_VERSION`].
pub const MAGIC: [u8; 8] = *b"CKPTSWP\x01";

/// On-disk format version; stores written by a different version are
/// rejected at open time.
pub const FORMAT_VERSION: u32 = 1;

/// Header size on disk: magic + version + reserved + 4 identity words +
/// header checksum.
const HEADER_LEN: u64 = 8 + 4 + 4 + 8 * 4 + 8;

/// Cap on a single record's blob length; anything larger is treated as a
/// corrupt frame (a real cell record is a few hundred bytes).
const MAX_BLOB_LEN: u32 = 1 << 30;

/// FNV-1a 64 — the workspace's checksum idiom (golden DES digests, pinned
/// export tests), here guarding record frames and the header.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Errors opening, validating, or appending to a store. Recoverable
/// corruption (a torn tail) is *not* an error — [`SweepStore::open`]
/// repairs it and reports the repair in its [`OpenReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreError(pub String);

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint store error: {}", self.0)
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// True when the underlying failure was a transient I/O condition —
    /// the "try again" family ([`ckpt_faults::is_transient_kind`]) — so
    /// the caller may retry the operation with backoff instead of
    /// aborting the run. Classification happens where the `io::Error` is
    /// converted (the kind is known there); everything else is fatal.
    pub fn is_transient(&self) -> bool {
        self.0.starts_with("transient io")
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        if ckpt_faults::is_transient_kind(e.kind()) {
            StoreError(format!(
                "transient io ({}): {e}",
                ckpt_faults::io_kind_name(e.kind())
            ))
        } else {
            StoreError(format!("io: {e}"))
        }
    }
}

/// The run identity a store is pinned to. Two runs may share a store only
/// if every field matches; [`StoreHeader::validate_against`] names the
/// first field that differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreHeader {
    /// Digest of the full sweep spec (base scenario + axes + name) — the
    /// caller computes it over everything that shapes output bytes.
    pub spec_digest: u64,
    /// The base RNG seed the sweep runs with.
    pub seed: u64,
    /// The scale knob (base job count for trace engines).
    pub scale: u64,
    /// Total grid cells; record indices must stay below this.
    pub grid_size: u64,
}

impl StoreHeader {
    /// Check that a store written under `self` may serve a run described
    /// by `current`, naming the first mismatching field.
    pub fn validate_against(&self, current: &StoreHeader) -> Result<(), StoreError> {
        let mismatch = |field: &str, stored: u64, now: u64| {
            Err(StoreError(format!(
                "store was written for a different sweep: {field} was {stored}, \
                 current spec has {now} (rerun without --resume to start fresh)"
            )))
        };
        if self.spec_digest != current.spec_digest {
            return mismatch("spec digest", self.spec_digest, current.spec_digest);
        }
        if self.seed != current.seed {
            return mismatch("seed", self.seed, current.seed);
        }
        if self.scale != current.scale {
            return mismatch("scale (base jobs)", self.scale, current.scale);
        }
        if self.grid_size != current.grid_size {
            return mismatch("grid size", self.grid_size, current.grid_size);
        }
        Ok(())
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN as usize);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // reserved
        for v in [self.spec_digest, self.seed, self.scale, self.grid_size] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    fn decode(buf: &[u8]) -> Result<Self, StoreError> {
        if buf.len() < HEADER_LEN as usize {
            return Err(StoreError(format!(
                "header truncated: {} bytes, need {HEADER_LEN} \
                 (store was interrupted before the header landed)",
                buf.len()
            )));
        }
        let body = &buf[..HEADER_LEN as usize - 8];
        let stored_sum = u64_at(buf, HEADER_LEN as usize - 8);
        if fnv1a(body) != stored_sum {
            return Err(StoreError("header checksum mismatch".into()));
        }
        if buf[..8] != MAGIC {
            return Err(StoreError(format!(
                "bad magic {:?} (not a sweep checkpoint store)",
                &buf[..8]
            )));
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError(format!(
                "store format version {version}, this build reads {FORMAT_VERSION}"
            )));
        }
        Ok(StoreHeader {
            spec_digest: u64_at(buf, 16),
            seed: u64_at(buf, 24),
            scale: u64_at(buf, 32),
            grid_size: u64_at(buf, 40),
        })
    }
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// One persisted cell: its grid index, a caller-computed digest of its
/// identity (validated on load against the current spec), and the opaque
/// encoded result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Row-major grid index of the cell.
    pub index: u64,
    /// Digest of the cell's identity under the current spec (the sweep
    /// layer digests the run key + rendered axis params).
    pub key_digest: u64,
    /// The encoded cell result (the sweep layer's codec).
    pub payload: Vec<u8>,
}

/// What [`SweepStore::open`] found: how many records were loaded and
/// whether a torn tail was truncated away.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpenReport {
    /// Valid records loaded (after last-write-wins dedup happens in the
    /// caller; this counts raw frames).
    pub records: usize,
    /// Bytes dropped from the corrupt tail (0 on a clean open).
    pub truncated_bytes: u64,
    /// Human-readable recovery note, present iff bytes were dropped.
    pub warning: Option<String>,
}

/// The append-only store: a header plus a sequence of framed records.
/// One writer at a time; appends are single `write_all` calls so the
/// tail is the only region a crash can tear.
#[derive(Debug)]
pub struct SweepStore {
    file: File,
    path: PathBuf,
    header: StoreHeader,
    /// Offset of the valid end of the file — where the next append lands.
    end: u64,
    records: usize,
}

impl SweepStore {
    /// Create (or truncate) a store at `path` with the given identity
    /// header. The header is written immediately.
    pub fn create(path: impl AsRef<Path>, header: StoreHeader) -> Result<SweepStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| StoreError(format!("cannot create {path:?}: {e}")))?;
        let buf = header.encode();
        file.write_all(&buf)?;
        Ok(SweepStore {
            file,
            path,
            header,
            end: HEADER_LEN,
            records: 0,
        })
    }

    /// Open an existing store: validate the header, scan every record,
    /// and truncate away a torn tail if the last append was interrupted.
    /// Returns the store (positioned to append), the records in file
    /// order, and a report of any recovery performed.
    pub fn open(
        path: impl AsRef<Path>,
    ) -> Result<(SweepStore, Vec<CellRecord>, OpenReport), StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| StoreError(format!("cannot open {path:?}: {e}")))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let header = StoreHeader::decode(&bytes)
            .map_err(|e| StoreError(format!("{}: {}", path.display(), e.0)))?;

        // Scan frames front to back; the first bad frame ends the valid
        // region — everything after it is untrusted (framing is lost).
        let mut records = Vec::new();
        let mut offset = HEADER_LEN as usize;
        let valid_end = loop {
            if offset == bytes.len() {
                break offset; // clean end
            }
            let Some(frame) = read_frame(&bytes, offset) else {
                break offset; // torn or corrupt frame: valid region ends here
            };
            let (record, next) = frame;
            if record.index >= header.grid_size {
                // A frame that checksums but violates the header is not a
                // torn write — refuse rather than silently drop data.
                return Err(StoreError(format!(
                    "{}: record index {} out of range (grid size {})",
                    path.display(),
                    record.index,
                    header.grid_size
                )));
            }
            records.push(record);
            offset = next;
        };

        let mut report = OpenReport {
            records: records.len(),
            ..OpenReport::default()
        };
        if valid_end < bytes.len() {
            let dropped = (bytes.len() - valid_end) as u64;
            file.set_len(valid_end as u64)?;
            file.sync_data()?;
            report.truncated_bytes = dropped;
            report.warning = Some(format!(
                "recovered {}: dropped {dropped} corrupt tail byte{} after {} intact record{} \
                 (interrupted append)",
                path.display(),
                if dropped == 1 { "" } else { "s" },
                records.len(),
                if records.len() == 1 { "" } else { "s" },
            ));
        }

        Ok((
            SweepStore {
                file,
                path,
                header,
                end: valid_end as u64,
                records: records.len(),
            },
            records,
            report,
        ))
    }

    /// The identity header this store was created with.
    pub fn header(&self) -> &StoreHeader {
        &self.header
    }

    /// Records appended so far (including those loaded at open).
    pub fn records(&self) -> usize {
        self.records
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record: a single `write_all` of the framed bytes at the
    /// valid end, so a crash mid-call can only tear the tail — which the
    /// next [`SweepStore::open`] truncates away.
    pub fn append(&mut self, record: &CellRecord) -> Result<(), StoreError> {
        let frame = self.frame_bytes(record)?;
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&frame)?;
        self.end += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Fault-injection support (`torn_write@record=N`): build the
    /// record's frame but write only its first half, simulating a
    /// process killed mid-`write_all`. The store's valid end does *not*
    /// advance — the file now carries a torn tail that the next
    /// [`SweepStore::open`] truncates away. The caller must abort the
    /// process after this; appending past a torn tail would corrupt the
    /// log mid-file, which open treats as a hard error.
    pub fn append_torn(&mut self, record: &CellRecord) -> Result<(), StoreError> {
        let frame = self.frame_bytes(record)?;
        let half = frame.len() / 2;
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&frame[..half])?;
        Ok(())
    }

    /// Frame a record for the on-disk log: `len | fnv1a(blob) | blob`.
    fn frame_bytes(&self, record: &CellRecord) -> Result<Vec<u8>, StoreError> {
        if record.index >= self.header.grid_size {
            return Err(StoreError(format!(
                "record index {} out of range (grid size {})",
                record.index, self.header.grid_size
            )));
        }
        let mut blob = Vec::with_capacity(16 + record.payload.len());
        blob.extend_from_slice(&record.index.to_le_bytes());
        blob.extend_from_slice(&record.key_digest.to_le_bytes());
        blob.extend_from_slice(&record.payload);
        let len = u32::try_from(blob.len())
            .ok()
            .filter(|&l| l <= MAX_BLOB_LEN)
            .ok_or_else(|| StoreError(format!("record too large: {} bytes", blob.len())))?;
        let mut frame = Vec::with_capacity(12 + blob.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv1a(&blob).to_le_bytes());
        frame.extend_from_slice(&blob);
        Ok(frame)
    }

    /// Force everything appended so far to stable storage (power-loss
    /// durability; appends alone already survive process death).
    pub fn sync(&self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// Parse one frame at `offset`; `None` if the frame is short or fails its
/// checksum (i.e. the valid region ends before it).
fn read_frame(bytes: &[u8], offset: usize) -> Option<(CellRecord, usize)> {
    let head = bytes.get(offset..offset + 12)?;
    let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
    if !(16..=MAX_BLOB_LEN).contains(&len) {
        return None;
    }
    let stored_sum = u64_at(head, 4);
    let blob = bytes.get(offset + 12..offset + 12 + len as usize)?;
    if fnv1a(blob) != stored_sum {
        return None;
    }
    Some((
        CellRecord {
            index: u64_at(blob, 0),
            key_digest: u64_at(blob, 8),
            payload: blob[16..].to_vec(),
        },
        offset + 12 + len as usize,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ckpt_store_{}_{name}.ckpt", std::process::id()))
    }

    fn header() -> StoreHeader {
        StoreHeader {
            spec_digest: 0xabad_1dea,
            seed: 7,
            scale: 800,
            grid_size: 24,
        }
    }

    fn record(i: u64) -> CellRecord {
        CellRecord {
            index: i,
            key_digest: 1000 + i,
            payload: format!("cell-{i}-payload").into_bytes(),
        }
    }

    #[test]
    fn roundtrip_records_and_header() {
        let path = tmp("roundtrip");
        let mut store = SweepStore::create(&path, header()).unwrap();
        for i in [0, 5, 23] {
            store.append(&record(i)).unwrap();
        }
        store.sync().unwrap();
        drop(store);

        let (store, records, report) = SweepStore::open(&path).unwrap();
        assert_eq!(*store.header(), header());
        assert_eq!(records, vec![record(0), record(5), record(23)]);
        assert_eq!(report.records, 3);
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.warning.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_reopen_extends_the_log() {
        let path = tmp("extend");
        let mut store = SweepStore::create(&path, header()).unwrap();
        store.append(&record(0)).unwrap();
        drop(store);
        let (mut store, _, _) = SweepStore::open(&path).unwrap();
        store.append(&record(1)).unwrap();
        drop(store);
        let (_, records, _) = SweepStore::open(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1], record(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_warned_then_appendable() {
        let path = tmp("torn");
        let mut store = SweepStore::create(&path, header()).unwrap();
        store.append(&record(0)).unwrap();
        store.append(&record(1)).unwrap();
        drop(store);
        // Simulate a crash mid-append: half a frame of garbage at the tail.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0x2a; 7]).unwrap();
        drop(f);

        let (mut store, records, report) = SweepStore::open(&path).unwrap();
        assert_eq!(records.len(), 2, "intact records survive");
        assert_eq!(report.truncated_bytes, 7);
        assert!(report.warning.as_deref().unwrap().contains("7 corrupt"));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // The log is healthy again: appends land and reopen cleanly.
        store.append(&record(2)).unwrap();
        drop(store);
        let (_, records, report) = SweepStore::open(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert!(report.warning.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_append_is_recovered_on_the_next_open() {
        let path = tmp("torn_append");
        let mut store = SweepStore::create(&path, header()).unwrap();
        store.append(&record(0)).unwrap();
        let clean_len = std::fs::metadata(&path).unwrap().len();
        store.append_torn(&record(1)).unwrap();
        assert!(
            std::fs::metadata(&path).unwrap().len() > clean_len,
            "the torn half-frame reached the file"
        );
        drop(store);

        let (mut store, records, report) = SweepStore::open(&path).unwrap();
        assert_eq!(records, vec![record(0)], "the torn record is dropped");
        assert!(report.truncated_bytes > 0);
        assert!(report.warning.as_deref().unwrap().contains("corrupt tail"));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // The log is append-clean again: the re-evaluated cell lands.
        store.append(&record(1)).unwrap();
        drop(store);
        let (_, records, report) = SweepStore::open(&path).unwrap();
        assert_eq!(records, vec![record(0), record(1)]);
        assert!(report.warning.is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_io_errors_are_classified() {
        let transient: StoreError =
            std::io::Error::new(std::io::ErrorKind::Interrupted, "blip").into();
        assert!(transient.is_transient(), "{transient}");
        assert!(transient.0.contains("interrupted"), "{transient}");
        let fatal: StoreError =
            std::io::Error::new(std::io::ErrorKind::PermissionDenied, "locked").into();
        assert!(!fatal.is_transient(), "{fatal}");
        assert!(!StoreError("header checksum mismatch".into()).is_transient());
    }

    #[test]
    fn corrupt_mid_file_drops_everything_after_it() {
        let path = tmp("midflip");
        let mut store = SweepStore::create(&path, header()).unwrap();
        for i in 0..4 {
            store.append(&record(i)).unwrap();
        }
        drop(store);
        // Flip one payload byte inside record 1: its checksum fails, and
        // framing beyond it can no longer be trusted.
        let mut bytes = std::fs::read(&path).unwrap();
        let frame_len = 12 + 16 + record(0).payload.len();
        let target = HEADER_LEN as usize + frame_len + 12 + 16 + 2;
        bytes[target] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let (_, records, report) = SweepStore::open(&path).unwrap();
        assert_eq!(records, vec![record(0)], "only the prefix survives");
        assert!(report.truncated_bytes > 0);
        assert!(report.warning.is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_header_is_a_named_error() {
        let path = tmp("shorthdr");
        std::fs::write(&path, b"CKPTSW").unwrap();
        let err = SweepStore::open(&path).unwrap_err();
        assert!(err.0.contains("header truncated"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = tmp("foreign");
        std::fs::write(&path, vec![0x41u8; 128]).unwrap();
        let err = SweepStore::open(&path).unwrap_err();
        assert!(err.0.contains("checksum"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatches_are_named() {
        let stored = header();
        let mut other = header();
        other.seed = 9;
        let err = stored.validate_against(&other).unwrap_err();
        assert!(err.0.contains("seed was 7"), "{err}");
        let mut other = header();
        other.spec_digest = 1;
        let err = stored.validate_against(&other).unwrap_err();
        assert!(err.0.contains("spec digest"), "{err}");
        let mut other = header();
        other.grid_size = 25;
        let err = stored.validate_against(&other).unwrap_err();
        assert!(err.0.contains("grid size"), "{err}");
        assert!(stored.validate_against(&header()).is_ok());
    }

    #[test]
    fn out_of_range_index_rejected_on_append_and_open() {
        let path = tmp("range");
        let mut store = SweepStore::create(&path, header()).unwrap();
        let err = store.append(&record(24)).unwrap_err();
        assert!(err.0.contains("out of range"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_drift_is_rejected() {
        let path = tmp("version");
        let store = SweepStore::create(&path, header()).unwrap();
        drop(store);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = FORMAT_VERSION as u8 + 1; // bump stored version...
        let body_len = HEADER_LEN as usize - 8;
        let sum = fnv1a(&bytes[..body_len]); // ...and re-checksum it
        bytes[body_len..HEADER_LEN as usize].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = SweepStore::open(&path).unwrap_err();
        assert!(err.0.contains("version"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
