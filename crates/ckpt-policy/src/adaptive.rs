//! Algorithm 1 — the adaptive checkpointing controller — and Theorem 2, its
//! correctness argument.
//!
//! The controller tracks a task's productive progress and decides *when to
//! checkpoint*. Per **Theorem 2**, the optimal positions for the remaining
//! work change **iff** the task's MNOF changed during the last interval
//! (e.g. its priority was re-tuned): if MNOF is unchanged, the previously
//! computed spacing stays optimal and the interval count simply decrements
//! (`X(k+1) = X(k) − 1`); if it changed, the controller re-solves Formula (3)
//! for the remaining workload.
//!
//! The controller is deliberately I/O-free: the simulator (or a real system)
//! drives it with productive-time advancement and completion callbacks, and
//! it answers with [`CheckpointDecision`]s. This mirrors Algorithm 1's
//! countdown loop without imposing a polling thread.

use crate::optimal::{optimal_interval_count, scale_mnof};
use crate::{PolicyError, Result};

/// What the controller wants the executor to do after a progress update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckpointDecision {
    /// Keep executing; next checkpoint is `at_progress` units of productive
    /// time from task start (absolute position).
    RunUntil {
        /// Absolute productive-time position of the next checkpoint.
        at_progress: f64,
    },
    /// Run to completion; no further checkpoints are scheduled.
    RunToCompletion,
}

/// The adaptive (or, with adaptivity disabled, static) checkpoint controller
/// of Algorithm 1.
#[derive(Debug, Clone)]
pub struct AdaptiveCheckpointer {
    /// Per-checkpoint cost `C` (seconds).
    c: f64,
    /// Full productive length `Te`.
    te_total: f64,
    /// MNOF over the *full* task, as currently believed.
    mnof_full: f64,
    /// Productive progress made and durably checkpointed or completed.
    progress: f64,
    /// Segment length currently in force.
    segment: f64,
    /// Absolute position of the next checkpoint (None ⇒ run to completion).
    next_ckpt: Option<f64>,
    /// If false, MNOF updates are ignored — the "static algorithm" the paper
    /// compares against in Figure 14.
    adaptive: bool,
    /// Count of re-solves triggered by MNOF changes (observability).
    resolves: u32,
}

impl AdaptiveCheckpointer {
    /// Create a controller for a task with productive length `te`,
    /// checkpoint cost `c`, and full-task MNOF `mnof`.
    pub fn new(te: f64, c: f64, mnof: f64) -> Result<Self> {
        Self::with_adaptivity(te, c, mnof, true)
    }

    /// Create a *static* controller: the checkpoint spacing computed at task
    /// start is kept even if MNOF later changes (Figure 14's baseline).
    pub fn new_static(te: f64, c: f64, mnof: f64) -> Result<Self> {
        Self::with_adaptivity(te, c, mnof, false)
    }

    fn with_adaptivity(te: f64, c: f64, mnof: f64, adaptive: bool) -> Result<Self> {
        if !(te.is_finite() && te > 0.0) {
            return Err(PolicyError::BadInput {
                what: "te",
                value: te,
            });
        }
        if !(c.is_finite() && c > 0.0) {
            return Err(PolicyError::BadInput {
                what: "c",
                value: c,
            });
        }
        if !(mnof.is_finite() && mnof >= 0.0) {
            return Err(PolicyError::BadInput {
                what: "mnof",
                value: mnof,
            });
        }
        let mut s = Self {
            c,
            te_total: te,
            mnof_full: mnof,
            progress: 0.0,
            segment: te,
            next_ckpt: None,
            adaptive,
            resolves: 0,
        };
        s.solve_from_current();
        Ok(s)
    }

    /// Re-solve Formula (3) for the remaining workload and reset the spacing.
    fn solve_from_current(&mut self) {
        let remaining = (self.te_total - self.progress).max(0.0);
        if remaining <= 0.0 {
            self.next_ckpt = None;
            return;
        }
        // Expected failures over the remaining work, proportional scaling
        // (the E_k(Y) = Tr(k)/Tr(0)·E_0(Y) step in Theorem 2's proof).
        let e_rem = scale_mnof(self.mnof_full, self.te_total, remaining)
            .expect("validated at construction");
        let x = match optimal_interval_count(remaining, self.c, e_rem) {
            Ok(x) => x.rounded(),
            Err(_) => 1,
        };
        self.segment = remaining / x as f64;
        self.next_ckpt = if x <= 1 {
            None
        } else {
            Some(self.progress + self.segment)
        };
    }

    /// Current checkpoint decision.
    pub fn decision(&self) -> CheckpointDecision {
        match self.next_ckpt {
            Some(p) if p < self.te_total => CheckpointDecision::RunUntil { at_progress: p },
            _ => CheckpointDecision::RunToCompletion,
        }
    }

    /// The executor reports that a checkpoint completed at productive
    /// position `at_progress` (durable progress). Per Theorem 2, if MNOF is
    /// unchanged the spacing is kept (`X` decrements implicitly); the next
    /// checkpoint is one segment further.
    pub fn on_checkpoint_complete(&mut self, at_progress: f64) {
        self.progress = at_progress.clamp(0.0, self.te_total);
        let candidate = self.progress + self.segment;
        // Tolerate FP drift: if the candidate lands within half a segment of
        // the task end, run to completion instead of a vanishing segment.
        self.next_ckpt = if candidate + 0.5 * self.segment >= self.te_total {
            None
        } else {
            Some(candidate)
        };
    }

    /// The executor reports a failure rolled the task back to durable
    /// progress `at_progress` (the last checkpoint or 0). The schedule for
    /// the re-executed work keeps the same spacing — the failure does not
    /// change MNOF by itself.
    pub fn on_rollback(&mut self, at_progress: f64) {
        self.progress = at_progress.clamp(0.0, self.te_total);
        let candidate = self.progress + self.segment;
        self.next_ckpt = if candidate + 0.5 * self.segment >= self.te_total {
            None
        } else {
            Some(candidate)
        };
    }

    /// The task's failure statistics changed (e.g. priority re-tuned):
    /// update the full-task MNOF. An adaptive controller re-solves for the
    /// remaining workload (Algorithm 1 lines 9–12); a static one ignores it.
    ///
    /// Returns `true` if the schedule was re-solved.
    pub fn update_mnof(&mut self, mnof_full: f64) -> bool {
        if !(self.adaptive && mnof_full.is_finite() && mnof_full >= 0.0) {
            return false;
        }
        if (mnof_full - self.mnof_full).abs() < f64::EPSILON * self.mnof_full.abs() {
            // Theorem 2: unchanged MNOF ⇒ positions stay optimal; do nothing.
            return false;
        }
        self.mnof_full = mnof_full;
        self.resolves += 1;
        self.solve_from_current();
        true
    }

    /// Durable productive progress (work that survives a failure).
    #[inline]
    pub fn progress(&self) -> f64 {
        self.progress
    }

    /// Current segment length in force.
    #[inline]
    pub fn segment(&self) -> f64 {
        self.segment
    }

    /// Current full-task MNOF belief.
    #[inline]
    pub fn mnof(&self) -> f64 {
        self.mnof_full
    }

    /// How many times an MNOF change forced a re-solve.
    #[inline]
    pub fn resolve_count(&self) -> u32 {
        self.resolves
    }

    /// Whether this controller adapts to MNOF changes.
    #[inline]
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }
}

/// Theorem 2, checked numerically: with unchanged MNOF, the optimal interval
/// count recomputed at the (k+1)-st checkpoint equals the count at the k-th
/// minus one. Returns `(x_k, x_k_plus_1_recomputed)` for inspection.
pub fn theorem2_check(te: f64, c: f64, mnof: f64, k: u32) -> Result<(f64, f64)> {
    if !(te.is_finite() && te > 0.0) {
        return Err(PolicyError::BadInput {
            what: "te",
            value: te,
        });
    }
    if !(c.is_finite() && c > 0.0) {
        return Err(PolicyError::BadInput {
            what: "c",
            value: c,
        });
    }
    if !(mnof.is_finite() && mnof > 0.0) {
        return Err(PolicyError::BadInput {
            what: "mnof",
            value: mnof,
        });
    }
    // Continuous X* at the k-th checkpoint, with Tr(k) the remaining length.
    let x0 = (te * mnof / (2.0 * c)).sqrt();
    // Remaining work after k segments of the *current* schedule: the paper's
    // setting has Tr(k+1) = Tr(k)·(X−1)/X repeatedly.
    let mut tr = te;
    let mut x = x0;
    for _ in 0..k {
        tr *= (x - 1.0) / x;
        x -= 1.0;
    }
    let e_rem = mnof * tr / te;
    let x_k = (tr * e_rem / (2.0 * c)).sqrt();
    // One more segment:
    let tr_next = tr * (x_k - 1.0) / x_k;
    let e_next = mnof * tr_next / te;
    let x_next = (tr_next * e_next / (2.0 * c)).sqrt();
    Ok((x_k, x_next))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem2_decrement_invariant() {
        // X(k+1) = X(k) − 1 for unchanged MNOF, at every k.
        for k in 0..5 {
            let (xk, xk1) = theorem2_check(1000.0, 1.0, 8.0, k).unwrap();
            assert!((xk1 - (xk - 1.0)).abs() < 1e-9, "k={k}: {xk} → {xk1}");
        }
    }

    #[test]
    fn theorem2_breaks_when_mnof_changes() {
        // Same remaining-work geometry but with a doubled MNOF: the
        // recomputed count is NOT x−1.
        let (xk, _) = theorem2_check(1000.0, 1.0, 8.0, 0).unwrap();
        let tr_next = 1000.0 * (xk - 1.0) / xk;
        let e_next_doubled = 16.0 * tr_next / 1000.0;
        let x_next = (tr_next * e_next_doubled / 2.0).sqrt();
        assert!((x_next - (xk - 1.0)).abs() > 0.5);
    }

    #[test]
    fn controller_initial_solution_matches_formula3() {
        // Te=441, C=1, MNOF=2 ⇒ x=21, segment=21 s, first checkpoint at 21 s.
        let ctl = AdaptiveCheckpointer::new(441.0, 1.0, 2.0).unwrap();
        assert!((ctl.segment() - 21.0).abs() < 1e-9);
        match ctl.decision() {
            CheckpointDecision::RunUntil { at_progress } => {
                assert!((at_progress - 21.0).abs() < 1e-9)
            }
            other => panic!("unexpected decision {other:?}"),
        }
    }

    #[test]
    fn spacing_kept_across_checkpoints_without_mnof_change() {
        let mut ctl = AdaptiveCheckpointer::new(441.0, 1.0, 2.0).unwrap();
        let seg = ctl.segment();
        ctl.on_checkpoint_complete(21.0);
        assert_eq!(ctl.segment(), seg); // Theorem 2 fast path: no re-solve
        match ctl.decision() {
            CheckpointDecision::RunUntil { at_progress } => {
                assert!((at_progress - 42.0).abs() < 1e-9)
            }
            other => panic!("unexpected decision {other:?}"),
        }
    }

    #[test]
    fn last_segment_runs_to_completion() {
        let mut ctl = AdaptiveCheckpointer::new(100.0, 2.0, 1.0).unwrap();
        // x* = sqrt(100/4) = 5 ⇒ segment 20; checkpoints at 20,40,60,80.
        for p in [20.0, 40.0, 60.0] {
            ctl.on_checkpoint_complete(p);
            assert!(matches!(
                ctl.decision(),
                CheckpointDecision::RunUntil { .. }
            ));
        }
        ctl.on_checkpoint_complete(80.0);
        assert_eq!(ctl.decision(), CheckpointDecision::RunToCompletion);
    }

    #[test]
    fn zero_mnof_runs_to_completion() {
        let ctl = AdaptiveCheckpointer::new(100.0, 1.0, 0.0).unwrap();
        assert_eq!(ctl.decision(), CheckpointDecision::RunToCompletion);
    }

    #[test]
    fn rollback_keeps_spacing() {
        let mut ctl = AdaptiveCheckpointer::new(100.0, 2.0, 1.0).unwrap();
        ctl.on_checkpoint_complete(20.0);
        ctl.on_rollback(20.0); // failure at, say, progress 33 rolls back to 20
        match ctl.decision() {
            CheckpointDecision::RunUntil { at_progress } => {
                assert!((at_progress - 40.0).abs() < 1e-9)
            }
            other => panic!("unexpected decision {other:?}"),
        }
    }

    #[test]
    fn mnof_update_resolves_adaptive_only() {
        let mut adaptive = AdaptiveCheckpointer::new(400.0, 1.0, 2.0).unwrap();
        let mut fixed = AdaptiveCheckpointer::new_static(400.0, 1.0, 2.0).unwrap();
        adaptive.on_checkpoint_complete(adaptive.segment());
        fixed.on_checkpoint_complete(fixed.segment());
        let seg_before = adaptive.segment();

        assert!(adaptive.update_mnof(8.0));
        assert!(!fixed.update_mnof(8.0));
        assert_eq!(adaptive.resolve_count(), 1);
        assert_eq!(fixed.resolve_count(), 0);
        // 4× MNOF ⇒ roughly half the segment length for remaining work.
        assert!(
            adaptive.segment() < seg_before * 0.7,
            "{}",
            adaptive.segment()
        );
        assert_eq!(fixed.segment(), seg_before);
    }

    #[test]
    fn unchanged_mnof_update_is_noop() {
        let mut ctl = AdaptiveCheckpointer::new(400.0, 1.0, 2.0).unwrap();
        assert!(!ctl.update_mnof(2.0));
        assert_eq!(ctl.resolve_count(), 0);
    }

    #[test]
    fn construction_rejects_bad_inputs() {
        assert!(AdaptiveCheckpointer::new(0.0, 1.0, 1.0).is_err());
        assert!(AdaptiveCheckpointer::new(10.0, 0.0, 1.0).is_err());
        assert!(AdaptiveCheckpointer::new(10.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn theorem2_check_rejects_bad_inputs() {
        assert!(theorem2_check(0.0, 1.0, 1.0, 0).is_err());
        assert!(theorem2_check(1.0, 0.0, 1.0, 0).is_err());
        assert!(theorem2_check(1.0, 1.0, 0.0, 0).is_err());
    }
}
