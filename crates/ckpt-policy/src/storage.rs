//! §4.2.2 — the local-disk vs shared-disk checkpointing tradeoff.
//!
//! Checkpointing to a **local ramdisk** is cheap per checkpoint (`C_l`) but
//! makes restarting on *another* host expensive (migration type A: the
//! memory image must first be moved off the failed host's disk). Checkpointing
//! to a **shared disk** (NFS/DM-NFS) costs more per checkpoint (`C_s`) but
//! restarts are cheap anywhere (migration type B).
//!
//! The paper decides by comparing expected total overheads under Formula (4):
//!
//! ```text
//! total(C, R) = C·(X − 1) + R·E(Y) + Te·E(Y) / (2X)
//! ```
//!
//! with `X` the (continuous) optimal interval count for that device's `C`.

use crate::optimal::optimal_interval_count;
use crate::{PolicyError, Result};

/// The `(C, R)` cost pair of one checkpoint storage device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceCosts {
    /// Per-checkpoint cost `C` (seconds).
    pub checkpoint_cost: f64,
    /// Per-restart cost `R` (seconds) when recovering from this device.
    pub restart_cost: f64,
}

impl DeviceCosts {
    /// Create a cost pair, validating both entries.
    pub fn new(checkpoint_cost: f64, restart_cost: f64) -> Result<Self> {
        if !(checkpoint_cost.is_finite() && checkpoint_cost > 0.0) {
            return Err(PolicyError::BadInput {
                what: "checkpoint_cost",
                value: checkpoint_cost,
            });
        }
        if !(restart_cost.is_finite() && restart_cost >= 0.0) {
            return Err(PolicyError::BadInput {
                what: "restart_cost",
                value: restart_cost,
            });
        }
        Ok(Self {
            checkpoint_cost,
            restart_cost,
        })
    }
}

/// Which device a task should checkpoint to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoragePick {
    /// Local ramdisk (migration type A on restart).
    Local,
    /// Shared disk — NFS or DM-NFS (migration type B on restart).
    Shared,
}

impl StoragePick {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            StoragePick::Local => "local-ramdisk",
            StoragePick::Shared => "shared-disk",
        }
    }
}

/// Expected total fault-tolerance overhead for a device, with `X` chosen
/// continuously as in the paper's worked example:
/// `C·(X−1) + R·E(Y) + Te·E(Y)/(2X)` where `X = sqrt(Te·E(Y)/(2C))`.
///
/// ```
/// use ckpt_policy::storage::{expected_total_cost, DeviceCosts};
/// // Paper's example: Te=200 s, 160 MB, E(Y)=2.
/// // Local ramdisk: C=0.632, R=3.22 ⇒ ≈ 28.29 s.
/// let local = DeviceCosts::new(0.632, 3.22).unwrap();
/// let cost = expected_total_cost(200.0, 2.0, local).unwrap();
/// assert!((cost - 28.29).abs() < 0.01);
/// // Shared disk: C=1.67, R=1.45 ⇒ ≈ 37.78 s.
/// let shared = DeviceCosts::new(1.67, 1.45).unwrap();
/// let cost_s = expected_total_cost(200.0, 2.0, shared).unwrap();
/// assert!((cost_s - 37.78).abs() < 0.01);
/// ```
pub fn expected_total_cost(te: f64, e_y: f64, device: DeviceCosts) -> Result<f64> {
    if !(te.is_finite() && te > 0.0) {
        return Err(PolicyError::BadInput {
            what: "te",
            value: te,
        });
    }
    if !(e_y.is_finite() && e_y >= 0.0) {
        return Err(PolicyError::BadInput {
            what: "e_y",
            value: e_y,
        });
    }
    if e_y == 0.0 {
        // No failures expected: no checkpoints, no restarts.
        return Ok(0.0);
    }
    let x = optimal_interval_count(te, device.checkpoint_cost, e_y)?
        .continuous()
        .max(1.0);
    Ok(device.checkpoint_cost * (x - 1.0) + device.restart_cost * e_y + te * e_y / (2.0 * x))
}

/// Decide between local-ramdisk and shared-disk checkpointing by expected
/// total overhead. Returns the pick and both costs `(local, shared)`.
///
/// ```
/// use ckpt_policy::storage::{choose_storage, DeviceCosts, StoragePick};
/// let local = DeviceCosts::new(0.632, 3.22).unwrap();
/// let shared = DeviceCosts::new(1.67, 1.45).unwrap();
/// let (pick, cl, cs) = choose_storage(200.0, 2.0, local, shared).unwrap();
/// assert_eq!(pick, StoragePick::Local); // the paper's conclusion
/// assert!(cl < cs);
/// ```
pub fn choose_storage(
    te: f64,
    e_y: f64,
    local: DeviceCosts,
    shared: DeviceCosts,
) -> Result<(StoragePick, f64, f64)> {
    let cost_local = expected_total_cost(te, e_y, local)?;
    let cost_shared = expected_total_cost(te, e_y, shared)?;
    let pick = if cost_local < cost_shared {
        StoragePick::Local
    } else {
        StoragePick::Shared
    };
    Ok((pick, cost_local, cost_shared))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // Te=200, memsize=160MB, E(Y)=2; measured costs from Tables 2 & 5:
        // local: C=0.632 (ramdisk avg), R=3.22 (migration A);
        // shared: C=1.67 (NFS avg), R=1.45 (migration B).
        let local = DeviceCosts::new(0.632, 3.22).unwrap();
        let shared = DeviceCosts::new(1.67, 1.45).unwrap();
        let cl = expected_total_cost(200.0, 2.0, local).unwrap();
        let cs = expected_total_cost(200.0, 2.0, shared).unwrap();
        assert!((cl - 28.29).abs() < 0.01, "local = {cl}");
        assert!((cs - 37.78).abs() < 0.01, "shared = {cs}");
        let (pick, ..) = choose_storage(200.0, 2.0, local, shared).unwrap();
        assert_eq!(pick, StoragePick::Local);
    }

    #[test]
    fn cheap_restart_wins_for_failure_heavy_tasks() {
        // With many expected failures the R·E(Y) term dominates: shared
        // disk (cheap restart) becomes the right pick even though its
        // per-checkpoint cost is higher.
        let local = DeviceCosts::new(0.632, 3.22).unwrap();
        let shared = DeviceCosts::new(1.67, 1.45).unwrap();
        let (pick, ..) = choose_storage(200.0, 40.0, local, shared).unwrap();
        assert_eq!(pick, StoragePick::Shared);
    }

    #[test]
    fn zero_failures_zero_cost() {
        let d = DeviceCosts::new(1.0, 1.0).unwrap();
        assert_eq!(expected_total_cost(500.0, 0.0, d).unwrap(), 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(DeviceCosts::new(0.0, 1.0).is_err());
        assert!(DeviceCosts::new(1.0, -1.0).is_err());
        let d = DeviceCosts::new(1.0, 1.0).unwrap();
        assert!(expected_total_cost(0.0, 1.0, d).is_err());
        assert!(expected_total_cost(10.0, -1.0, d).is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(StoragePick::Local.label(), "local-ramdisk");
        assert_eq!(StoragePick::Shared.label(), "shared-disk");
    }
}
