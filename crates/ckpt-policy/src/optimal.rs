//! Theorem 1 — the distribution-free optimal number of checkpointing
//! intervals — and the expected-wall-clock model it minimizes.
//!
//! With equidistant checkpoints, a task of productive length `Te`,
//! per-checkpoint cost `C`, per-restart cost `R` and an expected `E(Y)`
//! failures during execution has expected wall-clock (paper Formula (4)):
//!
//! ```text
//! E(Tw) = Te + C·(x − 1) + R·E(Y) + Te·E(Y) / (2x)
//! ```
//!
//! The `Te·E(Y)/(2x)` term is the expected rollback loss: failures strike
//! uniformly within a segment of length `Te/x`, losing `Te/(2x)` on average.
//! Setting `∂E(Tw)/∂x = C − Te·E(Y)/(2x²) = 0` gives **Formula (3)**:
//!
//! ```text
//! x* = sqrt( Te · E(Y) / (2C) )
//! ```
//!
//! No assumption is made about the failure-interval distribution — only the
//! *mean number of failures* (MNOF) enters. This is the paper's key
//! advantage over Young's and Daly's MTBF-based formulas when intervals are
//! heavy-tailed (Google's are; see Figure 5).

use crate::{PolicyError, Result};

/// The optimal interval count: the continuous optimizer of Formula (4) plus
/// a cost-aware integer rounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalX {
    continuous: f64,
    rounded: u32,
}

impl OptimalX {
    /// The continuous optimizer `sqrt(Te·E(Y)/(2C))` (≥ 0).
    #[inline]
    pub fn continuous(&self) -> f64 {
        self.continuous
    }

    /// The integer interval count actually used (≥ 1): whichever of
    /// `floor(x*)`, `ceil(x*)` has lower expected wall-clock.
    #[inline]
    pub fn rounded(&self) -> u32 {
        self.rounded
    }

    /// Number of checkpoints taken (`x − 1`; the final segment ends with
    /// task completion, not a checkpoint).
    #[inline]
    pub fn checkpoint_count(&self) -> u32 {
        self.rounded.saturating_sub(1)
    }

    /// Length of one checkpointing interval, `Te / x`.
    #[inline]
    pub fn interval_length(&self, te: f64) -> f64 {
        te / self.rounded as f64
    }
}

fn check(what: &'static str, v: f64, nonneg_ok: bool) -> Result<f64> {
    let ok = v.is_finite() && if nonneg_ok { v >= 0.0 } else { v > 0.0 };
    if ok {
        Ok(v)
    } else {
        Err(PolicyError::BadInput { what, value: v })
    }
}

/// Expected wall-clock time of a task under equidistant checkpointing —
/// paper Formula (4).
///
/// * `te` — productive execution length (s), > 0
/// * `c` — per-checkpoint cost (s), ≥ 0
/// * `r` — per-restart cost (s), ≥ 0
/// * `e_y` — expected number of failures during execution (MNOF), ≥ 0
/// * `x` — number of equidistant intervals, ≥ 1
///
/// ```
/// use ckpt_policy::optimal::expected_wall_clock;
/// // Te=18, C=2, R=0, E(Y)=2 at the optimum x=3:
/// // 18 + 2·2 + 0 + 18·2/6 = 28.
/// let e = expected_wall_clock(18.0, 2.0, 0.0, 2.0, 3).unwrap();
/// assert!((e - 28.0).abs() < 1e-12);
/// ```
pub fn expected_wall_clock(te: f64, c: f64, r: f64, e_y: f64, x: u32) -> Result<f64> {
    let te = check("te", te, false)?;
    let c = check("c", c, true)?;
    let r = check("r", r, true)?;
    let e_y = check("e_y", e_y, true)?;
    if x == 0 {
        return Err(PolicyError::BadInput {
            what: "x",
            value: 0.0,
        });
    }
    let x = x as f64;
    Ok(te + c * (x - 1.0) + r * e_y + te * e_y / (2.0 * x))
}

/// The overhead part of Formula (4) (everything except `Te` and the
/// `R·E(Y)` term that does not depend on `x`):
/// `C·(x−1) + Te·E(Y)/(2x)`.
pub fn overhead(te: f64, c: f64, e_y: f64, x: u32) -> Result<f64> {
    expected_wall_clock(te, c, 0.0, e_y, x).map(|w| w - te)
}

/// **Formula (3)** — the optimal number of equidistant checkpointing
/// intervals, `x* = sqrt(Te·E(Y)/(2C))`, with cost-aware rounding to an
/// integer ≥ 1.
///
/// * `te` — productive execution length (s), > 0
/// * `c` — per-checkpoint cost (s), > 0
/// * `e_y` — expected number of failures during the execution (MNOF), ≥ 0
///
/// Rounding compares `floor(x*)` and `ceil(x*)` under Formula (4) — for a
/// convex objective the integer optimum is one of the two neighbours.
///
/// ```
/// use ckpt_policy::optimal::optimal_interval_count;
/// // Paper example: Te=18, C=2, E(Y)=2 => exactly 3 intervals of 6 s.
/// let x = optimal_interval_count(18.0, 2.0, 2.0).unwrap();
/// assert_eq!(x.rounded(), 3);
/// assert_eq!(x.checkpoint_count(), 2);
/// ```
pub fn optimal_interval_count(te: f64, c: f64, e_y: f64) -> Result<OptimalX> {
    let te = check("te", te, false)?;
    let c = check("c", c, false)?;
    let e_y = check("e_y", e_y, true)?;
    let cont = (te * e_y / (2.0 * c)).sqrt();
    let lo = cont.floor().max(1.0) as u32;
    let hi = cont.ceil().max(1.0) as u32;
    let rounded = if lo == hi {
        lo
    } else {
        // Convexity of Formula (4) in x makes this comparison sufficient.
        let w_lo = expected_wall_clock(te, c, 0.0, e_y, lo)?;
        let w_hi = expected_wall_clock(te, c, 0.0, e_y, hi)?;
        if w_lo <= w_hi {
            lo
        } else {
            hi
        }
    };
    Ok(OptimalX {
        continuous: cont,
        rounded,
    })
}

/// Scale an MNOF measured over a full task of length `te_total` down to the
/// expectation for a remaining length `te_remaining` — the proportionality
/// `E_k(Y) = (Tr(k)/Tr(0))·E_0(Y)` used in the proof of Theorem 2.
pub fn scale_mnof(mnof: f64, te_total: f64, te_remaining: f64) -> Result<f64> {
    let mnof = check("mnof", mnof, true)?;
    let te_total = check("te_total", te_total, false)?;
    let te_remaining = check("te_remaining", te_remaining, true)?;
    Ok(mnof * te_remaining / te_total)
}

/// Exhaustive integer minimizer of Formula (4), for validation: scans
/// `x ∈ [1, x_max]` and returns the best. Used by tests and ablation benches
/// to confirm [`optimal_interval_count`]'s rounding is exact.
pub fn brute_force_optimal(te: f64, c: f64, e_y: f64, x_max: u32) -> Result<u32> {
    check("te", te, false)?;
    check("c", c, false)?;
    check("e_y", e_y, true)?;
    let mut best_x = 1;
    let mut best_w = f64::INFINITY;
    for x in 1..=x_max.max(1) {
        let w = expected_wall_clock(te, c, 0.0, e_y, x)?;
        if w < best_w {
            best_w = w;
            best_x = x;
        }
    }
    Ok(best_x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // Te = 18 s, C = 2 s, Poisson λ = 2 ⇒ x* = 3, checkpoint every 6 s.
        let x = optimal_interval_count(18.0, 2.0, 2.0).unwrap();
        assert!((x.continuous() - 3.0).abs() < 1e-12);
        assert_eq!(x.rounded(), 3);
        assert!((x.interval_length(18.0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn paper_precopy_example() {
        // §4.2.2: "task length 441 s, checkpointing cost 1 s, expected number
        // of failures 2 ⇒ sqrt(441·2/(2·1)) − 1 = 20 checkpoints".
        let x = optimal_interval_count(441.0, 1.0, 2.0).unwrap();
        assert_eq!(x.rounded(), 21);
        assert_eq!(x.checkpoint_count(), 20);
    }

    #[test]
    fn paper_storage_example_continuous_values() {
        // §4.2.2 example: Te=200, E(Y)=2; C_l=0.632 ⇒ x ≈ 17.79,
        // C_s=1.67 ⇒ x ≈ 10.94.
        let xl = optimal_interval_count(200.0, 0.632, 2.0).unwrap();
        let xs = optimal_interval_count(200.0, 1.67, 2.0).unwrap();
        assert!(
            (xl.continuous() - 17.79).abs() < 0.01,
            "{}",
            xl.continuous()
        );
        assert!(
            (xs.continuous() - 10.94).abs() < 0.01,
            "{}",
            xs.continuous()
        );
    }

    #[test]
    fn zero_failures_means_no_checkpoints() {
        let x = optimal_interval_count(1000.0, 1.0, 0.0).unwrap();
        assert_eq!(x.rounded(), 1);
        assert_eq!(x.checkpoint_count(), 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(optimal_interval_count(0.0, 1.0, 1.0).is_err());
        assert!(optimal_interval_count(10.0, 0.0, 1.0).is_err());
        assert!(optimal_interval_count(10.0, 1.0, -1.0).is_err());
        assert!(optimal_interval_count(f64::NAN, 1.0, 1.0).is_err());
        assert!(expected_wall_clock(10.0, 1.0, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn expected_wall_clock_components() {
        // Te=100, C=1, R=5, E(Y)=3, x=10:
        // 100 + 9 + 15 + 100·3/20 = 139.
        let w = expected_wall_clock(100.0, 1.0, 5.0, 3.0, 10).unwrap();
        assert!((w - 139.0).abs() < 1e-12);
    }

    #[test]
    fn rounding_matches_brute_force() {
        // Sweep a grid of parameters; rounded x* must equal the exhaustive
        // integer minimizer.
        for &te in &[10.0, 50.0, 200.0, 441.0, 1000.0, 3600.0] {
            for &c in &[0.1, 0.5, 1.0, 2.0, 6.83] {
                for &ey in &[0.2, 0.5, 1.0, 2.0, 5.0, 11.9] {
                    let x = optimal_interval_count(te, c, ey).unwrap();
                    let bf = brute_force_optimal(te, c, ey, 500).unwrap();
                    assert_eq!(
                        x.rounded(),
                        bf,
                        "te={te} c={c} ey={ey}: rounded {} vs brute {bf}",
                        x.rounded()
                    );
                }
            }
        }
    }

    #[test]
    fn optimum_beats_neighbours() {
        let (te, c, ey) = (500.0, 1.5, 4.0);
        let x = optimal_interval_count(te, c, ey).unwrap().rounded();
        let w_opt = expected_wall_clock(te, c, 0.0, ey, x).unwrap();
        if x > 1 {
            assert!(w_opt <= expected_wall_clock(te, c, 0.0, ey, x - 1).unwrap());
        }
        assert!(w_opt <= expected_wall_clock(te, c, 0.0, ey, x + 1).unwrap());
    }

    #[test]
    fn scale_mnof_proportionality() {
        // Half the work remaining ⇒ half the expected failures.
        let e = scale_mnof(4.0, 100.0, 50.0).unwrap();
        assert!((e - 2.0).abs() < 1e-12);
        assert_eq!(scale_mnof(4.0, 100.0, 0.0).unwrap(), 0.0);
        assert!(scale_mnof(-1.0, 100.0, 50.0).is_err());
    }

    #[test]
    fn overhead_excludes_te_and_restart() {
        let o = overhead(100.0, 1.0, 2.0, 10).unwrap();
        // C(x−1) + Te·E(Y)/(2x) = 9 + 10 = 19.
        assert!((o - 19.0).abs() < 1e-12);
    }

    #[test]
    fn more_failures_more_checkpoints() {
        let x1 = optimal_interval_count(1000.0, 1.0, 1.0).unwrap().rounded();
        let x2 = optimal_interval_count(1000.0, 1.0, 4.0).unwrap().rounded();
        assert!(x2 > x1);
        // Quadrupling E(Y) doubles x* (square root law).
        let c1 = optimal_interval_count(1000.0, 1.0, 1.0)
            .unwrap()
            .continuous();
        let c2 = optimal_interval_count(1000.0, 1.0, 4.0)
            .unwrap()
            .continuous();
        assert!((c2 / c1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn costlier_checkpoints_mean_fewer() {
        let cheap = optimal_interval_count(1000.0, 0.5, 2.0).unwrap().rounded();
        let pricey = optimal_interval_count(1000.0, 8.0, 2.0).unwrap().rounded();
        assert!(pricey < cheap);
    }
}
