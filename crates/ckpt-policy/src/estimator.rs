//! MNOF / MTBF estimation from historical failure records.
//!
//! This is how the paper's evaluation feeds the formulas: sample jobs are
//! grouped by the 12 Google priorities (optionally restricted to tasks below
//! a length limit), and for each group
//!
//! * **MNOF** — the mean number of failure events per task — drives the
//!   paper's Formula (3), and
//! * **MTBF** — the mean uninterrupted interval between failures — drives
//!   Young's and Daly's formulas.
//!
//! Table 7 of the paper is exactly the output of this module over the Google
//! trace. The paper's observation: per-priority MNOF is stable across task
//! lengths, while MTBF is inflated by the Pareto tail, which is why Young's
//! formula mispredicts for the short tasks that dominate the workload.

use std::collections::HashMap;

/// One task's failure history: the raw material for estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskHistory {
    /// Google-style priority (1..=12 in the paper's trace).
    pub priority: u8,
    /// The task's productive length `Te` (seconds).
    pub task_length: f64,
    /// Number of failure events that struck the task.
    pub failure_count: u32,
    /// Observed uninterrupted work intervals (seconds) — the gaps between
    /// consecutive failures (and task start/end) while the task was running.
    pub intervals: Vec<f64>,
}

/// A group's MNOF/MTBF estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Mean number of failures per task.
    pub mnof: f64,
    /// Mean time between failures (mean uninterrupted interval), seconds.
    pub mtbf: f64,
    /// Number of tasks the estimate is based on.
    pub n_tasks: usize,
    /// Number of intervals the MTBF is based on.
    pub n_intervals: usize,
    /// Mean task length in the group (used for MNOF length-scaling).
    pub mean_length: f64,
}

impl Estimate {
    /// Scale the group MNOF to a specific task length, assuming failures
    /// accrue proportionally to execution time (the paper's `E_k(Y)`
    /// proportionality). Falls back to the raw MNOF if the group's mean
    /// length is degenerate.
    pub fn mnof_for_length(&self, te: f64) -> f64 {
        if self.mean_length > 0.0 && te > 0.0 {
            self.mnof * te / self.mean_length
        } else {
            self.mnof
        }
    }
}

/// Estimator that groups task histories by priority and an optional task
/// length limit (the paper's Table 7 crosses priorities with limits
/// 1000 s / 3600 s / ∞).
#[derive(Debug, Clone, Default)]
pub struct GroupedEstimator {
    groups: HashMap<u8, Vec<TaskHistory>>,
}

impl GroupedEstimator {
    /// Empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one task history.
    pub fn add(&mut self, history: TaskHistory) {
        self.groups
            .entry(history.priority)
            .or_default()
            .push(history);
    }

    /// Ingest many task histories.
    pub fn extend<I: IntoIterator<Item = TaskHistory>>(&mut self, iter: I) {
        for h in iter {
            self.add(h);
        }
    }

    /// Priorities that have at least one record.
    pub fn priorities(&self) -> Vec<u8> {
        let mut ps: Vec<u8> = self.groups.keys().copied().collect();
        ps.sort_unstable();
        ps
    }

    /// Estimate for one priority, over tasks with `task_length <= limit`
    /// (use `f64::INFINITY` for no limit). Returns `None` if no task in the
    /// group qualifies.
    pub fn estimate(&self, priority: u8, limit: f64) -> Option<Estimate> {
        let tasks = self.groups.get(&priority)?;
        let selected: Vec<&TaskHistory> = tasks.iter().filter(|t| t.task_length <= limit).collect();
        if selected.is_empty() {
            return None;
        }
        let n_tasks = selected.len();
        let total_failures: u64 = selected.iter().map(|t| t.failure_count as u64).sum();
        let mnof = total_failures as f64 / n_tasks as f64;
        let mut n_intervals = 0usize;
        let mut interval_sum = 0.0;
        for t in &selected {
            for &iv in &t.intervals {
                if iv.is_finite() && iv >= 0.0 {
                    interval_sum += iv;
                    n_intervals += 1;
                }
            }
        }
        let mtbf = if n_intervals > 0 {
            interval_sum / n_intervals as f64
        } else {
            f64::INFINITY
        };
        let mean_length = selected.iter().map(|t| t.task_length).sum::<f64>() / n_tasks as f64;
        Some(Estimate {
            mnof,
            mtbf,
            n_tasks,
            n_intervals,
            mean_length,
        })
    }

    /// Estimate pooled over *all* priorities (for the global-estimator
    /// ablation).
    pub fn estimate_pooled(&self, limit: f64) -> Option<Estimate> {
        let mut all: Vec<&TaskHistory> = Vec::new();
        for tasks in self.groups.values() {
            all.extend(tasks.iter().filter(|t| t.task_length <= limit));
        }
        if all.is_empty() {
            return None;
        }
        let n_tasks = all.len();
        let total_failures: u64 = all.iter().map(|t| t.failure_count as u64).sum();
        let mut n_intervals = 0usize;
        let mut interval_sum = 0.0;
        for t in &all {
            for &iv in &t.intervals {
                if iv.is_finite() && iv >= 0.0 {
                    interval_sum += iv;
                    n_intervals += 1;
                }
            }
        }
        Some(Estimate {
            mnof: total_failures as f64 / n_tasks as f64,
            mtbf: if n_intervals > 0 {
                interval_sum / n_intervals as f64
            } else {
                f64::INFINITY
            },
            n_tasks,
            n_intervals,
            mean_length: all.iter().map(|t| t.task_length).sum::<f64>() / n_tasks as f64,
        })
    }

    /// The full Table-7-style cross product: for each priority and each
    /// length limit, the `(priority, limit, estimate)` rows.
    pub fn table(&self, limits: &[f64]) -> Vec<(u8, f64, Estimate)> {
        let mut rows = Vec::new();
        for p in self.priorities() {
            for &limit in limits {
                if let Some(e) = self.estimate(p, limit) {
                    rows.push((p, limit, e));
                }
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(priority: u8, len: f64, failures: u32, intervals: &[f64]) -> TaskHistory {
        TaskHistory {
            priority,
            task_length: len,
            failure_count: failures,
            intervals: intervals.to_vec(),
        }
    }

    #[test]
    fn basic_mnof_mtbf() {
        let mut est = GroupedEstimator::new();
        est.add(hist(2, 500.0, 2, &[100.0, 200.0, 200.0]));
        est.add(hist(2, 300.0, 0, &[300.0]));
        let e = est.estimate(2, f64::INFINITY).unwrap();
        assert!((e.mnof - 1.0).abs() < 1e-12); // (2+0)/2
        assert!((e.mtbf - 200.0).abs() < 1e-12); // 800/4
        assert_eq!(e.n_tasks, 2);
        assert_eq!(e.n_intervals, 4);
        assert!((e.mean_length - 400.0).abs() < 1e-12);
    }

    #[test]
    fn length_limit_filters() {
        let mut est = GroupedEstimator::new();
        est.add(hist(1, 500.0, 1, &[250.0, 250.0]));
        est.add(hist(1, 5000.0, 10, &[500.0; 10]));
        let short = est.estimate(1, 1000.0).unwrap();
        assert!((short.mnof - 1.0).abs() < 1e-12);
        let all = est.estimate(1, f64::INFINITY).unwrap();
        assert!((all.mnof - 5.5).abs() < 1e-12);
        // The paper's phenomenon: long-task histories inflate MTBF.
        assert!(all.mtbf > short.mtbf);
    }

    #[test]
    fn missing_group_is_none() {
        let est = GroupedEstimator::new();
        assert!(est.estimate(3, 1000.0).is_none());
        let mut est2 = GroupedEstimator::new();
        est2.add(hist(3, 2000.0, 1, &[2000.0]));
        assert!(est2.estimate(3, 1000.0).is_none()); // filtered out by limit
    }

    #[test]
    fn mtbf_infinite_without_intervals() {
        let mut est = GroupedEstimator::new();
        est.add(hist(4, 100.0, 0, &[]));
        let e = est.estimate(4, f64::INFINITY).unwrap();
        assert_eq!(e.mnof, 0.0);
        assert!(e.mtbf.is_infinite());
    }

    #[test]
    fn pooled_covers_all_priorities() {
        let mut est = GroupedEstimator::new();
        est.add(hist(1, 100.0, 1, &[50.0, 50.0]));
        est.add(hist(9, 100.0, 3, &[25.0, 25.0, 25.0, 25.0]));
        let pooled = est.estimate_pooled(f64::INFINITY).unwrap();
        assert!((pooled.mnof - 2.0).abs() < 1e-12);
        assert_eq!(pooled.n_tasks, 2);
        assert_eq!(pooled.n_intervals, 6);
    }

    #[test]
    fn table_cross_product() {
        let mut est = GroupedEstimator::new();
        est.add(hist(1, 100.0, 1, &[100.0]));
        est.add(hist(2, 5000.0, 2, &[2500.0, 2500.0]));
        let rows = est.table(&[1000.0, f64::INFINITY]);
        // Priority 1 qualifies for both limits, priority 2 only for ∞.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, 1);
        assert_eq!(rows[2].0, 2);
    }

    #[test]
    fn mnof_length_scaling() {
        let e = Estimate {
            mnof: 2.0,
            mtbf: 100.0,
            n_tasks: 10,
            n_intervals: 20,
            mean_length: 400.0,
        };
        assert!((e.mnof_for_length(200.0) - 1.0).abs() < 1e-12);
        assert!((e.mnof_for_length(800.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn intervals_with_nan_ignored() {
        let mut est = GroupedEstimator::new();
        est.add(hist(5, 100.0, 1, &[f64::NAN, 100.0]));
        let e = est.estimate(5, f64::INFINITY).unwrap();
        assert_eq!(e.n_intervals, 1);
        assert!((e.mtbf - 100.0).abs() < 1e-12);
    }
}
