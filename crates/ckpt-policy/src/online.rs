//! Online MNOF/MTBF tracking — the runtime estimation loop a production
//! deployment of Algorithm 1 needs.
//!
//! The paper computes MNOF/MTBF from a month of history up front; in a live
//! system the statistics drift (priorities are re-tuned, bids change,
//! cluster load shifts). [`OnlineTracker`] maintains exponentially-decayed
//! per-priority failure statistics that can feed
//! [`crate::adaptive::AdaptiveCheckpointer::update_mnof`] whenever the
//! tracked MNOF moves by more than a tolerance — turning Algorithm 1's
//! "MNOF changed" trigger into something observable at runtime.

use crate::{PolicyError, Result};

/// Exponentially-decayed per-group failure statistics.
///
/// Each completed task contributes one observation `(failure_count,
/// intervals)`. Older observations are down-weighted by `decay` per
/// observation (decay = 1.0 ⇒ plain running mean).
#[derive(Debug, Clone)]
pub struct OnlineTracker {
    decay: f64,
    groups: Vec<GroupState>, // indexed by priority − 1
}

#[derive(Debug, Clone, Copy, Default)]
struct GroupState {
    weight: f64,
    weighted_failures: f64,
    interval_weight: f64,
    weighted_interval_sum: f64,
}

/// A snapshot of one group's tracked statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackedStats {
    /// Decayed mean number of failures per task.
    pub mnof: f64,
    /// Decayed mean uninterrupted interval (∞ if none observed).
    pub mtbf: f64,
    /// Effective sample size (decayed observation weight).
    pub effective_n: f64,
}

impl OnlineTracker {
    /// Create a tracker over `n_priorities` groups with the given decay in
    /// `(0, 1]` (e.g. 0.99 ⇒ an effective window of ~100 tasks).
    pub fn new(n_priorities: usize, decay: f64) -> Result<Self> {
        if n_priorities == 0 {
            return Err(PolicyError::BadInput {
                what: "n_priorities",
                value: 0.0,
            });
        }
        if !(decay > 0.0 && decay <= 1.0) {
            return Err(PolicyError::BadInput {
                what: "decay",
                value: decay,
            });
        }
        Ok(Self {
            decay,
            groups: vec![GroupState::default(); n_priorities],
        })
    }

    fn group_mut(&mut self, priority: u8) -> Result<&mut GroupState> {
        let idx = priority.checked_sub(1).map(usize::from);
        match idx.and_then(|i| self.groups.get_mut(i)) {
            Some(g) => Ok(g),
            None => Err(PolicyError::BadInput {
                what: "priority",
                value: priority as f64,
            }),
        }
    }

    /// Record a completed task's failure history.
    pub fn observe(&mut self, priority: u8, failure_count: u32, intervals: &[f64]) -> Result<()> {
        let decay = self.decay;
        let g = self.group_mut(priority)?;
        g.weight = g.weight * decay + 1.0;
        g.weighted_failures = g.weighted_failures * decay + failure_count as f64;
        for &iv in intervals {
            if iv.is_finite() && iv >= 0.0 {
                g.interval_weight = g.interval_weight * decay + 1.0;
                g.weighted_interval_sum = g.weighted_interval_sum * decay + iv;
            }
        }
        Ok(())
    }

    /// Current statistics for a priority; `None` until the group has
    /// observations.
    pub fn stats(&self, priority: u8) -> Option<TrackedStats> {
        let g = self.groups.get(usize::from(priority.checked_sub(1)?))?;
        if g.weight <= 0.0 {
            return None;
        }
        Some(TrackedStats {
            mnof: g.weighted_failures / g.weight,
            mtbf: if g.interval_weight > 0.0 {
                g.weighted_interval_sum / g.interval_weight
            } else {
                f64::INFINITY
            },
            effective_n: g.weight,
        })
    }

    /// Whether the tracked MNOF for `priority` differs from `current` by
    /// more than `rel_tol` (relative) — the Algorithm-1 re-solve trigger.
    pub fn mnof_changed(&self, priority: u8, current: f64, rel_tol: f64) -> bool {
        match self.stats(priority) {
            Some(s) if s.effective_n >= 3.0 => {
                let denom = current.abs().max(1e-12);
                (s.mnof - current).abs() / denom > rel_tol
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_construction() {
        assert!(OnlineTracker::new(0, 0.9).is_err());
        assert!(OnlineTracker::new(12, 0.0).is_err());
        assert!(OnlineTracker::new(12, 1.5).is_err());
    }

    #[test]
    fn plain_mean_with_decay_one() {
        let mut t = OnlineTracker::new(12, 1.0).unwrap();
        t.observe(2, 1, &[100.0]).unwrap();
        t.observe(2, 3, &[50.0, 150.0]).unwrap();
        let s = t.stats(2).unwrap();
        assert!((s.mnof - 2.0).abs() < 1e-12);
        assert!((s.mtbf - 100.0).abs() < 1e-12);
        assert!((s.effective_n - 2.0).abs() < 1e-12);
    }

    #[test]
    fn decay_tracks_regime_change() {
        let mut t = OnlineTracker::new(12, 0.8).unwrap();
        // Old regime: ~1 failure per task.
        for _ in 0..50 {
            t.observe(1, 1, &[200.0]).unwrap();
        }
        assert!((t.stats(1).unwrap().mnof - 1.0).abs() < 0.01);
        // New regime: ~10 failures per task; after 20 observations the
        // decayed mean has mostly converged.
        for _ in 0..20 {
            t.observe(1, 10, &[20.0; 10]).unwrap();
        }
        let s = t.stats(1).unwrap();
        assert!(s.mnof > 8.5, "mnof = {}", s.mnof);
        assert!(s.mtbf < 40.0, "mtbf = {}", s.mtbf);
    }

    #[test]
    fn change_trigger_fires_appropriately() {
        let mut t = OnlineTracker::new(12, 1.0).unwrap();
        // Too few observations: never trigger.
        t.observe(4, 8, &[]).unwrap();
        assert!(!t.mnof_changed(4, 1.0, 0.5));
        t.observe(4, 8, &[]).unwrap();
        t.observe(4, 8, &[]).unwrap();
        // Now tracked MNOF ≈ 8 vs current belief 1.0: trigger.
        assert!(t.mnof_changed(4, 1.0, 0.5));
        // Belief already correct: no trigger.
        assert!(!t.mnof_changed(4, 8.0, 0.5));
    }

    #[test]
    fn empty_group_is_none() {
        let t = OnlineTracker::new(12, 0.9).unwrap();
        assert!(t.stats(7).is_none());
        assert!(!t.mnof_changed(7, 1.0, 0.1));
    }

    #[test]
    fn rejects_priority_zero_or_out_of_range() {
        let mut t = OnlineTracker::new(12, 0.9).unwrap();
        assert!(t.observe(0, 1, &[]).is_err());
        assert!(t.observe(13, 1, &[]).is_err());
        assert!(t.stats(0).is_none());
    }

    #[test]
    fn mtbf_infinite_without_intervals() {
        let mut t = OnlineTracker::new(12, 0.9).unwrap();
        t.observe(3, 0, &[]).unwrap();
        assert!(t.stats(3).unwrap().mtbf.is_infinite());
    }
}
