//! Equidistant checkpoint schedules, the rollback operator `Λ(t)`, and exact
//! wall-clock accounting for a concrete failure history (paper Formula (1)).
//!
//! Positions are expressed in *productive time* (progress through `Te`),
//! which is the clock Theorem 1's analysis uses: a checkpoint is taken "once
//! the execution of the task has progressed for a duration `Te/x` without
//! encountering any failure event".

use crate::{PolicyError, Result};

/// An equidistant checkpoint schedule for a task of productive length `te`
/// split into `x` intervals: checkpoints at `i·te/x` for `i = 1..x-1`.
///
/// (No checkpoint at `te` itself — completing the task supersedes it.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquidistantSchedule {
    te: f64,
    x: u32,
}

impl EquidistantSchedule {
    /// Create a schedule over productive length `te > 0` with `x ≥ 1`
    /// intervals.
    pub fn new(te: f64, x: u32) -> Result<Self> {
        if !(te.is_finite() && te > 0.0) {
            return Err(PolicyError::BadInput {
                what: "te",
                value: te,
            });
        }
        if x == 0 {
            return Err(PolicyError::BadInput {
                what: "x",
                value: 0.0,
            });
        }
        Ok(Self { te, x })
    }

    /// Total productive length `Te`.
    #[inline]
    pub fn te(&self) -> f64 {
        self.te
    }

    /// Number of intervals `x`.
    #[inline]
    pub fn intervals(&self) -> u32 {
        self.x
    }

    /// Interval (segment) length `Te/x`.
    #[inline]
    pub fn segment_len(&self) -> f64 {
        self.te / self.x as f64
    }

    /// Number of checkpoints actually taken (`x − 1`).
    #[inline]
    pub fn checkpoint_count(&self) -> u32 {
        self.x - 1
    }

    /// The checkpoint positions in productive time, ascending.
    pub fn positions(&self) -> Vec<f64> {
        let w = self.segment_len();
        (1..self.x).map(|i| i as f64 * w).collect()
    }

    /// `Λ(t)`: the checkpointed progress position closest before productive
    /// time `t` — i.e. where a failure at progress `t` rolls back to.
    /// Position 0 (task start) counts as an implicit checkpoint.
    pub fn lambda(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let w = self.segment_len();
        let k = (t / w).floor().min((self.x - 1) as f64);
        k * w
    }

    /// Rollback loss for a failure at productive position `t`:
    /// `t − Λ(t)` (paper Formula (1)'s per-failure term, excluding `R`).
    pub fn rollback_loss(&self, t: f64) -> f64 {
        (t - self.lambda(t)).max(0.0)
    }
}

/// Exact wall-clock length for a concrete failure history — paper
/// Formula (1):
///
/// ```text
/// Tw = Te + C·(x−1) + Σ_h ( T_h − Λ(T_h) + R )
/// ```
///
/// `failure_positions` are the productive-time positions at which each
/// failure strikes (each must be in `[0, te]`).
///
/// ```
/// use ckpt_policy::schedule::{wall_clock_formula1, EquidistantSchedule};
/// let s = EquidistantSchedule::new(18.0, 3).unwrap(); // checkpoints at 6, 12
/// // One failure at progress 8 ⇒ rollback to 6, losing 2 s, restart 1 s:
/// // Tw = 18 + 2·2 + (2 + 1) = 25.
/// let tw = wall_clock_formula1(&s, 2.0, 1.0, &[8.0]).unwrap();
/// assert!((tw - 25.0).abs() < 1e-12);
/// ```
pub fn wall_clock_formula1(
    schedule: &EquidistantSchedule,
    c: f64,
    r: f64,
    failure_positions: &[f64],
) -> Result<f64> {
    if !(c.is_finite() && c >= 0.0) {
        return Err(PolicyError::BadInput {
            what: "c",
            value: c,
        });
    }
    if !(r.is_finite() && r >= 0.0) {
        return Err(PolicyError::BadInput {
            what: "r",
            value: r,
        });
    }
    let mut tw = schedule.te() + c * schedule.checkpoint_count() as f64;
    for &t in failure_positions {
        if !(0.0..=schedule.te()).contains(&t) {
            return Err(PolicyError::BadInput {
                what: "failure position",
                value: t,
            });
        }
        tw += schedule.rollback_loss(t) + r;
    }
    Ok(tw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positions_paper_figure3() {
        // Figure 3: Te split into 4 segments ⇒ checkpoints at Te/4, Te/2, 3Te/4.
        let s = EquidistantSchedule::new(100.0, 4).unwrap();
        assert_eq!(s.positions(), vec![25.0, 50.0, 75.0]);
        assert_eq!(s.checkpoint_count(), 3);
        assert!((s.segment_len() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn single_interval_has_no_checkpoints() {
        let s = EquidistantSchedule::new(10.0, 1).unwrap();
        assert!(s.positions().is_empty());
        assert_eq!(s.checkpoint_count(), 0);
        assert_eq!(s.lambda(7.0), 0.0); // any failure rolls back to start
    }

    #[test]
    fn lambda_is_floor_to_checkpoint() {
        let s = EquidistantSchedule::new(100.0, 4).unwrap();
        assert_eq!(s.lambda(0.0), 0.0);
        assert_eq!(s.lambda(24.9), 0.0);
        assert_eq!(s.lambda(25.0), 25.0);
        assert_eq!(s.lambda(60.0), 50.0);
        assert_eq!(s.lambda(99.9), 75.0);
        // Position te maps to the last checkpoint, not te.
        assert_eq!(s.lambda(100.0), 75.0);
    }

    #[test]
    fn rollback_loss_bounded_by_segment() {
        let s = EquidistantSchedule::new(100.0, 4).unwrap();
        for i in 0..=1000 {
            let t = i as f64 * 0.1;
            let loss = s.rollback_loss(t);
            assert!(loss >= 0.0);
            assert!(loss <= s.segment_len() + 1e-12, "t={t}, loss={loss}");
        }
    }

    #[test]
    fn formula1_no_failures() {
        let s = EquidistantSchedule::new(18.0, 3).unwrap();
        let tw = wall_clock_formula1(&s, 2.0, 1.0, &[]).unwrap();
        assert!((tw - 22.0).abs() < 1e-12); // 18 + 2·2
    }

    #[test]
    fn formula1_multiple_failures() {
        let s = EquidistantSchedule::new(18.0, 3).unwrap();
        // Failures at 3 (loss 3), 8 (loss 2), 17 (loss 5); R = 1 each.
        let tw = wall_clock_formula1(&s, 2.0, 1.0, &[3.0, 8.0, 17.0]).unwrap();
        assert!((tw - (18.0 + 4.0 + (3.0 + 2.0 + 5.0) + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn formula1_rejects_out_of_range_failure() {
        let s = EquidistantSchedule::new(18.0, 3).unwrap();
        assert!(wall_clock_formula1(&s, 2.0, 1.0, &[19.0]).is_err());
        assert!(wall_clock_formula1(&s, 2.0, 1.0, &[-0.5]).is_err());
    }

    #[test]
    fn construction_rejects_bad_inputs() {
        assert!(EquidistantSchedule::new(0.0, 3).is_err());
        assert!(EquidistantSchedule::new(10.0, 0).is_err());
        assert!(EquidistantSchedule::new(f64::NAN, 3).is_err());
    }

    #[test]
    fn mean_rollback_is_half_segment() {
        // Empirical check of the Te/(2x) argument in Theorem 1's proof:
        // failures uniform over [0, Te) lose half a segment on average.
        let s = EquidistantSchedule::new(100.0, 5).unwrap();
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|i| s.rollback_loss((i as f64 + 0.5) * 100.0 / n as f64))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 10.0).abs() < 0.01, "mean rollback = {mean}");
    }
}
