//! # ckpt-policy — optimal checkpoint-restart policies (Di et al., SC'13)
//!
//! This crate is the paper's primary contribution, as a reusable library:
//!
//! * [`optimal`] — **Theorem 1**: the distribution-free optimal number of
//!   equidistant checkpointing intervals `x* = sqrt(Te·E(Y)/(2C))`, plus the
//!   expected-wall-clock model of Formulas (2)/(4) and cost-aware rounding.
//! * [`young`] — **Young's 1974 formula** `Tc = sqrt(2·C·Tf)` (the baseline
//!   the paper beats), and **Corollary 1** showing it is the exponential
//!   special case of Theorem 1.
//! * [`daly`] — **Daly's 2006 higher-order formula**, the other classic
//!   MTBF-based baseline discussed in the related-work section.
//! * [`adaptive`] — **Algorithm 1**: the runtime controller that re-solves
//!   the checkpoint placement if and only if the task's mean number of
//!   failures (MNOF) changes, justified by **Theorem 2**.
//! * [`storage`] — the §4.2.2 tradeoff: local-ramdisk vs shared-disk
//!   checkpointing, decided by comparing expected total overheads.
//! * [`estimator`] — MNOF/MTBF estimation from historical failure records,
//!   grouped by priority and task-length class (how the paper's evaluation
//!   feeds the formulas — Table 7).
//! * [`schedule`] — equidistant checkpoint schedules, the `Λ(t)` rollback
//!   operator, and exact wall-clock accounting for a concrete failure trace
//!   (Formula (1)).
//! * [`analysis`] — expected-cost curves and mis-estimation penalties: the
//!   quantified version of the paper's robustness argument (MNOF errors are
//!   forgiven, MTBF inflation is punished).
//! * [`nonuniform`] — the random-checkpointing baseline from the related
//!   work, validating that equidistant placement minimizes expected
//!   rollback.
//!
//! ## The headline result, in one example
//!
//! ```
//! use ckpt_policy::optimal::optimal_interval_count;
//! use ckpt_policy::young::young_interval;
//!
//! // Paper §4.1 worked example: Te = 18 s, C = 2 s, Poisson failures with
//! // λ = 2 ⇒ E(Y) = 2. Theorem 1 gives x* = sqrt(18·2/(2·2)) = 3, i.e. a
//! // checkpoint every 6 s.
//! let x = optimal_interval_count(18.0, 2.0, 2.0).unwrap();
//! assert_eq!(x.rounded(), 3);
//! assert!((x.interval_length(18.0) - 6.0).abs() < 1e-9);
//!
//! // Paper §4.1 trace example: C = 2 s, exponential rate λ = 0.00423445 ⇒
//! // MTBF = 1/λ, and Young's interval is sqrt(2·C/λ) ≈ 30.7 s.
//! let tc = young_interval(2.0, 1.0 / 0.00423445).unwrap();
//! assert!((tc - 30.7).abs() < 0.1);
//! ```

#![deny(missing_docs)]
// `!(v > 0.0)` deliberately rejects NaN alongside non-positive values; the
// clippy-suggested `v <= 0.0` would silently accept NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod analysis;
pub mod daly;
pub mod estimator;
pub mod nonuniform;
pub mod online;
pub mod optimal;
pub mod schedule;
pub mod storage;
pub mod young;

pub use adaptive::{AdaptiveCheckpointer, CheckpointDecision};
pub use optimal::{expected_wall_clock, optimal_interval_count, OptimalX};
pub use schedule::EquidistantSchedule;
pub use storage::{choose_storage, DeviceCosts, StoragePick};

/// Errors from policy computations.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// A model input (cost, length, expectation) was outside its domain.
    BadInput {
        /// Which input was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::BadInput { what, value } => {
                write!(f, "invalid policy input {what}: {value}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PolicyError>;

/// Which formula drives checkpoint placement — the axis of every comparison
/// in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// The paper's Formula (3) (Theorem 1), driven by MNOF.
    Formula3,
    /// Young's formula, driven by MTBF.
    Young,
    /// Daly's higher-order formula, driven by MTBF and restart cost.
    Daly,
    /// No checkpointing at all (lower-bound baseline).
    None,
}

impl PolicyKind {
    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Formula3 => "Formula(3)",
            PolicyKind::Young => "Young",
            PolicyKind::Daly => "Daly",
            PolicyKind::None => "NoCheckpoint",
        }
    }
}
