//! Non-equidistant checkpointing baselines.
//!
//! The paper's related-work section cites Wolter's survey of stochastic
//! checkpointing models ("equidistant checkpointing, random checkpointing,
//! forked checkpointing, and so on"). This module implements the *random*
//! placement baseline so the equidistant choice of Theorem 1 can be
//! validated empirically: with the same number of checkpoints, uniformly
//! random positions waste expected rollback time relative to equidistant
//! positions (by Jensen: expected max-gap of a random partition exceeds the
//! even gap).

use crate::{PolicyError, Result};
use ckpt_stats::rng::Rng64;

/// A general (not necessarily equidistant) checkpoint schedule over
/// productive time `[0, te]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralSchedule {
    te: f64,
    positions: Vec<f64>, // sorted, in (0, te)
}

impl GeneralSchedule {
    /// Build from explicit positions (sorted, deduplicated, clamped into
    /// `(0, te)` exclusive).
    pub fn new(te: f64, mut positions: Vec<f64>) -> Result<Self> {
        if !(te.is_finite() && te > 0.0) {
            return Err(PolicyError::BadInput {
                what: "te",
                value: te,
            });
        }
        positions.retain(|p| p.is_finite() && *p > 0.0 && *p < te);
        positions.sort_by(|a, b| a.partial_cmp(b).unwrap());
        positions.dedup();
        Ok(Self { te, positions })
    }

    /// Uniformly random checkpoint positions (`n` of them) — the random
    /// checkpointing baseline.
    pub fn random<R: Rng64 + ?Sized>(te: f64, n: u32, rng: &mut R) -> Result<Self> {
        let positions = (0..n).map(|_| rng.next_f64() * te).collect();
        Self::new(te, positions)
    }

    /// Equidistant positions (`x` intervals) — Theorem 1's choice, for
    /// comparison.
    pub fn equidistant(te: f64, x: u32) -> Result<Self> {
        if x == 0 {
            return Err(PolicyError::BadInput {
                what: "x",
                value: 0.0,
            });
        }
        let w = te / x as f64;
        Self::new(te, (1..x).map(|i| i as f64 * w).collect())
    }

    /// Total productive length.
    #[inline]
    pub fn te(&self) -> f64 {
        self.te
    }

    /// The checkpoint positions.
    #[inline]
    pub fn positions(&self) -> &[f64] {
        &self.positions
    }

    /// `Λ(t)`: latest checkpointed position ≤ `t` (0 if none).
    pub fn lambda(&self, t: f64) -> f64 {
        let idx = self.positions.partition_point(|&p| p <= t);
        if idx == 0 {
            0.0
        } else {
            self.positions[idx - 1]
        }
    }

    /// Expected rollback loss for a failure uniform over `[0, te)`:
    /// `Σ gap_i² / (2·te)` — minimized by equal gaps (Cauchy–Schwarz),
    /// which is precisely why Theorem 1 places checkpoints evenly.
    pub fn expected_rollback(&self) -> f64 {
        let mut prev = 0.0;
        let mut sum_sq = 0.0;
        for &p in &self.positions {
            let gap = p - prev;
            sum_sq += gap * gap;
            prev = p;
        }
        let last_gap = self.te - prev;
        sum_sq += last_gap * last_gap;
        sum_sq / (2.0 * self.te)
    }

    /// Expected wall-clock under this schedule (Formula (2) generalized):
    /// `Te + C·n + E(Y)·(R + expected_rollback)`.
    pub fn expected_wall_clock(&self, c: f64, r: f64, e_y: f64) -> Result<f64> {
        if !(c.is_finite() && c >= 0.0) {
            return Err(PolicyError::BadInput {
                what: "c",
                value: c,
            });
        }
        if !(r.is_finite() && r >= 0.0) {
            return Err(PolicyError::BadInput {
                what: "r",
                value: r,
            });
        }
        if !(e_y.is_finite() && e_y >= 0.0) {
            return Err(PolicyError::BadInput {
                what: "e_y",
                value: e_y,
            });
        }
        Ok(self.te + c * self.positions.len() as f64 + e_y * (r + self.expected_rollback()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ckpt_stats::rng::Xoshiro256StarStar;

    #[test]
    fn equidistant_matches_theorem1_rollback() {
        // Even spacing: expected rollback = Te/(2x), the Theorem-1 term.
        let s = GeneralSchedule::equidistant(100.0, 4).unwrap();
        assert!((s.expected_rollback() - 100.0 / 8.0).abs() < 1e-12);
        assert_eq!(s.positions(), &[25.0, 50.0, 75.0]);
    }

    #[test]
    fn equidistant_beats_random_in_expectation() {
        // Jensen/Cauchy–Schwarz: for the same checkpoint count, random
        // placement has (weakly) larger expected rollback; strictly larger
        // almost surely.
        let mut rng = Xoshiro256StarStar::new(4);
        let even = GeneralSchedule::equidistant(1000.0, 10).unwrap();
        let mut worse = 0;
        let n = 200;
        for _ in 0..n {
            let rand = GeneralSchedule::random(1000.0, 9, &mut rng).unwrap();
            if rand.expected_rollback() >= even.expected_rollback() - 1e-9 {
                worse += 1;
            }
        }
        assert_eq!(worse, n, "every random schedule should be no better");
    }

    #[test]
    fn expected_wall_clock_composes() {
        let s = GeneralSchedule::equidistant(18.0, 3).unwrap();
        // Te + C·2 + E(Y)·(R + Te/6) = 18 + 4 + 2·(0 + 3) = 28 — the
        // paper's worked example seen through the generalized formula.
        let w = s.expected_wall_clock(2.0, 0.0, 2.0).unwrap();
        assert!((w - 28.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_general_positions() {
        let s = GeneralSchedule::new(100.0, vec![40.0, 10.0, 70.0]).unwrap();
        assert_eq!(s.positions(), &[10.0, 40.0, 70.0]);
        assert_eq!(s.lambda(5.0), 0.0);
        assert_eq!(s.lambda(10.0), 10.0);
        assert_eq!(s.lambda(69.9), 40.0);
        assert_eq!(s.lambda(99.0), 70.0);
    }

    #[test]
    fn construction_sanitizes() {
        let s = GeneralSchedule::new(100.0, vec![-5.0, 0.0, 50.0, 50.0, 100.0, 150.0]).unwrap();
        assert_eq!(s.positions(), &[50.0]);
        assert!(GeneralSchedule::new(0.0, vec![]).is_err());
        assert!(GeneralSchedule::equidistant(10.0, 0).is_err());
    }

    #[test]
    fn no_checkpoints_full_rollback() {
        let s = GeneralSchedule::new(100.0, vec![]).unwrap();
        assert!((s.expected_rollback() - 50.0).abs() < 1e-12);
    }
}
