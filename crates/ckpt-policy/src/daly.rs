//! Daly's 2006 higher-order estimate of the optimum checkpoint interval —
//! the second MTBF-based baseline from the paper's related-work section.
//!
//! Daly extends Young's first-order model with the restart overhead `R` and
//! higher-order correction terms (J.T. Daly, "A higher order estimate of the
//! optimum checkpoint interval for restart dumps", FGCS 22(3), 2006):
//!
//! ```text
//! Topt = sqrt(2·C·M) · [1 + (1/3)·sqrt(C/(2M)) + (1/9)·(C/(2M))] − C   if C < 2M
//! Topt = M                                                             otherwise
//! ```
//!
//! where `M` is the MTBF. Like Young's formula it presumes exponential
//! failure intervals and long-running jobs, so it inherits the same
//! heavy-tail weakness the paper demonstrates on Google traces.

use crate::{PolicyError, Result};

fn check_pos(what: &'static str, v: f64) -> Result<f64> {
    if v.is_finite() && v > 0.0 {
        Ok(v)
    } else {
        Err(PolicyError::BadInput { what, value: v })
    }
}

/// Daly's higher-order optimal checkpoint interval (seconds of productive
/// work between checkpoints).
pub fn daly_interval(c: f64, mtbf: f64) -> Result<f64> {
    let c = check_pos("c", c)?;
    let m = check_pos("mtbf", mtbf)?;
    if c >= 2.0 * m {
        // Checkpointing is so expensive relative to failures that Daly
        // recommends an interval of one MTBF.
        return Ok(m);
    }
    let ratio = (c / (2.0 * m)).sqrt();
    let t = (2.0 * c * m).sqrt() * (1.0 + ratio / 3.0 + (c / (2.0 * m)) / 9.0) - c;
    Ok(t.max(f64::MIN_POSITIVE))
}

/// Number of equidistant intervals a task of length `te` gets under Daly's
/// interval, rounded to the nearest whole segment (≥ 1).
pub fn daly_interval_count(te: f64, c: f64, mtbf: f64) -> Result<u32> {
    let te = check_pos("te", te)?;
    let t = daly_interval(c, mtbf)?;
    Ok((te / t).round().max(1.0) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::young::young_interval;

    #[test]
    fn approaches_young_for_cheap_checkpoints() {
        // As C/M → 0 the correction terms vanish and Topt → Young's Tc − C.
        let c = 0.01;
        let m = 10_000.0;
        let d = daly_interval(c, m).unwrap();
        let y = young_interval(c, m).unwrap();
        assert!((d - y).abs() / y < 0.01, "daly {d} vs young {y}");
    }

    #[test]
    fn correction_beats_young_for_pricey_checkpoints() {
        // For non-negligible C, Daly's interval is longer than Young's
        // before the −C shift; net effect differs from Young.
        let d = daly_interval(60.0, 3600.0).unwrap();
        let y = young_interval(60.0, 3600.0).unwrap();
        assert!(d != y);
        assert!(d > 0.0);
    }

    #[test]
    fn degenerate_regime_returns_mtbf() {
        let d = daly_interval(100.0, 40.0).unwrap();
        assert_eq!(d, 40.0);
    }

    #[test]
    fn count_rounds_and_clamps() {
        let x = daly_interval_count(10.0, 1.0, 1e9).unwrap();
        assert_eq!(x, 1);
        let x2 = daly_interval_count(1000.0, 1.0, 200.0).unwrap();
        assert!(x2 >= 40, "x2 = {x2}"); // interval ≈ 19 s ⇒ ≈ 50 segments
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(daly_interval(0.0, 1.0).is_err());
        assert!(daly_interval(1.0, -1.0).is_err());
        assert!(daly_interval_count(f64::INFINITY, 1.0, 1.0).is_err());
    }

    #[test]
    fn reference_magnitude() {
        // C = 5 min, M = 24 h (classic HPC numbers): Young ≈ 120 min;
        // Daly's correction adds ≈ +2.4 % then subtracts C.
        let c = 300.0;
        let m = 86_400.0;
        let d = daly_interval(c, m).unwrap();
        let y = young_interval(c, m).unwrap();
        assert!(d > y - c - 1.0 && d < y + 0.05 * y, "d = {d}, y = {y}");
    }
}
