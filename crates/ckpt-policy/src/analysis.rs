//! Analytical tooling around Formula (4): expected-cost curves, the penalty
//! of mis-estimated inputs, and the robustness comparison behind the
//! paper's §5.2 discussion ("Young's formula is not proper ... due to its
//! assumption" / "MNOF ... would not change a lot").
//!
//! The central quantity is the **penalty factor**: expected fault-tolerance
//! overhead under a mis-calibrated interval count, relative to the optimal
//! overhead. Because Formula (4)'s overhead is `C·x + Te·E(Y)/(2x)` (up to
//! the `x`-independent terms), using `k·x*` instead of `x*` costs a factor
//! `(k + 1/k)/2` — the square-root-shaped flatness that makes Formula (3)
//! forgiving of MNOF errors, and the quadratic-in-`sqrt(inflation)` blowup
//! that punishes Young's inflated MTBF.

use crate::optimal::{expected_wall_clock, optimal_interval_count};
use crate::{PolicyError, Result};

/// One point of an expected-wall-clock curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Interval count.
    pub x: u32,
    /// Expected wall-clock (Formula (4)).
    pub expected_wall_clock: f64,
}

/// The expected-wall-clock curve `E(Tw)(x)` for `x ∈ [1, x_max]` — what the
/// paper's Figure-3-style intuition plots.
pub fn wall_clock_curve(te: f64, c: f64, r: f64, e_y: f64, x_max: u32) -> Result<Vec<CurvePoint>> {
    (1..=x_max.max(1))
        .map(|x| {
            expected_wall_clock(te, c, r, e_y, x).map(|w| CurvePoint {
                x,
                expected_wall_clock: w,
            })
        })
        .collect()
}

/// The idealized overhead penalty of running at `k · x*` instead of `x*`:
/// `(k + 1/k) / 2` (continuous approximation; exact as `Te → ∞`).
///
/// ```
/// use ckpt_policy::analysis::penalty_factor;
/// assert!((penalty_factor(1.0).unwrap() - 1.0).abs() < 1e-12);
/// // A 4x mis-scaling of the interval count doubles the overhead:
/// assert!((penalty_factor(4.0).unwrap() - 2.125).abs() < 1e-12);
/// ```
pub fn penalty_factor(k: f64) -> Result<f64> {
    if !(k.is_finite() && k > 0.0) {
        return Err(PolicyError::BadInput {
            what: "k",
            value: k,
        });
    }
    Ok(0.5 * (k + 1.0 / k))
}

/// Exact (discrete) overhead ratio of using `x_used` instead of the optimal
/// count for `(te, c, e_y)`: `overhead(x_used) / overhead(x*)`.
pub fn overhead_ratio(te: f64, c: f64, e_y: f64, x_used: u32) -> Result<f64> {
    let x_opt = optimal_interval_count(te, c, e_y)?.rounded();
    let w_used = expected_wall_clock(te, c, 0.0, e_y, x_used)? - te;
    let w_opt = expected_wall_clock(te, c, 0.0, e_y, x_opt)? - te;
    if w_opt <= 0.0 {
        // No failures expected: any extra checkpoint is pure overhead.
        return Ok(if w_used <= 0.0 { 1.0 } else { f64::INFINITY });
    }
    Ok(w_used / w_opt)
}

/// The penalty of driving Formula (3) with a mis-estimated MNOF
/// `e_y_est = β · e_y_true`: the count scales with `sqrt(β)`, so the
/// overhead ratio is `(sqrt(β) + 1/sqrt(β))/2` — sub-linear in the
/// estimation error. This is the paper's robustness argument, quantified.
pub fn mnof_misestimation_penalty(te: f64, c: f64, e_y_true: f64, beta: f64) -> Result<f64> {
    if !(beta.is_finite() && beta > 0.0) {
        return Err(PolicyError::BadInput {
            what: "beta",
            value: beta,
        });
    }
    let x_est = optimal_interval_count(te, c, e_y_true * beta)?.rounded();
    overhead_ratio(te, c, e_y_true, x_est)
}

/// The penalty of driving Young's formula with an MTBF inflated by `γ`
/// (the Table 7 phenomenon): Young's interval grows by `sqrt(γ)`, the
/// count shrinks by `sqrt(γ)`, and the overhead ratio grows accordingly.
pub fn mtbf_inflation_penalty(
    te: f64,
    c: f64,
    e_y_true: f64,
    honest_mtbf: f64,
    gamma: f64,
) -> Result<f64> {
    if !(gamma.is_finite() && gamma > 0.0) {
        return Err(PolicyError::BadInput {
            what: "gamma",
            value: gamma,
        });
    }
    let x_young = crate::young::young_interval_count(te, c, honest_mtbf * gamma)?;
    overhead_ratio(te, c, e_y_true, x_young)
}

/// How a failure process distorts Young/Daly's input: the ratio of the
/// process's recorded MTBF to the *effective* mean interval `te / E(Y)`
/// implied by the failure count over the window.
///
/// Under an exponential (memoryless) process the two coincide and the
/// distortion is ≈ 1. Heavy-tailed or infant-mortality hazards record an
/// MTBF dominated by rare huge gaps while the count keeps climbing through
/// the bursts of short ones, so the distortion exceeds 1 — and Young's
/// interval `sqrt(2·C·MTBF)` inflates by its square root.
///
/// ```
/// use ckpt_policy::analysis::mtbf_distortion;
/// // Memoryless: recorded MTBF equals te/E(Y), no distortion.
/// assert!((mtbf_distortion(600.0, 2.0, 300.0).unwrap() - 1.0).abs() < 1e-12);
/// // Heavy tail: recorded MTBF 10x the effective interval.
/// assert!((mtbf_distortion(600.0, 2.0, 3000.0).unwrap() - 10.0).abs() < 1e-12);
/// ```
pub fn mtbf_distortion(te: f64, e_y: f64, recorded_mtbf: f64) -> Result<f64> {
    for (what, value) in [("te", te), ("e_y", e_y), ("recorded_mtbf", recorded_mtbf)] {
        if !(value.is_finite() && value > 0.0) {
            return Err(PolicyError::BadInput { what, value });
        }
    }
    Ok(recorded_mtbf / (te / e_y))
}

/// The per-policy plan and Formula (4) overhead under a general hazard:
/// what each formula chooses when the process's true expected failure
/// count is `e_y` but its recorded MTBF is `mtbf`, and what that choice
/// costs relative to the Theorem 1 optimum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardPolicyCosts {
    /// Theorem 1's interval count from the true `E(Y)` (distribution-free).
    pub x_opt: u32,
    /// Young's interval count from the recorded MTBF.
    pub x_young: u32,
    /// Daly's interval count from the recorded MTBF.
    pub x_daly: u32,
    /// Formula (4) overhead of Young's count relative to the optimum (≥ 1).
    pub young_ratio: f64,
    /// Formula (4) overhead of Daly's count relative to the optimum (≥ 1).
    pub daly_ratio: f64,
}

/// Expected-cost comparison of the three formulas under a general hazard.
///
/// Formula (4)'s expected overhead `C·x + Te·E(Y)/(2x)` needs only the
/// expected failure *count* — that is Theorem 1's distribution-free claim
/// — so it prices any policy's interval count under any hazard once
/// `E(Y)` is known. Young and Daly, whose counts come from the recorded
/// MTBF, are mis-sized exactly when [`mtbf_distortion`] departs from 1.
///
/// ```
/// use ckpt_policy::analysis::hazard_policy_costs;
/// // Memoryless hazard: MTBF = te/E(Y), all three nearly coincide.
/// let fair = hazard_policy_costs(600.0, 0.5, 1.2, 500.0).unwrap();
/// assert!(fair.young_ratio < 1.1);
/// // The same workload under a hazard whose recorded MTBF is 18x
/// // inflated: Young checkpoints far too rarely and pays for it.
/// let tail = hazard_policy_costs(600.0, 0.5, 1.2, 9_000.0).unwrap();
/// assert!(tail.x_young < fair.x_young);
/// assert!(tail.young_ratio > fair.young_ratio);
/// ```
pub fn hazard_policy_costs(te: f64, c: f64, e_y: f64, mtbf: f64) -> Result<HazardPolicyCosts> {
    let x_opt = optimal_interval_count(te, c, e_y)?.rounded();
    let x_young = crate::young::young_interval_count(te, c, mtbf)?;
    let x_daly = crate::daly::daly_interval_count(te, c, mtbf)?;
    Ok(HazardPolicyCosts {
        x_opt,
        x_young,
        x_daly,
        young_ratio: overhead_ratio(te, c, e_y, x_young)?,
        daly_ratio: overhead_ratio(te, c, e_y, x_daly)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_convex_with_minimum_at_xstar() {
        let curve = wall_clock_curve(441.0, 1.0, 0.0, 2.0, 60).unwrap();
        let min = curve
            .iter()
            .min_by(|a, b| {
                a.expected_wall_clock
                    .partial_cmp(&b.expected_wall_clock)
                    .unwrap()
            })
            .unwrap();
        assert_eq!(min.x, 21); // sqrt(441·2/2) = 21
                               // Discrete convexity: differences change sign exactly once.
        let mut sign_changes = 0;
        for w in curve.windows(2) {
            let d = w[1].expected_wall_clock - w[0].expected_wall_clock;
            if d > 0.0 && w[0].x >= min.x {
                // rising after the min: fine
            } else if d > 0.0 && w[0].x < min.x {
                sign_changes += 1;
            }
        }
        assert_eq!(sign_changes, 0, "curve must fall then rise");
    }

    #[test]
    fn penalty_factor_symmetry() {
        // Over- and under-estimation by the same factor cost the same.
        let over = penalty_factor(3.0).unwrap();
        let under = penalty_factor(1.0 / 3.0).unwrap();
        assert!((over - under).abs() < 1e-12);
        assert!(penalty_factor(0.0).is_err());
    }

    #[test]
    fn mnof_misestimation_is_forgiving() {
        // A 2x MNOF error costs < 7 % extra overhead — the robustness that
        // makes the paper's group-MNOF estimator viable.
        let p = mnof_misestimation_penalty(600.0, 0.5, 1.2, 2.0).unwrap();
        assert!(p < 1.07, "penalty {p}");
        let p_half = mnof_misestimation_penalty(600.0, 0.5, 1.2, 0.5).unwrap();
        assert!(p_half < 1.07, "penalty {p_half}");
    }

    #[test]
    fn mtbf_inflation_is_punishing() {
        // An 18x MTBF inflation (our Table 7 measurement) costs Young far
        // more than a 2x MNOF error costs Formula (3).
        let honest = 150.0;
        let p_young = mtbf_inflation_penalty(600.0, 0.5, 1.2, honest, 18.0).unwrap();
        let p_f3 = mnof_misestimation_penalty(600.0, 0.5, 1.2, 2.0).unwrap();
        assert!(p_young > 1.3, "young penalty {p_young}");
        assert!(
            p_young > 3.0 * (p_f3 - 1.0) + 1.0,
            "young {p_young} vs f3 {p_f3}"
        );
    }

    #[test]
    fn overhead_ratio_at_optimum_is_one() {
        let x_opt = optimal_interval_count(600.0, 0.5, 1.2).unwrap().rounded();
        let r = overhead_ratio(600.0, 0.5, 1.2, x_opt).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
        assert!(overhead_ratio(600.0, 0.5, 1.2, x_opt * 3).unwrap() > 1.0);
    }

    #[test]
    fn zero_failures_edge() {
        assert_eq!(overhead_ratio(100.0, 1.0, 0.0, 1).unwrap(), 1.0);
        assert_eq!(overhead_ratio(100.0, 1.0, 0.0, 5).unwrap(), f64::INFINITY);
    }

    #[test]
    fn distortion_is_one_for_memoryless_and_rejects_bad_inputs() {
        assert!((mtbf_distortion(1000.0, 2.0, 500.0).unwrap() - 1.0).abs() < 1e-12);
        assert!(mtbf_distortion(0.0, 2.0, 500.0).is_err());
        assert!(mtbf_distortion(1000.0, f64::NAN, 500.0).is_err());
        assert!(mtbf_distortion(1000.0, 2.0, -1.0).is_err());
    }

    #[test]
    fn hazard_costs_grow_monotonically_with_distortion() {
        // As the recorded MTBF inflates past the effective interval,
        // Young's count shrinks and its overhead ratio climbs; the
        // Theorem 1 count (true E(Y)) never moves.
        let (te, c, e_y) = (600.0, 0.5, 1.2);
        let honest = te / e_y;
        let mut last_ratio = 0.0;
        let mut last_count = u32::MAX;
        for gamma in [1.0, 2.0, 6.0, 18.0] {
            let hc = hazard_policy_costs(te, c, e_y, honest * gamma).unwrap();
            assert_eq!(
                hc.x_opt,
                optimal_interval_count(te, c, e_y).unwrap().rounded()
            );
            assert!(hc.x_young <= last_count, "count must shrink: {hc:?}");
            assert!(
                hc.young_ratio + 1e-12 >= last_ratio,
                "ratio must climb: {hc:?}"
            );
            assert!(hc.daly_ratio >= 1.0 && hc.young_ratio >= 1.0);
            last_ratio = hc.young_ratio;
            last_count = hc.x_young;
        }
        assert!(last_ratio > 1.3, "18x distortion must visibly hurt Young");
    }
}
