//! Young's 1974 first-order checkpointing formula — the paper's baseline —
//! and Corollary 1, which derives it from Theorem 1 under exponential
//! failure intervals.
//!
//! Young's formula gives the optimal checkpoint *interval* (not count):
//!
//! ```text
//! Tc = sqrt(2 · C · Tf)
//! ```
//!
//! where `C` is the checkpoint cost and `Tf` the mean time between failures
//! (MTBF). The paper's critique (§5.2): with heavy-tailed (Pareto-like)
//! failure intervals "a majority of failure intervals are short while a
//! minority are extremely long, leading to the large MTBF on average thus
//! large prediction errors" — Young then checkpoints far too rarely.

use crate::{PolicyError, Result};

fn check_pos(what: &'static str, v: f64) -> Result<f64> {
    if v.is_finite() && v > 0.0 {
        Ok(v)
    } else {
        Err(PolicyError::BadInput { what, value: v })
    }
}

/// Young's optimal checkpointing interval `Tc = sqrt(2·C·Tf)` (seconds).
///
/// ```
/// use ckpt_policy::young::young_interval;
/// // Paper §4.1: C = 2 s, λ = 0.00423445 ⇒ Tc ≈ 30.7 s.
/// let tc = young_interval(2.0, 1.0 / 0.00423445).unwrap();
/// assert!((tc - 30.7).abs() < 0.1);
/// ```
pub fn young_interval(c: f64, mtbf: f64) -> Result<f64> {
    let c = check_pos("c", c)?;
    let mtbf = check_pos("mtbf", mtbf)?;
    Ok((2.0 * c * mtbf).sqrt())
}

/// Number of equidistant intervals a task of length `te` gets under Young's
/// formula: `x = round(te / Tc)`, at least 1.
///
/// Young's model is interval-based (it assumes effectively infinite jobs);
/// for a finite task the nearest whole number of segments is used, which is
/// how the paper applies it in the evaluation.
pub fn young_interval_count(te: f64, c: f64, mtbf: f64) -> Result<u32> {
    let te = check_pos("te", te)?;
    let tc = young_interval(c, mtbf)?;
    Ok((te / tc).round().max(1.0) as u32)
}

/// Corollary 1, numerically: the interval implied by Theorem 1 when failures
/// are Poisson (`E(Y) = Te/Tf`), i.e. `Te / x*`. As `Te → ∞` this converges
/// to Young's `sqrt(2·C·Tf)`; the function exists so tests and benches can
/// exhibit the equivalence (and quantify the finite-task deviation).
pub fn corollary1_interval(te: f64, c: f64, mtbf: f64) -> Result<f64> {
    let te = check_pos("te", te)?;
    let c = check_pos("c", c)?;
    let mtbf = check_pos("mtbf", mtbf)?;
    let e_y = te / mtbf;
    let x_star = (te * e_y / (2.0 * c)).sqrt();
    Ok(te / x_star)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_value() {
        let tc = young_interval(2.0, 1.0 / 0.00423445).unwrap();
        assert!((tc - 30.73).abs() < 0.05, "tc = {tc}");
    }

    #[test]
    fn corollary1_exact_equivalence() {
        // With E(Y) = Te/Tf, Te/x* algebraically equals sqrt(2·C·Tf) for
        // EVERY finite Te — the cancellation in the paper's derivation.
        for &te in &[50.0, 300.0, 1e4] {
            let a = corollary1_interval(te, 2.0, 236.0).unwrap();
            let b = young_interval(2.0, 236.0).unwrap();
            assert!((a - b).abs() < 1e-9, "te={te}: {a} vs {b}");
        }
    }

    #[test]
    fn interval_count_rounds() {
        // Tc = sqrt(2·2·200) ≈ 28.28; te = 100 ⇒ 100/28.28 ≈ 3.54 ⇒ 4.
        let x = young_interval_count(100.0, 2.0, 200.0).unwrap();
        assert_eq!(x, 4);
    }

    #[test]
    fn never_less_than_one_interval() {
        // MTBF enormous vs task length ⇒ interval longer than the task ⇒
        // one segment, zero checkpoints.
        let x = young_interval_count(10.0, 2.0, 1e9).unwrap();
        assert_eq!(x, 1);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(young_interval(0.0, 100.0).is_err());
        assert!(young_interval(1.0, 0.0).is_err());
        assert!(young_interval(f64::NAN, 1.0).is_err());
        assert!(young_interval_count(0.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn mtbf_inflation_lengthens_interval() {
        // The failure mode the paper exploits: an inflated MTBF (heavy tail)
        // stretches Young's interval by sqrt(inflation).
        let honest = young_interval(2.0, 179.0).unwrap(); // short-task MTBF, Table 7
        let inflated = young_interval(2.0, 4199.0).unwrap(); // full-range MTBF, Table 7
        assert!(inflated / honest > 4.0, "{inflated} / {honest}");
    }
}
