//! Minimal in-tree stand-in for the `rand` crate's 0.8 core surface.
//!
//! The container building this workspace has no registry access, so the
//! real `rand` cannot be fetched. The repo only needs the [`RngCore`]
//! trait (ckpt-stats implements it for its own generators so downstream
//! code can plug them into rand-style APIs), which this shim provides
//! with the same method signatures.

/// Error type returned by [`RngCore::try_fill_bytes`]. The in-tree
/// generators are infallible, so this is never constructed in practice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
