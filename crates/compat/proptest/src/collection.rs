//! Collection strategies, mirroring `proptest::collection`.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// Strategy producing `Vec`s with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end.saturating_sub(self.len.start).max(1) as u64;
        let n = self.len.start + rng.next_below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, len_range)` — a vector of `element` draws with a length
/// uniform in `len_range` (half-open, like proptest's size ranges).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::for_case("collection::lens", 0);
        let s = vec(0.0..1.0f64, 2..7);
        for _ in 0..2_000 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn empty_capable_range() {
        let mut rng = TestRng::for_case("collection::empty", 0);
        let s = vec(0u32..5, 0..3);
        let mut saw_empty = false;
        for _ in 0..200 {
            saw_empty |= s.generate(&mut rng).is_empty();
        }
        assert!(saw_empty);
    }
}
