//! Runner-side types: configuration and the per-case error channel the
//! assertion macros use.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The case was filtered out by `prop_assume!`; try another.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject<S: Into<String>>(msg: S) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;
