//! Deterministic RNG for case generation: SplitMix64 seeded from the test
//! name and attempt index, so every run of a test generates the same case
//! sequence (no flaky property tests, reproducible failures).

/// Deterministic per-case random-number generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for attempt `attempt` of the test identified by `name`.
    pub fn for_case(name: &str, attempt: u32) -> Self {
        // FNV-1a over the test identity, mixed with the attempt index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ ((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53-bit resolution.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % n
    }
}
