//! Minimal in-tree stand-in for the `proptest` property-testing crate.
//!
//! The container building this workspace has no registry access, so the
//! real proptest cannot be fetched. This shim implements the subset the
//! test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, doc
//!   comments and `#[test]` attributes, and `arg in strategy` bindings);
//! * [`strategy::Strategy`] for numeric ranges, with `prop_map` and
//!   `prop_flat_map` combinators;
//! * [`collection::vec`] for variable-length vectors;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated values' debug description of the assertion. Generation
//! is fully deterministic — the RNG stream is derived from the test's
//! module path and name, so failures reproduce across runs and machines.

pub mod collection;
pub mod rng;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a [`proptest!`] body; failure reports the
/// condition (or a formatted message) without unwinding past the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Discard the current case (it does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// The property-test macro, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.cases.max(1);
            let __max_attempts = __cases.saturating_mul(20).max(1_000);
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __cases {
                assert!(
                    __attempts < __max_attempts,
                    "proptest: too many rejected cases ({__accepted} accepted of {__cases})"
                );
                let mut __rng = $crate::rng::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __attempts,
                );
                __attempts += 1;
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __result: $crate::test_runner::TestCaseResult =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __result {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case #{} (attempt {}) of {} failed: {}",
                            __accepted + 1,
                            __attempts,
                            stringify!($name),
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
