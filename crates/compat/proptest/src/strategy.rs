//! Value-generation strategies: numeric ranges, `Just`, and the
//! `prop_map` / `prop_flat_map` combinators.

use crate::rng::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type, mirroring
/// `proptest::strategy::Strategy` (minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::bounds", 0);
        for _ in 0..10_000 {
            let f = (1.5..9.25f64).generate(&mut rng);
            assert!((1.5..9.25).contains(&f));
            let u = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&u));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::for_case("strategy::compose", 0);
        let s = (1u32..10)
            .prop_map(|x| x * 2)
            .prop_flat_map(|x| (0u32..x).prop_map(move |y| (x, y)));
        for _ in 0..1_000 {
            let (x, y) = s.generate(&mut rng);
            assert!(x % 2 == 0 && y < x);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::for_case("strategy::det", 7);
        let mut b = TestRng::for_case("strategy::det", 7);
        for _ in 0..100 {
            assert_eq!(
                (0.0..1e9f64).generate(&mut a),
                (0.0..1e9f64).generate(&mut b)
            );
        }
    }
}
