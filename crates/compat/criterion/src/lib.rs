//! Minimal in-tree stand-in for the `criterion` benchmarking crate.
//!
//! The container building this workspace has no registry access, so the
//! real criterion cannot be fetched. This shim implements the subset of
//! the API the `crates/bench` benchmarks use — `Criterion` with the
//! builder knobs, benchmark groups, `Bencher::iter`/`iter_batched`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros —
//! with real wall-clock measurement and a compact median/mean report.
//! Statistical machinery (outlier analysis, HTML reports) is omitted.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark configuration and entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up period before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, f);
        self
    }
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{name}", self.name);
        run_one(self.c, &label, f);
        self
    }

    /// End the group (accepted for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted, unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with fresh setup output per iteration; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn time_per_iter(b: &Bencher) -> f64 {
    b.elapsed.as_secs_f64() / b.iters.max(1) as f64
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, mut f: F) {
    // Calibrate: run single iterations until the warm-up budget is spent,
    // tracking the per-iteration time to size the measurement samples.
    let warm_start = Instant::now();
    let mut per_iter = f64::INFINITY;
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut calib);
        per_iter = per_iter.min(time_per_iter(&calib).max(1e-9));
        if warm_start.elapsed() >= c.warm_up_time {
            break;
        }
    }
    let per_sample = c.measurement_time.as_secs_f64() / c.sample_size as f64;
    let iters = ((per_sample / per_iter).ceil() as u64).clamp(1, 1_000_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(time_per_iter(&b));
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label:<48} time: [median {} mean {}]  ({} samples x {iters} iters)",
        fmt_time(median),
        fmt_time(mean),
        samples.len(),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Define a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
