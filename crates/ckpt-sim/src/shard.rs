//! Sharded cluster DES: one simulation across all cores.
//!
//! The cluster engine ([`crate::cluster`]) is strictly sequential — one
//! event loop, one core. This module partitions the host fleet into `S`
//! contiguous host groups ("shards") and runs one [`ClusterSim`] per shard
//! on the work-stealing substrate ([`crate::runner::parallel_indexed`]),
//! so a single stress-scale simulation saturates the machine instead of
//! one core.
//!
//! ## Partition rule
//!
//! * **Jobs** are assigned to shards at *trace* level: shard =
//!   `SplitMix64::mix(job_id ^ SHARD_SALT) % S` ([`shard_of`]). The
//!   assignment depends only on the job id and the shard count — never on
//!   thread count or scheduling — so a fixed `shards` value produces
//!   byte-identical results at any thread count.
//! * **Hosts** split into contiguous groups: shard `s` owns hosts
//!   `⌊H·s/S⌋ .. ⌊H·(s+1)/S⌋` (sizes differ by at most one). Each shard's
//!   engine sees only its own host count, VM slots, and per-host storage
//!   servers, so scheduling and NFS contention stay shard-local.
//! * **RNG**: each shard's cluster-level stream is
//!   `stream(mix(seed), CLUSTER_STREAM + shard_index)` — derived
//!   `(seed, shard)`-style like sweep cells. Shard 0 consumes the exact
//!   legacy stream, so a 1-shard run is bit-identical to the unsharded
//!   engine by construction.
//! * **Kill plans** come from the shared [`FailurePlanArena`] unchanged:
//!   the arena is keyed by *global* task id, so per-shard sub-traces
//!   slice it for free.
//!
//! ## Conservative time windows
//!
//! Shards exchange no events today (no cross-shard task migration), so
//! they could run to completion independently; instead they advance
//! through **conservative time windows**: each round, every live shard
//! steps to a shared horizon (`earliest pending event + window`), then a
//! barrier folds per-shard [`StreamStats`]/[`QuantileSketch`] state and
//! `ckpt-obs` counter cells **in shard order**. The fold order is fixed,
//! so merged frames are byte-identical at any thread count — and the
//! window barrier is the seam where future cross-shard migration plugs
//! in (a migrating task would be handed over between windows, keeping
//! the no-look-ahead guarantee).
//!
//! Every barrier ticks [`Counter::ShardWindows`] once and
//! [`Counter::ShardMerges`] `S − 1` times (shard 0 seeds the fold), so
//! `shard_merges == shard_windows × (S − 1)` is a checkable invariant
//! (`ckpt_obs::Counters::verify_shard_invariants`).
//!
//! ## Semantics vs. the unsharded engine
//!
//! With `S > 1` the simulation itself changes (that is the point —
//! results get their own pinned digests): scheduling is shard-local
//! (a job queues only against its own host group), DM-NFS server picks
//! draw from per-shard streams, and whole-host failures are injected per
//! shard. Aggregates merge deterministically: job records scatter back
//! to global trace order, event counts and host failures sum, makespan
//! is the max across shards, and `max_concurrent_checkpoints` is the max
//! of the per-shard peaks (shard-local storage has no cross-shard
//! contention to measure). Under [`MetricsMode::Full`],
//! `checkpoint_durations` concatenates shard-major (chronological within
//! a shard).

use crate::cluster::{
    ClusterConfig, ClusterJobRecord, ClusterRunResult, ClusterSim, MetricsMode, RunStatus,
    SimBudget, SimProgress,
};
use crate::metrics::StreamStats;
use crate::policy::{Estimates, PolicyConfig};
use crate::runner::parallel_indexed;
use crate::time::SimDuration;
use ckpt_obs::{Counter, NoObs, Observer};
use ckpt_stats::rng::SplitMix64;
use ckpt_stats::sketch::QuantileSketch;
use ckpt_trace::gen::Trace;
use ckpt_trace::plan::FailurePlanArena;
use std::sync::Mutex;

/// Salt folded into the job-id hash so shard assignment is independent of
/// every other consumer of the id space (failure streams, sweep cells).
const SHARD_SALT: u64 = 0x5AAD_C105;

/// Default conservative window width (simulated seconds). Shards exchange
/// no events, so the width only sets the barrier (fold/progress) cadence;
/// one simulated hour keeps barriers far rarer than events.
pub const DEFAULT_WINDOW_S: f64 = 3_600.0;

/// The shard owning a job: a pure function of `(job_id, shards)` —
/// independent of thread count, host count, and trace order.
pub fn shard_of(job_id: u64, shards: usize) -> usize {
    (SplitMix64::mix(job_id ^ SHARD_SALT) % shards as u64) as usize
}

/// The trace-level partition of a sharded run: per-shard sub-traces (job
/// subsets in original arrival order), the scatter map back to global job
/// indices, and the contiguous host split.
#[derive(Debug)]
pub struct ShardPlan {
    /// Number of shards.
    pub shards: usize,
    /// Per-shard sub-traces (same seed and failure model as the parent,
    /// so global task ids keep their failure streams and arena slots).
    pub sub_traces: Vec<Trace>,
    /// `job_origin[s][local]` = global job index of shard `s`'s
    /// `local`-th job.
    pub job_origin: Vec<Vec<usize>>,
    /// Hosts owned by each shard (contiguous groups; sums to `n_hosts`).
    pub host_counts: Vec<usize>,
}

impl ShardPlan {
    /// Partition `trace` and `n_hosts` into `shards` groups.
    ///
    /// Errors when `shards == 0` or `shards > n_hosts` (a shard with zero
    /// hosts could never place a task).
    pub fn new(trace: &Trace, shards: usize, n_hosts: usize) -> Result<ShardPlan, String> {
        if shards == 0 {
            return Err("shards must be >= 1".into());
        }
        if shards > n_hosts {
            return Err(format!(
                "shards ({shards}) exceeds n_hosts ({n_hosts}): a shard would own zero hosts"
            ));
        }
        let mut sub_jobs: Vec<Vec<_>> = vec![Vec::new(); shards];
        let mut job_origin: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (global, job) in trace.jobs.iter().enumerate() {
            let s = shard_of(job.id, shards);
            sub_jobs[s].push(job.clone());
            job_origin[s].push(global);
        }
        let sub_traces = sub_jobs
            .into_iter()
            .map(|jobs| Trace {
                jobs,
                seed: trace.seed,
                failure_model: trace.failure_model,
            })
            .collect();
        let host_counts = (0..shards)
            .map(|s| n_hosts * (s + 1) / shards - n_hosts * s / shards)
            .collect();
        Ok(ShardPlan {
            shards,
            sub_traces,
            job_origin,
            host_counts,
        })
    }
}

/// A sharded cluster simulation: build with [`ShardedClusterSim::new`],
/// configure, then [`ShardedClusterSim::run`] /
/// [`ShardedClusterSim::run_observed`].
pub struct ShardedClusterSim<'a> {
    cfg: ClusterConfig,
    trace: &'a Trace,
    estimates: &'a Estimates,
    policy: PolicyConfig,
    plans: Option<&'a FailurePlanArena>,
    shards: usize,
    threads: usize,
    metrics_mode: MetricsMode,
    window_s: f64,
}

impl<'a> ShardedClusterSim<'a> {
    /// A sharded simulation over `shards` host groups. `threads` defaults
    /// to the shard count (capped by the substrate at available cores).
    pub fn new(
        cfg: ClusterConfig,
        trace: &'a Trace,
        estimates: &'a Estimates,
        policy: PolicyConfig,
        shards: usize,
    ) -> Self {
        ShardedClusterSim {
            cfg,
            trace,
            estimates,
            policy,
            plans: None,
            shards,
            threads: shards,
            metrics_mode: MetricsMode::Full,
            window_s: DEFAULT_WINDOW_S,
        }
    }

    /// Draw kill plans from a shared [`FailurePlanArena`] (keyed by global
    /// task id, so the per-shard sub-traces slice it without copying).
    pub fn with_plans(mut self, plans: &'a FailurePlanArena) -> Self {
        self.plans = Some(plans);
        self
    }

    /// Worker threads for the per-window shard advance (0 ⇒ one per
    /// core). Thread count never changes results — only wall clock.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Metrics accumulation mode for every shard engine.
    pub fn with_metrics(mut self, mode: MetricsMode) -> Self {
        self.metrics_mode = mode;
        self
    }

    /// Conservative window width in simulated seconds
    /// (default [`DEFAULT_WINDOW_S`]).
    pub fn with_window_s(mut self, window_s: f64) -> Self {
        self.window_s = window_s.max(1e-6);
        self
    }

    /// Run to completion without an observer.
    pub fn run(self) -> Result<ClusterRunResult, String> {
        self.run_observed::<NoObs>(|_| {}).map(|(r, _)| r)
    }

    /// Run to completion, collecting merged `ckpt-obs` counters. The
    /// window callback fires once per barrier with aggregate progress
    /// (events and completed tasks summed across shards).
    ///
    /// `shards == 1` skips the window machinery entirely (one unlimited
    /// run, no `shard_windows`/`shard_merges` ticks) and is bit-identical
    /// to the unsharded engine.
    pub fn run_observed<O: Observer>(
        self,
        mut on_window: impl FnMut(&SimProgress),
    ) -> Result<(ClusterRunResult, O), String> {
        let plan = ShardPlan::new(self.trace, self.shards, self.cfg.n_hosts)?;
        let shards = plan.shards;
        let tasks_total: usize = self.trace.jobs.iter().map(|j| j.tasks.len()).sum();

        let build = |s: usize| {
            let cfg_s = ClusterConfig {
                n_hosts: plan.host_counts[s],
                ..self.cfg
            };
            ClusterSim::for_shard(
                cfg_s,
                &plan.sub_traces[s],
                self.estimates,
                self.policy,
                self.plans,
                s as u64,
            )
            .with_metrics(self.metrics_mode)
            .with_observer(O::default())
        };

        if shards == 1 {
            // The exact legacy path: same trace, same stream, one engine.
            let (result, status, obs) = build(0).run_observed(SimBudget::UNLIMITED, |_| {});
            debug_assert_eq!(status, RunStatus::Completed);
            on_window(&SimProgress {
                events: result.events,
                sim_time: result.makespan,
                tasks_done: result.tasks_done,
                tasks_total,
            });
            return Ok((result, obs));
        }

        let sims: Vec<Mutex<ClusterSim<'_, O>>> =
            (0..shards).map(|s| Mutex::new(build(s))).collect();

        let mut master = O::default();
        let mut done = vec![false; shards];
        loop {
            // The conservative horizon: no shard may advance past the
            // earliest pending event plus one window width. Shards are
            // independent today, so this is a cadence, not a correctness
            // bound — but it is exactly the bound cross-shard migration
            // will need.
            let mut earliest = None;
            for (s, slot) in sims.iter().enumerate() {
                if done[s] {
                    continue;
                }
                if let Some(t) = slot.lock().unwrap().next_event_time() {
                    earliest = Some(match earliest {
                        Some(e) if e <= t => e,
                        _ => t,
                    });
                }
            }
            let Some(earliest) = earliest else { break };
            let horizon = earliest + SimDuration::from_secs_f64(self.window_s);
            let budget = SimBudget {
                max_events: None,
                max_sim_time: Some(horizon),
                progress_every: 0,
            };

            // Advance every live shard to the horizon in parallel. The
            // substrate assigns indices dynamically, but each index locks
            // exactly one engine, so results are index-deterministic.
            let statuses = parallel_indexed(shards, self.threads, |s| {
                if done[s] {
                    return RunStatus::Completed;
                }
                sims[s].lock().unwrap().step_budget(budget, &mut |_| {})
            });

            // Barrier: fold per-shard state in shard order. Counter cells
            // are drained (sums accumulate across windows, peaks
            // max-merge); metric state folds cumulatively into a fresh
            // accumulator, so `merged` is the whole-cluster view at this
            // barrier — the frame a future cross-window exporter would
            // emit.
            master.tick(Counter::ShardWindows);
            let mut merged_stats = StreamStats::default();
            let mut merged_sketch = QuantileSketch::new();
            let mut events_total = 0u64;
            let mut tasks_done_total = 0usize;
            for (s, status) in statuses.iter().enumerate() {
                let mut sim = sims[s].lock().unwrap();
                if s > 0 {
                    master.tick(Counter::ShardMerges);
                }
                let cell = sim.take_obs();
                master.merge_from(&cell);
                merged_stats.merge(&sim.ckpt_stats());
                merged_sketch.merge(sim.ckpt_sketch());
                events_total += sim.events_so_far();
                tasks_done_total += sim.tasks_done();
                if !done[s] && *status == RunStatus::Completed {
                    done[s] = true;
                }
            }
            debug_assert_eq!(merged_stats.count, merged_sketch.count());
            on_window(&SimProgress {
                events: events_total,
                sim_time: horizon,
                tasks_done: tasks_done_total,
                tasks_total,
            });
            if done.iter().all(|&d| d) {
                break;
            }
        }

        // Final merge: scatter job records back to global trace order and
        // fold the aggregate fields in shard order.
        let mut jobs: Vec<Option<ClusterJobRecord>> = vec![None; self.trace.jobs.len()];
        let mut durations = Vec::new();
        let mut stats = StreamStats::default();
        let mut sketch = QuantileSketch::new();
        let mut max_concurrent = 0usize;
        let mut makespan = crate::time::SimTime::ZERO;
        let mut host_failures = 0u64;
        let mut events = 0u64;
        let mut tasks_done = 0usize;
        for (s, slot) in sims.into_iter().enumerate() {
            let sim = slot.into_inner().unwrap();
            let res = sim.into_result(RunStatus::Completed);
            stats.merge(&res.checkpoint_stats);
            sketch.merge(&res.checkpoint_sketch);
            durations.extend(res.checkpoint_durations);
            max_concurrent = max_concurrent.max(res.max_concurrent_checkpoints);
            makespan = makespan.max(res.makespan);
            host_failures += res.host_failures;
            events += res.events;
            tasks_done += res.tasks_done;
            for (local, rec) in res.jobs.into_iter().enumerate() {
                let global = plan.job_origin[s][local];
                debug_assert!(jobs[global].is_none());
                jobs[global] = Some(rec);
            }
        }
        let jobs = jobs
            .into_iter()
            .map(|j| j.expect("every job belongs to exactly one shard"))
            .collect();
        if O::ENABLED {
            // Per-shard `events_popped` cells sum to the cluster total.
            debug_assert_eq!(master.get(Counter::EventsPopped), events);
        }
        Ok((
            ClusterRunResult {
                jobs,
                checkpoint_durations: durations,
                checkpoint_stats: stats,
                checkpoint_sketch: sketch,
                max_concurrent_checkpoints: max_concurrent,
                makespan,
                host_failures,
                events,
                status: RunStatus::Completed,
                tasks_done,
            },
            master,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Estimates, PolicyConfig};
    use ckpt_obs::Counters;
    use ckpt_trace::failure::FailureModelSpec;
    use ckpt_trace::gen::generate;
    use ckpt_trace::spec::WorkloadSpec;
    use ckpt_trace::stats::trace_histories;

    fn setup(n: usize, seed: u64) -> (Trace, Estimates) {
        let mut spec = WorkloadSpec::google_like(n);
        spec.long_task_fraction = 0.0;
        let trace = generate(&spec, seed).expect("valid workload spec");
        let records = trace_histories(&trace);
        (trace, Estimates::from_records(&records))
    }

    fn digest(result: &ClusterRunResult) -> u64 {
        fn fnv(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x100000001b3)
        }
        let mut h = 0xcbf29ce484222325u64;
        for j in &result.jobs {
            h = fnv(h, j.base.job_id);
            h = fnv(h, j.base.total_work.to_bits());
            h = fnv(h, j.base.total_wall.to_bits());
            h = fnv(h, j.base.failures as u64);
            h = fnv(h, j.base.checkpoints as u64);
            h = fnv(h, j.base.rollback_loss.to_bits());
            h = fnv(h, j.base.checkpoint_time.to_bits());
            h = fnv(h, j.base.restart_time.to_bits());
            h = fnv(h, j.queue_wait.to_bits());
            h = fnv(h, j.span.to_bits());
        }
        for &d in &result.checkpoint_durations {
            h = fnv(h, d.to_bits());
        }
        h = fnv(h, result.max_concurrent_checkpoints as u64);
        h = fnv(h, result.makespan.0);
        h = fnv(h, result.host_failures);
        h
    }

    #[test]
    fn shard_assignment_is_a_pure_function() {
        for shards in [1usize, 2, 3, 8] {
            for id in 0..64u64 {
                let s = shard_of(id, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(id, shards));
            }
        }
        // Not degenerate: 64 ids over 4 shards hit every shard.
        let mut seen = [false; 4];
        for id in 0..64u64 {
            seen[shard_of(id, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "hash never reaches some shard");
    }

    #[test]
    fn host_partition_is_contiguous_and_complete() {
        for (hosts, shards) in [(32, 4), (128, 8), (7, 3), (5, 5)] {
            let (trace, _) = setup(8, 1);
            let plan = ShardPlan::new(&trace, shards, hosts).unwrap();
            assert_eq!(plan.host_counts.len(), shards);
            assert_eq!(plan.host_counts.iter().sum::<usize>(), hosts);
            let (min, max) = (
                plan.host_counts.iter().min().unwrap(),
                plan.host_counts.iter().max().unwrap(),
            );
            assert!(max - min <= 1, "{hosts}/{shards}: {:?}", plan.host_counts);
            // Every job lands in exactly one shard.
            let assigned: usize = plan.job_origin.iter().map(Vec::len).sum();
            assert_eq!(assigned, trace.jobs.len());
        }
    }

    #[test]
    fn invalid_shard_counts_are_rejected() {
        let (trace, _) = setup(4, 2);
        assert!(ShardPlan::new(&trace, 0, 32).is_err());
        let err = ShardPlan::new(&trace, 33, 32).unwrap_err();
        assert!(err.contains("n_hosts"), "{err}");
    }

    /// `shards = 1` must be bit-identical to the unsharded engine — for
    /// every failure model, with and without a plan arena, across seeds.
    /// Non-vacuous by construction: the 1-shard path still goes through
    /// `ShardPlan` + `ClusterSim::for_shard`, so this pins that shard 0's
    /// RNG stream, sub-trace, and host split reproduce the legacy run.
    #[test]
    fn one_shard_matches_unsharded_engine_across_failure_models() {
        let models = [
            FailureModelSpec::Exponential,
            FailureModelSpec::Weibull {
                shape: 0.7,
                scale: 1.0,
            },
            FailureModelSpec::LogNormal {
                sigma: 1.2,
                scale: 1.0,
            },
            FailureModelSpec::Pareto {
                shape: 1.5,
                scale: 1.0,
            },
            FailureModelSpec::TraceReplay { scale: 1.0 },
        ];
        for (i, model) in models.into_iter().enumerate() {
            let mut spec = WorkloadSpec::google_like(40);
            spec.long_task_fraction = 0.0;
            let seed = 77 + i as u64;
            let trace = generate(&spec.with_failure_model(model), seed).expect("valid spec");
            let records = trace_histories(&trace);
            let est = Estimates::from_records(&records);
            let cfg = ClusterConfig {
                host_mtbf_s: Some(3_600.0),
                failure_model: model,
                ..ClusterConfig::default()
            };
            let policy = PolicyConfig::formula3();
            let plans = FailurePlanArena::build(&trace);

            let legacy = ClusterSim::with_plans(cfg, &trace, &est, policy, &plans).run();
            let sharded = ShardedClusterSim::new(cfg, &trace, &est, policy, 1)
                .with_plans(&plans)
                .run()
                .unwrap();
            assert_eq!(
                digest(&legacy),
                digest(&sharded),
                "model {model:?}: 1-shard run diverged from the unsharded engine"
            );
            assert_eq!(legacy.events, sharded.events, "model {model:?}");

            // Fresh-sampling path too (no arena).
            let legacy_fresh = ClusterSim::new(cfg, &trace, &est, policy).run();
            let sharded_fresh = ShardedClusterSim::new(cfg, &trace, &est, policy, 1)
                .run()
                .unwrap();
            assert_eq!(digest(&legacy_fresh), digest(&sharded_fresh), "{model:?}");
        }
    }

    /// Fixed `shards > 1` is thread-count invariant: the partition, RNG
    /// streams, and fold order all key off shard index, never workers.
    #[test]
    fn sharded_runs_are_thread_invariant() {
        let (trace, est) = setup(60, 31);
        let policy = PolicyConfig::formula3();
        let cfg = ClusterConfig::default();
        let baseline = ShardedClusterSim::new(cfg, &trace, &est, policy, 4)
            .with_threads(1)
            .run()
            .unwrap();
        for threads in [2, 4, 8] {
            let run = ShardedClusterSim::new(cfg, &trace, &est, policy, 4)
                .with_threads(threads)
                .run()
                .unwrap();
            assert_eq!(
                digest(&baseline),
                digest(&run),
                "4-shard digest differs at {threads} threads"
            );
        }
    }

    /// The sharded configuration gets its own pinned digests (captured at
    /// introduction): sharded semantics are a deliberate, stable contract,
    /// not an accident of fold order.
    #[test]
    fn golden_digests_sharded() {
        let (trace, est) = setup(60, 31);
        let plans = FailurePlanArena::build(&trace);
        let cases: Vec<(&str, usize, u64)> = vec![
            ("two_shards", 2, 0x5b376b001a74cf16),
            ("four_shards", 4, 0x21a8086bd3cc2515),
        ];
        for (name, shards, expected) in cases {
            let r = ShardedClusterSim::new(
                ClusterConfig::default(),
                &trace,
                &est,
                PolicyConfig::formula3(),
                shards,
            )
            .with_plans(&plans)
            .run()
            .unwrap();
            assert_eq!(r.tasks_done, trace.task_count(), "{name}");
            assert_eq!(
                digest(&r),
                expected,
                "{name}: sharded digest drifted (got {:#x})",
                digest(&r)
            );
        }
    }

    /// Window accounting: `shard_merges == shard_windows × (S − 1)`,
    /// merged `events_popped` equals the cluster event total, and the
    /// merged counters satisfy the per-shard DES identities summed.
    #[test]
    fn window_barriers_satisfy_shard_invariants() {
        let (trace, est) = setup(60, 31);
        let cfg = ClusterConfig {
            host_mtbf_s: Some(3_600.0),
            ..ClusterConfig::default()
        };
        let mut windows_seen = 0u64;
        let (result, counters) =
            ShardedClusterSim::new(cfg, &trace, &est, PolicyConfig::young(), 4)
                .with_window_s(600.0)
                .run_observed::<Counters>(|_| windows_seen += 1)
                .unwrap();
        assert_eq!(result.status, RunStatus::Completed);
        counters
            .verify_shard_invariants(4, result.events)
            .unwrap_or_else(|e| panic!("{e}"));
        counters
            .verify_invariants(true)
            .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(counters.get(Counter::ShardWindows), windows_seen);
        assert!(windows_seen > 1, "window width too coarse to test barriers");
        assert_eq!(
            counters.get(Counter::ShardMerges),
            windows_seen * 3,
            "merges != windows * (shards - 1)"
        );
        assert_eq!(counters.get(Counter::EventsPopped), result.events);
        assert_eq!(counters.get(Counter::HostFailures), result.host_failures);
    }

    /// Streaming metrics fold across shards exactly like the unsharded
    /// streaming mode folds within one engine: identical count/total/max
    /// and an identical merged sketch versus the full-metrics run.
    #[test]
    fn streaming_sharded_matches_full_sharded() {
        let (trace, est) = setup(60, 31);
        let full = ShardedClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
            3,
        )
        .run()
        .unwrap();
        let streaming = ShardedClusterSim::new(
            ClusterConfig::default(),
            &trace,
            &est,
            PolicyConfig::formula3(),
            3,
        )
        .with_metrics(MetricsMode::Streaming)
        .run()
        .unwrap();
        assert!(streaming.checkpoint_durations.is_empty());
        assert_eq!(
            full.checkpoint_stats.count,
            streaming.checkpoint_stats.count
        );
        assert_eq!(
            full.checkpoint_stats.total.to_bits(),
            streaming.checkpoint_stats.total.to_bits()
        );
        assert_eq!(
            full.checkpoint_stats.max.to_bits(),
            streaming.checkpoint_stats.max.to_bits()
        );
        assert_eq!(
            full.checkpoint_sketch.quantile(0.99),
            streaming.checkpoint_sketch.quantile(0.99)
        );
        assert_eq!(
            full.checkpoint_durations.len() as u64,
            full.checkpoint_stats.count
        );
    }
}
