//! Per-job metrics: the Workload-Processing Ratio (paper Formula (9)) and
//! the aggregations the evaluation figures are built from.
//!
//! WPR(J) = workload processed / real wall-clock length. For sequential
//! jobs the wall-clock is the sum of task spans (tasks run back-to-back);
//! for bag-of-tasks jobs we aggregate per-task efficiency
//! (`Σ Te_i / Σ wall_i`), which keeps WPR in `(0, 1]` for arbitrary
//! parallelism while preserving the paper's policy ordering. (On the
//! paper's own 224-VM testbed BoT tasks largely serialized on memory
//! anyway, making job span ≈ Σ task spans.)

use crate::task_sim::TaskOutcome;
use ckpt_stats::ecdf::Ecdf;
use ckpt_stats::sketch::QuantileSketch;
use ckpt_stats::summary::OnlineStats;
use ckpt_trace::gen::JobStructure;
use std::collections::HashMap;

/// Constant-memory accumulator for a stream of observations — the
/// batched/streaming alternative to collecting raw per-event `Vec`s in
/// stress-scale runs (see [`crate::cluster::MetricsMode`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub total: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl StreamStats {
    /// Ingest one observation.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.total += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Mean of the observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.total / self.count as f64
        }
    }

    /// Fold another summary in. Count and max merge order-free; the total
    /// is a float sum, so deterministic consumers (the sharded cluster
    /// runner's window barriers) must merge in a fixed order.
    pub fn merge(&mut self, other: &StreamStats) {
        self.count += other.count;
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// Mergeable constant-memory summary of a value stream: count, total,
/// min, max. The streaming fast path ([`crate::runner::run_trace_stream`])
/// folds one of these per metric per fixed job block, then merges block
/// partials in block order — deterministic for any thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub total: f64,
    /// Smallest observation (`+∞` when empty).
    pub min: f64,
    /// Largest observation (`−∞` when empty).
    pub max: f64,
}

impl Default for StreamSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            total: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Ingest one observation.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.count += 1;
        self.total += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merge another summary in (callers merge in a fixed order so float
    /// totals stay deterministic).
    pub fn merge(&mut self, other: &StreamSummary) {
        self.count += other.count;
        self.total += other.total;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Mean of the observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.total / self.count as f64
        }
    }
}

/// A [`StreamSummary`] paired with a mergeable quantile sketch: the
/// constant-memory per-metric accumulator the streaming sweep path folds,
/// now carrying real p50/p99. Merging is deterministic for any thread
/// count: the summary is merged in fixed block order and the sketch's
/// merge is exactly associative/commutative (integer bucket counts).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamDist {
    /// Count/total/min/max moments.
    pub stats: StreamSummary,
    /// Log-spaced quantile sketch over the same observations.
    pub sketch: QuantileSketch,
}

impl StreamDist {
    /// An empty distribution accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one observation into both the moments and the sketch.
    #[inline]
    pub fn add(&mut self, v: f64) {
        self.stats.add(v);
        self.sketch.add(v);
    }

    /// Merge another accumulator in (callers merge in a fixed order so
    /// float totals stay deterministic; the sketch merge is order-free).
    pub fn merge(&mut self, other: &StreamDist) {
        self.stats.merge(&other.stats);
        self.sketch.merge(&other.sketch);
    }
}

/// Aggregated outcome of one job under one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id (matches the trace).
    pub job_id: u64,
    /// ST or BoT.
    pub structure: JobStructure,
    /// Priority at submission.
    pub priority: u8,
    /// Total productive work across tasks (seconds).
    pub total_work: f64,
    /// Sum of task wall-clocks (seconds) — the WPR denominator.
    pub total_wall: f64,
    /// Total failures across tasks.
    pub failures: u32,
    /// Total durable checkpoints across tasks.
    pub checkpoints: u32,
    /// Total rollback loss (seconds).
    pub rollback_loss: f64,
    /// Total checkpoint-writing time (seconds).
    pub checkpoint_time: f64,
    /// Total restart overhead (seconds).
    pub restart_time: f64,
    /// Longest single task length (for restricted-length filtering).
    pub max_task_length: f64,
}

impl JobRecord {
    /// An all-zero record for a job — the seed [`JobRecord::accumulate`]
    /// folds task outcomes into.
    pub fn empty(job_id: u64, structure: JobStructure, priority: u8) -> Self {
        JobRecord {
            job_id,
            structure,
            priority,
            total_work: 0.0,
            total_wall: 0.0,
            failures: 0,
            checkpoints: 0,
            rollback_loss: 0.0,
            checkpoint_time: 0.0,
            restart_time: 0.0,
            max_task_length: 0.0,
        }
    }

    /// Fold one task's outcome (and its length) into the record — the
    /// streaming form of [`JobRecord::from_outcomes`]: folding outcomes in
    /// task order performs the same additions in the same order, so the
    /// result is bit-identical while the per-job outcome/length vectors
    /// the batch form consumes never need to exist.
    #[inline]
    pub fn accumulate(&mut self, o: &TaskOutcome, task_length: f64) {
        self.total_work += o.productive;
        self.total_wall += o.wall;
        self.failures += o.failures;
        self.checkpoints += o.checkpoints;
        self.rollback_loss += o.rollback_loss;
        self.checkpoint_time += o.checkpoint_time;
        self.restart_time += o.restart_time;
        self.max_task_length = self.max_task_length.max(task_length);
    }

    /// Assemble a job record from its tasks' outcomes.
    pub fn from_outcomes(
        job_id: u64,
        structure: JobStructure,
        priority: u8,
        outcomes: &[TaskOutcome],
        task_lengths: &[f64],
    ) -> Self {
        let mut rec = JobRecord::empty(job_id, structure, priority);
        for (o, &l) in outcomes.iter().zip(task_lengths) {
            rec.accumulate(o, l);
        }
        rec
    }

    /// The workload-processing ratio (paper Formula (9)).
    pub fn wpr(&self) -> f64 {
        if self.total_wall > 0.0 {
            self.total_work / self.total_wall
        } else {
            1.0
        }
    }
}

/// WPR values of a batch of job records.
pub fn wprs(records: &[JobRecord]) -> Vec<f64> {
    records.iter().map(|r| r.wpr()).collect()
}

/// ECDF of WPR values (the paper's Figures 9, 11, 14(a)).
pub fn wpr_ecdf(records: &[JobRecord]) -> Option<Ecdf> {
    if records.is_empty() {
        return None;
    }
    Ecdf::new(&wprs(records)).ok()
}

/// Min/avg/max WPR per priority (the paper's Figure 10).
pub fn wpr_by_priority(records: &[JobRecord]) -> HashMap<u8, OnlineStats> {
    let mut map: HashMap<u8, OnlineStats> = HashMap::new();
    for r in records {
        map.entry(r.priority).or_default().add(r.wpr());
    }
    map
}

/// Filter records by structure.
pub fn with_structure(records: &[JobRecord], s: JobStructure) -> Vec<JobRecord> {
    records
        .iter()
        .filter(|r| r.structure == s)
        .cloned()
        .collect()
}

/// Filter records by restricted task length (the paper's RL parameter).
pub fn with_max_length(records: &[JobRecord], rl: f64) -> Vec<JobRecord> {
    records
        .iter()
        .filter(|r| r.max_task_length <= rl)
        .cloned()
        .collect()
}

/// Paired per-job comparison between two runs over the same trace
/// (the paper's Figure 13): for each job present in both, the ratio
/// `wall_a / wall_b` and the difference `wall_a − wall_b` (seconds).
pub fn paired_wall_clock(
    a: &[JobRecord],
    b: &[JobRecord],
) -> Vec<(u64, f64 /* ratio */, f64 /* diff */)> {
    let bmap: HashMap<u64, &JobRecord> = b.iter().map(|r| (r.job_id, r)).collect();
    let mut out = Vec::new();
    for ra in a {
        if let Some(rb) = bmap.get(&ra.job_id) {
            if rb.total_wall > 0.0 {
                out.push((
                    ra.job_id,
                    ra.total_wall / rb.total_wall,
                    ra.total_wall - rb.total_wall,
                ));
            }
        }
    }
    out
}

/// Mean WPR of a batch (`NaN` for empty).
pub fn mean_wpr(records: &[JobRecord]) -> f64 {
    if records.is_empty() {
        return f64::NAN;
    }
    wprs(records).iter().sum::<f64>() / records.len() as f64
}

/// Lowest WPR of a batch (`NaN` for empty) — the "lowest WPR" column of the
/// paper's Table 6.
pub fn lowest_wpr(records: &[JobRecord]) -> f64 {
    wprs(records)
        .into_iter()
        .fold(f64::NAN, |m, w| if m.is_nan() || w < m { w } else { m })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(wall: f64, te: f64, failures: u32) -> TaskOutcome {
        TaskOutcome {
            wall,
            productive: te,
            failures,
            checkpoints: 1,
            aborted_checkpoints: 0,
            rollback_loss: 0.0,
            checkpoint_time: 0.0,
            restart_time: 0.0,
            flipped: false,
        }
    }

    fn rec(id: u64, s: JobStructure, p: u8, walls: &[(f64, f64)]) -> JobRecord {
        let outcomes: Vec<TaskOutcome> = walls.iter().map(|&(w, te)| outcome(w, te, 0)).collect();
        let lengths: Vec<f64> = walls.iter().map(|&(_, te)| te).collect();
        JobRecord::from_outcomes(id, s, p, &outcomes, &lengths)
    }

    #[test]
    fn wpr_is_work_over_wall() {
        let r = rec(
            0,
            JobStructure::Sequential,
            1,
            &[(110.0, 100.0), (55.0, 50.0)],
        );
        assert!((r.wpr() - 150.0 / 165.0).abs() < 1e-12);
        assert!((r.total_work - 150.0).abs() < 1e-12);
        assert!(r.wpr() <= 1.0);
    }

    #[test]
    fn wpr_bounded_by_one_even_for_bot() {
        let r = rec(0, JobStructure::BagOfTasks, 1, &[(100.0, 100.0); 8]);
        assert!((r.wpr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_and_stats() {
        let rs = vec![
            rec(0, JobStructure::Sequential, 1, &[(100.0, 90.0)]),
            rec(1, JobStructure::Sequential, 1, &[(100.0, 80.0)]),
            rec(2, JobStructure::Sequential, 2, &[(100.0, 95.0)]),
        ];
        let e = wpr_ecdf(&rs).unwrap();
        assert_eq!(e.len(), 3);
        assert!((mean_wpr(&rs) - (0.9 + 0.8 + 0.95) / 3.0).abs() < 1e-12);
        assert!((lowest_wpr(&rs) - 0.8).abs() < 1e-12);
        let by_p = wpr_by_priority(&rs);
        assert_eq!(by_p[&1].count(), 2);
        assert_eq!(by_p[&2].count(), 1);
    }

    #[test]
    fn filters() {
        let rs = vec![
            rec(0, JobStructure::Sequential, 1, &[(100.0, 90.0)]),
            rec(1, JobStructure::BagOfTasks, 1, &[(2000.0, 1500.0)]),
        ];
        assert_eq!(with_structure(&rs, JobStructure::Sequential).len(), 1);
        assert_eq!(with_max_length(&rs, 1000.0).len(), 1);
        assert_eq!(with_max_length(&rs, 1500.0).len(), 2);
    }

    #[test]
    fn paired_comparison() {
        let a = vec![rec(0, JobStructure::Sequential, 1, &[(120.0, 100.0)])];
        let b = vec![rec(0, JobStructure::Sequential, 1, &[(100.0, 100.0)])];
        let pairs = paired_wall_clock(&a, &b);
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].1 - 1.2).abs() < 1e-12);
        assert!((pairs[0].2 - 20.0).abs() < 1e-12);
        // Missing job in b ⇒ no pair.
        let c = vec![rec(9, JobStructure::Sequential, 1, &[(1.0, 1.0)])];
        assert!(paired_wall_clock(&c, &b).is_empty());
    }

    #[test]
    fn empty_edge_cases() {
        assert!(wpr_ecdf(&[]).is_none());
        assert!(mean_wpr(&[]).is_nan());
        assert!(lowest_wpr(&[]).is_nan());
    }

    #[test]
    fn stream_stats_accumulate() {
        let mut s = StreamStats::default();
        assert!(s.mean().is_nan());
        for v in [2.0, 4.0, 3.0] {
            s.add(v);
        }
        assert_eq!(s.count, 3);
        assert_eq!(s.total, 9.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }
}
