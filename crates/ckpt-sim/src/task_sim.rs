//! The per-task checkpoint/failure execution model — the heart of every WPR
//! experiment.
//!
//! A task needs `Te` seconds of productive work. Its failures are
//! **pre-planned kill events** at fixed busy-time positions (busy time =
//! time the task is actually executing or checkpointing), replaying the
//! paper's methodology: "any running task would be killed by `kill -9` from
//! time to time based on the kill/evict/failure events recorded in the
//! trace". Because the kill plan is drawn from the task's dedicated RNG
//! stream, *every policy replays the same kills*, which is what makes the
//! paper's paired comparisons (Figure 13) exact.
//!
//! When a kill fires, the task loses all progress since its last durable
//! checkpoint, pays the restart cost, and resumes. Checkpoints pause
//! productive work for the per-checkpoint cost `C`; a checkpoint becomes
//! durable only when it completes (a kill mid-write aborts it).
//!
//! Wall-clock accounting matches the paper's Formula (1): wall = productive
//! time + checkpoint costs + rollback losses + restart costs.
//!
//! This module is the *fast path*'s executor: it advances one task
//! analytically from kill to kill with no event queue at all. The cluster
//! engine ([`crate::cluster`]) implements the same per-task semantics as
//! discrete events so that scheduling, storage contention, and host
//! failures can interleave between tasks; the two paths share
//! [`TaskOutcome`] and are validated against each other by the
//! `cluster_validation` experiment.

use crate::controller::Controller;
use ckpt_stats::rng::Rng64;
use ckpt_trace::failure::{sample_task_plan_into, FailureModelSpec};
use ckpt_trace::spec::{FailureModel, FailurePlan};

/// A planned mid-execution priority flip, as the executor sees it.
#[derive(Debug, Clone, Copy)]
pub struct ExecFlip {
    /// Productive-progress position at which the flip occurs (first
    /// crossing; rollbacks do not re-trigger it).
    pub at_progress: f64,
    /// Priority in force after the flip: the remaining kill plan is
    /// re-drawn for it over the remaining work.
    pub new_priority: u8,
    /// The failure model the re-draw samples under — the same model the
    /// rest of the trace replays (the default routes through the legacy
    /// calibrated sampler, draw for draw).
    pub model: FailureModelSpec,
    /// New full-task MNOF belief handed to the controller (adaptive
    /// controllers re-solve; static ones ignore it). `None` ⇒ the policy is
    /// not informed (failure behaviour changes but the schedule keeps its
    /// old belief).
    pub new_mnof_full: Option<f64>,
}

/// Immutable inputs of one task execution.
#[derive(Debug, Clone, Copy)]
pub struct TaskSimSpec {
    /// Productive length `Te` (seconds).
    pub te: f64,
    /// Per-checkpoint wall-clock cost `C` (seconds).
    pub ckpt_cost: f64,
    /// Per-restart cost `R` (seconds).
    pub restart_cost: f64,
}

/// What happened during one task execution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TaskOutcome {
    /// Total wall-clock from start to completion (seconds).
    pub wall: f64,
    /// Productive work completed (= `Te`).
    pub productive: f64,
    /// Failures endured.
    pub failures: u32,
    /// Checkpoints completed (durable).
    pub checkpoints: u32,
    /// Checkpoints aborted by a failure mid-write.
    pub aborted_checkpoints: u32,
    /// Total productive work lost to rollbacks (seconds).
    pub rollback_loss: f64,
    /// Total time spent writing checkpoints (seconds), including aborted
    /// partial writes.
    pub checkpoint_time: f64,
    /// Total restart overhead (seconds).
    pub restart_time: f64,
    /// Whether a priority flip fired during execution.
    pub flipped: bool,
}

impl TaskOutcome {
    /// The task-level workload-processing ratio `Te / wall`.
    pub fn wpr(&self) -> f64 {
        if self.wall > 0.0 {
            self.productive / self.wall
        } else {
            1.0
        }
    }
}

/// A reusable kill-event queue: a plain `Vec` buffer behind a head
/// cursor. The replay hot loop hands one of these out per worker so a
/// whole-trace replay performs **zero** per-task queue allocations (the
/// historical code built a fresh `VecDeque` per task); a warm buffer
/// serves every task of a worker's job stream.
#[derive(Debug, Default, Clone)]
pub struct KillQueue {
    buf: Vec<f64>,
    head: usize,
}

impl KillQueue {
    /// An empty queue (allocates nothing until loaded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap an owned position vector (no copy).
    pub fn from_vec(positions: Vec<f64>) -> Self {
        Self {
            buf: positions,
            head: 0,
        }
    }

    /// Replace the queue's contents with `kills`, reusing the buffer.
    pub fn load(&mut self, kills: &[f64]) {
        self.buf.clear();
        self.buf.extend_from_slice(kills);
        self.head = 0;
    }

    /// The buffer the replay loads fresh samples into (cleared).
    pub fn reset_for_sampling(&mut self) -> &mut Vec<f64> {
        self.buf.clear();
        self.head = 0;
        &mut self.buf
    }

    #[inline]
    fn front(&self) -> Option<f64> {
        self.buf.get(self.head).copied()
    }

    #[inline]
    fn pop_front(&mut self) {
        self.head += 1;
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

/// Execute one task to completion, drawing its kill plan from `rng` (the
/// task's failure stream) — convenience wrapper over
/// [`simulate_task_with_plan`].
pub fn simulate_task<R: Rng64 + ?Sized>(
    spec: &TaskSimSpec,
    model: FailureModel,
    flip: Option<ExecFlip>,
    ctl: &mut Controller,
    rng: &mut R,
) -> TaskOutcome {
    let plan = model.sample_plan(spec.te, rng);
    simulate_task_with_plan(spec, plan, flip, ctl, rng)
}

/// Execute one task to completion with an explicit kill plan.
///
/// `rng` is only consumed if a priority flip re-draws the remaining plan.
pub fn simulate_task_with_plan<R: Rng64 + ?Sized>(
    spec: &TaskSimSpec,
    plan: FailurePlan,
    flip: Option<ExecFlip>,
    ctl: &mut Controller,
    rng: &mut R,
) -> TaskOutcome {
    let mut pending = KillQueue::from_vec(plan.positions);
    simulate_task_queued(spec, &mut pending, flip, ctl, rng)
}

/// Execute one task to completion against a pre-loaded [`KillQueue`] —
/// the allocation-free core behind [`simulate_task_with_plan`]. The queue
/// arrives holding the task's kill plan and leaves in an unspecified
/// state (its buffer stays warm for the caller's next task).
pub fn simulate_task_queued<R: Rng64 + ?Sized>(
    spec: &TaskSimSpec,
    pending: &mut KillQueue,
    flip: Option<ExecFlip>,
    ctl: &mut Controller,
    rng: &mut R,
) -> TaskOutcome {
    assert!(spec.te > 0.0 && spec.te.is_finite(), "te must be positive");
    assert!(
        spec.ckpt_cost >= 0.0 && spec.restart_cost >= 0.0,
        "costs must be non-negative"
    );

    let mut out = TaskOutcome {
        productive: spec.te,
        ..TaskOutcome::default()
    };
    let mut flip = flip;
    let mut busy = 0.0f64; // cumulative execution (run + checkpoint) time
    let mut durable = 0.0f64; // checkpointed progress
    let mut live = 0.0f64; // progress since start (≥ durable, volatile)

    // Closure-free helper: busy time until the next kill.
    macro_rules! to_fail {
        () => {
            pending.front().map(|f| f - busy).unwrap_or(f64::INFINITY)
        };
    }

    loop {
        // Next milestone in productive progress.
        let next_ckpt = ctl.next_checkpoint().filter(|&p| p > live && p < spec.te);
        let flip_at = flip
            .map(|f| f.at_progress)
            .filter(|&p| p > live && p < spec.te);
        let mut target = spec.te;
        if let Some(p) = next_ckpt {
            target = target.min(p);
        }
        if let Some(p) = flip_at {
            target = target.min(p);
        }

        let run_needed = target - live;
        let tf = to_fail!();
        if tf < run_needed {
            // Kill strikes mid-run.
            pending.pop_front();
            out.wall += tf + spec.restart_cost;
            out.restart_time += spec.restart_cost;
            busy += tf;
            live += tf;
            out.failures += 1;
            out.rollback_loss += live - durable;
            live = durable;
            ctl.on_rollback(durable);
            continue;
        }

        // Reach the milestone.
        out.wall += run_needed;
        busy += run_needed;
        live = target;

        if let Some(f) = flip {
            if live >= f.at_progress {
                // Priority flip: the remaining kill plan is re-drawn for
                // the new priority over the remaining work, under the same
                // failure model as the rest of the trace. (Default model:
                // sample_count + sample_positions in the legacy order —
                // identical draws to the historical re-plan.)
                pending.clear();
                let remaining = spec.te - live;
                if remaining > 0.0 {
                    sample_task_plan_into(
                        f.model,
                        f.new_priority,
                        remaining,
                        rng,
                        &mut pending.buf,
                    );
                    for p in &mut pending.buf {
                        *p += busy;
                    }
                }
                if let Some(mnof) = f.new_mnof_full {
                    ctl.on_mnof_change(mnof);
                }
                out.flipped = true;
                flip = None;
                continue;
            }
        }

        if live >= spec.te {
            return out; // completed
        }

        // The milestone is a checkpoint. The write takes `ckpt_cost` of busy
        // time; a kill inside it aborts the write.
        let tf = to_fail!();
        if tf < spec.ckpt_cost {
            pending.pop_front();
            out.wall += tf + spec.restart_cost;
            out.restart_time += spec.restart_cost;
            out.checkpoint_time += tf; // partial write
            busy += tf;
            out.failures += 1;
            out.aborted_checkpoints += 1;
            out.rollback_loss += live - durable;
            live = durable;
            ctl.on_rollback(durable);
        } else {
            out.wall += spec.ckpt_cost;
            out.checkpoint_time += spec.ckpt_cost;
            busy += spec.ckpt_cost;
            durable = live;
            out.checkpoints += 1;
            ctl.on_checkpoint_complete(durable);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::FixedSchedule;
    use ckpt_policy::schedule::EquidistantSchedule;
    use ckpt_stats::rng::Xoshiro256StarStar;

    fn fixed_ctl(te: f64, x: u32) -> Controller {
        Controller::Fixed(FixedSchedule::new(
            &EquidistantSchedule::new(te, x).unwrap(),
        ))
    }

    fn no_ckpt_ctl() -> Controller {
        Controller::Fixed(FixedSchedule::none())
    }

    fn plan(positions: &[f64]) -> FailurePlan {
        FailurePlan {
            positions: positions.to_vec(),
        }
    }

    #[test]
    fn failure_free_run_costs_te_plus_checkpoints() {
        let spec = TaskSimSpec {
            te: 100.0,
            ckpt_cost: 2.0,
            restart_cost: 1.0,
        };
        let mut ctl = fixed_ctl(100.0, 4); // 3 checkpoints
        let mut rng = Xoshiro256StarStar::new(1);
        let out = simulate_task_with_plan(&spec, plan(&[]), None, &mut ctl, &mut rng);
        assert!((out.wall - 106.0).abs() < 1e-9);
        assert_eq!(out.checkpoints, 3);
        assert_eq!(out.failures, 0);
        assert_eq!(out.rollback_loss, 0.0);
        assert!((out.wpr() - 100.0 / 106.0).abs() < 1e-12);
    }

    #[test]
    fn single_failure_formula1_accounting() {
        // Te=18, x=3 (checkpoints at 6, 12; C=2), one kill at busy time 9.
        // Busy 9 = 6 productive + 2 ckpt + 1 productive ⇒ progress 7, rolls
        // back to 6 losing 1 s. Wall = 18 + 2·2 + (1 + R=1) + 1·... =
        // productive 18 + ckpt 4 + rollback 1 + restart 1 = 24.
        let spec = TaskSimSpec {
            te: 18.0,
            ckpt_cost: 2.0,
            restart_cost: 1.0,
        };
        let mut ctl = fixed_ctl(18.0, 3);
        let mut rng = Xoshiro256StarStar::new(1);
        let out = simulate_task_with_plan(&spec, plan(&[9.0]), None, &mut ctl, &mut rng);
        assert_eq!(out.failures, 1);
        assert!((out.rollback_loss - 1.0).abs() < 1e-9);
        assert!((out.wall - 24.0).abs() < 1e-9, "wall = {}", out.wall);
        assert_eq!(out.checkpoints, 2);
    }

    #[test]
    fn kill_during_checkpoint_aborts_it() {
        // Te=10, one checkpoint at 5 (C=2): kill at busy 6 is 1 s into the
        // write. Progress stays 5 but durable is 0 ⇒ rollback loss 5.
        let spec = TaskSimSpec {
            te: 10.0,
            ckpt_cost: 2.0,
            restart_cost: 0.5,
        };
        let mut ctl = fixed_ctl(10.0, 2);
        let mut rng = Xoshiro256StarStar::new(1);
        let out = simulate_task_with_plan(&spec, plan(&[6.0]), None, &mut ctl, &mut rng);
        assert_eq!(out.aborted_checkpoints, 1);
        assert_eq!(out.failures, 1);
        assert!((out.rollback_loss - 5.0).abs() < 1e-9);
        // Wall: 10 productive (5 redone ⇒ 15 total run) — let's use the
        // identity instead of hand-counting:
        let parts = out.productive + out.checkpoint_time + out.rollback_loss + out.restart_time;
        assert!((out.wall - parts).abs() < 1e-9);
        // The retried checkpoint eventually completes.
        assert_eq!(out.checkpoints, 1);
    }

    #[test]
    fn accounting_identity_holds_under_any_plan() {
        let spec = TaskSimSpec {
            te: 800.0,
            ckpt_cost: 0.5,
            restart_cost: 1.5,
        };
        for seed in 0..50u64 {
            let model = ckpt_trace::spec::FailureModel::for_priority(1);
            let mut ctl = fixed_ctl(800.0, 8);
            let mut rng = Xoshiro256StarStar::new(seed);
            let out = simulate_task(&spec, model, None, &mut ctl, &mut rng);
            let reconstructed =
                out.productive + out.checkpoint_time + out.rollback_loss + out.restart_time;
            assert!(
                (out.wall - reconstructed).abs() < 1e-6,
                "seed {seed}: wall {} vs parts {}",
                out.wall,
                reconstructed
            );
            assert!(out.wpr() <= 1.0);
        }
    }

    #[test]
    fn planned_failures_all_strike() {
        // Kill positions are within (0, te) busy time, and total busy time
        // always exceeds te, so every planned kill fires.
        let spec = TaskSimSpec {
            te: 500.0,
            ckpt_cost: 0.2,
            restart_cost: 0.5,
        };
        for seed in 0..30u64 {
            let model = ckpt_trace::spec::FailureModel::for_priority(10);
            let mut rng_plan = Xoshiro256StarStar::new(seed);
            let plan = model.sample_plan(500.0, &mut rng_plan);
            let expected = plan.count();
            let mut ctl = fixed_ctl(500.0, 10);
            let mut rng = Xoshiro256StarStar::new(seed);
            let out = simulate_task(&spec, model, None, &mut ctl, &mut rng);
            assert_eq!(out.failures, expected, "seed {seed}");
        }
    }

    #[test]
    fn no_checkpoints_no_checkpoint_time() {
        let spec = TaskSimSpec {
            te: 300.0,
            ckpt_cost: 1.0,
            restart_cost: 1.0,
        };
        let mut ctl = no_ckpt_ctl();
        let mut rng = Xoshiro256StarStar::new(3);
        let out = simulate_task_with_plan(&spec, plan(&[100.0, 200.0]), None, &mut ctl, &mut rng);
        assert_eq!(out.checkpoints, 0);
        assert_eq!(out.checkpoint_time, 0.0);
        // Without checkpoints each kill rolls back to zero. Kills are at
        // busy-time 100 and 200: the first loses 100 s of progress, the
        // second fires after 100 s of re-execution and loses those 100 s.
        assert_eq!(out.failures, 2);
        assert!((out.rollback_loss - 200.0).abs() < 1e-9);
    }

    #[test]
    fn checkpointing_beats_none_for_failure_heavy_tasks() {
        let spec = TaskSimSpec {
            te: 400.0,
            ckpt_cost: 0.3,
            restart_cost: 0.5,
        };
        let model = ckpt_trace::spec::FailureModel::for_priority(10);
        let mut wall_ckpt = 0.0;
        let mut wall_none = 0.0;
        for seed in 0..40u64 {
            let mut c1 = fixed_ctl(400.0, 20);
            let mut r1 = Xoshiro256StarStar::new(seed);
            wall_ckpt += simulate_task(&spec, model, None, &mut c1, &mut r1).wall;
            let mut c2 = no_ckpt_ctl();
            let mut r2 = Xoshiro256StarStar::new(seed); // same kill plan
            wall_none += simulate_task(&spec, model, None, &mut c2, &mut r2).wall;
        }
        // With replayed kills the un-checkpointed loss per task is bounded
        // by Te, so the advantage is solid but not unbounded.
        assert!(
            wall_ckpt < 0.8 * wall_none,
            "checkpointing {wall_ckpt} vs none {wall_none}"
        );
    }

    #[test]
    fn same_stream_same_outcome() {
        let spec = TaskSimSpec {
            te: 600.0,
            ckpt_cost: 0.4,
            restart_cost: 1.0,
        };
        let model = ckpt_trace::spec::FailureModel::for_priority(10);
        let run = |seed: u64| {
            let mut ctl = fixed_ctl(600.0, 6);
            let mut rng = Xoshiro256StarStar::new(seed);
            simulate_task(&spec, model, None, &mut ctl, &mut rng)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn flip_fires_once_and_replans_failures() {
        let spec = TaskSimSpec {
            te: 200.0,
            ckpt_cost: 0.5,
            restart_cost: 0.5,
        };
        let flip = ExecFlip {
            at_progress: 100.0,
            new_priority: 10,
            model: FailureModelSpec::Exponential,
            new_mnof_full: Some(12.0),
        };
        let mut ctl = Controller::Adaptive(
            ckpt_policy::adaptive::AdaptiveCheckpointer::new(200.0, 0.5, 1.0).unwrap(),
        );
        let mut rng = Xoshiro256StarStar::new(11);
        // Start quiet (p12), flip to failure-heavy (p10) at half way.
        let out = simulate_task(
            &spec,
            ckpt_trace::spec::FailureModel::for_priority(12),
            Some(flip),
            &mut ctl,
            &mut rng,
        );
        assert!(out.flipped);
        assert!(out.wall >= 200.0);
    }

    #[test]
    fn flip_to_quiet_model_calms_task() {
        let spec = TaskSimSpec {
            te: 400.0,
            ckpt_cost: 0.3,
            restart_cost: 0.5,
        };
        let mut flipped_wall = 0.0;
        let mut stayed_wall = 0.0;
        for seed in 0..30u64 {
            let flip = ExecFlip {
                at_progress: 100.0,
                new_priority: 12,
                model: FailureModelSpec::Exponential,
                new_mnof_full: Some(0.2),
            };
            let model = ckpt_trace::spec::FailureModel::for_priority(10);
            let mut c1 = Controller::Adaptive(
                ckpt_policy::adaptive::AdaptiveCheckpointer::new(400.0, 0.3, 10.0).unwrap(),
            );
            let mut r1 = Xoshiro256StarStar::new(seed);
            flipped_wall += simulate_task(&spec, model, Some(flip), &mut c1, &mut r1).wall;
            let mut c2 = Controller::Adaptive(
                ckpt_policy::adaptive::AdaptiveCheckpointer::new(400.0, 0.3, 10.0).unwrap(),
            );
            let mut r2 = Xoshiro256StarStar::new(seed);
            stayed_wall += simulate_task(&spec, model, None, &mut c2, &mut r2).wall;
        }
        assert!(
            flipped_wall < stayed_wall,
            "flipped {flipped_wall} vs stayed {stayed_wall}"
        );
    }

    #[test]
    fn back_to_back_kills_handled() {
        // Two kills close together, both before the first checkpoint.
        let spec = TaskSimSpec {
            te: 100.0,
            ckpt_cost: 1.0,
            restart_cost: 0.5,
        };
        let mut ctl = fixed_ctl(100.0, 2);
        let mut rng = Xoshiro256StarStar::new(1);
        let out = simulate_task_with_plan(&spec, plan(&[10.0, 10.5]), None, &mut ctl, &mut rng);
        assert_eq!(out.failures, 2);
        // First kill loses 10, second loses 0.5 (progress after restart).
        assert!((out.rollback_loss - 10.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "te must be positive")]
    fn rejects_zero_te() {
        let spec = TaskSimSpec {
            te: 0.0,
            ckpt_cost: 1.0,
            restart_cost: 1.0,
        };
        let mut ctl = no_ckpt_ctl();
        let mut rng = Xoshiro256StarStar::new(1);
        simulate_task_with_plan(&spec, plan(&[]), None, &mut ctl, &mut rng);
    }
}
