//! The experiment runner: replay a trace under a policy configuration and
//! collect per-job records.
//!
//! Replay is embarrassingly parallel across jobs — every task draws its
//! failures from its own RNG stream ([`ckpt_trace::Trace::failure_stream`]),
//! so the result is a pure function of `(trace, estimates, config)` no
//! matter how many worker threads run it. Parallelism uses `std::thread`
//! scoped threads pulling job indices from an atomic counter (guide-idiom
//! work stealing without a pool dependency).
//!
//! Per-task planning goes through [`Estimates`]' memoized group lookups
//! (see [`crate::policy`]): predictions for a `(priority, limit)` group
//! are computed once per run instead of rescanning the group's history
//! for every task, which keeps whole-trace replay O(tasks) — at month
//! scale and beyond the rescan used to dominate the replay itself.

use crate::blcr::BlcrModel;
use crate::metrics::JobRecord;
use crate::policy::{plan_task, Estimates, PolicyConfig};
use crate::task_sim::{simulate_task_with_plan, ExecFlip, TaskOutcome, TaskSimSpec};
use ckpt_trace::failure::sample_task_plan;
use ckpt_trace::gen::{JobSpec, Trace};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run configuration beyond the policy itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Worker threads; 0 ⇒ one per available core.
    pub threads: usize,
}

fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, jobs.max(1))
}

/// Simulate one job under a policy; returns its record.
pub fn run_job(
    trace: &Trace,
    job: &JobSpec,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    blcr: &BlcrModel,
) -> JobRecord {
    let mut outcomes: Vec<TaskOutcome> = Vec::with_capacity(job.tasks.len());
    let lengths: Vec<f64> = job.tasks.iter().map(|t| t.length_s).collect();
    for task in &job.tasks {
        let mut plan = plan_task(cfg, blcr, estimates, task, job.priority);
        // Mid-run priority flip (Figure 14 scenario): translate the job-level
        // plan to this task (each task flips at the same fraction of its own
        // work, approximating "in the middle of the job's execution").
        let flip = job.flip.map(|f| {
            // The controller's new belief comes from the same estimator,
            // evaluated at the new priority. The executor re-draws a full
            // dose of the new priority's failures over the remaining work
            // (MNOF is per-task, not per-second), so the equivalent
            // full-task MNOF is the group MNOF divided by the remaining
            // fraction — this keeps the adaptive re-solve calibrated to
            // the kills that will actually strike.
            let (new_mnof, _) = estimates.predict(cfg.estimator, task, f.new_priority);
            let remaining_fraction = (1.0 - f.at_fraction).max(0.05);
            ExecFlip {
                at_progress: f.at_fraction * task.length_s,
                new_priority: f.new_priority,
                model: trace.failure_model,
                new_mnof_full: Some(new_mnof / remaining_fraction),
            }
        });
        let spec = TaskSimSpec {
            te: task.length_s,
            ckpt_cost: plan.ckpt_cost,
            restart_cost: plan.restart_cost,
        };
        // The kill plan is drawn under the trace's failure model (the
        // default routes through the legacy calibrated sampler on the same
        // stream, so default output is byte-identical to `simulate_task`).
        let mut rng = trace.failure_stream(task.id);
        let kills = sample_task_plan(trace.failure_model, job.priority, task.length_s, &mut rng);
        let outcome = simulate_task_with_plan(&spec, kills, flip, &mut plan.controller, &mut rng);
        outcomes.push(outcome);
    }
    JobRecord::from_outcomes(job.id, job.structure, job.priority, &outcomes, &lengths)
}

/// Evaluate `f(0..n)` on `threads` workers (0 ⇒ one per core), returning
/// results in index order regardless of scheduling: workers pull indices
/// from a shared atomic counter (guide-idiom work stealing) and keep
/// results locally; the merge restores index order. This is the parallel
/// substrate for both trace replay and the sweep engine.
pub fn parallel_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (next, f) = (&next, &f);
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_indexed worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, value) in per_worker.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index evaluated"))
        .collect()
}

/// Replay the whole trace under a policy, in parallel. Records are returned
/// in job order (deterministic regardless of thread count).
pub fn run_trace(
    trace: &Trace,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    options: RunOptions,
) -> Vec<JobRecord> {
    let blcr = BlcrModel;
    parallel_indexed(trace.jobs.len(), options.threads, |i| {
        run_job(trace, &trace.jobs[i], estimates, cfg, &blcr)
    })
}

/// Convenience: run the same trace under several policies, reusing the
/// estimates (the shape of every multi-line figure in the paper).
pub fn run_policies(
    trace: &Trace,
    estimates: &Estimates,
    configs: &[PolicyConfig],
    options: RunOptions,
) -> Vec<Vec<JobRecord>> {
    configs
        .iter()
        .map(|cfg| run_trace(trace, estimates, cfg, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use ckpt_trace::gen::generate;
    use ckpt_trace::spec::WorkloadSpec;
    use ckpt_trace::stats::trace_histories;

    fn setup(n: usize, seed: u64) -> (Trace, Estimates) {
        let trace = generate(&WorkloadSpec::google_like(n), seed).expect("valid workload spec");
        let records = trace_histories(&trace);
        (trace, Estimates::from_records(&records))
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (trace, est) = setup(120, 9);
        let cfg = PolicyConfig::formula3();
        let seq = run_trace(&trace, &est, &cfg, RunOptions { threads: 1 });
        let par = run_trace(&trace, &est, &cfg, RunOptions { threads: 4 });
        assert_eq!(seq, par);
    }

    #[test]
    fn all_jobs_simulated_in_order() {
        let (trace, est) = setup(80, 10);
        let recs = run_trace(
            &trace,
            &est,
            &PolicyConfig::formula3(),
            RunOptions::default(),
        );
        assert_eq!(recs.len(), trace.jobs.len());
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.job_id, i as u64);
        }
    }

    #[test]
    fn wpr_in_unit_interval() {
        let (trace, est) = setup(150, 11);
        for cfg in [
            PolicyConfig::formula3(),
            PolicyConfig::young(),
            PolicyConfig::none(),
        ] {
            let recs = run_trace(&trace, &est, &cfg, RunOptions::default());
            for r in &recs {
                let w = r.wpr();
                assert!(w > 0.0 && w <= 1.0, "wpr = {w} under {:?}", cfg.kind);
            }
        }
    }

    #[test]
    fn formula3_beats_no_checkpointing_on_failure_prone_jobs() {
        let (trace, est) = setup(300, 12);
        let f3 = run_trace(
            &trace,
            &est,
            &PolicyConfig::formula3(),
            RunOptions::default(),
        );
        let none = run_trace(&trace, &est, &PolicyConfig::none(), RunOptions::default());
        // Restrict to jobs that actually failed (checkpointing costs a
        // little on failure-free jobs).
        let failed_ids: Vec<usize> = none
            .iter()
            .enumerate()
            .filter(|(_, r)| r.failures >= 2)
            .map(|(i, _)| i)
            .collect();
        assert!(
            failed_ids.len() > 10,
            "need failure-prone jobs in the sample"
        );
        let mean = |recs: &[JobRecord]| {
            failed_ids.iter().map(|&i| recs[i].wpr()).sum::<f64>() / failed_ids.len() as f64
        };
        let m_f3 = mean(&f3);
        let m_none = mean(&none);
        assert!(m_f3 > m_none, "formula3 {m_f3} vs none {m_none}");
    }

    #[test]
    fn run_policies_matches_individual_runs() {
        let (trace, est) = setup(60, 13);
        let cfgs = [PolicyConfig::formula3(), PolicyConfig::young()];
        let both = run_policies(&trace, &est, &cfgs, RunOptions::default());
        let f3 = run_trace(&trace, &est, &cfgs[0], RunOptions::default());
        assert_eq!(both[0], f3);
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn flipped_trace_marks_outcomes() {
        let trace = generate(&WorkloadSpec::google_like(60).with_priority_flips(), 14)
            .expect("valid workload spec");
        let records = trace_histories(&trace);
        let est = Estimates::from_records(&records);
        let cfg = PolicyConfig::formula3().with_adaptivity(true);
        let recs = run_trace(&trace, &est, &cfg, RunOptions::default());
        assert_eq!(recs.len(), 60);
        // WPRs remain valid under flips.
        for r in &recs {
            assert!(r.wpr() > 0.0 && r.wpr() <= 1.0);
        }
    }

    #[test]
    fn headline_formula3_vs_young_direction() {
        // The paper's headline: with per-priority estimation, Formula (3)
        // achieves higher average WPR than Young's formula.
        let (trace, est) = setup(400, 15);
        let f3 = run_trace(
            &trace,
            &est,
            &PolicyConfig::formula3(),
            RunOptions::default(),
        );
        let yg = run_trace(&trace, &est, &PolicyConfig::young(), RunOptions::default());
        let m_f3 = metrics::mean_wpr(&f3);
        let m_yg = metrics::mean_wpr(&yg);
        assert!(
            m_f3 > m_yg,
            "Formula(3) mean WPR {m_f3} should beat Young {m_yg}"
        );
    }
}
