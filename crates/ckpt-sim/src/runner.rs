//! The experiment runner: replay a trace under a policy configuration and
//! collect per-job records.
//!
//! Replay is embarrassingly parallel across jobs — every task draws its
//! failures from its own RNG stream ([`ckpt_trace::Trace::failure_stream`]),
//! so the result is a pure function of `(trace, estimates, config)` no
//! matter how many worker threads run it. Parallelism uses `std::thread`
//! scoped threads claiming index chunks from an atomic counter (guide-idiom
//! work stealing without a pool dependency) and writing results straight
//! into their final slots.
//!
//! ## The fast-path memory model
//!
//! The replay hot loop is allocation-free on a warm worker:
//!
//! * kill plans come either from a shared [`FailurePlanArena`] (sampled
//!   once per `(trace, failure model)` and borrowed as `&[f64]` — the
//!   cross-cell reuse behind sweep throughput) or are sampled into the
//!   worker's reusable [`ReplayScratch`] buffer;
//! * task outcomes fold straight into the job's [`JobRecord`]
//!   ([`JobRecord::accumulate`]) — no per-job outcome/length vectors;
//! * each worker owns one [`ReplayScratch`], handed out by
//!   [`parallel_indexed_scratch`], reused across every job it claims.
//!
//! Per-task planning goes through [`Estimates`]' memoized group lookups
//! (see [`crate::policy`]): predictions for a `(priority, limit)` group
//! are computed once per run instead of rescanning the group's history
//! for every task, which keeps whole-trace replay O(tasks) — at month
//! scale and beyond the rescan used to dominate the replay itself.

use crate::blcr::BlcrModel;
use crate::metrics::{JobRecord, StreamDist};
use crate::policy::{plan_task, Estimates, PolicyConfig};
use crate::task_sim::{simulate_task_queued, ExecFlip, TaskSimSpec};
use ckpt_obs::{Counter, Counters, NoObs, Observer, SharedCounters};
use ckpt_stats::rng::Xoshiro256StarStar;
use ckpt_trace::failure::sample_task_plan_into;
use ckpt_trace::gen::{JobSpec, Trace};
use ckpt_trace::plan::FailurePlanArena;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run configuration beyond the policy itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Worker threads; 0 ⇒ one per available core.
    pub threads: usize,
}

fn effective_threads(requested: usize, jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, jobs.max(1))
}

/// Per-worker reusable replay buffers, handed out by
/// [`parallel_indexed_scratch`]: one kill queue whose backing `Vec` stays
/// warm across every job a worker claims.
#[derive(Debug, Default)]
pub struct ReplayScratch {
    queue: crate::task_sim::KillQueue,
}

impl ReplayScratch {
    /// Fresh scratch (buffers allocate lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Simulate one job under a policy; returns its record. Convenience
/// wrapper over the scratch-reusing core (fresh buffers per call).
pub fn run_job(
    trace: &Trace,
    job: &JobSpec,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    blcr: &BlcrModel,
) -> JobRecord {
    run_job_scratch(
        trace,
        job,
        estimates,
        cfg,
        blcr,
        None,
        &mut ReplayScratch::new(),
    )
}

/// Simulate one job, drawing kill plans from `plans` when provided
/// (bit-identical to fresh sampling: the arena holds the same draws) and
/// reusing the caller's scratch buffers.
pub fn run_job_scratch(
    trace: &Trace,
    job: &JobSpec,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    blcr: &BlcrModel,
    plans: Option<&FailurePlanArena>,
    scratch: &mut ReplayScratch,
) -> JobRecord {
    run_job_scratch_obs(trace, job, estimates, cfg, blcr, plans, scratch, &mut NoObs)
}

/// [`run_job_scratch`] with an [`Observer`] hook. Counting reads the
/// per-task [`crate::task_sim::TaskOutcome`] *after* simulation — the
/// innermost simulate loop stays untouched — and with [`NoObs`] (what
/// [`run_job_scratch`] passes) every hook compiles to nothing.
#[allow(clippy::too_many_arguments)]
pub fn run_job_scratch_obs<O: Observer>(
    trace: &Trace,
    job: &JobSpec,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    blcr: &BlcrModel,
    plans: Option<&FailurePlanArena>,
    scratch: &mut ReplayScratch,
    obs: &mut O,
) -> JobRecord {
    let mut rec = JobRecord::empty(job.id, job.structure, job.priority);
    for task in &job.tasks {
        let mut plan = plan_task(cfg, blcr, estimates, task, job.priority);
        // Mid-run priority flip (Figure 14 scenario): translate the job-level
        // plan to this task (each task flips at the same fraction of its own
        // work, approximating "in the middle of the job's execution").
        let flip = job.flip.map(|f| {
            // The controller's new belief comes from the same estimator,
            // evaluated at the new priority. The executor re-draws a full
            // dose of the new priority's failures over the remaining work
            // (MNOF is per-task, not per-second), so the equivalent
            // full-task MNOF is the group MNOF divided by the remaining
            // fraction — this keeps the adaptive re-solve calibrated to
            // the kills that will actually strike.
            let (new_mnof, _) = estimates.predict(cfg.estimator, task, f.new_priority);
            let remaining_fraction = (1.0 - f.at_fraction).max(0.05);
            ExecFlip {
                at_progress: f.at_fraction * task.length_s,
                new_priority: f.new_priority,
                model: trace.failure_model,
                new_mnof_full: Some(new_mnof / remaining_fraction),
            }
        });
        let spec = TaskSimSpec {
            te: task.length_s,
            ckpt_cost: plan.ckpt_cost,
            restart_cost: plan.restart_cost,
        };
        // The kill plan is drawn under the trace's failure model (the
        // default routes through the legacy calibrated sampler on the same
        // stream, so default output is byte-identical to `simulate_task`).
        // With a plan arena the sampled plan is borrowed instead, and the
        // RNG — consumed only if a flip re-draws the remaining plan — is
        // the task's stream resumed from its post-sampling state, so both
        // paths produce the same bytes.
        obs.tick(Counter::PlanLookups);
        obs.tick(if plans.is_some() {
            Counter::ArenaHits
        } else {
            Counter::ArenaMisses
        });
        let outcome = match plans {
            Some(arena) => {
                scratch.queue.load(arena.kills(task.id));
                let mut rng = if flip.is_some() {
                    arena
                        .resume_stream(task.id)
                        .expect("plan arena built from a flip trace captures stream states")
                } else {
                    // Never consumed: simulate only draws on a flip.
                    Xoshiro256StarStar::from_state([1, 2, 3, 4])
                };
                simulate_task_queued(
                    &spec,
                    &mut scratch.queue,
                    flip,
                    &mut plan.controller,
                    &mut rng,
                )
            }
            None => {
                let mut rng = trace.failure_stream(task.id);
                let buf = scratch.queue.reset_for_sampling();
                sample_task_plan_into(
                    trace.failure_model,
                    job.priority,
                    task.length_s,
                    &mut rng,
                    buf,
                );
                simulate_task_queued(
                    &spec,
                    &mut scratch.queue,
                    flip,
                    &mut plan.controller,
                    &mut rng,
                )
            }
        };
        if O::ENABLED {
            // Simulation facts only (kills, checkpoints, replans): sums
            // over tasks are invariant to thread count and job order.
            obs.tick(Counter::TasksReplayed);
            obs.incr(Counter::TaskKills, outcome.failures as u64);
            obs.incr(Counter::Restarts, outcome.failures as u64);
            obs.incr(Counter::CheckpointsWritten, outcome.checkpoints as u64);
            obs.incr(
                Counter::CheckpointsAborted,
                outcome.aborted_checkpoints as u64,
            );
            if outcome.flipped {
                obs.tick(Counter::Replans);
            }
        }
        rec.accumulate(&outcome, task.length_s);
    }
    obs.tick(Counter::JobsReplayed);
    rec
}

/// Evaluate `f(0..n)` on `threads` workers (0 ⇒ one per core), returning
/// results in index order regardless of scheduling — the parallel
/// substrate for both trace replay and the sweep engine. Convenience form
/// of [`parallel_indexed_scratch`] with no per-worker state.
pub fn parallel_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_indexed_scratch(n, threads, || (), |(), i| f(i))
}

/// A raw result-slot pointer that may cross thread boundaries: every
/// claimed index is written by exactly one worker, so writes never alias.
struct SlotPtr<T>(*mut MaybeUninit<T>);
unsafe impl<T: Send> Send for SlotPtr<T> {}
unsafe impl<T: Send> Sync for SlotPtr<T> {}

/// [`parallel_indexed`] with a per-worker scratch value: each worker calls
/// `init()` once and threads the result through every `f` invocation it
/// claims — how replay workers reuse their [`ReplayScratch`] buffers.
///
/// Workers claim **chunks** of indices from a shared atomic counter and
/// write each result directly into its final slot (no per-worker
/// `(index, value)` staging and no `Option<T>` merge pass — the historical
/// substrate allocated both). Chunk size adapts to `n / threads` and
/// collapses to 1 for small grids, so coarse sweeps keep perfect load
/// balancing while fine-grained job replays amortize the counter traffic.
///
/// Determinism: `f(i)` lands in slot `i` no matter which worker ran it,
/// so the output is independent of thread count and scheduling.
pub fn parallel_indexed_scratch<S, T, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = effective_threads(threads, n);
    if threads == 1 {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }

    let chunk = (n / (threads * 8)).clamp(1, 64);
    let mut slots: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit<T> needs no initialization.
    unsafe { slots.set_len(n) };
    let ptr = SlotPtr(slots.as_mut_ptr());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let (ptr, next, init, f) = (&ptr, &next, &init, &f);
            s.spawn(move || {
                let mut scratch = init();
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        let value = f(&mut scratch, i);
                        // SAFETY: each index in 0..n is claimed by exactly
                        // one worker (disjoint chunks), so this slot is
                        // written once with no aliasing; the scope join
                        // orders all writes before the read below.
                        unsafe { (*ptr.0.add(i)).write(value) };
                    }
                }
            });
        }
    });
    // The scope joined every worker and the claim counter is exhausted, so
    // all n slots are initialized. (If a worker panicked, the scope
    // propagated the panic above and the MaybeUninit vec dropped without
    // reading — initialized elements leak, which is safe.)
    let mut slots = std::mem::ManuallyDrop::new(slots);
    let (ptr, len, cap) = (slots.as_mut_ptr(), slots.len(), slots.capacity());
    // SAFETY: Vec<MaybeUninit<T>> and Vec<T> have identical layout and
    // every element is initialized.
    unsafe { Vec::from_raw_parts(ptr as *mut T, len, cap) }
}

/// Replay the whole trace under a policy, in parallel. Records are returned
/// in job order (deterministic regardless of thread count).
pub fn run_trace(
    trace: &Trace,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    options: RunOptions,
) -> Vec<JobRecord> {
    run_trace_impl(trace, estimates, cfg, options, None)
}

/// [`run_trace`] drawing every kill plan from a shared
/// [`FailurePlanArena`] instead of re-sampling — byte-identical output
/// (the arena holds the exact plans the streams produce, plus the
/// post-sampling stream states for flip re-draws), minus the whole
/// sampling pass. This is the sweep engine's cross-cell fast path: one
/// arena per `(trace, failure model)` serves every policy/cost cell.
pub fn run_trace_with_plans(
    trace: &Trace,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    options: RunOptions,
    plans: &FailurePlanArena,
) -> Vec<JobRecord> {
    run_trace_impl(trace, estimates, cfg, options, Some(plans))
}

fn run_trace_impl(
    trace: &Trace,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    options: RunOptions,
    plans: Option<&FailurePlanArena>,
) -> Vec<JobRecord> {
    let blcr = BlcrModel;
    parallel_indexed_scratch(
        trace.jobs.len(),
        options.threads,
        ReplayScratch::new,
        |scratch, i| run_job_scratch(trace, &trace.jobs[i], estimates, cfg, &blcr, plans, scratch),
    )
}

/// A worker's replay scratch plus its local counter cell; the cell
/// flushes into the shared bank when the worker retires its scratch —
/// exactly one absorb per worker, outside the hot loop.
struct CountedScratch<'s> {
    scratch: ReplayScratch,
    obs: Counters,
    shared: &'s SharedCounters,
}

impl Drop for CountedScratch<'_> {
    fn drop(&mut self) {
        self.shared.absorb(&self.obs);
    }
}

/// [`run_trace`] / [`run_trace_with_plans`] with telemetry counters:
/// per-worker [`Counters`] cells (plain adds in the loop) absorbed into
/// `shared` at worker exit. Counter totals are sums of per-task
/// simulation facts, so they are invariant to thread count — and the
/// replay output is byte-identical to the uncounted paths.
pub fn run_trace_counted(
    trace: &Trace,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    options: RunOptions,
    plans: Option<&FailurePlanArena>,
    shared: &SharedCounters,
) -> Vec<JobRecord> {
    let blcr = BlcrModel;
    parallel_indexed_scratch(
        trace.jobs.len(),
        options.threads,
        || CountedScratch {
            scratch: ReplayScratch::new(),
            obs: Counters::new(),
            shared,
        },
        |cs, i| {
            run_job_scratch_obs(
                trace,
                &trace.jobs[i],
                estimates,
                cfg,
                &blcr,
                plans,
                &mut cs.scratch,
                &mut cs.obs,
            )
        },
    )
}

/// Streaming per-metric summaries of one whole-trace replay — the fast
/// path's [`crate::cluster::MetricsMode::Streaming`] analog: per-job
/// records fold into constant-size [`StreamDist`] accumulators (moments
/// plus a mergeable quantile sketch, so p50/p99 survive the fold) as they
/// are produced, and the record vector never materializes.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayStats {
    /// Jobs replayed.
    pub jobs: u64,
    /// Per-job WPR (`total_work / total_wall`).
    pub wpr: StreamDist,
    /// Per-job wall clock (seconds).
    pub wall: StreamDist,
    /// Per-job checkpoint-writing time (seconds).
    pub checkpoint_time: StreamDist,
    /// Per-job rollback loss (seconds).
    pub rollback_loss: StreamDist,
    /// Per-job restart overhead (seconds).
    pub restart_time: StreamDist,
    /// Per-job failure count.
    pub failures: StreamDist,
    /// Per-job durable checkpoint count.
    pub checkpoints: StreamDist,
}

impl Default for ReplayStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplayStats {
    /// An empty accumulator (zero jobs, every stream empty) — the fold
    /// seed for both the fast streaming path and the sweep executor's
    /// cluster streaming fold.
    pub fn new() -> Self {
        Self {
            jobs: 0,
            wpr: StreamDist::new(),
            wall: StreamDist::new(),
            checkpoint_time: StreamDist::new(),
            rollback_loss: StreamDist::new(),
            restart_time: StreamDist::new(),
            failures: StreamDist::new(),
            checkpoints: StreamDist::new(),
        }
    }

    /// Fold one job record in.
    pub fn add(&mut self, r: &JobRecord) {
        self.jobs += 1;
        self.wpr.add(r.wpr());
        self.wall.add(r.total_wall);
        self.checkpoint_time.add(r.checkpoint_time);
        self.rollback_loss.add(r.rollback_loss);
        self.restart_time.add(r.restart_time);
        self.failures.add(r.failures as f64);
        self.checkpoints.add(r.checkpoints as f64);
    }

    /// Merge another partial in (block order gives determinism).
    pub fn merge(&mut self, other: &ReplayStats) {
        self.jobs += other.jobs;
        self.wpr.merge(&other.wpr);
        self.wall.merge(&other.wall);
        self.checkpoint_time.merge(&other.checkpoint_time);
        self.rollback_loss.merge(&other.rollback_loss);
        self.restart_time.merge(&other.restart_time);
        self.failures.merge(&other.failures);
        self.checkpoints.merge(&other.checkpoints);
    }
}

/// Jobs folded per block by [`run_trace_stream`]. Fixed (independent of
/// thread count), so partial merges happen in a deterministic block order
/// and the folded totals are invariant to scheduling.
const STREAM_FOLD_BLOCK: usize = 1024;

/// Replay the whole trace and fold every job record into streaming
/// summaries without materializing the record vector. Deterministic for
/// any thread count: jobs fold into fixed 1024-job blocks and block
/// partials merge in block order.
pub fn run_trace_stream(
    trace: &Trace,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    options: RunOptions,
    plans: Option<&FailurePlanArena>,
) -> ReplayStats {
    let blcr = BlcrModel;
    let n = trace.jobs.len();
    let blocks = n.div_ceil(STREAM_FOLD_BLOCK);
    let partials =
        parallel_indexed_scratch(blocks, options.threads, ReplayScratch::new, |scratch, b| {
            let mut acc = ReplayStats::new();
            let lo = b * STREAM_FOLD_BLOCK;
            let hi = (lo + STREAM_FOLD_BLOCK).min(n);
            for i in lo..hi {
                let rec =
                    run_job_scratch(trace, &trace.jobs[i], estimates, cfg, &blcr, plans, scratch);
                acc.add(&rec);
            }
            acc
        });
    let mut total = ReplayStats::new();
    for p in &partials {
        total.merge(p);
    }
    total
}

/// [`run_trace_stream`] with telemetry counters, mirroring
/// [`run_trace_counted`]: per-worker cells, one absorb per worker at
/// scratch drop, totals invariant to thread count, streamed stats
/// byte-for-byte equal to the uncounted path.
pub fn run_trace_stream_counted(
    trace: &Trace,
    estimates: &Estimates,
    cfg: &PolicyConfig,
    options: RunOptions,
    plans: Option<&FailurePlanArena>,
    shared: &SharedCounters,
) -> ReplayStats {
    let blcr = BlcrModel;
    let n = trace.jobs.len();
    let blocks = n.div_ceil(STREAM_FOLD_BLOCK);
    let partials = parallel_indexed_scratch(
        blocks,
        options.threads,
        || CountedScratch {
            scratch: ReplayScratch::new(),
            obs: Counters::new(),
            shared,
        },
        |cs, b| {
            let mut acc = ReplayStats::new();
            let lo = b * STREAM_FOLD_BLOCK;
            let hi = (lo + STREAM_FOLD_BLOCK).min(n);
            for i in lo..hi {
                let rec = run_job_scratch_obs(
                    trace,
                    &trace.jobs[i],
                    estimates,
                    cfg,
                    &blcr,
                    plans,
                    &mut cs.scratch,
                    &mut cs.obs,
                );
                acc.add(&rec);
            }
            acc
        },
    );
    let mut total = ReplayStats::new();
    for p in &partials {
        total.merge(p);
    }
    total
}

/// Convenience: run the same trace under several policies, reusing the
/// estimates *and* one shared kill-plan arena (the shape of every
/// multi-line figure in the paper: identical kills replayed under every
/// policy, sampled exactly once).
pub fn run_policies(
    trace: &Trace,
    estimates: &Estimates,
    configs: &[PolicyConfig],
    options: RunOptions,
) -> Vec<Vec<JobRecord>> {
    let plans = FailurePlanArena::build(trace);
    configs
        .iter()
        .map(|cfg| run_trace_with_plans(trace, estimates, cfg, options, &plans))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use ckpt_trace::gen::generate;
    use ckpt_trace::spec::WorkloadSpec;
    use ckpt_trace::stats::trace_histories;

    fn setup(n: usize, seed: u64) -> (Trace, Estimates) {
        let trace = generate(&WorkloadSpec::google_like(n), seed).expect("valid workload spec");
        let records = trace_histories(&trace);
        (trace, Estimates::from_records(&records))
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (trace, est) = setup(120, 9);
        let cfg = PolicyConfig::formula3();
        let seq = run_trace(&trace, &est, &cfg, RunOptions { threads: 1 });
        let par = run_trace(&trace, &est, &cfg, RunOptions { threads: 4 });
        assert_eq!(seq, par);
    }

    #[test]
    fn all_jobs_simulated_in_order() {
        let (trace, est) = setup(80, 10);
        let recs = run_trace(
            &trace,
            &est,
            &PolicyConfig::formula3(),
            RunOptions::default(),
        );
        assert_eq!(recs.len(), trace.jobs.len());
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.job_id, i as u64);
        }
    }

    #[test]
    fn wpr_in_unit_interval() {
        let (trace, est) = setup(150, 11);
        for cfg in [
            PolicyConfig::formula3(),
            PolicyConfig::young(),
            PolicyConfig::none(),
        ] {
            let recs = run_trace(&trace, &est, &cfg, RunOptions::default());
            for r in &recs {
                let w = r.wpr();
                assert!(w > 0.0 && w <= 1.0, "wpr = {w} under {:?}", cfg.kind);
            }
        }
    }

    #[test]
    fn plan_arena_replay_is_byte_identical() {
        let (trace, est) = setup(150, 21);
        let plans = FailurePlanArena::build(&trace);
        for cfg in [
            PolicyConfig::formula3(),
            PolicyConfig::young(),
            PolicyConfig::none(),
            PolicyConfig::formula3().with_adaptivity(true),
        ] {
            let fresh = run_trace(&trace, &est, &cfg, RunOptions { threads: 1 });
            let cached =
                run_trace_with_plans(&trace, &est, &cfg, RunOptions { threads: 2 }, &plans);
            assert_eq!(fresh, cached, "{:?}", cfg.kind);
        }
    }

    #[test]
    fn plan_arena_replay_matches_on_flip_traces() {
        // Flip traces consume the stream *after* the plan: the arena's
        // resumed stream state must reproduce the re-draws exactly.
        let trace = generate(&WorkloadSpec::google_like(80).with_priority_flips(), 14)
            .expect("valid workload spec");
        let records = trace_histories(&trace);
        let est = Estimates::from_records(&records);
        let plans = FailurePlanArena::build(&trace);
        for cfg in [
            PolicyConfig::formula3().with_adaptivity(true),
            PolicyConfig::young(),
        ] {
            let fresh = run_trace(&trace, &est, &cfg, RunOptions { threads: 1 });
            let cached =
                run_trace_with_plans(&trace, &est, &cfg, RunOptions { threads: 1 }, &plans);
            assert_eq!(fresh, cached, "{:?}", cfg.kind);
        }
    }

    #[test]
    fn stream_fold_matches_full_records() {
        let (trace, est) = setup(130, 33);
        let cfg = PolicyConfig::formula3();
        let full = run_trace(&trace, &est, &cfg, RunOptions::default());
        for threads in [1, 3] {
            let stats = run_trace_stream(&trace, &est, &cfg, RunOptions { threads }, None);
            assert_eq!(stats.jobs as usize, full.len());
            assert_eq!(stats.wall.stats.count, full.len() as u64);
            let max_wall = full.iter().fold(0.0f64, |m, r| m.max(r.total_wall));
            assert_eq!(stats.wall.stats.max, max_wall);
            assert_eq!(stats.wall.sketch.max(), max_wall);
            let mean_wpr = metrics::mean_wpr(&full);
            assert!((stats.wpr.stats.mean() - mean_wpr).abs() < 1e-9);
            // Sketch-backed p50 tracks the exact median within the bound.
            let mut walls: Vec<f64> = full.iter().map(|r| r.total_wall).collect();
            walls.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact_p50 = walls[((0.5 * walls.len() as f64).ceil() as usize).max(1) - 1];
            let p50 = stats.wall.sketch.quantile(0.5);
            assert!(
                (p50 - exact_p50).abs() <= stats.wall.sketch.relative_error_bound() * exact_p50,
                "p50 {p50} vs exact {exact_p50}"
            );
        }
        // Thread invariance is exact (fixed fold blocks).
        let a = run_trace_stream(&trace, &est, &cfg, RunOptions { threads: 1 }, None);
        let b = run_trace_stream(&trace, &est, &cfg, RunOptions { threads: 4 }, None);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_indexed_chunked_matches_sequential() {
        let threads_hw = 4;
        for n in [0usize, 1, 2, 3, 5, 64, 65, 1000] {
            let seq: Vec<u64> = (0..n)
                .map(|i| (i as u64).wrapping_mul(0x9E3779B9))
                .collect();
            let par = parallel_indexed(n, threads_hw, |i| (i as u64).wrapping_mul(0x9E3779B9));
            assert_eq!(seq, par, "n = {n}");
        }
    }

    #[test]
    fn parallel_scratch_is_per_worker() {
        // Scratch state must never leak between indices in observable
        // output: f returns a pure function of i regardless of the scratch
        // history it sees.
        let out = parallel_indexed_scratch(500, 7, Vec::<usize>::new, |scratch, i| {
            scratch.push(i);
            i * 2
        });
        assert_eq!(out, (0..500).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn formula3_beats_no_checkpointing_on_failure_prone_jobs() {
        let (trace, est) = setup(300, 12);
        let f3 = run_trace(
            &trace,
            &est,
            &PolicyConfig::formula3(),
            RunOptions::default(),
        );
        let none = run_trace(&trace, &est, &PolicyConfig::none(), RunOptions::default());
        // Restrict to jobs that actually failed (checkpointing costs a
        // little on failure-free jobs).
        let failed_ids: Vec<usize> = none
            .iter()
            .enumerate()
            .filter(|(_, r)| r.failures >= 2)
            .map(|(i, _)| i)
            .collect();
        assert!(
            failed_ids.len() > 10,
            "need failure-prone jobs in the sample"
        );
        let mean = |recs: &[JobRecord]| {
            failed_ids.iter().map(|&i| recs[i].wpr()).sum::<f64>() / failed_ids.len() as f64
        };
        let m_f3 = mean(&f3);
        let m_none = mean(&none);
        assert!(m_f3 > m_none, "formula3 {m_f3} vs none {m_none}");
    }

    #[test]
    fn run_policies_matches_individual_runs() {
        let (trace, est) = setup(60, 13);
        let cfgs = [PolicyConfig::formula3(), PolicyConfig::young()];
        let both = run_policies(&trace, &est, &cfgs, RunOptions::default());
        let f3 = run_trace(&trace, &est, &cfgs[0], RunOptions::default());
        assert_eq!(both[0], f3);
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn flipped_trace_marks_outcomes() {
        let trace = generate(&WorkloadSpec::google_like(60).with_priority_flips(), 14)
            .expect("valid workload spec");
        let records = trace_histories(&trace);
        let est = Estimates::from_records(&records);
        let cfg = PolicyConfig::formula3().with_adaptivity(true);
        let recs = run_trace(&trace, &est, &cfg, RunOptions::default());
        assert_eq!(recs.len(), 60);
        // WPRs remain valid under flips.
        for r in &recs {
            assert!(r.wpr() > 0.0 && r.wpr() <= 1.0);
        }
    }

    #[test]
    fn headline_formula3_vs_young_direction() {
        // The paper's headline: with per-priority estimation, Formula (3)
        // achieves higher average WPR than Young's formula.
        let (trace, est) = setup(400, 15);
        let f3 = run_trace(
            &trace,
            &est,
            &PolicyConfig::formula3(),
            RunOptions::default(),
        );
        let yg = run_trace(&trace, &est, &PolicyConfig::young(), RunOptions::default());
        let m_f3 = metrics::mean_wpr(&f3);
        let m_yg = metrics::mean_wpr(&yg);
        assert!(
            m_f3 > m_yg,
            "Formula(3) mean WPR {m_f3} should beat Young {m_yg}"
        );
    }

    #[test]
    fn counted_replay_is_byte_identical_and_thread_invariant() {
        let (trace, est) = setup(150, 21);
        let cfg = PolicyConfig::formula3();
        let plans = FailurePlanArena::build(&trace);
        let plain = run_trace_with_plans(&trace, &est, &cfg, RunOptions { threads: 2 }, &plans);

        let shared1 = SharedCounters::new();
        let counted1 = run_trace_counted(
            &trace,
            &est,
            &cfg,
            RunOptions { threads: 1 },
            Some(&plans),
            &shared1,
        );
        assert_eq!(plain, counted1, "counting changed replay output");

        let shared4 = SharedCounters::new();
        let counted4 = run_trace_counted(
            &trace,
            &est,
            &cfg,
            RunOptions { threads: 4 },
            Some(&plans),
            &shared4,
        );
        assert_eq!(plain, counted4);

        // Counter totals are sums of per-task facts: thread-invariant.
        let c1 = shared1.snapshot();
        let c4 = shared4.snapshot();
        assert_eq!(format!("{c1:?}"), format!("{c4:?}"));
        assert_eq!(c1.get(Counter::JobsReplayed), trace.jobs.len() as u64);
        assert_eq!(c1.get(Counter::TasksReplayed), trace.task_count() as u64);
        c1.verify_invariants(false).expect("arena identity");
    }

    #[test]
    fn counted_replay_attributes_arena_hits_and_misses() {
        let (trace, est) = setup(100, 22);
        let cfg = PolicyConfig::formula3();
        let tasks = trace.task_count() as u64;

        // With an arena: every lookup hits.
        let plans = FailurePlanArena::build(&trace);
        let shared = SharedCounters::new();
        run_trace_counted(
            &trace,
            &est,
            &cfg,
            RunOptions { threads: 2 },
            Some(&plans),
            &shared,
        );
        let c = shared.snapshot();
        assert_eq!(c.get(Counter::PlanLookups), tasks);
        assert_eq!(c.get(Counter::ArenaHits), tasks);
        assert_eq!(c.get(Counter::ArenaMisses), 0);

        // Without: every lookup misses (plans sampled on the fly).
        let shared = SharedCounters::new();
        run_trace_counted(&trace, &est, &cfg, RunOptions { threads: 2 }, None, &shared);
        let c = shared.snapshot();
        assert_eq!(c.get(Counter::PlanLookups), tasks);
        assert_eq!(c.get(Counter::ArenaHits), 0);
        assert_eq!(c.get(Counter::ArenaMisses), tasks);
        c.verify_invariants(false).expect("arena identity");
    }

    #[test]
    fn counted_stream_matches_uncounted_stream() {
        let (trace, est) = setup(150, 23);
        let cfg = PolicyConfig::formula3();
        let plains = run_trace_stream(&trace, &est, &cfg, RunOptions { threads: 2 }, None);
        let shared = SharedCounters::new();
        let counted =
            run_trace_stream_counted(&trace, &est, &cfg, RunOptions { threads: 2 }, None, &shared);
        // StreamStats has no PartialEq; the debug rendering carries every
        // accumulated bit.
        assert_eq!(format!("{plains:?}"), format!("{counted:?}"));
        let c = shared.snapshot();
        assert_eq!(c.get(Counter::JobsReplayed), trace.jobs.len() as u64);
        assert!(c.get(Counter::TaskKills) > 0, "no failures counted");
    }
}
