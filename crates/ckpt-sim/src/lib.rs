//! # ckpt-sim — discrete-event cloud simulator for checkpoint/restart research
//!
//! The substrate standing in for the paper's physical testbed (32 hosts ×
//! 7 XEN VMs, BLCR, NFS/DM-NFS, Google trace replay):
//!
//! * [`time`], [`event`] — deterministic DES foundations (integer
//!   microseconds, `(time, seq)`-ordered queues: a cancelable
//!   [`event::EventQueue`] and the hot-path [`event::FastQueue`]).
//! * [`task_store`] — dense struct-of-arrays task state for the cluster
//!   engine (stable [`task_store::TaskId`]s, flat kill-plan arena).
//! * [`blcr`] — the BLCR cost model calibrated to the paper's Figure 7 and
//!   Tables 4–5 (checkpoint cost linear in memory; restart cost by
//!   migration type).
//! * [`storage`] — processor-sharing storage servers: one central NFS
//!   server (Table 2's contention) vs per-host DM-NFS (Table 3's flatness).
//! * [`controller`], [`task_sim`] — per-task execution under a checkpoint
//!   policy: failures, rollbacks, restarts, aborted checkpoints,
//!   mid-run priority flips.
//! * [`policy`] — policy drivers: estimator kinds (oracle / per-priority /
//!   global), storage choice (§4.2.2), and interval counts from
//!   Formula (3) / Young / Daly.
//! * [`metrics`] — WPR (Formula (9)) and figure-ready aggregations.
//! * [`runner`] — parallel trace replay (scoped worker threads,
//!   deterministic via per-task RNG streams).
//! * [`cluster`] — the full-cluster DES: memory-constrained greedy
//!   scheduling, VM placement, checkpoint storage contention, restart
//!   migration — used for the contention experiments and end-to-end
//!   validation of the fast path.
//! * [`shard`] — the sharded cluster DES: the host fleet partitioned into
//!   contiguous host groups, one engine per shard advancing through
//!   conservative time windows on the work-stealing substrate, metric and
//!   counter state folded deterministically at window barriers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blcr;
pub mod cluster;
pub mod controller;
pub mod event;
pub mod metrics;
pub mod policy;
pub mod runner;
pub mod shard;
pub mod storage;
pub mod task_sim;
pub mod task_store;
pub mod time;

pub use blcr::{BlcrModel, Device, Migration};
pub use cluster::{ClusterSim, MetricsMode, RunStatus, SimBudget, SimProgress};
pub use metrics::{JobRecord, StreamStats};
pub use policy::{CostTweak, Estimates, EstimatorKind, PolicyConfig, StorageChoice};
pub use runner::{parallel_indexed, run_trace, RunOptions};
pub use shard::{shard_of, ShardPlan, ShardedClusterSim};
pub use time::{SimDuration, SimTime};
