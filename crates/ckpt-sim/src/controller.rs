//! Checkpoint controllers: the bridge between a *policy* (which formula,
//! static or adaptive) and the *executor* (the task simulation), expressed
//! entirely in productive-progress positions.

use ckpt_policy::adaptive::{AdaptiveCheckpointer, CheckpointDecision};
use ckpt_policy::schedule::EquidistantSchedule;

/// A fixed equidistant schedule: positions `i·w` for `i = 1..=count`
/// (Young, Daly, and the static Formula (3) variant all use this).
///
/// Stored as `(segment length, count, cursor)` rather than a materialized
/// position `Vec`: positions are recomputed on demand with the *same*
/// float expression [`EquidistantSchedule::positions`] uses (`i·w`), so
/// the values are bit-identical to the historical Vec-backed schedule
/// while construction is allocation-free and the next-checkpoint lookup
/// is O(1) instead of a per-milestone binary search — this sits in the
/// innermost replay loop (one lookup per checkpoint interval).
#[derive(Debug, Clone)]
pub struct FixedSchedule {
    /// Segment length `Te/x`.
    w: f64,
    /// Number of checkpoints (`x − 1`).
    count: u32,
    /// Index of the first position strictly after `durable` (0-based:
    /// position `i` is `(i+1)·w`). Maintained so `next_checkpoint` is a
    /// plain read.
    next_idx: u32,
    durable: f64,
}

impl FixedSchedule {
    /// Build from an equidistant schedule.
    pub fn new(schedule: &EquidistantSchedule) -> Self {
        Self {
            w: schedule.segment_len(),
            count: schedule.checkpoint_count(),
            next_idx: 0,
            durable: 0.0,
        }
    }

    /// Build with no checkpoints at all.
    pub fn none() -> Self {
        Self {
            w: 0.0,
            count: 0,
            next_idx: 0,
            durable: 0.0,
        }
    }

    /// Position `i` (0-based): `(i+1)·w`, the exact expression
    /// [`EquidistantSchedule::positions`] evaluates.
    #[inline]
    fn position(&self, i: u32) -> f64 {
        (i + 1) as f64 * self.w
    }

    /// Re-point the cursor at the first position strictly after `p` —
    /// the incremental equivalent of the historical
    /// `partition_point(|&q| q <= p)` over the materialized positions,
    /// valid for arbitrary `p` (backward moves rescan from 0; they only
    /// occur on rollbacks past the cursor, which the executors never
    /// produce, so the forward path is the hot one).
    #[inline]
    fn seek(&mut self, p: f64) {
        if self.next_idx > 0 && self.position(self.next_idx - 1) > p {
            self.next_idx = 0;
        }
        while self.next_idx < self.count && self.position(self.next_idx) <= p {
            self.next_idx += 1;
        }
    }

    fn next_after_durable(&self) -> Option<f64> {
        (self.next_idx < self.count).then(|| self.position(self.next_idx))
    }
}

/// The controller driving one task's checkpoints.
#[derive(Debug, Clone)]
pub enum Controller {
    /// Positions fixed at task start.
    Fixed(FixedSchedule),
    /// The paper's Algorithm 1 (re-solves on MNOF change).
    Adaptive(AdaptiveCheckpointer),
}

impl Controller {
    /// Absolute productive position of the next checkpoint, strictly after
    /// the durable progress; `None` ⇒ run to completion.
    pub fn next_checkpoint(&self) -> Option<f64> {
        match self {
            Controller::Fixed(f) => f.next_after_durable(),
            Controller::Adaptive(a) => match a.decision() {
                CheckpointDecision::RunUntil { at_progress } => Some(at_progress),
                CheckpointDecision::RunToCompletion => None,
            },
        }
    }

    /// A checkpoint completed: durable progress is now `pos`.
    pub fn on_checkpoint_complete(&mut self, pos: f64) {
        match self {
            Controller::Fixed(f) => {
                f.durable = pos;
                f.seek(pos);
            }
            Controller::Adaptive(a) => a.on_checkpoint_complete(pos),
        }
    }

    /// A failure rolled the task back to durable progress `pos`.
    pub fn on_rollback(&mut self, pos: f64) {
        match self {
            Controller::Fixed(f) => {
                f.durable = pos;
                f.seek(pos);
            }
            Controller::Adaptive(a) => a.on_rollback(pos),
        }
    }

    /// The task's full-task MNOF belief changed (priority flip). Fixed
    /// controllers ignore it (the paper's "static algorithm"); adaptive
    /// controllers re-solve (Algorithm 1). Returns whether a re-solve
    /// happened.
    pub fn on_mnof_change(&mut self, mnof_full: f64) -> bool {
        match self {
            Controller::Fixed(_) => false,
            Controller::Adaptive(a) => a.update_mnof(mnof_full),
        }
    }

    /// Number of planned checkpoints remaining from the current durable
    /// position (diagnostic).
    pub fn planned_remaining(&self) -> Option<usize> {
        match self {
            Controller::Fixed(f) => Some((f.count - f.next_idx) as usize),
            Controller::Adaptive(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed(te: f64, x: u32) -> Controller {
        Controller::Fixed(FixedSchedule::new(
            &EquidistantSchedule::new(te, x).unwrap(),
        ))
    }

    #[test]
    fn fixed_walks_positions() {
        let mut c = fixed(100.0, 4); // 25, 50, 75
        assert_eq!(c.next_checkpoint(), Some(25.0));
        c.on_checkpoint_complete(25.0);
        assert_eq!(c.next_checkpoint(), Some(50.0));
        c.on_checkpoint_complete(50.0);
        c.on_checkpoint_complete(75.0);
        assert_eq!(c.next_checkpoint(), None);
    }

    #[test]
    fn fixed_rollback_repeats_position() {
        let mut c = fixed(100.0, 4);
        c.on_checkpoint_complete(25.0);
        assert_eq!(c.next_checkpoint(), Some(50.0));
        // Failure between 25 and 50: still aiming for 50 after rollback.
        c.on_rollback(25.0);
        assert_eq!(c.next_checkpoint(), Some(50.0));
        // Failure before the first checkpoint ever completes:
        let mut c2 = fixed(100.0, 4);
        c2.on_rollback(0.0);
        assert_eq!(c2.next_checkpoint(), Some(25.0));
    }

    #[test]
    fn none_never_checkpoints() {
        let mut c = Controller::Fixed(FixedSchedule::none());
        assert_eq!(c.next_checkpoint(), None);
        c.on_rollback(0.0);
        assert_eq!(c.next_checkpoint(), None);
        assert_eq!(c.planned_remaining(), Some(0));
    }

    #[test]
    fn fixed_ignores_mnof_changes() {
        let mut c = fixed(100.0, 4);
        assert!(!c.on_mnof_change(50.0));
        assert_eq!(c.next_checkpoint(), Some(25.0));
    }

    #[test]
    fn adaptive_resolves_on_mnof_change() {
        let a = AdaptiveCheckpointer::new(400.0, 1.0, 2.0).unwrap();
        let mut c = Controller::Adaptive(a);
        let first = c.next_checkpoint().unwrap();
        assert!(c.on_mnof_change(32.0)); // 16× failures ⇒ 4× checkpoints
        let new_first = c.next_checkpoint().unwrap();
        assert!(new_first < first, "{new_first} vs {first}");
    }

    #[test]
    fn planned_remaining_counts_down() {
        let mut c = fixed(100.0, 4);
        assert_eq!(c.planned_remaining(), Some(3));
        c.on_checkpoint_complete(25.0);
        assert_eq!(c.planned_remaining(), Some(2));
    }
}
